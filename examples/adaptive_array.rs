//! Adaptive reconfiguration: observe, advise, migrate, win.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example adaptive_array
//! ```
//!
//! The paper's future-work direction (after HP's Ivy): "dynamically tune
//! the array configuration by observing access patterns". This example
//! plays a workload whose character shifts mid-stream — a read-heavy
//! file-server day into a write-heavy batch night — and shows the
//! [`Advisor`] recommending the right shape for each phase, validated by
//! simulating both phases on both shapes.

use mimdraid::core::tuner::{Advice, Advisor, WorkloadObserver};
use mimdraid::core::{ArraySim, EngineConfig, Shape, WriteMode};
use mimdraid::disk::DiskParams;
use mimdraid::workload::{SyntheticSpec, Trace};

fn phase_day() -> Trace {
    // Read-heavy, high-locality interactive traffic.
    let mut spec = SyntheticSpec::cello_base();
    spec.read_frac = 0.85;
    spec.async_write_frac = 0.05;
    spec.rate_per_sec = 40.0;
    spec.generate(61, 4_000)
}

fn phase_night() -> Trace {
    // Write-heavy batch updates at a punishing rate.
    let mut spec = SyntheticSpec::tpcc();
    spec.read_frac = 0.25;
    spec.rate_per_sec = 900.0;
    spec.generate(62, 4_000)
}

fn measure(shape: Shape, trace: &Trace, fg: bool) -> f64 {
    let mut cfg = EngineConfig::new(shape);
    if fg {
        cfg = cfg.with_write_mode(WriteMode::Foreground);
    }
    let mut sim = ArraySim::new(cfg, trace.data_sectors).expect("shape fits");
    sim.run_trace(trace).mean_response_ms()
}

fn main() {
    let disks = 6;
    let day = phase_day();
    let night = phase_night();
    let advisor = Advisor::new(DiskParams::st39133lwv(), day.data_sectors);

    let mut shape = Shape::striping(disks); // Naive starting point.
    println!("starting configuration: {shape}\n");

    for (label, trace, fg) in [
        ("day (read-heavy)", &day, false),
        ("night (write-heavy)", &night, true),
    ] {
        // Observe the phase through the tuner's window.
        let mut obs = WorkloadObserver::new(trace.data_sectors, disks);
        for r in trace.requests() {
            obs.observe(r);
        }
        let profile = obs.snapshot().expect("enough requests");
        println!(
            "[{label}] observed: {:.0}/s, {:.0}% reads, L = {:.1}, p = {:.2}",
            profile.rate_per_sec,
            profile.read_frac * 100.0,
            profile.locality,
            profile.p
        );

        match advisor.recommend(&profile, shape) {
            Advice::Stay => println!("  advisor: stay on {shape}"),
            Advice::Reconfigure {
                shape: new_shape,
                predicted_gain,
                migration,
            } => {
                println!(
                    "  advisor: reconfigure {shape} -> {new_shape} \
                     (predicted {predicted_gain:.2}x, migration ~{:.0} s)",
                    migration.as_secs_f64()
                );
                let before = measure(shape, trace, fg);
                let after = measure(new_shape, trace, fg);
                println!(
                    "  validated: {shape} = {before:.2} ms, {new_shape} = {after:.2} ms \
                     ({:.2}x measured)",
                    before / after
                );
                shape = new_shape;
            }
        }
        println!();
    }
    println!("final configuration: {shape}");
}
