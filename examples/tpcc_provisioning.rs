//! Provisioning a TPC-C-like database volume (§4.1's second workload).
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example tpcc_provisioning
//! ```
//!
//! Database vendors "configure systems based on the number of disk heads
//! instead of capacity" (§1); the open question the paper answers is *how
//! to configure the heads*. This example walks a 36-head budget through
//! the candidate organisations at increasing load and shows the best
//! configuration shifting away from replication as the write-heavy load
//! grows — the Figure 10(b) effect, driven here through the public API.

use mimdraid::core::{ArraySim, EngineConfig, RunReport, Shape};
use mimdraid::workload::{SyntheticSpec, Trace};

fn run(shape: Shape, trace: &Trace) -> RunReport {
    let mut sim = ArraySim::new(EngineConfig::new(shape), trace.data_sectors)
        .expect("36 disks fit the 9 GB set");
    sim.run_trace(trace)
}

fn main() {
    let base = SyntheticSpec::tpcc().generate(5, 12_000);
    let candidates = [
        Shape::sr_array(9, 4).expect("valid"),
        Shape::sr_array(18, 2).expect("valid"),
        Shape::raid10(36).expect("even"),
        Shape::striping(36),
    ];

    println!("36 disk heads, TPC-C-like volume; mean response time (ms):\n");
    print!("{:>8}", "scale");
    for c in &candidates {
        print!("{:>10}", c.to_string());
    }
    println!("{:>12}", "best");
    for scale in [1.0, 4.0, 8.0, 12.0] {
        let t = base.scaled(scale);
        let mut results = Vec::new();
        for c in &candidates {
            results.push((*c, run(*c, &t).mean_response_ms()));
        }
        let best = results
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("non-empty")
            .0;
        print!("{scale:>8}");
        for (_, ms) in &results {
            print!("{ms:>10.2}");
        }
        println!("{:>12}", best.to_string());
    }

    println!("\nReliability note: only the RAID-10 column survives a disk failure");
    println!("(Dm = 2); an SR-Array trades that redundancy for rotational replicas");
    println!("on the same spindle (§2.5). The general SR-Mirror recovers both at");
    println!("higher cost — e.g. 9x2x2 on the same budget.");
    let srm = Shape::new(9, 2, 2).expect("valid");
    let r = run(srm, &base.scaled(4.0));
    println!(
        "  {srm} (fault-tolerant: {}) at scale 4: {:.2} ms",
        srm.is_fault_tolerant(),
        r.mean_response_ms()
    );
}
