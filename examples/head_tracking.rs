//! Software-only head-position prediction, end to end (§3.2).
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example head_tracking
//! ```
//!
//! Demonstrates the paper's mechanism against ground truth: a spindle with
//! realistic drift is observed only through jittered reference-sector read
//! completions; the tracker estimates period and phase, predictions are
//! scored against the true platter angle, and the k-sector slack feedback
//! loop keeps the on-target rate above 99 %.

use mimdraid::disk::calibration::{
    CalibrationSchedule, DriftingSpindle, HeadTracker, ObservationNoise, SlackController,
};
use mimdraid::disk::DiskParams;
use mimdraid::sim::{SimDuration, SimRng, SimTime};

fn main() {
    let params = DiskParams::st39133lwv();
    let nominal = params.rotation_time();
    println!(
        "drive: {} at {} RPM (R = {:.1} ms)",
        params.model,
        params.rpm,
        nominal.as_millis_f64()
    );

    let mut spindle = DriftingSpindle::default_for(nominal, 2024);
    let noise = ObservationNoise::default();
    let mut tracker = HeadTracker::new(nominal, noise);
    let mut schedule = CalibrationSchedule::paper_default();
    let mut slack = SlackController::paper_default();
    let mut rng = SimRng::seed_from(99);

    println!("\ncalibrating: reference-sector reads at a growing interval…");
    let mut now = SimTime::from_millis(1);
    let mut shown = 0;
    for round in 0..200u32 {
        let pass = spindle.next_time_at_angle(now, 0.0);
        let jitter = rng.normal_at_least(noise.mean_us, noise.std_us, noise.floor_us);
        tracker.observe(pass + SimDuration::from_micros_f64(jitter), 0.0);
        let interval = schedule.advance();

        // Score a prediction mid-interval once the tracker is calibrated.
        if tracker.is_calibrated() && (round < 8 || round % 25 == 0) && shown < 12 {
            shown += 1;
            let t = pass + interval / 2;
            let predicted = tracker.predict_angle(t).expect("calibrated");
            let actual = spindle.true_angle(t);
            let err_rev = {
                let e = (predicted - actual).rem_euclid(1.0);
                e.min(1.0 - e)
            };
            let err_us = err_rev * nominal.as_micros_f64();
            // Feed the slack loop: a "miss" is an error beyond the window.
            let missed = err_us > slack.slack_sectors() as f64 * 28.0 + 5.0;
            slack.record(missed);
            println!(
                "  round {round:>3}: interval {:>8}, |error| {err_us:>6.1} us, \
                 period estimate {:.6} ms, slack k={}",
                format!("{interval}"),
                tracker.period_estimate().as_micros_f64() / 1_000.0,
                slack.slack_sectors()
            );
        }
        now = pass + interval;
    }
    println!(
        "\nafter {} observations the period estimate is {:.6} ms against a",
        tracker.observations(),
        tracker.period_estimate().as_micros_f64() / 1_000.0
    );
    println!(
        "nominal {:.6} ms — accurate to parts per million, which is what lets",
        nominal.as_micros_f64() / 1_000.0
    );
    println!("RSATF choose rotational replicas two minutes after the last calibration.");
}
