//! Quickstart: configure an SR-Array for a workload and measure it.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! The flow mirrors how the paper says an array should be provisioned:
//! start from drive characteristics (`S`, `R`) and workload
//! characteristics (`p`, `L`), let the Section 2 models pick the aspect
//! ratio, then validate the choice by replaying the workload on the
//! simulated array.

use mimdraid::core::models::{best_rw_latency, recommend_latency_shape, DiskCharacter};
use mimdraid::core::{ArraySim, EngineConfig, Shape};
use mimdraid::disk::DiskParams;
use mimdraid::workload::{SyntheticSpec, TraceStats};

fn main() {
    // 1. The drive: the paper's Seagate ST39133LWV (Table 1).
    let params = DiskParams::st39133lwv();
    let character = DiskCharacter::from_params(&params);
    println!(
        "drive: {} — S = {:.1} ms, R = {:.1} ms",
        params.model, character.s_ms, character.r_ms
    );

    // 2. The workload: a Cello-like file-system trace, characterised the
    //    way the paper's Table 3 does.
    let trace = SyntheticSpec::cello_base().generate(1, 5_000);
    let stats = TraceStats::of(&trace);
    println!(
        "workload: {} requests, {:.1}% reads, seek locality L = {:.2}",
        trace.len(),
        stats.read_frac * 100.0,
        stats.seek_locality
    );

    // 3. Ask the models for the right six-disk configuration. Background
    //    propagation keeps p near 1 at this trace's low rate.
    let budget = 6;
    let local = character.with_locality(stats.seek_locality);
    let shape = recommend_latency_shape(&local, budget, 1.0);
    let predicted = best_rw_latency(&local, budget, 1.0).expect("p > 0.5") + local.overhead_ms;
    println!("model recommends a {shape} SR-Array; predicted response ~{predicted:.1} ms");

    // 4. Validate on the simulator, against plain striping.
    for (label, s) in [
        ("recommended", shape),
        ("striping   ", Shape::striping(budget)),
    ] {
        let mut sim = ArraySim::new(EngineConfig::new(s), trace.data_sectors)
            .expect("six disks fit a Cello-sized data set");
        let report = sim.run_trace(&trace);
        println!(
            "{label} {s}: mean response {:.2} ms over {} requests",
            report.mean_response_ms(),
            report.completed
        );
    }
}
