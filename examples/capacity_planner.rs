//! Capacity planner: sweep disk budgets and print the recommended
//! configuration with its predicted and simulated performance.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example capacity_planner -- [budget_max]
//! ```
//!
//! This is the "how do we systematically increase the performance of a
//! disk array by adding more disks?" question from the paper's
//! introduction, answered end to end: for every budget the Section 2
//! models choose an aspect ratio, Equation (11) predicts the latency, and
//! the simulator confirms it — alongside the √D rule of thumb.

use mimdraid::core::models::{best_rw_latency, recommend_latency_shape, DiskCharacter};
use mimdraid::core::{ArraySim, EngineConfig};
use mimdraid::disk::DiskParams;
use mimdraid::workload::{SyntheticSpec, TraceStats};

fn main() {
    let budget_max: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(16);

    let params = DiskParams::st39133lwv();
    let trace = SyntheticSpec::cello_base().generate(7, 8_000);
    let stats = TraceStats::of(&trace);
    let character = DiskCharacter::from_params(&params).with_locality(stats.seek_locality);

    println!("budget  shape   model(ms)  simulated(ms)  sqrt(D) rule");
    let mut base_overhead_free: Option<f64> = None;
    for d in 1..=budget_max {
        let shape = recommend_latency_shape(&character, d, 1.0);
        let model = best_rw_latency(&character, d, 1.0).expect("p=1") + character.overhead_ms;
        let mut sim = match ArraySim::new(EngineConfig::new(shape), trace.data_sectors) {
            Ok(s) => s,
            Err(e) => {
                println!("{d:>6}  {shape:>6}  infeasible: {e}");
                continue;
            }
        };
        let measured = sim.run_trace(&trace).mean_response_ms();
        let t1 =
            *base_overhead_free.get_or_insert(best_rw_latency(&character, 1, 1.0).expect("p=1"));
        let rule = t1 / (d as f64).sqrt() + character.overhead_ms;
        println!("{d:>6}  {shape:>6}  {model:>9.2}  {measured:>13.2}  {rule:>12.2}");
    }
    println!("\nThe rule-of-thumb column is T1/sqrt(D) + To (§2.6): \"by using D disks,");
    println!("we can improve the overhead-independent part of response time by sqrt(D)\".");
}
