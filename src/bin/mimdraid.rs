//! `mimdraid` — command-line front end to the SR-Array library.
//!
//! ```text
//! mimdraid recommend --disks 6 --locality 4.14 [--p 1.0] [--queue 8]
//! mimdraid generate  --workload cello-base --requests 20000 --out t.trace
//! mimdraid stats     --trace t.trace
//! mimdraid simulate  --shape 2x3x1 --trace t.trace [--scale 2] [--policy rsatf]
//! mimdraid simulate  --shape 2x3x1 --workload cello-base --requests 5000
//! mimdraid simulate  --shape 8x1x1 --raid 5 --group 4 --workload tpcc \
//!                    --fail 0@30 --recover 0@60
//! mimdraid mttdl     --disks 8 [--group 4] [--mttf 500000] [--mttr 24]
//! ```

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

use mimdraid::core::models::{
    best_rw_latency, mttdl_mirrored, mttdl_parity_array, mttdl_unprotected,
    recommend_latency_shape, recommend_throughput_shape, DiskCharacter,
};
use mimdraid::core::{ArraySim, EngineConfig, FaultPlan, ParityConfig, Policy, Shape, WriteMode};
use mimdraid::disk::DiskParams;
use mimdraid::sim::{SimDuration, SimTime};
use mimdraid::workload::io::{read_trace, write_trace};
use mimdraid::workload::{SyntheticSpec, Trace, TraceStats};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  mimdraid recommend --disks D --locality L [--p P] [--queue Q]\n  \
         mimdraid generate --workload <cello-base|cello-disk6|tpcc> --requests N --out FILE [--seed S]\n  \
         mimdraid stats --trace FILE\n  \
         mimdraid simulate --shape DSxDRxDM (--trace FILE | --workload NAME [--requests N])\n            \
         [--scale X] [--policy fcfs|look|satf|rlook|rsatf] [--write-mode fg|bg] [--seed S]\n            \
         [--raid 4|5 --group G] [--fail D@SECS]... [--recover D@SECS]...\n            \
         [--rebuild-delay SECS] [--rebuild-chunk SECTORS]\n  \
         mimdraid mttdl --disks N [--group G] [--mttf HOURS] [--mttr HOURS]"
    );
    ExitCode::from(2)
}

struct Args {
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse(raw: &[String]) -> Option<Args> {
        let mut flags = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            let key = raw[i].strip_prefix("--")?.to_string();
            let value = raw.get(i + 1)?.clone();
            flags.push((key, value));
            i += 2;
        }
        Some(Args { flags })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn get_all<'a>(&'a self, key: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        self.flags
            .iter()
            .filter(move |(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn get_parsed<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("bad value for --{key}: {v:?}")),
        }
    }
}

fn parse_shape(s: &str) -> Option<Shape> {
    let parts: Vec<u32> = s
        .split('x')
        .map(|p| p.parse().ok())
        .collect::<Option<_>>()?;
    match parts.as_slice() {
        [ds, dr, dm] => Shape::new(*ds, *dr, *dm),
        [ds, dr] => Shape::new(*ds, *dr, 1),
        _ => None,
    }
}

/// Parses a `DISK@SECONDS` fault spec, e.g. `0@30` or `2@45.5`.
fn parse_fault(spec: &str) -> Result<(usize, SimTime), String> {
    let (d, t) = spec
        .split_once('@')
        .ok_or_else(|| format!("bad fault spec {spec:?}; expected DISK@SECONDS"))?;
    let disk = d
        .parse()
        .map_err(|_| format!("bad disk index in {spec:?}"))?;
    let secs: f64 = t.parse().map_err(|_| format!("bad time in {spec:?}"))?;
    if !secs.is_finite() || secs < 0.0 {
        return Err(format!("bad time in {spec:?}"));
    }
    Ok((disk, SimTime::from_secs_f64(secs)))
}

/// Builds the fault plan from repeated `--fail` / `--recover` flags.
/// `--fail` is a plain fail-stop; `--recover` is a fail-stop that gets a
/// hot spare, so the array rebuilds onto it (mirror copy or parity
/// reconstruction) and recovers its healthy service times.
fn fault_plan(args: &Args) -> Result<FaultPlan, String> {
    let mut plan = FaultPlan::new();
    for spec in args.get_all("fail") {
        let (disk, at) = parse_fault(spec)?;
        plan = plan.fail_stop(disk, at);
    }
    for spec in args.get_all("recover") {
        let (disk, at) = parse_fault(spec)?;
        plan = plan.fail_stop_with_spare(disk, at);
    }
    let delay: f64 = args.get_parsed("rebuild-delay")?.unwrap_or(1.0);
    let chunk: u32 = args.get_parsed("rebuild-chunk")?.unwrap_or(2048);
    plan = plan.rebuild(SimDuration::from_secs_f64(delay), chunk);
    Ok(plan)
}

fn parity_config(args: &Args) -> Result<Option<ParityConfig>, String> {
    let Some(level) = args.get("raid") else {
        if args.get("group").is_some() {
            return Err("--group requires --raid 4|5".into());
        }
        return Ok(None);
    };
    let group: u32 = args.get_parsed("group")?.unwrap_or(4);
    match level {
        "4" => Ok(Some(ParityConfig::raid4(group))),
        "5" => Ok(Some(ParityConfig::raid5(group))),
        other => Err(format!("unknown RAID level {other:?}; expected 4 or 5")),
    }
}

fn workload_spec(name: &str) -> Option<SyntheticSpec> {
    match name {
        "cello-base" => Some(SyntheticSpec::cello_base()),
        "cello-disk6" => Some(SyntheticSpec::cello_disk6()),
        "tpcc" => Some(SyntheticSpec::tpcc()),
        _ => None,
    }
}

fn cmd_recommend(args: &Args) -> Result<(), String> {
    let disks: u32 = args.get_parsed("disks")?.ok_or("--disks is required")?;
    let locality: f64 = args.get_parsed("locality")?.unwrap_or(1.0);
    let p: f64 = args.get_parsed("p")?.unwrap_or(1.0);
    let queue: Option<f64> = args.get_parsed("queue")?;
    let params = DiskParams::st39133lwv();
    let raw = DiskCharacter::from_params(&params);
    let c = raw.with_locality(locality);

    println!(
        "drive: {} (S = {:.1} ms, R = {:.1} ms; effective S/L = {:.1} ms)",
        params.model, raw.s_ms, raw.r_ms, c.s_ms
    );
    let lat = recommend_latency_shape(&c, disks, p);
    println!(
        "latency-optimal shape: {lat}{}",
        best_rw_latency(&c, disks, p)
            .map(|t| format!(" (model: {:.2} ms + overhead)", t))
            .unwrap_or_default()
    );
    if let Some(q) = queue {
        let thr = recommend_throughput_shape(&c, disks, p, q);
        println!("throughput-optimal shape at q={q}/disk: {thr}");
    }
    if p <= 0.5 {
        println!("note: p <= 0.5 precludes rotational replication (§2.3)");
    }
    Ok(())
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    let name = args.get("workload").ok_or("--workload is required")?;
    let spec = workload_spec(name).ok_or_else(|| format!("unknown workload {name:?}"))?;
    let requests: usize = args.get_parsed("requests")?.unwrap_or(20_000);
    let seed: u64 = args.get_parsed("seed")?.unwrap_or(42);
    let out = args.get("out").ok_or("--out is required")?;
    let trace = spec.generate(seed, requests);
    let file = File::create(out).map_err(|e| format!("create {out}: {e}"))?;
    write_trace(&trace, BufWriter::new(file)).map_err(|e| e.to_string())?;
    println!("wrote {} requests to {out}", trace.len());
    Ok(())
}

fn load_trace(args: &Args) -> Result<Trace, String> {
    if let Some(path) = args.get("trace") {
        let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
        return read_trace(BufReader::new(file)).map_err(|e| e.to_string());
    }
    if let Some(name) = args.get("workload") {
        let spec = workload_spec(name).ok_or_else(|| format!("unknown workload {name:?}"))?;
        let requests: usize = args.get_parsed("requests")?.unwrap_or(10_000);
        let seed: u64 = args.get_parsed("seed")?.unwrap_or(42);
        return Ok(spec.generate(seed, requests));
    }
    Err("need --trace FILE or --workload NAME".into())
}

fn cmd_stats(args: &Args) -> Result<(), String> {
    let trace = load_trace(args)?;
    let s = TraceStats::of(&trace);
    println!("{}", s.table_row(&trace.name));
    Ok(())
}

fn cmd_simulate(args: &Args) -> Result<(), String> {
    let shape = parse_shape(args.get("shape").ok_or("--shape is required")?)
        .ok_or("bad --shape; expected like 2x3x1")?;
    let mut trace = load_trace(args)?;
    if let Some(scale) = args.get_parsed::<f64>("scale")? {
        trace = trace.scaled(scale);
    }
    let mut cfg = EngineConfig::new(shape);
    if let Some(policy) = args.get("policy") {
        cfg.policy = match policy {
            "fcfs" => Policy::Fcfs,
            "look" => Policy::Look,
            "satf" => Policy::Satf,
            "rlook" => Policy::Rlook,
            "rsatf" => Policy::Rsatf,
            other => return Err(format!("unknown policy {other:?}")),
        };
    }
    if let Some(mode) = args.get("write-mode") {
        cfg.write_mode = match mode {
            "fg" => WriteMode::Foreground,
            "bg" => WriteMode::Background,
            other => return Err(format!("unknown write mode {other:?}")),
        };
    }
    if let Some(seed) = args.get_parsed("seed")? {
        cfg.seed = seed;
    }
    if let Some(parity) = parity_config(args)? {
        cfg = cfg.with_parity(parity);
    }
    let plan = fault_plan(args)?;
    plan.validate(shape.disks() as usize)
        .map_err(|e| format!("fault plan: {e}"))?;
    cfg = cfg.with_faults(plan);
    let mut sim = ArraySim::new(cfg, trace.data_sectors).map_err(|e| format!("layout: {e}"))?;
    let mut r = sim.run_trace(&trace);
    println!(
        "shape {shape} | policy {} | {} requests",
        sim_policy(&shape, args),
        r.completed
    );
    println!("  mean response   {:.2} ms", r.mean_response_ms());
    if let Some(p95) = r.response_percentile_ms(0.95) {
        println!("  p95  response   {p95:.2} ms");
    }
    println!("  reads           {:.2} ms mean", r.read_ms.mean());
    println!("  sync writes     {:.2} ms mean", r.write_ms.mean());
    println!("  physical ops    {}", r.phys_requests);
    println!(
        "  delayed writes  {} propagated, {} coalesced",
        r.delayed_propagated, r.delayed_coalesced
    );
    if r.failed_requests > 0 {
        println!("  FAILED requests {}", r.failed_requests);
    }
    let f = &r.faults;
    if f.degraded_reads + f.rmw_updates + f.reconstruction_chunks > 0 {
        println!(
            "  parity          {} degraded reads, {} RMW updates, {} chunks reconstructed",
            f.degraded_reads, f.rmw_updates, f.reconstruction_chunks
        );
    }
    if f.rebuilds_completed > 0 {
        println!("  rebuilds        {} completed", f.rebuilds_completed);
    }
    Ok(())
}

fn cmd_mttdl(args: &Args) -> Result<(), String> {
    let disks: u32 = args.get_parsed("disks")?.ok_or("--disks is required")?;
    let group: u32 = args.get_parsed("group")?.unwrap_or(4);
    let mttf: f64 = args.get_parsed("mttf")?.unwrap_or(500_000.0);
    let mttr: f64 = args.get_parsed("mttr")?.unwrap_or(24.0);
    if disks == 0 {
        return Err("--disks must be positive".into());
    }
    if group < 2 || !disks.is_multiple_of(group) {
        return Err(format!(
            "--group {group} must be >= 2 and divide --disks {disks}"
        ));
    }
    let years = |h: f64| h / (24.0 * 365.25);
    println!("MTTDL for {disks} disks (MTTF {mttf:.0} h, MTTR {mttr:.0} h):");
    let plain = mttdl_unprotected(mttf, disks);
    println!(
        "  unprotected (striping/SR-array)  {plain:.3e} h  ({:.1} y, 100% data capacity)",
        years(plain)
    );
    if disks.is_multiple_of(2) {
        let m = mttdl_mirrored(mttf, mttr, disks);
        println!(
            "  mirrored (Dm=2, RAID 10)         {m:.3e} h  ({:.1} y, 50% data capacity)",
            years(m)
        );
    }
    let p = mttdl_parity_array(mttf, mttr, group, disks / group);
    println!(
        "  RAID 4/5, {} groups of G={group}        {p:.3e} h  ({:.1} y, {:.0}% data capacity)",
        disks / group,
        years(p),
        (group - 1) as f64 / group as f64 * 100.0
    );
    Ok(())
}

fn sim_policy(shape: &Shape, args: &Args) -> String {
    args.get("policy")
        .map(str::to_uppercase)
        .unwrap_or_else(|| Policy::default_for_dr(shape.dr).to_string())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        return usage();
    };
    let Some(args) = Args::parse(rest) else {
        return usage();
    };
    let result = match cmd.as_str() {
        "recommend" => cmd_recommend(&args),
        "generate" => cmd_generate(&args),
        "stats" => cmd_stats(&args),
        "simulate" => cmd_simulate(&args),
        "mttdl" => cmd_mttdl(&args),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
