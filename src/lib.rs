//! Facade crate re-exporting the MimdRAID workspace.
pub use mimd_core as core;
pub use mimd_disk as disk;
pub use mimd_sim as sim;
pub use mimd_workload as workload;
