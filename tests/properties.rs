//! Property-based cross-crate invariants (proptest).

use proptest::prelude::*;

use mimdraid::core::{ArraySim, EngineConfig, Fragment, Layout, Shape};
use mimdraid::disk::{DiskParams, Geometry};
use mimdraid::sim::SimTime;
use mimdraid::workload::{Op, Request, Trace};

fn geometry() -> Geometry {
    Geometry::new(&DiskParams::st39133lwv())
}

/// Strategy over feasible shapes for an 8 GB data set.
fn shapes() -> impl Strategy<Value = Shape> {
    prop_oneof![
        (1u32..=16).prop_map(Shape::striping),
        (2u32..=6).prop_map(Shape::mirror),
        (1u32..=6, 2u32..=4).prop_map(|(ds, dr)| Shape::sr_array(ds.max(2), dr).unwrap()),
        (1u32..=4, 1u32..=3, 2u32..=3).prop_map(|(ds, dr, dm)| Shape::new(ds + 1, dr, dm).unwrap()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fragments_partition_every_request(lbn in 0u64..16_000_000, sectors in 1u32..512) {
        let layout = Layout::new(Shape::striping(4), &geometry(), 16_400_000, 128, false)
            .expect("fits");
        let frags = layout.fragments(lbn, sectors);
        // Contiguous, exhaustive, non-overlapping.
        prop_assert_eq!(frags[0].lbn, lbn);
        prop_assert_eq!(frags.iter().map(|f| f.sectors as u64).sum::<u64>(), sectors as u64);
        for w in frags.windows(2) {
            prop_assert_eq!(w[0].lbn + w[0].sectors as u64, w[1].lbn);
            // Interior fragments end on unit boundaries.
            prop_assert_eq!((w[0].lbn + w[0].sectors as u64) % 128, 0);
        }
    }

    #[test]
    fn replica_targets_are_physically_valid(
        shape in shapes(),
        lbn in 0u64..8_000_000,
        sectors in 1u32..128,
    ) {
        let g = geometry();
        let Ok(layout) = Layout::new(shape, &g, 8_000_000, 128, false) else {
            // Infeasible combinations are allowed to be rejected.
            return Ok(());
        };
        for frag in layout.fragments(lbn, sectors) {
            let candidates = layout.read_candidates(frag);
            prop_assert_eq!(candidates.len() as u32, shape.dr * shape.dm);
            for r in &candidates {
                prop_assert!(r.disk < layout.disks());
                prop_assert!(r.target.cylinder < g.total_cylinders());
                prop_assert!(r.target.surface < g.surfaces());
                prop_assert!((0.0..1.0).contains(&r.target.angle));
                prop_assert_eq!(r.target.sectors, frag.sectors);
            }
            // All rotational replicas of one mirror share a cylinder.
            for m in 0..shape.dm {
                let on_mirror: Vec<_> =
                    candidates.iter().filter(|r| r.mirror == m as u8).collect();
                let colocated = on_mirror.windows(2).all(|w| {
                    w[0].target.cylinder == w[1].target.cylinder && w[0].disk == w[1].disk
                });
                prop_assert!(colocated, "replicas of one mirror must share a cylinder");
            }
            // Write groups cover exactly the same copies.
            let writes: usize = layout
                .write_groups(frag)
                .iter()
                .map(|(_, v)| v.len())
                .sum();
            prop_assert_eq!(writes, candidates.len());
        }
    }

    #[test]
    fn rotational_replicas_are_evenly_spaced(
        ds in 1u32..=4,
        dr in 2u32..=6,
        lbn in 0u64..4_000_000,
    ) {
        let g = geometry();
        let Ok(layout) = Layout::new(Shape::sr_array(ds, dr).unwrap(), &g, 4_000_000, 128, false)
        else {
            return Ok(());
        };
        let frag = Fragment { lbn, sectors: 8 };
        let mut angles: Vec<f64> = layout
            .read_candidates(frag)
            .iter()
            .map(|r| r.target.angle)
            .collect();
        angles.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for w in angles.windows(2) {
            let gap = w[1] - w[0];
            prop_assert!((gap - 1.0 / dr as f64).abs() < 1e-9, "gap {gap}");
        }
    }

    #[test]
    fn engine_completes_arbitrary_small_workloads(
        shape in shapes(),
        seed in 0u64..1_000,
        n in 50usize..200,
    ) {
        let mut reqs = Vec::with_capacity(n);
        let mut rng = mimdraid::sim::SimRng::seed_from(seed);
        for i in 0..n {
            let op = match rng.below(3) {
                0 => Op::Read,
                1 => Op::SyncWrite,
                _ => Op::AsyncWrite,
            };
            let sectors = 1 + rng.below(64) as u32;
            reqs.push(Request {
                id: 0,
                arrival: SimTime::from_micros(i as u64 * rng.below(20_000)),
                op,
                lbn: rng.below(8_000_000 - 64),
                sectors,
            });
        }
        let trace = Trace::new("prop", 8_000_000, reqs);
        let Ok(mut sim) = ArraySim::new(EngineConfig::new(shape), trace.data_sectors) else {
            return Ok(());
        };
        let r = sim.run_trace(&trace);
        prop_assert_eq!(r.completed, n as u64);
        // Responses are positive and bounded by the run length plus a
        // generous service allowance.
        prop_assert!(r.response_ms.min() >= 0.0);
        prop_assert!(r.response_ms.count() <= n as u64);
    }

    #[test]
    fn engine_is_deterministic(shape in shapes(), seed in 0u64..50) {
        let trace = mimdraid::workload::SyntheticSpec::cello_base().generate(seed, 150);
        let Ok(mut a) = ArraySim::new(EngineConfig::new(shape), trace.data_sectors) else {
            return Ok(());
        };
        let Ok(mut b) = ArraySim::new(EngineConfig::new(shape), trace.data_sectors) else {
            return Ok(());
        };
        let ra = a.run_trace(&trace);
        let rb = b.run_trace(&trace);
        prop_assert_eq!(ra.completed, rb.completed);
        prop_assert_eq!(ra.phys_requests, rb.phys_requests);
        prop_assert_eq!(ra.sim_time, rb.sim_time);
        prop_assert!((ra.mean_response_ms() - rb.mean_response_ms()).abs() < 1e-12);
    }

    #[test]
    fn rate_scaling_is_linear_in_time(scale in 1.0f64..64.0, seed in 0u64..20) {
        let trace = mimdraid::workload::SyntheticSpec::tpcc().generate(seed, 300);
        let scaled = trace.scaled(scale);
        prop_assert_eq!(trace.len(), scaled.len());
        let d0 = trace.duration().as_secs_f64();
        let d1 = scaled.duration().as_secs_f64();
        prop_assert!((d0 / d1 / scale - 1.0).abs() < 0.01, "{d0} vs {d1} at {scale}");
    }
}
