//! Property-based cross-crate invariants, driven by the deterministic
//! in-repo harness (`mimd_sim::check`).

use mimdraid::core::{ArraySim, EngineConfig, Fragment, Layout, Shape};
use mimdraid::disk::{DiskParams, Geometry};
use mimdraid::sim::check::{check_cases, f64_in};
use mimdraid::sim::{SimRng, SimTime};
use mimdraid::workload::{Op, Request, Trace};

fn geometry() -> Geometry {
    Geometry::new(&DiskParams::st39133lwv())
}

/// Generator over feasible shapes for an 8 GB data set.
fn arb_shape(rng: &mut SimRng) -> Shape {
    match rng.below(4) {
        0 => Shape::striping(rng.range(1, 17) as u32),
        1 => Shape::mirror(rng.range(2, 7) as u32),
        2 => {
            let ds = (rng.range(1, 7) as u32).max(2);
            let dr = rng.range(2, 5) as u32;
            Shape::sr_array(ds, dr).expect("feasible SR shape")
        }
        _ => {
            let ds = rng.range(1, 5) as u32 + 1;
            let dr = rng.range(1, 4) as u32;
            let dm = rng.range(2, 4) as u32;
            Shape::new(ds, dr, dm).expect("feasible shape")
        }
    }
}

#[test]
fn fragments_partition_every_request() {
    check_cases("fragments partition every request", 128, |_, rng| {
        let lbn = rng.below(16_000_000);
        let sectors = rng.range(1, 512) as u32;
        let layout =
            Layout::new(Shape::striping(4), &geometry(), 16_400_000, 128, false).expect("fits");
        let frags = layout.fragments(lbn, sectors);
        // Contiguous, exhaustive, non-overlapping.
        assert_eq!(frags[0].lbn, lbn);
        assert_eq!(
            frags.iter().map(|f| f.sectors as u64).sum::<u64>(),
            sectors as u64
        );
        for w in frags.windows(2) {
            assert_eq!(w[0].lbn + w[0].sectors as u64, w[1].lbn);
            // Interior fragments end on unit boundaries.
            assert_eq!((w[0].lbn + w[0].sectors as u64) % 128, 0);
        }
    });
}

#[test]
fn replica_targets_are_physically_valid() {
    check_cases("replica targets are physically valid", 64, |_, rng| {
        let shape = arb_shape(rng);
        let lbn = rng.below(8_000_000);
        let sectors = rng.range(1, 128) as u32;
        let g = geometry();
        let Ok(layout) = Layout::new(shape, &g, 8_000_000, 128, false) else {
            // Infeasible combinations are allowed to be rejected.
            return;
        };
        for frag in layout.fragments(lbn, sectors) {
            let candidates = layout.read_candidates(frag);
            assert_eq!(candidates.len() as u32, shape.dr * shape.dm);
            for r in &candidates {
                assert!(r.disk < layout.disks());
                assert!(r.target.cylinder < g.total_cylinders());
                assert!(r.target.surface < g.surfaces());
                assert!((0.0..1.0).contains(&r.target.angle));
                assert_eq!(r.target.sectors, frag.sectors);
            }
            // All rotational replicas of one mirror share a cylinder.
            for m in 0..shape.dm {
                let on_mirror: Vec<_> = candidates.iter().filter(|r| r.mirror == m as u8).collect();
                let colocated = on_mirror.windows(2).all(|w| {
                    w[0].target.cylinder == w[1].target.cylinder && w[0].disk == w[1].disk
                });
                assert!(colocated, "replicas of one mirror must share a cylinder");
            }
            // Write groups cover exactly the same copies.
            let writes: usize = layout.write_groups(frag).iter().map(|(_, v)| v.len()).sum();
            assert_eq!(writes, candidates.len());
        }
    });
}

#[test]
fn rotational_replicas_are_evenly_spaced() {
    check_cases("rotational replicas are evenly spaced", 64, |_, rng| {
        let ds = rng.range(1, 5) as u32;
        let dr = rng.range(2, 7) as u32;
        let lbn = rng.below(4_000_000);
        let g = geometry();
        let shape = Shape::sr_array(ds, dr).expect("feasible SR shape");
        let Ok(layout) = Layout::new(shape, &g, 4_000_000, 128, false) else {
            return;
        };
        let frag = Fragment { lbn, sectors: 8 };
        let mut angles: Vec<f64> = layout
            .read_candidates(frag)
            .iter()
            .map(|r| r.target.angle)
            .collect();
        angles.sort_by(f64::total_cmp);
        for w in angles.windows(2) {
            let gap = w[1] - w[0];
            assert!((gap - 1.0 / dr as f64).abs() < 1e-9, "gap {gap}");
        }
    });
}

#[test]
fn engine_completes_arbitrary_small_workloads() {
    check_cases(
        "engine completes arbitrary small workloads",
        24,
        |_, rng| {
            let shape = arb_shape(rng);
            let n = rng.range(50, 200) as usize;
            let mut reqs = Vec::with_capacity(n);
            for i in 0..n {
                let op = match rng.below(3) {
                    0 => Op::Read,
                    1 => Op::SyncWrite,
                    _ => Op::AsyncWrite,
                };
                let sectors = 1 + rng.below(64) as u32;
                reqs.push(Request {
                    id: 0,
                    arrival: SimTime::from_micros(i as u64 * rng.below(20_000)),
                    op,
                    lbn: rng.below(8_000_000 - 64),
                    sectors,
                });
            }
            let trace = Trace::new("prop", 8_000_000, reqs);
            let Ok(mut sim) = ArraySim::new(EngineConfig::new(shape), trace.data_sectors) else {
                return;
            };
            let r = sim.run_trace(&trace);
            assert_eq!(r.completed, n as u64);
            // Responses are positive and bounded by the run length plus a
            // generous service allowance.
            assert!(r.response_ms.min() >= 0.0);
            assert!(r.response_ms.count() <= n as u64);
        },
    );
}

#[test]
fn engine_is_deterministic() {
    check_cases("engine is deterministic", 12, |_, rng| {
        let shape = arb_shape(rng);
        let seed = rng.below(50);
        let trace = mimdraid::workload::SyntheticSpec::cello_base().generate(seed, 150);
        let Ok(mut a) = ArraySim::new(EngineConfig::new(shape), trace.data_sectors) else {
            return;
        };
        let Ok(mut b) = ArraySim::new(EngineConfig::new(shape), trace.data_sectors) else {
            return;
        };
        let ra = a.run_trace(&trace);
        let rb = b.run_trace(&trace);
        assert_eq!(ra.completed, rb.completed);
        assert_eq!(ra.phys_requests, rb.phys_requests);
        assert_eq!(ra.sim_time, rb.sim_time);
        assert!((ra.mean_response_ms() - rb.mean_response_ms()).abs() < 1e-12);
    });
}

#[test]
fn rate_scaling_is_linear_in_time() {
    check_cases("rate scaling is linear in time", 20, |_, rng| {
        let scale = f64_in(rng, 1.0, 64.0);
        let seed = rng.below(20);
        let trace = mimdraid::workload::SyntheticSpec::tpcc().generate(seed, 300);
        let scaled = trace.scaled(scale);
        assert_eq!(trace.len(), scaled.len());
        let d0 = trace.duration().as_secs_f64();
        let d1 = scaled.duration().as_secs_f64();
        assert!(
            (d0 / d1 / scale - 1.0).abs() < 0.01,
            "{d0} vs {d1} at {scale}"
        );
    });
}
