//! Degraded-mode behaviour under injected disk failures (§2.5's
//! reliability trade-off, made executable).

use mimdraid::core::{ArraySim, EngineConfig, Shape, WriteMode};
use mimdraid::sim::SimTime;
use mimdraid::workload::SyntheticSpec;

fn trace() -> mimdraid::workload::Trace {
    SyntheticSpec::cello_base().generate(31, 2_000)
}

#[test]
fn mirrored_arrays_survive_a_disk_failure() {
    let t = trace();
    for shape in [Shape::raid10(6).expect("even"), Shape::mirror(3)] {
        let mut sim = ArraySim::new(EngineConfig::new(shape), t.data_sectors).expect("fits");
        // Fail one disk a tenth of the way in.
        let at = t.requests()[t.len() / 10].arrival;
        sim.schedule_disk_failure(at, 0);
        let r = sim.run_trace(&t);
        assert_eq!(r.completed, t.len() as u64, "shape {shape}");
        assert_eq!(r.failed_requests, 0, "shape {shape} lost requests");
        assert!(sim.disk_is_dead(0));
    }
}

#[test]
fn sr_array_loses_data_on_failure() {
    // Dr replicas share a spindle: an SR-Array is explicitly *not*
    // fault-tolerant (§2.5).
    let t = trace();
    let mut sim = ArraySim::new(
        EngineConfig::new(Shape::sr_array(2, 3).expect("valid")),
        t.data_sectors,
    )
    .expect("fits");
    sim.schedule_disk_failure(t.requests()[10].arrival, 0);
    let r = sim.run_trace(&t);
    assert_eq!(r.completed, t.len() as u64);
    assert!(
        r.failed_requests > 0,
        "a 2x3x1 SR-Array cannot survive a disk loss"
    );
    // Roughly a sixth of accesses land on the dead disk.
    let frac = r.failed_requests as f64 / r.completed as f64;
    assert!(frac > 0.05 && frac < 0.35, "failed fraction {frac}");
}

#[test]
fn sr_mirror_combines_replication_with_survival() {
    let t = trace();
    let mut sim = ArraySim::new(
        EngineConfig::new(Shape::new(1, 3, 2).expect("valid")),
        t.data_sectors,
    )
    .expect("fits");
    sim.schedule_disk_failure(SimTime::from_secs(60), 1);
    let r = sim.run_trace(&t);
    assert_eq!(r.failed_requests, 0);
    assert_eq!(r.completed, t.len() as u64);
}

#[test]
fn degraded_mirror_is_slower_but_correct() {
    let t = trace().scaled(100.0);
    let run = |fail: bool| {
        let mut sim =
            ArraySim::new(EngineConfig::new(Shape::mirror(2)), t.data_sectors).expect("fits");
        if fail {
            sim.schedule_disk_failure(SimTime::ZERO, 1);
        }
        sim.run_trace(&t)
    };
    let healthy = run(false);
    let degraded = run(true);
    assert_eq!(degraded.failed_requests, 0);
    assert!(
        degraded.mean_response_ms() > healthy.mean_response_ms(),
        "degraded {} vs healthy {}",
        degraded.mean_response_ms(),
        healthy.mean_response_ms()
    );
}

#[test]
fn foreground_writes_survive_mirror_failure_mid_run() {
    let t = trace();
    let mut sim = ArraySim::new(
        EngineConfig::new(Shape::raid10(4).expect("even")).with_write_mode(WriteMode::Foreground),
        t.data_sectors,
    )
    .expect("fits");
    sim.schedule_disk_failure(t.requests()[t.len() / 2].arrival, 2);
    let r = sim.run_trace(&t);
    assert_eq!(r.completed, t.len() as u64);
    assert_eq!(r.failed_requests, 0);
}

#[test]
fn double_failure_of_a_mirror_pair_loses_data() {
    let t = trace();
    let mut sim = ArraySim::new(
        EngineConfig::new(Shape::raid10(4).expect("even")),
        t.data_sectors,
    )
    .expect("fits");
    // Disks 0 and 1 are the two mirrors of column 0 (layout: adjacent).
    sim.schedule_disk_failure(t.requests()[5].arrival, 0);
    sim.schedule_disk_failure(t.requests()[6].arrival, 1);
    let r = sim.run_trace(&t);
    assert_eq!(r.completed, t.len() as u64);
    assert!(r.failed_requests > 0, "losing both mirrors must lose data");
}

#[test]
fn failure_after_completion_changes_nothing() {
    let t = trace();
    let run = |fail: bool| {
        let mut sim = ArraySim::new(
            EngineConfig::new(Shape::raid10(4).expect("even")),
            t.data_sectors,
        )
        .expect("fits");
        if fail {
            sim.schedule_disk_failure(SimTime::from_secs(1_000_000_000), 0);
        }
        sim.run_trace(&t)
    };
    let a = run(false);
    let b = run(true);
    assert_eq!(a.completed, b.completed);
    assert!((a.mean_response_ms() - b.mean_response_ms()).abs() < 1e-12);
}

#[test]
fn closed_loop_survives_total_failure_without_recursion() {
    // Regression: with every disk dead, each replacement request fails
    // instantly; completion must flow through the event queue, not the
    // call stack.
    use mimdraid::workload::IometerSpec;
    let mut sim = ArraySim::new(EngineConfig::new(Shape::mirror(2)), 8_000_000).expect("fits");
    sim.schedule_disk_failure(SimTime::ZERO, 0);
    sim.schedule_disk_failure(SimTime::ZERO, 1);
    let spec = IometerSpec::random_read_512(8_000_000);
    let r = sim.run_closed_loop(&spec, 4, 30_000);
    assert_eq!(r.completed, 30_000);
    assert_eq!(r.failed_requests, 30_000);
}
