//! The Section 2 analytical models against the simulator: the paper's
//! validation claims as assertions.

use mimdraid::core::models::{
    array_throughput, best_read_latency, components, predict_throughput_iops,
    recommend_throughput_shape, rw_latency, DiskCharacter,
};
use mimdraid::core::{ArraySim, EngineConfig, Policy, Shape};
use mimdraid::disk::{DiskParams, TimingPath};
use mimdraid::workload::IometerSpec;

const DATA: u64 = 16_400_000;

fn character() -> DiskCharacter {
    let p = DiskParams::st39133lwv();
    DiskCharacter::from_params(&p).with_transfer(8, &p)
}

fn measure_throughput(shape: Shape, policy: Policy, q: usize) -> f64 {
    let spec = IometerSpec::microbench(DATA, 1.0);
    let mut sim = ArraySim::new(
        EngineConfig::new(shape)
            .with_policy(policy)
            .with_perfect_knowledge(),
        DATA,
    )
    .expect("fits");
    sim.run_closed_loop(&spec, q, 5_000).throughput_iops()
}

#[test]
fn equation_2_matches_measured_rotational_delay() {
    // Random single-sector reads on a 1xDr array: mean rotational delay
    // should be R/(2 Dr) within a few percent.
    for dr in [1u32, 2, 3, 6] {
        let spec = IometerSpec {
            read_frac: 1.0,
            sectors: 1,
            data_sectors: DATA / dr as u64,
            seek_locality: 1.0,
            access: mimdraid::workload::iometer::Access::Random,
        };
        let mut sim = ArraySim::new(
            EngineConfig::new(Shape::sr_array(1, dr).expect("valid")).with_perfect_knowledge(),
            DATA / dr as u64,
        )
        .expect("fits");
        let r = sim.run_closed_loop(&spec, 1, 4_000);
        let expect = components::rot_read_even(6.0, dr);
        let got = r.rotation_ms.mean();
        assert!(
            (got - expect).abs() < 0.12,
            "dr={dr}: rot {got} vs model {expect}"
        );
    }
}

#[test]
fn equation_16_tracks_queue_dependence() {
    // Equation (16)'s (1 - (1 - 1/D)^Q) load-balance discount is isolated
    // under FCFS, whose per-request service time does not depend on queue
    // depth (position-aware policies serve cheaper at deeper queues, which
    // Equation (12) models separately).
    let shape = Shape::sr_array(3, 2).expect("valid");
    let d = 6;
    let t64 = measure_throughput(shape, Policy::Fcfs, 64);
    // Infer N1 from the deep-queue measurement where all disks stay busy.
    let n1 = t64 / d as f64;
    for q in [2usize, 6, 12] {
        let measured = measure_throughput(shape, Policy::Fcfs, q);
        let predicted = array_throughput(d as u32, q as f64, n1);
        let err = (measured - predicted).abs() / measured;
        assert!(
            err < 0.15,
            "q={q}: measured {measured:.0} vs predicted {predicted:.0}"
        );
    }
}

#[test]
fn full_throughput_model_is_in_the_ballpark() {
    let c = character().with_locality(3.0);
    for (ds, dr, q) in [(3u32, 2u32, 8f64), (2, 3, 32.0), (6, 1, 16.0)] {
        let shape = Shape::sr_array(ds, dr).expect("valid");
        let policy = if dr > 1 { Policy::Rlook } else { Policy::Look };
        let measured = measure_throughput(shape, policy, q as usize);
        let predicted = predict_throughput_iops(&c, ds, dr, 1.0, q);
        let ratio = predicted / measured;
        assert!(
            (0.6..1.6).contains(&ratio),
            "{ds}x{dr} q={q}: predicted {predicted:.0} vs measured {measured:.0}"
        );
    }
}

#[test]
fn sqrt_d_improvement_holds_for_positioning() {
    // Overhead-independent latency should fall roughly as sqrt(D) when the
    // model picks shapes (§2.6's rule of thumb), measured via positioning
    // time (seek + rotation) on random reads.
    let c = character();
    let mut prev_positioning = f64::INFINITY;
    let mut first: Option<f64> = None;
    for d in [1u32, 4, 16] {
        let shape = mimdraid::core::models::recommend_latency_shape(&c, d, 1.0);
        let spec = IometerSpec::microbench(DATA, 1.0);
        let mut sim =
            ArraySim::new(EngineConfig::new(shape).with_perfect_knowledge(), DATA).expect("fits");
        let r = sim.run_closed_loop(&spec, 1, 3_000);
        let positioning = r.seek_ms.mean() + r.rotation_ms.mean();
        assert!(positioning < prev_positioning, "D={d}");
        prev_positioning = positioning;
        if let Some(p1) = first {
            let gain = p1 / positioning;
            let ideal = (d as f64).sqrt();
            // Mechanical floors (head switches, sub-linear seeks) keep the
            // gain under the ideal, but it must track the trend.
            assert!(
                gain > ideal * 0.35 && gain < ideal * 1.5,
                "D={d}: gain {gain:.2} vs sqrt(D) {ideal:.2} (model {:.2})",
                best_read_latency(&c, 1) / best_read_latency(&c, d)
            );
        } else {
            first = Some(positioning);
        }
    }
}

#[test]
fn p_below_half_makes_striping_best_in_model_and_simulation() {
    let c = character().with_locality(3.0);
    // Model side: Equation (9) ranks dr=1 best for p < 0.5.
    let lat_stripe = rw_latency(&c, 6, 1, 0.3);
    let lat_sr = rw_latency(&c, 3, 2, 0.3);
    assert!(lat_stripe < lat_sr);
    // Simulation side: at 70% foreground writes, the 6x1 stripe out-runs
    // the 3x2 SR-Array.
    let spec = IometerSpec::microbench(DATA, 0.3);
    let run = |shape: Shape| {
        let mut sim = ArraySim::new(
            EngineConfig::new(shape)
                .with_write_mode(mimdraid::core::WriteMode::Foreground)
                .with_perfect_knowledge(),
            DATA,
        )
        .expect("fits");
        sim.run_closed_loop(&spec, 8, 4_000).throughput_iops()
    };
    let stripe = run(Shape::striping(6));
    let sr = run(Shape::sr_array(3, 2).expect("valid"));
    assert!(stripe > sr, "stripe {stripe} vs SR {sr} at 70% writes");
}

#[test]
fn throughput_recommendation_beats_naive_shapes_under_load() {
    let c = character().with_locality(3.0);
    let d = 12;
    let q_total = 48.0;
    let recommended = recommend_throughput_shape(&c, d, 1.0, q_total / d as f64);
    assert!(recommended.dr > 1, "deep queues should buy replicas");
    let rec = measure_throughput(recommended, Policy::Rsatf, q_total as usize);
    let stripe = measure_throughput(Shape::striping(d), Policy::Rsatf, q_total as usize);
    assert!(rec > stripe, "recommended {rec} vs stripe {stripe}");
}

#[test]
fn detailed_and_analytic_paths_agree_like_figure_5() {
    let spec = IometerSpec::random_read_512(DATA);
    let run = |timing: TimingPath| {
        let mut cfg =
            EngineConfig::new(Shape::sr_array(2, 3).expect("valid")).with_perfect_knowledge();
        cfg.timing = timing;
        let mut sim = ArraySim::new(cfg, DATA).expect("fits");
        sim.run_closed_loop(&spec, 16, 5_000).throughput_iops()
    };
    let detailed = run(TimingPath::Detailed);
    let analytic = run(TimingPath::Analytic);
    let gap = (detailed - analytic).abs() / detailed;
    assert!(gap < 0.03, "gap {:.1}%", gap * 100.0);
}
