//! End-to-end tests of the `mimdraid` command-line tool.

use std::process::Command;

fn mimdraid() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mimdraid"))
}

#[test]
fn recommend_prints_the_cello_shape() {
    let out = mimdraid()
        .args(["recommend", "--disks", "6", "--locality", "4.14"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("2x3x1"), "{text}");
}

#[test]
fn generate_stats_simulate_round_trip() {
    let dir = std::env::temp_dir().join("mimdraid-cli-test");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("t.trace");
    let path_s = path.to_str().expect("utf-8 path");

    let out = mimdraid()
        .args([
            "generate",
            "--workload",
            "tpcc",
            "--requests",
            "500",
            "--out",
            path_s,
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = mimdraid()
        .args(["stats", "--trace", path_s])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("I/Os"), "{text}");

    let out = mimdraid()
        .args(["simulate", "--shape", "2x3x1", "--trace", path_s])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("mean response"), "{text}");
    assert!(text.contains("500 requests"), "{text}");
}

#[test]
fn simulate_from_named_workload() {
    let out = mimdraid()
        .args([
            "simulate",
            "--shape",
            "3x1x2",
            "--workload",
            "cello-base",
            "--requests",
            "300",
            "--policy",
            "satf",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn bad_usage_fails_cleanly() {
    for args in [
        vec!["simulate", "--shape", "nonsense", "--workload", "tpcc"],
        vec!["simulate", "--shape", "2x3x1"],
        vec!["recommend"],
        vec!["generate", "--workload", "unknown", "--out", "/tmp/x"],
        vec!["frobnicate"],
    ] {
        let out = mimdraid().args(&args).output().expect("binary runs");
        assert!(!out.status.success(), "accepted {args:?}");
        assert!(!out.stderr.is_empty(), "silent failure for {args:?}");
    }
}
