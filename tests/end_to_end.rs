//! End-to-end integration: trace generation → model-driven configuration →
//! array simulation, across crates.

use mimdraid::core::models::{recommend_latency_shape, DiskCharacter};
use mimdraid::core::{ArraySim, EngineConfig, Policy, Shape, WriteMode};
use mimdraid::disk::DiskParams;
use mimdraid::workload::{IometerSpec, SyntheticSpec, TraceStats};

fn character_for(locality: f64) -> DiskCharacter {
    DiskCharacter::from_params(&DiskParams::st39133lwv()).with_locality(locality)
}

#[test]
fn model_configures_the_winning_array_on_cello() {
    let trace = SyntheticSpec::cello_base().generate(21, 4_000);
    let stats = TraceStats::of(&trace);
    let shape = recommend_latency_shape(&character_for(stats.seek_locality), 6, 1.0);
    assert_eq!((shape.ds, shape.dr, shape.dm), (2, 3, 1));

    let run = |s: Shape| {
        let mut sim = ArraySim::new(EngineConfig::new(s), trace.data_sectors).expect("fits");
        sim.run_trace(&trace).mean_response_ms()
    };
    let sr = run(shape);
    let stripe = run(Shape::striping(6));
    let raid10 = run(Shape::raid10(6).expect("even"));
    assert!(sr < raid10, "SR {sr} vs RAID-10 {raid10}");
    assert!(raid10 < stripe, "RAID-10 {raid10} vs stripe {stripe}");
}

#[test]
fn every_trace_request_completes_once() {
    let trace = SyntheticSpec::tpcc().generate(22, 3_000);
    for shape in [
        Shape::striping(4),
        Shape::sr_array(2, 2).expect("valid"),
        Shape::raid10(4).expect("even"),
        Shape::mirror(3),
    ] {
        let mut sim = ArraySim::new(EngineConfig::new(shape), trace.data_sectors).expect("fits");
        let r = sim.run_trace(&trace);
        assert_eq!(r.completed, 3_000, "shape {shape}");
        assert!(r.response_ms.count() > 0, "shape {shape}");
    }
}

#[test]
fn closed_loop_scales_with_disks_and_queue() {
    let data = 16_000_000;
    let spec = IometerSpec::microbench(data, 1.0);
    let run = |shape: Shape, q: usize| {
        let mut sim =
            ArraySim::new(EngineConfig::new(shape).with_perfect_knowledge(), data).expect("fits");
        sim.run_closed_loop(&spec, q, 3_000).throughput_iops()
    };
    let small = run(Shape::sr_array(2, 2).expect("valid"), 8);
    let large = run(Shape::sr_array(4, 2).expect("valid"), 16);
    assert!(large > small * 1.3, "4-disk {small} vs 8-disk {large}");
}

#[test]
fn background_writes_hide_propagation_latency() {
    let trace = SyntheticSpec::tpcc().generate(23, 2_000);
    let shape = Shape::sr_array(3, 2).expect("valid");
    let run = |mode: WriteMode| {
        let mut sim = ArraySim::new(
            EngineConfig::new(shape).with_write_mode(mode),
            trace.data_sectors,
        )
        .expect("fits");
        sim.run_trace(&trace)
    };
    let fg = run(WriteMode::Foreground);
    let bg = run(WriteMode::Background);
    assert!(
        bg.write_ms.mean() < fg.write_ms.mean(),
        "bg {} vs fg {}",
        bg.write_ms.mean(),
        fg.write_ms.mean()
    );
    assert!(bg.delayed_propagated > 0);
}

#[test]
fn replica_aware_scheduling_beats_primary_only_on_sr_arrays() {
    let data = 16_000_000;
    let spec = IometerSpec::microbench(data, 1.0);
    let shape = Shape::sr_array(2, 3).expect("valid");
    let run = |policy: Policy| {
        let mut sim = ArraySim::new(
            EngineConfig::new(shape)
                .with_policy(policy)
                .with_perfect_knowledge(),
            data,
        )
        .expect("fits");
        sim.run_closed_loop(&spec, 8, 4_000).throughput_iops()
    };
    let rsatf = run(Policy::Rsatf);
    let satf = run(Policy::Satf);
    let rlook = run(Policy::Rlook);
    let look = run(Policy::Look);
    assert!(rsatf > satf, "RSATF {rsatf} vs SATF {satf}");
    assert!(rlook > look, "RLOOK {rlook} vs LOOK {look}");
}

#[test]
fn rate_scaling_drives_saturation() {
    let trace = SyntheticSpec::cello_base().generate(24, 3_000);
    let shape = Shape::sr_array(2, 3).expect("valid");
    let run = |scale: f64| {
        let t = trace.scaled(scale);
        let mut sim = ArraySim::new(EngineConfig::new(shape), t.data_sectors).expect("fits");
        sim.run_trace(&t).mean_response_ms()
    };
    let calm = run(1.0);
    let busy = run(200.0);
    assert!(busy > calm, "calm {calm} vs busy {busy}");
}

#[test]
fn infeasible_layouts_are_rejected_not_mislaid() {
    // Six-way rotational replication multiplies the footprint by six: more
    // than six disks' raw capacity of data cannot fit a 1x6 column.
    let r = ArraySim::new(
        EngineConfig::new(Shape::sr_array(1, 6).expect("valid")),
        18_000_000,
    );
    assert!(r.is_err());
    // And a single disk cannot hold more than itself.
    let r = ArraySim::new(EngineConfig::new(Shape::striping(1)), 18_000_000);
    assert!(r.is_err());
}

#[test]
fn trace_stats_survive_the_pipeline() {
    // Scaling a trace preserves everything except rates and duration.
    let trace = SyntheticSpec::cello_disk6().generate(25, 5_000);
    let s1 = TraceStats::of(&trace);
    let s2 = TraceStats::of(&trace.scaled(2.0));
    assert_eq!(s1.ios, s2.ios);
    assert!((s1.read_frac - s2.read_frac).abs() < 1e-12);
    assert!((s2.avg_rate / s1.avg_rate - 2.0).abs() < 0.01);
    assert!((s1.seek_locality - s2.seek_locality).abs() < 1e-9);
}
