//! Shared plumbing for the paper-reproduction binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see `DESIGN.md` for the index). This library holds what they
//! share: canonical workload construction, run helpers, and plain-text
//! series printing so the output reads like the paper's figures.

use std::sync::Arc;

use mimd_core::models::DiskCharacter;
use mimd_core::{ArraySim, EngineConfig, RunReport, Shape};
use mimd_disk::DiskParams;
use mimd_workload::{IometerSpec, SyntheticSpec, Trace};

pub use mimd_harness::Json;

/// Canonical request counts, sized so every binary finishes in seconds
/// while staying deep in steady state.
pub mod sizes {
    /// Requests per open-loop trace replay.
    pub const TRACE_REQUESTS: usize = 20_000;
    /// Completions per closed-loop measurement.
    pub const CLOSED_LOOP_COMPLETIONS: u64 = 10_000;
}

/// The three paper workloads at canonical sizes (deterministic seeds).
///
/// The traces come from the process-wide shared registry
/// ([`mimd_harness::shared_trace`]): every `generate()` call in a binary
/// returns the same `Arc`-shared storage, so each stream is generated at
/// most once per process no matter how many figures ask for it.
pub struct Workloads {
    /// Cello minus the news disk.
    pub cello_base: Arc<Trace>,
    /// The news disk.
    pub cello_disk6: Arc<Trace>,
    /// The TPC-C disk trace.
    pub tpcc: Arc<Trace>,
}

impl Workloads {
    /// The three shared traces (generated on first use per process).
    pub fn generate() -> Workloads {
        Workloads {
            cello_base: shared_trace(&SyntheticSpec::cello_base(), 101, sizes::TRACE_REQUESTS),
            cello_disk6: shared_trace(&SyntheticSpec::cello_disk6(), 102, sizes::TRACE_REQUESTS),
            tpcc: shared_trace(&SyntheticSpec::tpcc(), 103, sizes::TRACE_REQUESTS),
        }
    }
}

pub use mimd_harness::{shared_arena, shared_trace};

/// The model-facing characteristics of the experiment drive.
pub fn drive_character() -> DiskCharacter {
    DiskCharacter::from_params(&DiskParams::st39133lwv())
}

/// Drive characteristics with a 4 KiB transfer folded into `To` (the
/// micro-benchmark request size).
pub fn drive_character_4k() -> DiskCharacter {
    let p = DiskParams::st39133lwv();
    DiskCharacter::from_params(&p).with_transfer(8, &p)
}

/// The worker count one engine may use for its internal shard
/// parallelism: `MIMD_SHARDS` (default 1 — experiments parallelise across
/// grid cells, not inside them), clamped to the harness's
/// [`mimd_harness::shard_budget`] so `cells × shards` never oversubscribes
/// the machine. Results are byte-identical at any value; this only sets
/// wall-clock concurrency.
pub fn engine_threads() -> usize {
    let want = std::env::var("MIMD_SHARDS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1);
    want.clamp(1, mimd_harness::shard_budget())
}

/// Runs a trace on a fresh array and returns the report.
///
/// # Panics
///
/// Panics if the layout is infeasible (the experiment chose a bad shape).
pub fn run_trace(cfg: EngineConfig, trace: &Trace) -> RunReport {
    let mut sim =
        ArraySim::new(cfg, trace.data_sectors).expect("experiment shape must fit the data set");
    sim.set_parallelism(engine_threads());
    sim.run_trace(trace)
}

/// One simulation a reproduction binary wants run: a fully-formed config
/// plus its workload. Binaries enumerate every job of an experiment up
/// front, fan them out with [`run_jobs`], and consume the reports in the
/// same order — so the printed tables are identical to a serial run.
pub enum Job<'a> {
    /// Open-loop replay of a trace.
    Trace {
        /// Engine configuration for this run.
        cfg: EngineConfig,
        /// The trace to replay (shared, not cloned per job).
        trace: &'a Trace,
    },
    /// Iometer-style closed loop.
    Closed {
        /// Engine configuration for this run.
        cfg: EngineConfig,
        /// Request generator; its `data_sectors` sizes the layout.
        spec: IometerSpec,
        /// Requests kept in flight.
        outstanding: usize,
        /// Completions to measure.
        completions: u64,
    },
}

impl<'a> Job<'a> {
    /// An open-loop trace-replay job.
    pub fn trace(cfg: EngineConfig, trace: &'a Trace) -> Job<'a> {
        Job::Trace { cfg, trace }
    }

    /// A closed-loop job; the layout is sized from `spec.data_sectors`.
    pub fn closed(
        cfg: EngineConfig,
        spec: IometerSpec,
        outstanding: usize,
        completions: u64,
    ) -> Job<'a> {
        Job::Closed {
            cfg,
            spec,
            outstanding,
            completions,
        }
    }

    fn run(&self) -> RunReport {
        match self {
            Job::Trace { cfg, trace } => run_trace(cfg.clone(), trace),
            Job::Closed {
                cfg,
                spec,
                outstanding,
                completions,
            } => {
                let mut sim = ArraySim::new(cfg.clone(), spec.data_sectors)
                    .expect("experiment shape must fit the data set");
                sim.set_parallelism(engine_threads());
                sim.run_closed_loop(spec, *outstanding, *completions)
            }
        }
    }

    /// The job's content address for the run cache: resolved config plus
    /// workload content (see [`mimd_harness::fp`]).
    fn fingerprint(&self) -> u64 {
        match self {
            Job::Trace { cfg, trace } => mimd_harness::fp::trace_job(cfg, trace),
            Job::Closed {
                cfg,
                spec,
                outstanding,
                completions,
            } => mimd_harness::fp::closed_job(cfg, spec, *outstanding, *completions),
        }
    }
}

/// Runs every job across the harness thread pool (`MIMD_THREADS` workers,
/// defaulting to the machine's parallelism) and returns the reports in job
/// order. Each job runs one single-threaded simulator; results are merged
/// back in order, so output does not depend on the worker count.
///
/// Jobs are memoized through the content-addressed run cache
/// ([`mimd_harness::RunCache`]): an unchanged job on unchanged code
/// decodes its stored report instead of simulating. The per-binary
/// hit/miss tally is printed once per call. `MIMD_NO_CACHE=1` forces
/// cold runs.
pub fn run_jobs(jobs: Vec<Job<'_>>) -> Vec<RunReport> {
    let cache = mimd_harness::RunCache::from_env();
    let reports = mimd_harness::parallel_map(jobs, |job| {
        cache.get_or_run(job.fingerprint(), || job.run())
    });
    cache.report_summary(&binary_name());
    reports
}

/// The running binary's file stem, for cache-summary labels.
fn binary_name() -> String {
    std::env::args()
        .next()
        .as_deref()
        .map(std::path::Path::new)
        .and_then(|p| p.file_stem()?.to_str().map(str::to_owned))
        .unwrap_or_else(|| "bench".to_string())
}

/// Accumulates one experiment's machine-readable record and writes it to
/// `MIMD_JSON_DIR` (default `target/experiments/`) as `<name>.json`.
///
/// Rows pair the experiment's own labels (the table's axes) with the full
/// [`report_json`](mimd_harness::report_json) metrics of one run, so a
/// plot or regression check can consume any figure without parsing tables.
pub struct ExperimentLog {
    name: String,
    rows: Vec<Json>,
}

impl ExperimentLog {
    /// Starts an empty log named after the experiment (the JSON file stem).
    pub fn new(name: &str) -> ExperimentLog {
        ExperimentLog {
            name: name.to_string(),
            rows: Vec::new(),
        }
    }

    /// Appends one measured row: axis labels plus the run's metrics.
    pub fn push(&mut self, labels: Vec<(&str, Json)>, report: &mut RunReport) {
        let mut row = Json::object([] as [(&str, Json); 0]);
        for (k, v) in labels {
            row.push_field(k, v);
        }
        row.push_field("metrics", mimd_harness::report_json(report));
        self.rows.push(row);
    }

    /// Appends a label-only row (derived statistics, model values, ...).
    pub fn note(&mut self, labels: Vec<(&str, Json)>) {
        let mut row = Json::object([] as [(&str, Json); 0]);
        for (k, v) in labels {
            row.push_field(k, v);
        }
        self.rows.push(row);
    }

    /// Writes `<name>.json` and prints where it landed.
    pub fn write(self) {
        let doc = Json::object([
            ("experiment", Json::from(self.name.as_str())),
            ("rows", Json::Arr(self.rows)),
        ]);
        match mimd_harness::write_json(&self.name, &doc) {
            Ok(path) => println!("\n[json] {}", path.display()),
            Err(e) => eprintln!("failed to write {}.json: {e}", self.name),
        }
    }
}

/// Pretty-prints one experiment table: a header and aligned rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: Vec<String>| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(header.iter().map(|s| s.to_string()).collect())
    );
    for row in rows {
        println!("{}", fmt_row(row.clone()));
    }
}

/// Formats a shape plus its conventional family name, e.g. `2x3x1 (SR-Array)`.
pub fn shape_label(shape: Shape) -> String {
    format!("{shape} ({})", shape.kind())
}

/// Formats milliseconds to two decimals.
pub fn ms(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a dimensionless ratio to two decimals with an `x` suffix.
pub fn ratio(a: f64, b: f64) -> String {
    if b == 0.0 {
        "-".to_string()
    } else {
        format!("{:.2}x", a / b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_generate_canonical_sizes() {
        let w = Workloads::generate();
        assert_eq!(w.cello_base.len(), sizes::TRACE_REQUESTS);
        assert_eq!(w.tpcc.len(), sizes::TRACE_REQUESTS);
        assert_eq!(w.cello_disk6.len(), sizes::TRACE_REQUESTS);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ms(1.234), "1.23");
        assert_eq!(ratio(3.0, 2.0), "1.50x");
        assert_eq!(ratio(1.0, 0.0), "-");
        assert!(shape_label(Shape::striping(6)).contains("striping"));
    }

    #[test]
    fn run_trace_smoke() {
        let trace = SyntheticSpec::cello_base().generate(1, 100);
        let r = run_trace(EngineConfig::new(Shape::striping(2)), &trace);
        assert_eq!(r.completed, 100);
    }
}
