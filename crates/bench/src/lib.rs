//! Shared plumbing for the paper-reproduction binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see `DESIGN.md` for the index). This library holds what they
//! share: canonical workload construction, run helpers, and plain-text
//! series printing so the output reads like the paper's figures.

use mimd_core::models::DiskCharacter;
use mimd_core::{ArraySim, EngineConfig, RunReport, Shape};
use mimd_disk::DiskParams;
use mimd_workload::{SyntheticSpec, Trace};

/// Canonical request counts, sized so every binary finishes in seconds
/// while staying deep in steady state.
pub mod sizes {
    /// Requests per open-loop trace replay.
    pub const TRACE_REQUESTS: usize = 20_000;
    /// Completions per closed-loop measurement.
    pub const CLOSED_LOOP_COMPLETIONS: u64 = 10_000;
}

/// The three paper workloads at canonical sizes (deterministic seeds).
pub struct Workloads {
    /// Cello minus the news disk.
    pub cello_base: Trace,
    /// The news disk.
    pub cello_disk6: Trace,
    /// The TPC-C disk trace.
    pub tpcc: Trace,
}

impl Workloads {
    /// Generates all three traces.
    pub fn generate() -> Workloads {
        Workloads {
            cello_base: SyntheticSpec::cello_base().generate(101, sizes::TRACE_REQUESTS),
            cello_disk6: SyntheticSpec::cello_disk6().generate(102, sizes::TRACE_REQUESTS),
            tpcc: SyntheticSpec::tpcc().generate(103, sizes::TRACE_REQUESTS),
        }
    }
}

/// The model-facing characteristics of the experiment drive.
pub fn drive_character() -> DiskCharacter {
    DiskCharacter::from_params(&DiskParams::st39133lwv())
}

/// Drive characteristics with a 4 KiB transfer folded into `To` (the
/// micro-benchmark request size).
pub fn drive_character_4k() -> DiskCharacter {
    let p = DiskParams::st39133lwv();
    DiskCharacter::from_params(&p).with_transfer(8, &p)
}

/// Runs a trace on a fresh array and returns the report.
///
/// # Panics
///
/// Panics if the layout is infeasible (the experiment chose a bad shape).
pub fn run_trace(cfg: EngineConfig, trace: &Trace) -> RunReport {
    let mut sim =
        ArraySim::new(cfg, trace.data_sectors).expect("experiment shape must fit the data set");
    sim.run_trace(trace)
}

/// Pretty-prints one experiment table: a header and aligned rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: Vec<String>| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(header.iter().map(|s| s.to_string()).collect())
    );
    for row in rows {
        println!("{}", fmt_row(row.clone()));
    }
}

/// Formats a shape plus its conventional family name, e.g. `2x3x1 (SR-Array)`.
pub fn shape_label(shape: Shape) -> String {
    format!("{shape} ({})", shape.kind())
}

/// Formats milliseconds to two decimals.
pub fn ms(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a dimensionless ratio to two decimals with an `x` suffix.
pub fn ratio(a: f64, b: f64) -> String {
    if b == 0.0 {
        "-".to_string()
    } else {
        format!("{:.2}x", a / b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_generate_canonical_sizes() {
        let w = Workloads::generate();
        assert_eq!(w.cello_base.len(), sizes::TRACE_REQUESTS);
        assert_eq!(w.tpcc.len(), sizes::TRACE_REQUESTS);
        assert_eq!(w.cello_disk6.len(), sizes::TRACE_REQUESTS);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ms(1.234), "1.23");
        assert_eq!(ratio(3.0, 2.0), "1.50x");
        assert_eq!(ratio(1.0, 0.0), "-");
        assert!(shape_label(Shape::striping(6)).contains("striping"));
    }

    #[test]
    fn run_trace_smoke() {
        let trace = SyntheticSpec::cello_base().generate(1, 100);
        let r = run_trace(EngineConfig::new(Shape::striping(2)), &trace);
        assert_eq!(r.completed, 100);
    }
}
