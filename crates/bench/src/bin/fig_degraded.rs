//! Degraded-mode response time under injected faults (not a paper
//! figure — the robustness companion to Figure 6).
//!
//! Two parts:
//!
//! 1. **Scenario sweep** — Cello base replayed on SR-mirror shapes
//!    (`1 × Dr × 2`) as `Dr` grows, under a panel of fault scenarios:
//!    healthy baseline, a fail-stop with timeout/retry recovery, a 4×
//!    fail-slow window (with and without read redirection), and a
//!    transient media-error rate with a retry budget. Extra rotational
//!    replicas are what degraded mode feeds on: every retry and every
//!    redirect needs an alternate copy to land on.
//! 2. **Hot-spare demo** — one disk of a `1x2x2` array fails mid-run
//!    with a spare configured; the run report's healthy / degraded /
//!    rebuilding response-time windows show service degrading at the
//!    failure and recovering once the rebuild completes.
//!
//! `MIMD_BENCH_QUICK=1` shrinks both parts for CI smoke runs.

use mimd_bench::{ms, print_table, run_jobs, shared_trace, ExperimentLog, Job, Json};
use mimd_core::{EngineConfig, FaultPlan, RunReport, Shape};
use mimd_sim::{SimDuration, SimTime};
use mimd_workload::SyntheticSpec;

fn quick() -> bool {
    std::env::var("MIMD_BENCH_QUICK").is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"))
}

/// The sweep's fault scenarios, parameterized by the trace's span so the
/// fault lands mid-run at any trace length.
fn scenarios(span: SimDuration) -> Vec<(&'static str, FaultPlan)> {
    let at = SimTime::ZERO + span.mul_f64(0.3);
    let until = SimTime::ZERO + span.mul_f64(0.6);
    let retry = |p: FaultPlan| {
        p.retry(
            SimDuration::from_millis(50),
            3,
            SimDuration::from_millis(400),
        )
    };
    vec![
        ("healthy", FaultPlan::new()),
        ("fail-stop", retry(FaultPlan::new().fail_stop(0, at))),
        (
            "fail-slow 4x",
            FaultPlan::new().fail_slow(0, at, until, 4.0),
        ),
        (
            "fail-slow+redir",
            FaultPlan::new()
                .fail_slow(0, at, until, 4.0)
                .redirect_slow_reads(),
        ),
        (
            "media 1e-3",
            retry(FaultPlan::new().media_errors(1e-3, 1e-3)),
        ),
    ]
}

fn window_row(name: &str, s: &mut mimd_sim::SampleSet) -> Vec<String> {
    let p =
        |s: &mut mimd_sim::SampleSet, q: f64| s.percentile(q).map(ms).unwrap_or_else(|| "-".into());
    vec![
        name.to_string(),
        s.len().to_string(),
        if s.is_empty() {
            "-".into()
        } else {
            ms(s.mean())
        },
        p(s, 0.95),
        p(s, 0.99),
    ]
}

fn main() {
    let quick = quick();
    let n = if quick { 2_000 } else { 20_000 };
    let trace = shared_trace(&SyntheticSpec::cello_base(), 101, n);
    let span = trace
        .requests()
        .last()
        .map(|r| r.arrival - SimTime::ZERO)
        .unwrap_or(SimDuration::ZERO);
    let drs: &[u32] = if quick { &[1, 2] } else { &[1, 2, 3] };
    let panel = scenarios(span);

    // Part 1: enumerate the whole sweep up front and fan it out.
    let mut jobs = Vec::new();
    for &dr in drs {
        let shape = Shape::new(1, dr, 2).expect("1xDrx2 is valid");
        for (_, plan) in &panel {
            jobs.push(Job::trace(
                EngineConfig::new(shape).with_faults(plan.clone()),
                &trace,
            ));
        }
    }

    // Part 2: the hot-spare demo rides the same fan-out. Small data set
    // and a faster arrival rate so the throttled rebuild finishes well
    // inside the run even in quick mode.
    let mut demo_spec = SyntheticSpec::cello_base();
    demo_spec.name = "Cello base (small)";
    demo_spec.data_sectors = if quick { 400_000 } else { 1_200_000 };
    demo_spec.rate_per_sec = 20.0;
    let demo_trace = demo_spec.generate(41, if quick { 2_500 } else { 8_000 });
    let demo_shape = Shape::new(1, 2, 2).expect("valid");
    let fail_at = SimTime::from_secs(if quick { 30 } else { 60 });
    let demo_plan = FaultPlan::new()
        .fail_stop_with_spare(1, fail_at)
        .rebuild(SimDuration::from_secs(1), 2048);
    jobs.push(Job::trace(
        EngineConfig::new(demo_shape).with_faults(demo_plan),
        &demo_trace,
    ));

    let mut reports = run_jobs(jobs).into_iter();
    let mut log = ExperimentLog::new("fig_degraded");

    for &dr in drs {
        let shape = Shape::new(1, dr, 2).expect("valid");
        let mut rows = Vec::new();
        for (name, _) in &panel {
            let mut r: RunReport = reports.next().expect("job order");
            let f = &r.faults;
            let counters = format!(
                "{}/{}/{}/{}",
                f.retries, f.redirects, f.timeouts, f.unrecoverable
            );
            let row = vec![
                name.to_string(),
                ms(r.mean_response_ms()),
                r.response_percentile_ms(0.95)
                    .map(ms)
                    .unwrap_or_else(|| "-".into()),
                r.failed_requests.to_string(),
                counters,
            ];
            log.push(
                vec![
                    ("part", Json::from("sweep")),
                    ("dr", Json::from(dr)),
                    ("shape", Json::from(shape.to_string())),
                    ("scenario", Json::from(*name)),
                ],
                &mut r,
            );
            rows.push(row);
        }
        print_table(
            &format!("Degraded-mode sweep — {shape}: Cello base, {n} requests"),
            &[
                "scenario",
                "mean ms",
                "p95 ms",
                "failed",
                "retry/redir/tmo/unrec",
            ],
            &rows,
        );
    }

    // Part 2 report: the windowed percentiles are the demo's point —
    // latency degrades when the disk dies and recovers post-rebuild.
    let mut demo = reports.next().expect("demo job");
    let f = &mut demo.faults;
    let rows = vec![
        window_row("healthy", &mut f.healthy_ms),
        window_row("degraded", &mut f.degraded_ms),
        window_row("rebuilding", &mut f.rebuilding_ms),
    ];
    print_table(
        &format!(
            "Hot-spare demo — {demo_shape}: disk 1 fails at {:.0}s, rebuild {} chunks in {:.1}s",
            fail_at.as_secs_f64(),
            f.rebuild_chunks,
            f.rebuild_duration.as_secs_f64(),
        ),
        &["window", "completed", "mean ms", "p95 ms", "p99 ms"],
        &rows,
    );
    if f.rebuilds_completed == 0 {
        println!("  (rebuild did not finish inside the run)");
    }
    log.push(
        vec![
            ("part", Json::from("hot_spare_demo")),
            ("shape", Json::from(demo_shape.to_string())),
            ("fail_at_s", Json::from(fail_at.as_secs_f64())),
        ],
        &mut demo,
    );
    log.write();
}
