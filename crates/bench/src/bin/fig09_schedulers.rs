//! Figure 9: local disk schedulers under rising I/O rates.
//!
//! LOOK vs SATF on a striped array and RLOOK vs RSATF on an SR-Array, for
//! Cello base on six disks and TPC-C on thirty-six. The paper's claims:
//! the RLOOK↔RSATF gap is smaller than the LOOK↔SATF gap (both already
//! address rotational delay), and a mis-configured array is not rescued by
//! a smarter scheduler — a 2×3×1 SR-Array under RLOOK still beats a 6×1×1
//! stripe under SATF.

use mimd_bench::{ms, print_table, run_jobs, ExperimentLog, Job, Json, Workloads};
use mimd_core::{EngineConfig, Policy, Shape};
use mimd_workload::Trace;

struct Panel {
    name: &'static str,
    sr: Shape,
    stripe: Shape,
    rates: &'static [f64],
}

fn main() {
    let w = Workloads::generate();
    // Scale factors are chosen to push the arrays from light load into the
    // queueing regime where scheduler quality separates: Cello's original
    // 2.84 IO/s leaves six modern disks ~99% idle, so the interesting
    // region sits at two orders of magnitude acceleration.
    let panels = [
        Panel {
            name: "Cello base, 6 disks",
            sr: Shape::sr_array(2, 3).unwrap(),
            stripe: Shape::striping(6),
            rates: &[1.0, 50.0, 100.0, 150.0, 200.0, 250.0],
        },
        Panel {
            name: "TPC-C, 36 disks",
            sr: Shape::sr_array(9, 4).unwrap(),
            stripe: Shape::striping(36),
            rates: &[1.0, 2.0, 4.0, 6.0, 8.0, 10.0],
        },
    ];
    let traces = [&w.cello_base, &w.tpcc];

    // Materialise every scaled trace once, then enumerate the four policy
    // runs per rate; the "scheduling cannot rescue a bad shape" comparison
    // reuses the rate sweep's runs (the simulator is deterministic).
    let scaled: Vec<Vec<Trace>> = panels
        .iter()
        .zip(traces)
        .map(|(p, t)| p.rates.iter().map(|&r| t.scaled(r)).collect())
        .collect();
    let mut jobs = Vec::new();
    for (p, traces) in panels.iter().zip(&scaled) {
        for t in traces {
            for (shape, policy) in [
                (p.stripe, Policy::Look),
                (p.stripe, Policy::Satf),
                (p.sr, Policy::Rlook),
                (p.sr, Policy::Rsatf),
            ] {
                jobs.push(Job::trace(EngineConfig::new(shape).with_policy(policy), t));
            }
        }
    }
    let mut reports = run_jobs(jobs).into_iter();

    let mut log = ExperimentLog::new("fig09_schedulers");
    for p in &panels {
        let mut rows = Vec::new();
        // (RLOOK on SR, SATF on stripe) at the second swept rate.
        let (mut rescue_rlook, mut rescue_satf) = (f64::NAN, f64::NAN);
        for (ri, &rate) in p.rates.iter().enumerate() {
            let mut take = |policy: Policy, shape: Shape| {
                let mut r = reports.next().expect("job order");
                let mean = r.mean_response_ms();
                log.push(
                    vec![
                        ("panel", Json::from(p.name)),
                        ("scale", Json::from(rate)),
                        ("shape", Json::from(shape.to_string())),
                        ("policy", Json::from(policy.to_string())),
                    ],
                    &mut r,
                );
                mean
            };
            let look = take(Policy::Look, p.stripe);
            let satf = take(Policy::Satf, p.stripe);
            let rlook = take(Policy::Rlook, p.sr);
            let rsatf = take(Policy::Rsatf, p.sr);
            if ri == 1 {
                rescue_rlook = rlook;
                rescue_satf = satf;
            }
            rows.push(vec![
                format!("{rate}"),
                ms(look),
                ms(satf),
                ms(rlook),
                ms(rsatf),
                format!("{:.2}", look / satf),
                format!("{:.2}", rlook / rsatf),
            ]);
        }
        print_table(
            &format!(
                "Figure 9 — {}: {} stripe (LOOK/SATF) vs {} SR-Array (RLOOK/RSATF), mean ms",
                p.name, p.stripe, p.sr
            ),
            &[
                "scale",
                "LOOK",
                "SATF",
                "RLOOK",
                "RSATF",
                "LOOK/SATF",
                "RLOOK/RSATF",
            ],
            &rows,
        );
        // The paper's point that scheduling cannot rescue a mis-configured
        // array: the SR-Array under the weaker RLOOK still beats the stripe
        // under SATF (§4.1).
        println!(
            "  {} under RLOOK: {rescue_rlook:.2} ms vs {} under SATF: {rescue_satf:.2} ms \
             (paper: the SR-Array still wins)",
            p.sr, p.stripe
        );
    }
    log.write();
}
