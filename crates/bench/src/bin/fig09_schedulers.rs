//! Figure 9: local disk schedulers under rising I/O rates.
//!
//! LOOK vs SATF on a striped array and RLOOK vs RSATF on an SR-Array, for
//! Cello base on six disks and TPC-C on thirty-six. The paper's claims:
//! the RLOOK↔RSATF gap is smaller than the LOOK↔SATF gap (both already
//! address rotational delay), and a mis-configured array is not rescued by
//! a smarter scheduler — a 2×3×1 SR-Array under RLOOK still beats a 6×1×1
//! stripe under SATF.

use mimd_bench::{ms, print_table, run_trace, Workloads};
use mimd_core::{EngineConfig, Policy, Shape};
use mimd_workload::Trace;

fn panel(name: &str, trace: &Trace, sr: Shape, stripe: Shape, rates: &[f64]) {
    let mut rows = Vec::new();
    for &rate in rates {
        let t = trace.scaled(rate);
        let run = |shape: Shape, policy: Policy| {
            run_trace(EngineConfig::new(shape).with_policy(policy), &t).mean_response_ms()
        };
        let look = run(stripe, Policy::Look);
        let satf = run(stripe, Policy::Satf);
        let rlook = run(sr, Policy::Rlook);
        let rsatf = run(sr, Policy::Rsatf);
        rows.push(vec![
            format!("{rate}"),
            ms(look),
            ms(satf),
            ms(rlook),
            ms(rsatf),
            format!("{:.2}", look / satf),
            format!("{:.2}", rlook / rsatf),
        ]);
    }
    print_table(
        &format!(
            "Figure 9 — {name}: {stripe} stripe (LOOK/SATF) vs {sr} SR-Array (RLOOK/RSATF), mean ms"
        ),
        &[
            "scale",
            "LOOK",
            "SATF",
            "RLOOK",
            "RSATF",
            "LOOK/SATF",
            "RLOOK/RSATF",
        ],
        &rows,
    );
    // The paper's point that scheduling cannot rescue a mis-configured
    // array: the SR-Array under the weaker RLOOK still beats the stripe
    // under SATF (§4.1).
    let t = trace.scaled(rates[1]);
    let rlook_sr =
        run_trace(EngineConfig::new(sr).with_policy(Policy::Rlook), &t).mean_response_ms();
    let satf_stripe =
        run_trace(EngineConfig::new(stripe).with_policy(Policy::Satf), &t).mean_response_ms();
    println!(
        "  {sr} under RLOOK: {rlook_sr:.2} ms vs {stripe} under SATF: {satf_stripe:.2} ms \
         (paper: the SR-Array still wins)"
    );
}

fn main() {
    let w = Workloads::generate();
    // Scale factors are chosen to push the arrays from light load into the
    // queueing regime where scheduler quality separates: Cello's original
    // 2.84 IO/s leaves six modern disks ~99% idle, so the interesting
    // region sits at two orders of magnitude acceleration.
    panel(
        "Cello base, 6 disks",
        &w.cello_base,
        Shape::sr_array(2, 3).unwrap(),
        Shape::striping(6),
        &[1.0, 50.0, 100.0, 150.0, 200.0, 250.0],
    );
    panel(
        "TPC-C, 36 disks",
        &w.tpcc,
        Shape::sr_array(9, 4).unwrap(),
        Shape::striping(36),
        &[1.0, 2.0, 4.0, 6.0, 8.0, 10.0],
    );
}
