//! Ablation: the mirror read-dispatch heuristic of §3.3.
//!
//! The paper's heuristic sends a read to the closest *idle* owner, and when
//! all owners are busy duplicates it into every drive queue, cancelling the
//! losers once one disk starts it — trading a little queue bookkeeping for
//! load balance and positioning choice. The baseline here is static
//! assignment by block address.

use mimd_bench::{print_table, run_jobs, sizes, ExperimentLog, Job, Json};
use mimd_core::{EngineConfig, MirrorPolicy, Shape};
use mimd_workload::IometerSpec;

const DATA: u64 = 8_000_000;

fn job(shape: Shape, policy: MirrorPolicy, outstanding: usize) -> Job<'static> {
    let mut cfg = EngineConfig::new(shape).with_perfect_knowledge();
    cfg.mirror_policy = policy;
    Job::closed(
        cfg,
        IometerSpec::microbench(DATA, 1.0),
        outstanding,
        sizes::CLOSED_LOOP_COMPLETIONS,
    )
}

fn main() {
    let shapes = [
        ("1x1x4 mirror", Shape::mirror(4)),
        ("2x1x2 RAID-10", Shape::raid10(4).unwrap()),
        ("1x2x2 SR-Mirror", Shape::new(1, 2, 2).unwrap()),
    ];
    let policies = [
        ("idle_or_duplicate", MirrorPolicy::IdleOrDuplicate),
        ("static", MirrorPolicy::Static),
    ];
    const OUTSTANDING: [usize; 2] = [4, 16];

    let mut jobs = Vec::new();
    for (_, shape) in shapes {
        for &outstanding in &OUTSTANDING {
            for (_, policy) in policies {
                jobs.push(job(shape, policy, outstanding));
            }
        }
    }
    let mut reports = run_jobs(jobs).into_iter();

    let mut log = ExperimentLog::new("ablate_mirror_policy");
    let mut rows = Vec::new();
    for (label, _) in shapes {
        for &outstanding in &OUTSTANDING {
            let mut iops = [0.0f64; 2];
            let mut resp = [0.0f64; 2];
            for (pi, (pname, _)) in policies.iter().enumerate() {
                let mut r = reports.next().expect("job order");
                iops[pi] = r.throughput_iops();
                resp[pi] = r.mean_response_ms();
                log.push(
                    vec![
                        ("shape", Json::from(label)),
                        ("outstanding", Json::from(outstanding)),
                        ("policy", Json::from(*pname)),
                    ],
                    &mut r,
                );
            }
            rows.push(vec![
                label.to_string(),
                outstanding.to_string(),
                format!("{:.0}", iops[0]),
                format!("{:.0}", iops[1]),
                format!("{:.2}", resp[0]),
                format!("{:.2}", resp[1]),
                format!("{:.2}x", iops[0] / iops[1]),
            ]);
        }
    }
    print_table(
        "Ablation — mirror dispatch: idle-or-duplicate vs static (4 KiB reads)",
        &[
            "shape",
            "outstanding",
            "heuristic IO/s",
            "static IO/s",
            "heuristic ms",
            "static ms",
            "speedup",
        ],
        &rows,
    );
    println!("\nThe §3.3 heuristic should win on both throughput and latency,");
    println!("most visibly at shallow queues where load imbalance idles disks.");
    log.write();
}
