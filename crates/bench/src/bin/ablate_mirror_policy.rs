//! Ablation: the mirror read-dispatch heuristic of §3.3.
//!
//! The paper's heuristic sends a read to the closest *idle* owner, and when
//! all owners are busy duplicates it into every drive queue, cancelling the
//! losers once one disk starts it — trading a little queue bookkeeping for
//! load balance and positioning choice. The baseline here is static
//! assignment by block address.

use mimd_bench::{print_table, sizes};
use mimd_core::{ArraySim, EngineConfig, MirrorPolicy, Shape};
use mimd_workload::IometerSpec;

const DATA: u64 = 8_000_000;

fn measure(shape: Shape, policy: MirrorPolicy, outstanding: usize) -> (f64, f64) {
    let mut cfg = EngineConfig::new(shape).with_perfect_knowledge();
    cfg.mirror_policy = policy;
    let spec = IometerSpec::microbench(DATA, 1.0);
    let mut sim = ArraySim::new(cfg, DATA).expect("fits");
    let r = sim.run_closed_loop(&spec, outstanding, sizes::CLOSED_LOOP_COMPLETIONS);
    (r.throughput_iops(), r.mean_response_ms())
}

fn main() {
    let mut rows = Vec::new();
    for (label, shape) in [
        ("1x1x4 mirror", Shape::mirror(4)),
        ("2x1x2 RAID-10", Shape::raid10(4).unwrap()),
        ("1x2x2 SR-Mirror", Shape::new(1, 2, 2).unwrap()),
    ] {
        for outstanding in [4usize, 16] {
            let (t_h, r_h) = measure(shape, MirrorPolicy::IdleOrDuplicate, outstanding);
            let (t_s, r_s) = measure(shape, MirrorPolicy::Static, outstanding);
            rows.push(vec![
                label.to_string(),
                outstanding.to_string(),
                format!("{t_h:.0}"),
                format!("{t_s:.0}"),
                format!("{r_h:.2}"),
                format!("{r_s:.2}"),
                format!("{:.2}x", t_h / t_s),
            ]);
        }
    }
    print_table(
        "Ablation — mirror dispatch: idle-or-duplicate vs static (4 KiB reads)",
        &[
            "shape",
            "outstanding",
            "heuristic IO/s",
            "static IO/s",
            "heuristic ms",
            "static ms",
            "speedup",
        ],
        &rows,
    );
    println!("\nThe §3.3 heuristic should win on both throughput and latency,");
    println!("most visibly at shallow queues where load imbalance idles disks.");
}
