//! Ablation: cross-track versus intra-track rotational replication (§2.2).
//!
//! Making copies within the same track "decreases the bandwidth of large
//! I/O as a result of shortening the effective track length and increasing
//! track switch frequency"; the paper therefore places replicas on
//! different tracks of the cylinder. This binary measures both: random
//! 4 KiB read latency (where the two should tie) and sequential 64 KiB
//! streaming bandwidth (where intra-track should collapse by ~Dr).

use mimd_bench::{print_table, run_jobs, ExperimentLog, Job, Json};
use mimd_core::{EngineConfig, ReplicaPlacement, Shape};
use mimd_workload::IometerSpec;

const DATA: u64 = 8_000_000;
const COMPLETIONS: u64 = 4_000;

fn job(
    dr: u32,
    placement: ReplicaPlacement,
    spec: IometerSpec,
    outstanding: usize,
) -> Job<'static> {
    let mut cfg = EngineConfig::new(Shape::sr_array(2, dr).unwrap()).with_perfect_knowledge();
    cfg.replica_placement = placement;
    Job::closed(cfg, spec, outstanding, COMPLETIONS)
}

fn main() {
    const DR: [u32; 4] = [1, 2, 3, 6];
    let placements = [
        ("cross", ReplicaPlacement::Even),
        ("intra", ReplicaPlacement::IntraTrack),
    ];
    let mut jobs = Vec::new();
    for &dr in &DR {
        for (_, placement) in placements {
            jobs.push(job(dr, placement, IometerSpec::microbench(DATA, 1.0), 1));
            jobs.push(job(
                dr,
                placement,
                IometerSpec::sequential_read(DATA, 128),
                4,
            ));
        }
    }
    let mut reports = run_jobs(jobs).into_iter();

    let mut log = ExperimentLog::new("ablate_intra_track");
    let mut rows = Vec::new();
    for &dr in &DR {
        let mut lat = [0.0f64; 2];
        let mut bw = [0.0f64; 2];
        for (pi, (label, _)) in placements.iter().enumerate() {
            let mut random = reports.next().expect("job order");
            lat[pi] = random.mean_response_ms();
            log.push(
                vec![
                    ("dr", Json::from(dr)),
                    ("placement", Json::from(*label)),
                    ("access", Json::from("random_4k")),
                ],
                &mut random,
            );
            let mut seq = reports.next().expect("job order");
            bw[pi] = seq.completed as f64 * 128.0 * 512.0 / 1e6 / seq.sim_time.as_secs_f64();
            log.push(
                vec![
                    ("dr", Json::from(dr)),
                    ("placement", Json::from(*label)),
                    ("access", Json::from("sequential_64k")),
                    ("mb_per_s", Json::from(bw[pi])),
                ],
                &mut seq,
            );
        }
        rows.push(vec![
            dr.to_string(),
            format!("{:.2}", lat[0]),
            format!("{:.2}", lat[1]),
            format!("{:.1}", bw[0]),
            format!("{:.1}", bw[1]),
            format!("{:.2}x", bw[0] / bw[1]),
        ]);
    }
    print_table(
        "Ablation — replica tracks (2xDr SR-Array): random latency and sequential bandwidth",
        &[
            "Dr",
            "rand ms (cross)",
            "rand ms (intra)",
            "seq MB/s (cross)",
            "seq MB/s (intra)",
            "bw advantage",
        ],
        &rows,
    );
    println!("\nCross-track placement (the paper's design) should hold sequential");
    println!("bandwidth roughly flat while intra-track loses a factor near Dr.");
    log.write();
}
