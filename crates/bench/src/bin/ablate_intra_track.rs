//! Ablation: cross-track versus intra-track rotational replication (§2.2).
//!
//! Making copies within the same track "decreases the bandwidth of large
//! I/O as a result of shortening the effective track length and increasing
//! track switch frequency"; the paper therefore places replicas on
//! different tracks of the cylinder. This binary measures both: random
//! 4 KiB read latency (where the two should tie) and sequential 64 KiB
//! streaming bandwidth (where intra-track should collapse by ~Dr).

use mimd_bench::print_table;
use mimd_core::{ArraySim, EngineConfig, ReplicaPlacement, Shape};
use mimd_workload::IometerSpec;

const DATA: u64 = 8_000_000;

fn run(dr: u32, placement: ReplicaPlacement, spec: &IometerSpec, outstanding: usize) -> (f64, f64) {
    let mut cfg = EngineConfig::new(Shape::sr_array(2, dr).unwrap()).with_perfect_knowledge();
    cfg.replica_placement = placement;
    let mut sim = ArraySim::new(cfg, DATA).expect("fits");
    let r = sim.run_closed_loop(spec, outstanding, 4_000);
    let mb_per_s =
        r.completed as f64 * spec.sectors as f64 * 512.0 / 1e6 / r.sim_time.as_secs_f64();
    (r.mean_response_ms(), mb_per_s)
}

fn main() {
    let mut rows = Vec::new();
    for dr in [1u32, 2, 3, 6] {
        let random = IometerSpec::microbench(DATA, 1.0);
        let seq = IometerSpec::sequential_read(DATA, 128);
        let (lat_cross, _) = run(dr, ReplicaPlacement::Even, &random, 1);
        let (lat_intra, _) = run(dr, ReplicaPlacement::IntraTrack, &random, 1);
        let (_, bw_cross) = run(dr, ReplicaPlacement::Even, &seq, 4);
        let (_, bw_intra) = run(dr, ReplicaPlacement::IntraTrack, &seq, 4);
        rows.push(vec![
            dr.to_string(),
            format!("{lat_cross:.2}"),
            format!("{lat_intra:.2}"),
            format!("{bw_cross:.1}"),
            format!("{bw_intra:.1}"),
            format!("{:.2}x", bw_cross / bw_intra),
        ]);
    }
    print_table(
        "Ablation — replica tracks (2xDr SR-Array): random latency and sequential bandwidth",
        &[
            "Dr",
            "rand ms (cross)",
            "rand ms (intra)",
            "seq MB/s (cross)",
            "seq MB/s (intra)",
            "bw advantage",
        ],
        &rows,
    );
    println!("\nCross-track placement (the paper's design) should hold sequential");
    println!("bandwidth roughly flat while intra-track loses a factor near Dr.");
}
