//! Section 2.5: SR-Array versus the synchronized striped mirror.
//!
//! A striped mirror places a block's copies at rotationally even positions
//! on *different* disks with synchronized spindles. Statistically its read
//! latency edges out an SR-Array (the minimum of seek+rotation sums beats
//! the sum of the minimum parts), but no general schedule matches the
//! SR-Array's throughput on arbitrary streams (the paper's AAB example),
//! and writes must move two arms instead of walking one cylinder. The
//! paper: "the performance of our best effort implementation of a striped
//! mirror has failed to match that of an SR-Array counterpart."

use mimd_bench::{print_table, sizes};
use mimd_core::{ArraySim, EngineConfig, Shape, WriteMode};
use mimd_workload::IometerSpec;

const DATA: u64 = 8_000_000;

struct Variant {
    label: &'static str,
    shape: Shape,
    stagger: bool,
    sync: bool,
}

fn run(v: &Variant, read_frac: f64, outstanding: usize) -> (f64, f64) {
    let mut cfg = EngineConfig::new(v.shape)
        .with_perfect_knowledge()
        .with_write_mode(WriteMode::Foreground);
    cfg.mirror_stagger = v.stagger;
    cfg.sync_spindles = v.sync;
    let spec = IometerSpec::microbench(DATA, read_frac);
    let mut sim = ArraySim::new(cfg, DATA).expect("fits");
    let r = sim.run_closed_loop(&spec, outstanding, sizes::CLOSED_LOOP_COMPLETIONS);
    (r.mean_response_ms(), r.throughput_iops())
}

fn main() {
    let variants = [
        Variant {
            label: "3x2x1 SR-Array",
            shape: Shape::sr_array(3, 2).unwrap(),
            stagger: false,
            sync: false,
        },
        Variant {
            label: "3x1x2 striped mirror (sync, staggered)",
            shape: Shape::raid10(6).unwrap(),
            stagger: true,
            sync: true,
        },
        Variant {
            label: "3x1x2 RAID-10 (unsync)",
            shape: Shape::raid10(6).unwrap(),
            stagger: false,
            sync: false,
        },
    ];

    for (title, read_frac) in [("pure reads", 1.0), ("30% writes (foreground)", 0.7)] {
        let mut rows = Vec::new();
        for v in &variants {
            for outstanding in [2usize, 8, 32] {
                let (resp, iops) = run(v, read_frac, outstanding);
                rows.push(vec![
                    v.label.to_string(),
                    outstanding.to_string(),
                    format!("{resp:.2}"),
                    format!("{iops:.0}"),
                ]);
            }
        }
        print_table(
            &format!("Section 2.5 — SR-Array vs striped mirror, {title}"),
            &["configuration", "outstanding", "mean resp (ms)", "IO/s"],
            &rows,
        );
    }
    println!("\nExpected: the striped mirror's read latency is competitive (slightly");
    println!("better at shallow queues), but it falls behind on throughput and");
    println!("under writes, where each copy costs a second arm movement.");
}
