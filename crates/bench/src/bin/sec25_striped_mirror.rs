//! Section 2.5: SR-Array versus the synchronized striped mirror.
//!
//! A striped mirror places a block's copies at rotationally even positions
//! on *different* disks with synchronized spindles. Statistically its read
//! latency edges out an SR-Array (the minimum of seek+rotation sums beats
//! the sum of the minimum parts), but no general schedule matches the
//! SR-Array's throughput on arbitrary streams (the paper's AAB example),
//! and writes must move two arms instead of walking one cylinder. The
//! paper: "the performance of our best effort implementation of a striped
//! mirror has failed to match that of an SR-Array counterpart."

use mimd_bench::{print_table, run_jobs, sizes, ExperimentLog, Job, Json};
use mimd_core::{EngineConfig, Shape, WriteMode};
use mimd_workload::IometerSpec;

const DATA: u64 = 8_000_000;

struct Variant {
    label: &'static str,
    shape: Shape,
    stagger: bool,
    sync: bool,
}

fn job(v: &Variant, read_frac: f64, outstanding: usize) -> Job<'static> {
    let mut cfg = EngineConfig::new(v.shape)
        .with_perfect_knowledge()
        .with_write_mode(WriteMode::Foreground);
    cfg.mirror_stagger = v.stagger;
    cfg.sync_spindles = v.sync;
    Job::closed(
        cfg,
        IometerSpec::microbench(DATA, read_frac),
        outstanding,
        sizes::CLOSED_LOOP_COMPLETIONS,
    )
}

fn main() {
    let variants = [
        Variant {
            label: "3x2x1 SR-Array",
            shape: Shape::sr_array(3, 2).unwrap(),
            stagger: false,
            sync: false,
        },
        Variant {
            label: "3x1x2 striped mirror (sync, staggered)",
            shape: Shape::raid10(6).unwrap(),
            stagger: true,
            sync: true,
        },
        Variant {
            label: "3x1x2 RAID-10 (unsync)",
            shape: Shape::raid10(6).unwrap(),
            stagger: false,
            sync: false,
        },
    ];
    let sections = [("pure reads", 1.0), ("30% writes (foreground)", 0.7)];
    const OUTSTANDING: [usize; 3] = [2, 8, 32];

    let mut jobs = Vec::new();
    for (_, read_frac) in &sections {
        for v in &variants {
            for &q in &OUTSTANDING {
                jobs.push(job(v, *read_frac, q));
            }
        }
    }
    let mut reports = run_jobs(jobs).into_iter();

    let mut log = ExperimentLog::new("sec25_striped_mirror");
    for (title, read_frac) in &sections {
        let mut rows = Vec::new();
        for v in &variants {
            for &q in &OUTSTANDING {
                let mut r = reports.next().expect("job order");
                rows.push(vec![
                    v.label.to_string(),
                    q.to_string(),
                    format!("{:.2}", r.mean_response_ms()),
                    format!("{:.0}", r.throughput_iops()),
                ]);
                log.push(
                    vec![
                        ("section", Json::from(*title)),
                        ("variant", Json::from(v.label)),
                        ("read_frac", Json::from(*read_frac)),
                        ("outstanding", Json::from(q)),
                    ],
                    &mut r,
                );
            }
        }
        print_table(
            &format!("Section 2.5 — SR-Array vs striped mirror, {title}"),
            &["configuration", "outstanding", "mean resp (ms)", "IO/s"],
            &rows,
        );
    }
    println!("\nExpected: the striped mirror's read latency is competitive (slightly");
    println!("better at shallow queues), but it falls behind on throughput and");
    println!("under writes, where each copy costs a second arm movement.");
    log.write();
}
