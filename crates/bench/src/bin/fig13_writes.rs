//! Figure 13: throughput under foreground replica propagation.
//!
//! Six disks, mixed 4 KiB reads/writes with every write's replicas
//! propagated synchronously, sweeping the write ratio at 8 and 32
//! outstanding requests: a 3×2×1 SR-Array (RSATF and RLOOK), a 6×1×1
//! stripe (SATF and LOOK), and a 3×1×2 RAID-10 (SATF), plus the RLOOK
//! throughput model. The paper's expectations: RAID-10 degrades worst
//! under writes (two seeks per propagation versus one seek plus in-cylinder
//! replica walks); the SR-Array/stripe cross-over sits *below* the 50 %
//! write ratio the pure rotational model suggests (the SR-Array also pays
//! extra seek span), and sits further left under SATF/RSATF and longer
//! queues.

use mimd_bench::{drive_character_4k, print_table, sizes};
use mimd_core::models::predict_throughput_iops;
use mimd_core::{ArraySim, EngineConfig, Policy, Shape, WriteMode};
use mimd_workload::IometerSpec;

const DATA_SECTORS: u64 = 16_400_000;

fn measure(shape: Shape, policy: Policy, outstanding: usize, write_frac: f64) -> f64 {
    let cfg = EngineConfig::new(shape)
        .with_policy(policy)
        .with_write_mode(WriteMode::Foreground)
        .with_perfect_knowledge();
    let spec = IometerSpec::microbench(DATA_SECTORS, 1.0 - write_frac);
    let mut sim = ArraySim::new(cfg, DATA_SECTORS).expect("shape fits");
    sim.run_closed_loop(&spec, outstanding, sizes::CLOSED_LOOP_COMPLETIONS)
        .throughput_iops()
}

fn crossover(series_a: &[(f64, f64)], series_b: &[(f64, f64)]) -> Option<f64> {
    for i in 1..series_a.len() {
        let d_prev = series_a[i - 1].1 - series_b[i - 1].1;
        let d_cur = series_a[i].1 - series_b[i].1;
        if d_prev >= 0.0 && d_cur < 0.0 {
            let f = d_prev / (d_prev - d_cur);
            return Some(series_a[i - 1].0 + f * (series_a[i].0 - series_a[i - 1].0));
        }
    }
    None
}

fn panel(outstanding: usize) {
    let sr = Shape::sr_array(3, 2).unwrap();
    let stripe = Shape::striping(6);
    let raid10 = Shape::raid10(6).unwrap();
    let character = drive_character_4k().with_locality(3.0);

    let mut rows = Vec::new();
    let mut sr_rsatf_series = Vec::new();
    let mut stripe_satf_series = Vec::new();
    let mut sr_rlook_series = Vec::new();
    let mut stripe_look_series = Vec::new();
    for pct in (0..=100).step_by(10) {
        let wf = pct as f64 / 100.0;
        let p = 1.0 - wf;
        let sr_rsatf = measure(sr, Policy::Rsatf, outstanding, wf);
        let sr_rlook = measure(sr, Policy::Rlook, outstanding, wf);
        let st_satf = measure(stripe, Policy::Satf, outstanding, wf);
        let st_look = measure(stripe, Policy::Look, outstanding, wf);
        let r10 = measure(raid10, Policy::Satf, outstanding, wf);
        let model = if p > 0.5 {
            predict_throughput_iops(&character, sr.ds, sr.dr, p, outstanding as f64)
        } else {
            f64::NAN
        };
        sr_rsatf_series.push((wf, sr_rsatf));
        stripe_satf_series.push((wf, st_satf));
        sr_rlook_series.push((wf, sr_rlook));
        stripe_look_series.push((wf, st_look));
        rows.push(vec![
            format!("{pct}%"),
            format!("{sr_rsatf:.0}"),
            format!("{sr_rlook:.0}"),
            if model.is_nan() {
                "-".into()
            } else {
                format!("{model:.0}")
            },
            format!("{st_satf:.0}"),
            format!("{st_look:.0}"),
            format!("{r10:.0}"),
        ]);
    }
    print_table(
        &format!("Figure 13 — foreground writes, {outstanding} outstanding (IO/s)"),
        &[
            "write%",
            "3x2x1 RSATF",
            "3x2x1 RLOOK",
            "model",
            "6x1x1 SATF",
            "6x1x1 LOOK",
            "3x1x2 SATF",
        ],
        &rows,
    );
    match crossover(&sr_rsatf_series, &stripe_satf_series) {
        Some(x) => println!(
            "  RSATF/SATF cross-over at {:.0}% writes (paper: left of 50%)",
            x * 100.0
        ),
        None => println!("  RSATF/SATF: no cross-over in range"),
    }
    match crossover(&sr_rlook_series, &stripe_look_series) {
        Some(x) => println!(
            "  RLOOK/LOOK cross-over at {:.0}% writes (paper: near but below 50%)",
            x * 100.0
        ),
        None => println!("  RLOOK/LOOK: no cross-over in range"),
    }
}

fn main() {
    panel(8);
    panel(32);
}
