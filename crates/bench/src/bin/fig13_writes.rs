//! Figure 13: throughput under foreground replica propagation.
//!
//! Six disks, mixed 4 KiB reads/writes with every write's replicas
//! propagated synchronously, sweeping the write ratio at 8 and 32
//! outstanding requests: a 3×2×1 SR-Array (RSATF and RLOOK), a 6×1×1
//! stripe (SATF and LOOK), and a 3×1×2 RAID-10 (SATF), plus the RLOOK
//! throughput model. The paper's expectations: RAID-10 degrades worst
//! under writes (two seeks per propagation versus one seek plus in-cylinder
//! replica walks); the SR-Array/stripe cross-over sits *below* the 50 %
//! write ratio the pure rotational model suggests (the SR-Array also pays
//! extra seek span), and sits further left under SATF/RSATF and longer
//! queues.

use mimd_bench::{drive_character_4k, print_table, run_jobs, sizes, ExperimentLog, Job, Json};
use mimd_core::models::predict_throughput_iops;
use mimd_core::{EngineConfig, Policy, Shape, WriteMode};
use mimd_workload::IometerSpec;

const DATA_SECTORS: u64 = 16_400_000;

fn job(shape: Shape, policy: Policy, outstanding: usize, write_frac: f64) -> Job<'static> {
    let cfg = EngineConfig::new(shape)
        .with_policy(policy)
        .with_write_mode(WriteMode::Foreground)
        .with_perfect_knowledge();
    Job::closed(
        cfg,
        IometerSpec::microbench(DATA_SECTORS, 1.0 - write_frac),
        outstanding,
        sizes::CLOSED_LOOP_COMPLETIONS,
    )
}

fn crossover(series_a: &[(f64, f64)], series_b: &[(f64, f64)]) -> Option<f64> {
    for i in 1..series_a.len() {
        let d_prev = series_a[i - 1].1 - series_b[i - 1].1;
        let d_cur = series_a[i].1 - series_b[i].1;
        if d_prev >= 0.0 && d_cur < 0.0 {
            let f = d_prev / (d_prev - d_cur);
            return Some(series_a[i - 1].0 + f * (series_a[i].0 - series_a[i - 1].0));
        }
    }
    None
}

fn main() {
    let sr = Shape::sr_array(3, 2).unwrap();
    let stripe = Shape::striping(6);
    let raid10 = Shape::raid10(6).unwrap();
    let character = drive_character_4k().with_locality(3.0);
    let configs = [
        ("sr_rsatf", sr, Policy::Rsatf),
        ("sr_rlook", sr, Policy::Rlook),
        ("stripe_satf", stripe, Policy::Satf),
        ("stripe_look", stripe, Policy::Look),
        ("raid10_satf", raid10, Policy::Satf),
    ];

    let mut jobs = Vec::new();
    for &outstanding in &[8usize, 32] {
        for pct in (0..=100).step_by(10) {
            let wf = pct as f64 / 100.0;
            for (_, shape, policy) in &configs {
                jobs.push(job(*shape, *policy, outstanding, wf));
            }
        }
    }
    let mut reports = run_jobs(jobs).into_iter();

    let mut log = ExperimentLog::new("fig13_writes");
    for &outstanding in &[8usize, 32] {
        let mut rows = Vec::new();
        let mut series: Vec<Vec<(f64, f64)>> = vec![Vec::new(); configs.len()];
        for pct in (0..=100).step_by(10) {
            let wf = pct as f64 / 100.0;
            let p = 1.0 - wf;
            let mut iops = [0.0f64; 5];
            for (ci, (label, shape, policy)) in configs.iter().enumerate() {
                let mut r = reports.next().expect("job order");
                iops[ci] = r.throughput_iops();
                series[ci].push((wf, iops[ci]));
                log.push(
                    vec![
                        ("outstanding", Json::from(outstanding)),
                        ("write_pct", Json::from(pct as u64)),
                        ("config", Json::from(*label)),
                        ("shape", Json::from(shape.to_string())),
                        ("policy", Json::from(policy.to_string())),
                    ],
                    &mut r,
                );
            }
            let model = if p > 0.5 {
                predict_throughput_iops(&character, sr.ds, sr.dr, p, outstanding as f64)
            } else {
                f64::NAN
            };
            rows.push(vec![
                format!("{pct}%"),
                format!("{:.0}", iops[0]),
                format!("{:.0}", iops[1]),
                if model.is_nan() {
                    "-".into()
                } else {
                    format!("{model:.0}")
                },
                format!("{:.0}", iops[2]),
                format!("{:.0}", iops[3]),
                format!("{:.0}", iops[4]),
            ]);
        }
        print_table(
            &format!("Figure 13 — foreground writes, {outstanding} outstanding (IO/s)"),
            &[
                "write%",
                "3x2x1 RSATF",
                "3x2x1 RLOOK",
                "model",
                "6x1x1 SATF",
                "6x1x1 LOOK",
                "3x1x2 SATF",
            ],
            &rows,
        );
        match crossover(&series[0], &series[2]) {
            Some(x) => {
                println!(
                    "  RSATF/SATF cross-over at {:.0}% writes (paper: left of 50%)",
                    x * 100.0
                );
                log.note(vec![
                    ("outstanding", Json::from(outstanding)),
                    ("rsatf_satf_crossover_write_frac", Json::from(x)),
                ]);
            }
            None => println!("  RSATF/SATF: no cross-over in range"),
        }
        match crossover(&series[1], &series[3]) {
            Some(x) => {
                println!(
                    "  RLOOK/LOOK cross-over at {:.0}% writes (paper: near but below 50%)",
                    x * 100.0
                );
                log.note(vec![
                    ("outstanding", Json::from(outstanding)),
                    ("rlook_look_crossover_write_frac", Json::from(x)),
                ]);
            }
            None => println!("  RLOOK/LOOK: no cross-over in range"),
        }
    }
    log.write();
}
