//! Figure 11: memory caching versus adding disks.
//!
//! The paper compares two ways to spend money on the Cello base and TPC-C
//! workloads: scale the SR-Array's disk count, or add an LRU memory cache
//! in front of a smaller array (synchronous writes forced to disk in both
//! cases). The break-even memory:disk price ratio `M` falls as the I/O
//! rate rises, because diminishing cache locality and forced writes blunt
//! memory while extra disks speed up *every* operation.

use mimd_bench::{drive_character, print_table, run_trace, Workloads};
use mimd_core::models::recommend_latency_shape;
use mimd_core::{CacheConfig, EngineConfig, Shape};
use mimd_sim::SimDuration;
use mimd_workload::Trace;

fn sr_curve(trace: &Trace, locality: f64, disks: &[u32]) -> Vec<(u32, f64)> {
    let character = drive_character().with_locality(locality);
    disks
        .iter()
        .map(|&d| {
            let shape = recommend_latency_shape(&character, d, 1.0);
            (
                d,
                run_trace(EngineConfig::new(shape), trace).mean_response_ms(),
            )
        })
        .collect()
}

fn memory_curve(trace: &Trace, base: Shape, megabytes: &[u64]) -> Vec<(u64, f64)> {
    megabytes
        .iter()
        .map(|&mb| {
            let cfg = EngineConfig::new(base).with_cache(CacheConfig {
                bytes: mb << 20,
                hit_time: SimDuration::from_micros(100),
            });
            (mb, run_trace(cfg, trace).mean_response_ms())
        })
        .collect()
}

/// Memory (MB) needed to match a target response, by linear interpolation
/// on the measured curve; `None` if the curve never reaches it.
fn memory_to_match(curve: &[(u64, f64)], target_ms: f64) -> Option<f64> {
    if let Some(&(mb, ms)) = curve.first() {
        if ms <= target_ms {
            // Even the smallest swept cache already matches the target.
            return Some(mb as f64);
        }
    }
    for w in curve.windows(2) {
        let (m0, t0) = (w[0].0 as f64, w[0].1);
        let (m1, t1) = (w[1].0 as f64, w[1].1);
        if t0 >= target_ms && t1 <= target_ms {
            let f = if (t0 - t1).abs() < 1e-9 {
                0.0
            } else {
                (t0 - target_ms) / (t0 - t1)
            };
            return Some(m0 + f * (m1 - m0));
        }
    }
    None
}

fn panel(
    name: &str,
    trace: &Trace,
    locality: f64,
    base_disks: u32,
    disks: &[u32],
    megabytes: &[u64],
    scale: f64,
) {
    let t = trace.scaled(scale);
    let sr = sr_curve(&t, locality, disks);
    let base_shape =
        recommend_latency_shape(&drive_character().with_locality(locality), base_disks, 1.0);
    let mem = memory_curve(&t, base_shape, megabytes);

    let rows: Vec<Vec<String>> = sr
        .iter()
        .map(|(d, ms)| vec![format!("{d} disks"), format!("{ms:.2}")])
        .chain(
            mem.iter()
                .map(|(mb, ms)| vec![format!("{base_disks} disks + {mb} MB"), format!("{ms:.2}")]),
        )
        .collect();
    print_table(
        &format!("Figure 11 — {name} (scale x{scale}): mean response (ms)"),
        &["configuration", "response"],
        &rows,
    );

    // Break-even M (the paper's memory:disk price-per-MB ratio): extra
    // disks cost `extra * P_disk`; the matching cache costs
    // `mb * M * (P_disk / disk_MB)`. Equating gives
    // `M* = extra * disk_MB / mb` — memory is cost-effective when the
    // market M is below M*. (2000-era market M was ~57.)
    let disk_mb = 9.1 * 1024.0;
    for (d, target) in sr.iter().skip(1) {
        if let Some(mb) = memory_to_match(&mem, *target) {
            let extra_disks = (d - base_disks) as f64;
            let break_even = extra_disks * disk_mb / mb.max(1.0);
            println!(
                "  matching {d}-disk response ({target:.2} ms) needs ~{mb:.0} MB of cache; \
                 break-even M = {break_even:.0} (memory cost-effective below it)"
            );
        } else {
            println!(
                "  no cache size swept matches the {d}-disk response — adding disks wins outright"
            );
        }
    }
}

fn main() {
    let w = Workloads::generate();
    println!("(paper reference prices: 256 MB memory $300, 18 GB disk $400 -> M = 57)");
    panel(
        "Cello base",
        &w.cello_base,
        4.14,
        2,
        &[2, 4, 6, 8],
        &[32, 64, 128, 256, 512, 1024],
        1.0,
    );
    panel(
        "Cello base",
        &w.cello_base,
        4.14,
        2,
        &[2, 4, 6, 8],
        &[32, 64, 128, 256, 512, 1024],
        3.0,
    );
    panel(
        "TPC-C",
        &w.tpcc,
        1.04,
        12,
        &[12, 18, 24, 36],
        &[64, 128, 256, 512, 1024, 2048],
        1.0,
    );
    panel(
        "TPC-C",
        &w.tpcc,
        1.04,
        12,
        &[12, 18, 24, 36],
        &[64, 128, 256, 512, 1024, 2048],
        3.0,
    );
}
