//! Figure 11: memory caching versus adding disks.
//!
//! The paper compares two ways to spend money on the Cello base and TPC-C
//! workloads: scale the SR-Array's disk count, or add an LRU memory cache
//! in front of a smaller array (synchronous writes forced to disk in both
//! cases). The break-even memory:disk price ratio `M` falls as the I/O
//! rate rises, because diminishing cache locality and forced writes blunt
//! memory while extra disks speed up *every* operation.

use mimd_bench::{drive_character, print_table, run_jobs, ExperimentLog, Job, Json, Workloads};
use mimd_core::models::recommend_latency_shape;
use mimd_core::{CacheConfig, EngineConfig, Shape};
use mimd_sim::SimDuration;
use mimd_workload::Trace;

struct Panel {
    name: &'static str,
    locality: f64,
    base_disks: u32,
    disks: &'static [u32],
    megabytes: &'static [u64],
    scale: f64,
}

fn cache_cfg(base: Shape, mb: u64) -> EngineConfig {
    EngineConfig::new(base).with_cache(CacheConfig {
        bytes: mb << 20,
        hit_time: SimDuration::from_micros(100),
    })
}

/// Memory (MB) needed to match a target response, by linear interpolation
/// on the measured curve; `None` if the curve never reaches it.
fn memory_to_match(curve: &[(u64, f64)], target_ms: f64) -> Option<f64> {
    if let Some(&(mb, ms)) = curve.first() {
        if ms <= target_ms {
            // Even the smallest swept cache already matches the target.
            return Some(mb as f64);
        }
    }
    for w in curve.windows(2) {
        let (m0, t0) = (w[0].0 as f64, w[0].1);
        let (m1, t1) = (w[1].0 as f64, w[1].1);
        if t0 >= target_ms && t1 <= target_ms {
            let f = if (t0 - t1).abs() < 1e-9 {
                0.0
            } else {
                (t0 - target_ms) / (t0 - t1)
            };
            return Some(m0 + f * (m1 - m0));
        }
    }
    None
}

fn main() {
    let w = Workloads::generate();
    println!("(paper reference prices: 256 MB memory $300, 18 GB disk $400 -> M = 57)");
    let panels = [
        Panel {
            name: "Cello base",
            locality: 4.14,
            base_disks: 2,
            disks: &[2, 4, 6, 8],
            megabytes: &[32, 64, 128, 256, 512, 1024],
            scale: 1.0,
        },
        Panel {
            name: "Cello base",
            locality: 4.14,
            base_disks: 2,
            disks: &[2, 4, 6, 8],
            megabytes: &[32, 64, 128, 256, 512, 1024],
            scale: 3.0,
        },
        Panel {
            name: "TPC-C",
            locality: 1.04,
            base_disks: 12,
            disks: &[12, 18, 24, 36],
            megabytes: &[64, 128, 256, 512, 1024, 2048],
            scale: 1.0,
        },
        Panel {
            name: "TPC-C",
            locality: 1.04,
            base_disks: 12,
            disks: &[12, 18, 24, 36],
            megabytes: &[64, 128, 256, 512, 1024, 2048],
            scale: 3.0,
        },
    ];

    // One scaled trace per panel, then the disk-scaling curve followed by
    // the cache-size curve.
    let scaled: Vec<Trace> = panels
        .iter()
        .map(|p| {
            let base = if p.name == "TPC-C" {
                &w.tpcc
            } else {
                &w.cello_base
            };
            base.scaled(p.scale)
        })
        .collect();
    let mut jobs = Vec::new();
    for (p, t) in panels.iter().zip(&scaled) {
        let character = drive_character().with_locality(p.locality);
        for &d in p.disks {
            let shape = recommend_latency_shape(&character, d, 1.0);
            jobs.push(Job::trace(EngineConfig::new(shape), t));
        }
        let base_shape = recommend_latency_shape(&character, p.base_disks, 1.0);
        for &mb in p.megabytes {
            jobs.push(Job::trace(cache_cfg(base_shape, mb), t));
        }
    }
    let mut reports = run_jobs(jobs).into_iter();

    let mut log = ExperimentLog::new("fig11_memory");
    for p in &panels {
        let character = drive_character().with_locality(p.locality);
        let sr: Vec<(u32, f64)> = p
            .disks
            .iter()
            .map(|&d| {
                let mut r = reports.next().expect("job order");
                let mean = r.mean_response_ms();
                log.push(
                    vec![
                        ("panel", Json::from(p.name)),
                        ("scale", Json::from(p.scale)),
                        ("axis", Json::from("disks")),
                        ("disks", Json::from(d)),
                    ],
                    &mut r,
                );
                (d, mean)
            })
            .collect();
        let base_shape = recommend_latency_shape(&character, p.base_disks, 1.0);
        let mem: Vec<(u64, f64)> = p
            .megabytes
            .iter()
            .map(|&mb| {
                let mut r = reports.next().expect("job order");
                let mean = r.mean_response_ms();
                log.push(
                    vec![
                        ("panel", Json::from(p.name)),
                        ("scale", Json::from(p.scale)),
                        ("axis", Json::from("cache")),
                        ("base_shape", Json::from(base_shape.to_string())),
                        ("cache_mb", Json::from(mb)),
                    ],
                    &mut r,
                );
                (mb, mean)
            })
            .collect();

        let rows: Vec<Vec<String>> = sr
            .iter()
            .map(|(d, ms)| vec![format!("{d} disks"), format!("{ms:.2}")])
            .chain(mem.iter().map(|(mb, ms)| {
                vec![
                    format!("{} disks + {mb} MB", p.base_disks),
                    format!("{ms:.2}"),
                ]
            }))
            .collect();
        print_table(
            &format!(
                "Figure 11 — {} (scale x{}): mean response (ms)",
                p.name, p.scale
            ),
            &["configuration", "response"],
            &rows,
        );

        // Break-even M (the paper's memory:disk price-per-MB ratio): extra
        // disks cost `extra * P_disk`; the matching cache costs
        // `mb * M * (P_disk / disk_MB)`. Equating gives
        // `M* = extra * disk_MB / mb` — memory is cost-effective when the
        // market M is below M*. (2000-era market M was ~57.)
        let disk_mb = 9.1 * 1024.0;
        for (d, target) in sr.iter().skip(1) {
            if let Some(mb) = memory_to_match(&mem, *target) {
                let extra_disks = (d - p.base_disks) as f64;
                let break_even = extra_disks * disk_mb / mb.max(1.0);
                println!(
                    "  matching {d}-disk response ({target:.2} ms) needs ~{mb:.0} MB of cache; \
                     break-even M = {break_even:.0} (memory cost-effective below it)"
                );
                log.note(vec![
                    ("panel", Json::from(p.name)),
                    ("scale", Json::from(p.scale)),
                    ("match_disks", Json::from(*d)),
                    ("cache_mb_needed", Json::from(mb)),
                    ("break_even_m", Json::from(break_even)),
                ]);
            } else {
                println!(
                    "  no cache size swept matches the {d}-disk response — adding disks wins outright"
                );
            }
        }
    }
    log.write();
}
