//! Harness smoke test and thread-scaling demonstration.
//!
//! Runs one small but real experiment grid serially and at several worker
//! counts, asserts the emitted JSON is **byte-identical** at every count
//! (the harness's core guarantee), and records the wall-clock times. The
//! numbers are honest for whatever machine runs this: on a single-core
//! container the parallel runs show overhead, not speedup, and the record
//! says how many cores were available.
//!
//! Exits non-zero if any thread count produces different bytes, so CI can
//! use it as the determinism gate.

use std::time::Instant;

use mimd_bench::Json;
use mimd_core::{Policy, Shape};
use mimd_harness::{shared_arena, write_json, GridSpec, Workload};
use mimd_workload::{IometerSpec, SyntheticSpec};

fn grid() -> GridSpec {
    // Shared struct-of-arrays arena: generated once per process, replayed
    // by every cell of every grid below without cloning requests.
    let trace = shared_arena(&SyntheticSpec::cello_base(), 7, 2_000);
    let data = 4 * 1024 * 1024;
    GridSpec {
        name: "harness_smoke".into(),
        shapes: vec![
            Shape::striping(2),
            Shape::sr_array(2, 2).unwrap(),
            Shape::sr_array(2, 3).unwrap(),
        ],
        policies: vec![None, Some(Policy::Look)],
        workloads: vec![
            ("cello-2k".into(), Workload::Arena(trace)),
            (
                "rand-read".into(),
                Workload::Closed {
                    spec: IometerSpec::random_read_512(data),
                    data_sectors: data,
                    outstanding: 8,
                    completions: 500,
                },
            ),
        ],
        seeds: vec![42],
    }
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let cells = grid().cells().len();
    println!("harness smoke: {cells} cells, {cores} core(s) available");

    // One discarded pass warms the allocator, page cache, and lazily
    // initialised tables before anything is timed, so the serial
    // reference does not absorb the one-time costs.
    let _ = grid().run_with(1, |c| c).to_json().to_json();
    let t0 = Instant::now();
    let serial = grid().run_with(1, |c| c).to_json().to_json();
    let serial_s = t0.elapsed().as_secs_f64();
    println!("  threads= 1  {serial_s:>7.3}s  (reference)");

    let mut runs = vec![Json::object([
        ("threads", Json::from(1u64)),
        ("wall_s", Json::from(serial_s)),
        ("identical", Json::from(true)),
    ])];
    let mut ok = true;
    for threads in [2usize, 4, 8] {
        // Discarded warmup at this thread count: pool spin-up and
        // first-touch effects land outside the timed window.
        let _ = grid().run_with(threads, |c| c).to_json().to_json();
        let t = Instant::now();
        let parallel = grid().run_with(threads, |c| c).to_json().to_json();
        let wall = t.elapsed().as_secs_f64();
        let identical = parallel == serial;
        ok &= identical;
        println!(
            "  threads={threads:>2}  {wall:>7.3}s  speedup {:.2}x  bytes {}",
            serial_s / wall,
            if identical { "identical" } else { "DIFFER" }
        );
        runs.push(Json::object([
            ("threads", Json::from(threads)),
            ("wall_s", Json::from(wall)),
            ("speedup", Json::from(serial_s / wall)),
            ("identical", Json::from(identical)),
        ]));
    }

    let doc = Json::object([
        ("experiment", Json::from("harness_scaling")),
        ("cells", Json::from(cells)),
        ("available_cores", Json::from(cores)),
        ("serial_bytes", Json::from(serial.len() as u64)),
        ("runs", Json::Arr(runs)),
        (
            "note",
            Json::from(
                "speedup is bounded by available_cores; on a 1-core host \
                 parallel runs measure pool overhead only",
            ),
        ),
    ]);
    match write_json("BENCH_harness_scaling", &doc) {
        Ok(p) => println!("\n[json] {}", p.display()),
        Err(e) => eprintln!("\n[json] write failed: {e}"),
    }

    if ok {
        println!("determinism: all thread counts byte-identical to serial");
    } else {
        eprintln!("determinism VIOLATION: parallel bytes differ from serial");
        std::process::exit(1);
    }
}
