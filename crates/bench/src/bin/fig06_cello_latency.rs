//! Figure 6: average I/O response time of the Cello workloads on different
//! array configurations, as the number of disks grows.
//!
//! Reproduces both panels (Cello base and Cello disk 6) at original trace
//! speed: striping, RAID-10, `Dm`-way mirroring, the model-configured
//! SR-Array, and the Equation (9) model curve. The SR-Array uses RSATF;
//! the other configurations use (rotation-aware) SATF, mirroring the
//! paper's "highly optimized" baselines.

use mimd_bench::{drive_character, ms, print_table, run_trace, Workloads};
use mimd_core::models::{best_rw_latency, recommend_latency_shape};
use mimd_core::{EngineConfig, Shape};
use mimd_workload::{Trace, TraceStats};

fn panel(name: &str, trace: &Trace, locality: f64) {
    let character = drive_character().with_locality(locality);
    let overhead = drive_character().overhead_ms;
    let stats = TraceStats::of(trace);
    // All writes propagate in the background at original speed (§4.1), so
    // the model's p is the visible-op read/write indifference point ~1.
    let p = 1.0;

    let mut rows = Vec::new();
    for d in [1u32, 2, 3, 4, 6, 8, 9, 12, 16] {
        let sr_shape = recommend_latency_shape(&character, d, p);
        let sr = run_trace(EngineConfig::new(sr_shape), trace).mean_response_ms();
        let stripe = run_trace(EngineConfig::new(Shape::striping(d)), trace).mean_response_ms();
        let raid10 =
            Shape::raid10(d).map(|s| run_trace(EngineConfig::new(s), trace).mean_response_ms());
        let mirror = if d > 1 {
            Some(run_trace(EngineConfig::new(Shape::mirror(d)), trace).mean_response_ms())
        } else {
            None
        };
        let model = best_rw_latency(&character, d, p)
            .map(|t| t + overhead)
            .unwrap_or(f64::NAN);
        rows.push(vec![
            d.to_string(),
            sr_shape.to_string(),
            ms(sr),
            ms(stripe),
            raid10.map(ms).unwrap_or_else(|| "-".into()),
            mirror.map(ms).unwrap_or_else(|| "-".into()),
            ms(model),
        ]);
    }
    println!(
        "\n[{name}] L = {:.2}, reads = {:.1}%, async = {:.1}%",
        stats.seek_locality,
        stats.read_frac * 100.0,
        stats.async_write_frac * 100.0
    );
    print_table(
        &format!("Figure 6 — {name}: mean response time (ms) vs disks"),
        &[
            "D", "SR cfg", "SR-Array", "striping", "RAID-10", "mirror", "model",
        ],
        &rows,
    );
}

fn main() {
    let w = Workloads::generate();
    panel("Cello base", &w.cello_base, 4.14);
    panel("Cello disk 6", &w.cello_disk6, 16.67);

    // The paper's headline: at six disks on Cello base, the SR-Array is
    // 1.23x faster than RAID-10, 1.42x faster than striping, and 1.94x
    // faster than a single disk.
    let character = drive_character().with_locality(4.14);
    let sr_shape = recommend_latency_shape(&character, 6, 1.0);
    let sr = run_trace(EngineConfig::new(sr_shape), &w.cello_base).mean_response_ms();
    let stripe = run_trace(EngineConfig::new(Shape::striping(6)), &w.cello_base).mean_response_ms();
    let raid10 =
        run_trace(EngineConfig::new(Shape::raid10(6).unwrap()), &w.cello_base).mean_response_ms();
    let single = run_trace(EngineConfig::new(Shape::striping(1)), &w.cello_base).mean_response_ms();
    println!("\nHeadline ratios at D=6 on Cello base (paper: 1.23x / 1.42x / 1.94x):");
    println!(
        "  SR-Array {sr:.2} ms | vs RAID-10 {:.2}x | vs striping {:.2}x | vs single disk {:.2}x",
        raid10 / sr,
        stripe / sr,
        single / sr
    );
}
