//! Figure 6: average I/O response time of the Cello workloads on different
//! array configurations, as the number of disks grows.
//!
//! Reproduces both panels (Cello base and Cello disk 6) at original trace
//! speed: striping, RAID-10, `Dm`-way mirroring, the model-configured
//! SR-Array, and the Equation (9) model curve. The SR-Array uses RSATF;
//! the other configurations use (rotation-aware) SATF, mirroring the
//! paper's "highly optimized" baselines.

use mimd_bench::Workloads;
use mimd_bench::{drive_character, ms, print_table, run_jobs, ExperimentLog, Job, Json};
use mimd_core::models::{best_rw_latency, recommend_latency_shape};
use mimd_core::{EngineConfig, Shape};
use mimd_workload::TraceStats;

const DISKS: [u32; 9] = [1, 2, 3, 4, 6, 8, 9, 12, 16];

fn main() {
    let w = Workloads::generate();
    let panels = [
        ("Cello base", &w.cello_base, 4.14),
        ("Cello disk 6", &w.cello_disk6, 16.67),
    ];

    // Enumerate every run of both panels up front (SR, stripe, RAID-10
    // where the disk count is even, mirror for D > 1) and fan them out;
    // the headline ratios reuse the panel measurements — the simulator is
    // deterministic, so a rerun would produce the same numbers.
    let mut jobs = Vec::new();
    for (_, trace, locality) in &panels {
        let character = drive_character().with_locality(*locality);
        for &d in &DISKS {
            let sr_shape = recommend_latency_shape(&character, d, 1.0);
            jobs.push(Job::trace(EngineConfig::new(sr_shape), trace));
            jobs.push(Job::trace(EngineConfig::new(Shape::striping(d)), trace));
            if let Some(s) = Shape::raid10(d) {
                jobs.push(Job::trace(EngineConfig::new(s), trace));
            }
            if d > 1 {
                jobs.push(Job::trace(EngineConfig::new(Shape::mirror(d)), trace));
            }
        }
    }
    let mut reports = run_jobs(jobs).into_iter();

    let mut log = ExperimentLog::new("fig06_cello_latency");
    // Cello-base measurements the headline needs: (single, sr@6, stripe@6, raid10@6).
    let (mut single, mut sr6, mut stripe6, mut raid10_6) = (f64::NAN, f64::NAN, f64::NAN, f64::NAN);
    for (pi, (name, trace, locality)) in panels.iter().enumerate() {
        let character = drive_character().with_locality(*locality);
        let overhead = drive_character().overhead_ms;
        let stats = TraceStats::of(trace);
        // All writes propagate in the background at original speed (§4.1), so
        // the model's p is the visible-op read/write indifference point ~1.
        let p = 1.0;

        let mut rows = Vec::new();
        for &d in &DISKS {
            let sr_shape = recommend_latency_shape(&character, d, 1.0);
            let mut take = |config: &str, shape: Shape| {
                let mut r = reports.next().expect("job order");
                let mean = r.mean_response_ms();
                log.push(
                    vec![
                        ("panel", Json::from(*name)),
                        ("d", Json::from(d)),
                        ("config", Json::from(config)),
                        ("shape", Json::from(shape.to_string())),
                    ],
                    &mut r,
                );
                mean
            };
            let sr = take("sr_array", sr_shape);
            let stripe = take("striping", Shape::striping(d));
            let raid10 = Shape::raid10(d).map(|s| take("raid10", s));
            let mirror = if d > 1 {
                Some(take("mirror", Shape::mirror(d)))
            } else {
                None
            };
            if pi == 0 {
                if d == 1 {
                    single = stripe;
                }
                if d == 6 {
                    sr6 = sr;
                    stripe6 = stripe;
                    raid10_6 = raid10.expect("raid10 exists at D=6");
                }
            }
            let model = best_rw_latency(&character, d, p)
                .map(|t| t + overhead)
                .unwrap_or(f64::NAN);
            rows.push(vec![
                d.to_string(),
                sr_shape.to_string(),
                ms(sr),
                ms(stripe),
                raid10.map(ms).unwrap_or_else(|| "-".into()),
                mirror.map(ms).unwrap_or_else(|| "-".into()),
                ms(model),
            ]);
        }
        println!(
            "\n[{name}] L = {:.2}, reads = {:.1}%, async = {:.1}%",
            stats.seek_locality,
            stats.read_frac * 100.0,
            stats.async_write_frac * 100.0
        );
        print_table(
            &format!("Figure 6 — {name}: mean response time (ms) vs disks"),
            &[
                "D", "SR cfg", "SR-Array", "striping", "RAID-10", "mirror", "model",
            ],
            &rows,
        );
    }

    // The paper's headline: at six disks on Cello base, the SR-Array is
    // 1.23x faster than RAID-10, 1.42x faster than striping, and 1.94x
    // faster than a single disk.
    println!("\nHeadline ratios at D=6 on Cello base (paper: 1.23x / 1.42x / 1.94x):");
    println!(
        "  SR-Array {sr6:.2} ms | vs RAID-10 {:.2}x | vs striping {:.2}x | vs single disk {:.2}x",
        raid10_6 / sr6,
        stripe6 / sr6,
        single / sr6
    );
    log.note(vec![
        ("headline_vs_raid10", Json::from(raid10_6 / sr6)),
        ("headline_vs_striping", Json::from(stripe6 / sr6)),
        ("headline_vs_single", Json::from(single / sr6)),
    ]);
    log.write();
}
