//! Figure 7: the model-chosen SR-Array aspect ratio versus the
//! alternatives.
//!
//! For each disk budget, every integer `Ds × Dr` factorization is measured
//! on the Cello workloads; the row marks the shape Equation (5)/(10)
//! recommends. The paper's claim: "the model is largely successful at
//! finding good SR-Array configurations".

use mimd_bench::{drive_character, ms, print_table, run_jobs, ExperimentLog, Job, Json, Workloads};
use mimd_core::models::recommend_latency_shape;
use mimd_core::{EngineConfig, Shape};

const DISKS: [u32; 6] = [4, 6, 8, 9, 12, 16];

fn main() {
    let w = Workloads::generate();
    let panels = [
        ("Cello base", &w.cello_base, 4.14),
        ("Cello disk 6", &w.cello_disk6, 16.67),
    ];

    // One job per SR factorization per disk budget per panel.
    let mut jobs = Vec::new();
    for (_, trace, _) in &panels {
        for &d in &DISKS {
            for s in Shape::enumerate_sr(d, 6) {
                jobs.push(Job::trace(EngineConfig::new(s), trace));
            }
        }
    }
    let mut reports = run_jobs(jobs).into_iter();

    let mut log = ExperimentLog::new("fig07_aspect_ratio");
    for (name, _, locality) in &panels {
        let character = drive_character().with_locality(*locality);
        let mut rows = Vec::new();
        let mut model_rank_sum = 0.0;
        let mut panel_count = 0.0;
        for &d in &DISKS {
            let recommended = recommend_latency_shape(&character, d, 1.0);
            let mut results: Vec<(Shape, f64)> = Shape::enumerate_sr(d, 6)
                .into_iter()
                .map(|s| {
                    let mut r = reports.next().expect("job order");
                    let mean = r.mean_response_ms();
                    log.push(
                        vec![
                            ("panel", Json::from(*name)),
                            ("d", Json::from(d)),
                            ("shape", Json::from(s.to_string())),
                            ("recommended", Json::from(s == recommended)),
                        ],
                        &mut r,
                    );
                    (s, mean)
                })
                .collect();
            results.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
            let rank = results
                .iter()
                .position(|(s, _)| *s == recommended)
                .map(|i| i + 1)
                .unwrap_or(0);
            model_rank_sum += rank as f64;
            panel_count += 1.0;
            let alternatives = results
                .iter()
                .map(|(s, t)| {
                    let mark = if *s == recommended { "*" } else { "" };
                    format!("{}x{}{mark}={}", s.ds, s.dr, ms(*t))
                })
                .collect::<Vec<_>>()
                .join("  ");
            rows.push(vec![
                d.to_string(),
                recommended.to_string(),
                format!("{rank}/{}", results.len()),
                alternatives,
            ]);
        }
        print_table(
            &format!("Figure 7 — {name}: SR-Array alternatives (mean ms; * = model's pick)"),
            &["D", "model pick", "rank", "alternatives (best first)"],
            &rows,
        );
        let mean_rank = model_rank_sum / panel_count;
        println!("  mean rank of the model's pick: {mean_rank:.1} (1.0 = always best)");
        log.note(vec![
            ("panel", Json::from(*name)),
            ("mean_model_rank", Json::from(mean_rank)),
        ]);
    }
    log.write();
}
