//! Figure 7: the model-chosen SR-Array aspect ratio versus the
//! alternatives.
//!
//! For each disk budget, every integer `Ds × Dr` factorization is measured
//! on the Cello workloads; the row marks the shape Equation (5)/(10)
//! recommends. The paper's claim: "the model is largely successful at
//! finding good SR-Array configurations".

use mimd_bench::{drive_character, ms, print_table, run_trace, Workloads};
use mimd_core::models::recommend_latency_shape;
use mimd_core::{EngineConfig, Shape};
use mimd_workload::Trace;

fn panel(name: &str, trace: &Trace, locality: f64) {
    let character = drive_character().with_locality(locality);
    let mut rows = Vec::new();
    let mut model_rank_sum = 0.0;
    let mut panels = 0.0;
    for d in [4u32, 6, 8, 9, 12, 16] {
        let recommended = recommend_latency_shape(&character, d, 1.0);
        let mut results: Vec<(Shape, f64)> = Shape::enumerate_sr(d, 6)
            .into_iter()
            .map(|s| (s, run_trace(EngineConfig::new(s), trace).mean_response_ms()))
            .collect();
        results.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
        let rank = results
            .iter()
            .position(|(s, _)| *s == recommended)
            .map(|i| i + 1)
            .unwrap_or(0);
        model_rank_sum += rank as f64;
        panels += 1.0;
        let alternatives = results
            .iter()
            .map(|(s, t)| {
                let mark = if *s == recommended { "*" } else { "" };
                format!("{}x{}{mark}={}", s.ds, s.dr, ms(*t))
            })
            .collect::<Vec<_>>()
            .join("  ");
        rows.push(vec![
            d.to_string(),
            recommended.to_string(),
            format!("{rank}/{}", results.len()),
            alternatives,
        ]);
    }
    print_table(
        &format!("Figure 7 — {name}: SR-Array alternatives (mean ms; * = model's pick)"),
        &["D", "model pick", "rank", "alternatives (best first)"],
        &rows,
    );
    println!(
        "  mean rank of the model's pick: {:.1} (1.0 = always best)",
        model_rank_sum / panels
    );
}

fn main() {
    let w = Workloads::generate();
    panel("Cello base", &w.cello_base, 4.14);
    panel("Cello disk 6", &w.cello_disk6, 16.67);
}
