//! Ablation: the drive's track read-ahead buffer.
//!
//! The paper's experiments exercise mechanical positioning, so the
//! simulator ships with drive read-ahead off. Period drives did buffer the
//! track being read; this ablation shows what that changes — a large gain
//! for sequential streams, immaterial for the random workloads the paper
//! evaluates — confirming the default does not distort the reproduction.

use mimd_bench::{print_table, run_jobs, sizes, ExperimentLog, Job, Json};
use mimd_core::{EngineConfig, Shape};
use mimd_workload::IometerSpec;

const DATA: u64 = 16_000_000;

fn job(spec: IometerSpec, read_ahead: bool, outstanding: usize) -> Job<'static> {
    let mut cfg = EngineConfig::new(Shape::sr_array(2, 3).unwrap()).with_perfect_knowledge();
    cfg.read_ahead = read_ahead;
    Job::closed(cfg, spec, outstanding, sizes::CLOSED_LOOP_COMPLETIONS / 2)
}

fn main() {
    let specs = [
        ("random 4 KiB reads", IometerSpec::microbench(DATA, 1.0), 8),
        ("random 512 B reads", IometerSpec::random_read_512(DATA), 8),
        (
            "sequential 64 KiB",
            IometerSpec::sequential_read(DATA, 128),
            4,
        ),
        ("sequential 4 KiB", IometerSpec::sequential_read(DATA, 8), 4),
    ];
    let mut jobs = Vec::new();
    for (_, spec, q) in &specs {
        for read_ahead in [false, true] {
            jobs.push(job(*spec, read_ahead, *q));
        }
    }
    let mut reports = run_jobs(jobs).into_iter();

    let mut log = ExperimentLog::new("ablate_read_ahead");
    let mut rows = Vec::new();
    for (label, spec, _) in &specs {
        let mut iops = [0.0f64; 2];
        let mut mb = [0.0f64; 2];
        for (ri, read_ahead) in [false, true].into_iter().enumerate() {
            let mut r = reports.next().expect("job order");
            iops[ri] = r.throughput_iops();
            mb[ri] =
                r.completed as f64 * spec.sectors as f64 * 512.0 / 1e6 / r.sim_time.as_secs_f64();
            log.push(
                vec![
                    ("workload", Json::from(*label)),
                    ("read_ahead", Json::from(read_ahead)),
                    ("mb_per_s", Json::from(mb[ri])),
                ],
                &mut r,
            );
        }
        rows.push(vec![
            label.to_string(),
            format!("{:.0}", iops[0]),
            format!("{:.0}", iops[1]),
            format!("{:.1}", mb[0]),
            format!("{:.1}", mb[1]),
            format!("{:.2}x", iops[1] / iops[0]),
        ]);
    }
    print_table(
        "Ablation — drive track read-ahead (2x3 SR-Array)",
        &[
            "workload", "IO/s off", "IO/s on", "MB/s off", "MB/s on", "gain",
        ],
        &rows,
    );
    println!("\nExpected: sequential streams gain heavily; the paper's random");
    println!("workloads are unaffected, so leaving read-ahead off in the");
    println!("reproduction does not bias any figure.");
    log.write();
}
