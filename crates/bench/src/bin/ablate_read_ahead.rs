//! Ablation: the drive's track read-ahead buffer.
//!
//! The paper's experiments exercise mechanical positioning, so the
//! simulator ships with drive read-ahead off. Period drives did buffer the
//! track being read; this ablation shows what that changes — a large gain
//! for sequential streams, immaterial for the random workloads the paper
//! evaluates — confirming the default does not distort the reproduction.

use mimd_bench::{print_table, sizes};
use mimd_core::{ArraySim, EngineConfig, Shape};
use mimd_workload::IometerSpec;

const DATA: u64 = 16_000_000;

fn run(spec: &IometerSpec, read_ahead: bool, outstanding: usize) -> (f64, f64) {
    let mut cfg = EngineConfig::new(Shape::sr_array(2, 3).unwrap()).with_perfect_knowledge();
    cfg.read_ahead = read_ahead;
    let mut sim = ArraySim::new(cfg, DATA).expect("fits");
    let r = sim.run_closed_loop(spec, outstanding, sizes::CLOSED_LOOP_COMPLETIONS / 2);
    let mb = r.completed as f64 * spec.sectors as f64 * 512.0 / 1e6 / r.sim_time.as_secs_f64();
    (r.throughput_iops(), mb)
}

fn main() {
    let mut rows = Vec::new();
    for (label, spec, q) in [
        ("random 4 KiB reads", IometerSpec::microbench(DATA, 1.0), 8),
        ("random 512 B reads", IometerSpec::random_read_512(DATA), 8),
        (
            "sequential 64 KiB",
            IometerSpec::sequential_read(DATA, 128),
            4,
        ),
        ("sequential 4 KiB", IometerSpec::sequential_read(DATA, 8), 4),
    ] {
        let (iops_off, mb_off) = run(&spec, false, q);
        let (iops_on, mb_on) = run(&spec, true, q);
        rows.push(vec![
            label.to_string(),
            format!("{iops_off:.0}"),
            format!("{iops_on:.0}"),
            format!("{mb_off:.1}"),
            format!("{mb_on:.1}"),
            format!("{:.2}x", iops_on / iops_off),
        ]);
    }
    print_table(
        "Ablation — drive track read-ahead (2x3 SR-Array)",
        &[
            "workload", "IO/s off", "IO/s on", "MB/s off", "MB/s on", "gain",
        ],
        &rows,
    );
    println!("\nExpected: sequential streams gain heavily; the paper's random");
    println!("workloads are unaffected, so leaving read-ahead off in the");
    println!("reproduction does not bias any figure.");
}
