//! Figure 10: response time of fixed-size arrays as the trace rate rises.
//!
//! Cello base on six disks and TPC-C on thirty-six, sweeping the rate
//! scale. The paper's expectations: on Cello, the heavy replicators (the
//! 1×6 SR-Array and the 6-way mirror) saturate first — the mirror later
//! than the 1×6 because it load-balances across disks — while the 2×3
//! SR-Array stays best throughout; on TPC-C, the best configuration walks
//! from 9×4×1 toward pure striping as the rate grows. The paper quotes
//! sustainable-rate ratios at a 15 ms response-time budget.

use mimd_bench::{print_table, run_jobs, ExperimentLog, Job, Json, Workloads};
use mimd_core::{EngineConfig, Shape};
use mimd_workload::Trace;

const BUDGET_MS: f64 = 15.0;

fn main() {
    let w = Workloads::generate();
    let panels: [(&str, &Trace, Vec<Shape>, &[f64]); 2] = [
        (
            "Cello base, 6 disks",
            &w.cello_base,
            vec![
                Shape::sr_array(2, 3).unwrap(),
                Shape::sr_array(3, 2).unwrap(),
                Shape::sr_array(1, 6).unwrap(),
                Shape::striping(6),
                Shape::raid10(6).unwrap(),
                Shape::mirror(6),
            ],
            &[1.0, 50.0, 100.0, 150.0, 200.0, 250.0, 300.0, 350.0],
        ),
        (
            "TPC-C, 36 disks",
            &w.tpcc,
            vec![
                Shape::sr_array(9, 4).unwrap(),
                Shape::sr_array(12, 3).unwrap(),
                Shape::sr_array(18, 2).unwrap(),
                Shape::striping(36),
                Shape::raid10(36).unwrap(),
            ],
            &[1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0],
        ),
    ];

    // Materialise every scaled trace once, then one job per (rate, shape).
    let scaled: Vec<Vec<Trace>> = panels
        .iter()
        .map(|(_, t, _, rates)| rates.iter().map(|&r| t.scaled(r)).collect())
        .collect();
    let mut jobs = Vec::new();
    for ((_, _, shapes, _), traces) in panels.iter().zip(&scaled) {
        for t in traces {
            for shape in shapes {
                jobs.push(Job::trace(EngineConfig::new(*shape), t));
            }
        }
    }
    let mut reports = run_jobs(jobs).into_iter();

    let mut log = ExperimentLog::new("fig10_scale_rate");
    for (name, _, shapes, rates) in &panels {
        let mut rows = Vec::new();
        // Highest swept rate each shape sustains within the budget.
        let mut sustained: Vec<(Shape, f64)> = shapes.iter().map(|s| (*s, 0.0)).collect();
        for &rate in *rates {
            let mut row = vec![format!("{rate}")];
            for (i, shape) in shapes.iter().enumerate() {
                let mut r = reports.next().expect("job order");
                let mean = r.mean_response_ms();
                log.push(
                    vec![
                        ("panel", Json::from(*name)),
                        ("scale", Json::from(rate)),
                        ("shape", Json::from(shape.to_string())),
                    ],
                    &mut r,
                );
                if mean <= BUDGET_MS {
                    sustained[i].1 = sustained[i].1.max(rate);
                }
                row.push(if mean < 1_000.0 {
                    format!("{mean:.2}")
                } else {
                    ">1s".into()
                });
            }
            rows.push(row);
        }
        let mut header: Vec<String> = vec!["scale".into()];
        header.extend(shapes.iter().map(|s| s.to_string()));
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        print_table(
            &format!("Figure 10 — {name}: mean response (ms) vs rate scale"),
            &header_refs,
            &rows,
        );
        println!("  sustainable rate at {BUDGET_MS} ms budget:");
        for (shape, rate) in sustained {
            println!("    {shape:>8}: {rate}x");
            log.note(vec![
                ("panel", Json::from(*name)),
                ("shape", Json::from(shape.to_string())),
                ("sustainable_scale_at_15ms", Json::from(rate)),
            ]);
        }
    }
    log.write();
}
