//! Ablation: the k-sector scheduling slack of §3.2.
//!
//! With software head tracking, a replica predicted to pass "right now"
//! may already have passed — choosing it risks a full-revolution miss.
//! The slack makes the scheduler skip replicas predicted closer than `k`
//! sector times. Small slack → frequent misses; large slack → wasted
//! rotational opportunity. The paper tunes it by feedback to keep >99 %
//! of requests on target; this sweep exposes the trade-off, and the last
//! section demonstrates the feedback controller converging.

use mimd_bench::{print_table, run_jobs, ExperimentLog, Job, Json, Workloads};
use mimd_core::{EngineConfig, Shape};
use mimd_disk::calibration::SlackController;
use mimd_sim::{SimDuration, SimRng};

fn main() {
    let w = Workloads::generate();
    let sector_us = 28.0; // One sector at ~213 sectors per 6 ms track.
    const K: [u32; 7] = [0, 1, 2, 4, 8, 16, 32];

    let jobs = K
        .iter()
        .map(|&k| {
            let mut cfg = EngineConfig::new(Shape::sr_array(2, 3).unwrap());
            cfg.slack = SimDuration::from_micros_f64(k as f64 * sector_us);
            Job::trace(cfg, &w.cello_base)
        })
        .collect();
    let mut reports = run_jobs(jobs).into_iter();

    let mut log = ExperimentLog::new("ablate_slack");
    let mut rows = Vec::new();
    for &k in &K {
        let mut r = reports.next().expect("job order");
        rows.push(vec![
            k.to_string(),
            format!("{:.2}%", r.prediction.miss_rate() * 100.0),
            format!("{:.3}", r.rotation_ms.mean()),
            format!("{:.3}", r.mean_response_ms()),
        ]);
        log.push(vec![("k_sectors", Json::from(k))], &mut r);
    }
    print_table(
        "Ablation — scheduling slack (Cello base, 2x3 SR-Array, tracked heads)",
        &["k sectors", "miss rate", "mean rot (ms)", "mean resp (ms)"],
        &rows,
    );

    // The feedback loop: start with zero slack under a noisy predictor and
    // watch the controller walk k up until the miss rate sits at the set
    // point, then hold.
    let mut ctl = SlackController::paper_default();
    let mut rng = SimRng::named(9, "slack-demo");
    println!("\nFeedback controller trace (window = 500 requests):");
    for window in 0..8 {
        for _ in 0..500 {
            // A request misses when the |N(3, 31us)| prediction error
            // exceeds its slack margin plus a little residual wait.
            let margin = ctl.slack_sectors() as f64 * sector_us + 10.0;
            let err = rng.normal(3.0, 31.0).abs();
            ctl.record(err > margin);
        }
        println!(
            "  after window {window}: k = {} sectors",
            ctl.slack_sectors()
        );
        log.note(vec![
            ("controller_window", Json::from(window as u64)),
            ("k_sectors", Json::from(ctl.slack_sectors())),
        ]);
    }
    println!("(paper: slack adjusted by feedback to keep >99% of requests on target)");
    log.write();
}
