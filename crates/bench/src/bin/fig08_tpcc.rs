//! Figure 8: average I/O response time of the TPC-C trace.
//!
//! Panel (a) compares striping, RAID-10, and the model-configured SR-Array
//! from 12 to 36 disks at the original 500 IO/s rate; panel (b) compares
//! alternative SR-Array aspect ratios. The paper's headline at 36 disks: a
//! 9×4×1 SR-Array is 1.23× as fast as an 18×1×2 RAID-10 and 1.39× as fast
//! as a 36×1×1 stripe. The workload's shorter idle periods stress delayed
//! propagation, and D-way mirroring cannot sustain the rate at all.

use mimd_bench::{drive_character, ms, print_table, run_trace, Workloads};
use mimd_core::models::recommend_latency_shape;
use mimd_core::{EngineConfig, Shape};
use mimd_workload::TraceStats;

fn main() {
    let w = Workloads::generate();
    let trace = &w.tpcc;
    let stats = TraceStats::of(trace);
    // TPC-C is write-heavy with modest idle time; foreground propagation
    // is partially unmasked, which the model sees as p below 1.
    let p = stats.p_ratio(0.5);
    let character = drive_character().with_locality(stats.seek_locality);

    let mut rows = Vec::new();
    for d in [12u32, 18, 24, 30, 36] {
        let sr_shape = recommend_latency_shape(&character, d, p);
        let sr = run_trace(EngineConfig::new(sr_shape), trace).mean_response_ms();
        let stripe = run_trace(EngineConfig::new(Shape::striping(d)), trace).mean_response_ms();
        let raid10 =
            Shape::raid10(d).map(|s| run_trace(EngineConfig::new(s), trace).mean_response_ms());
        rows.push(vec![
            d.to_string(),
            sr_shape.to_string(),
            ms(sr),
            raid10.map(ms).unwrap_or_else(|| "-".into()),
            ms(stripe),
        ]);
    }
    print_table(
        "Figure 8(a) — TPC-C: mean response time (ms) vs disks",
        &["D", "SR cfg", "SR-Array", "RAID-10", "striping"],
        &rows,
    );

    let mut rows_b = Vec::new();
    for d in [12u32, 24, 36] {
        let mut results: Vec<(Shape, f64)> = Shape::enumerate_sr(d, 6)
            .into_iter()
            .map(|s| (s, run_trace(EngineConfig::new(s), trace).mean_response_ms()))
            .collect();
        results.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
        rows_b.push(vec![
            d.to_string(),
            results
                .iter()
                .map(|(s, t)| format!("{}x{}={}", s.ds, s.dr, ms(*t)))
                .collect::<Vec<_>>()
                .join("  "),
        ]);
    }
    print_table(
        "Figure 8(b) — TPC-C: alternative SR-Array shapes (best first)",
        &["D", "shapes (mean ms)"],
        &rows_b,
    );

    // Headline ratios at 36 disks.
    let sr = run_trace(EngineConfig::new(Shape::sr_array(9, 4).unwrap()), trace).mean_response_ms();
    let raid10 = run_trace(EngineConfig::new(Shape::raid10(36).unwrap()), trace).mean_response_ms();
    let stripe = run_trace(EngineConfig::new(Shape::striping(36)), trace).mean_response_ms();
    println!("\nHeadline at D=36 (paper: 9x4x1 is 1.23x vs RAID-10, 1.39x vs striping):");
    println!(
        "  9x4x1 {sr:.2} ms | 18x1x2 {raid10:.2} ms ({:.2}x) | 36x1x1 {stripe:.2} ms ({:.2}x)",
        raid10 / sr,
        stripe / sr
    );
}
