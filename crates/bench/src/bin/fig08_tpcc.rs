//! Figure 8: average I/O response time of the TPC-C trace.
//!
//! Panel (a) compares striping, RAID-10, and the model-configured SR-Array
//! from 12 to 36 disks at the original 500 IO/s rate; panel (b) compares
//! alternative SR-Array aspect ratios. The paper's headline at 36 disks: a
//! 9×4×1 SR-Array is 1.23× as fast as an 18×1×2 RAID-10 and 1.39× as fast
//! as a 36×1×1 stripe. The workload's shorter idle periods stress delayed
//! propagation, and D-way mirroring cannot sustain the rate at all.

use mimd_bench::{drive_character, ms, print_table, run_jobs, ExperimentLog, Job, Json, Workloads};
use mimd_core::models::recommend_latency_shape;
use mimd_core::{EngineConfig, Shape};
use mimd_workload::TraceStats;

const DISKS_A: [u32; 5] = [12, 18, 24, 30, 36];
const DISKS_B: [u32; 3] = [12, 24, 36];

fn main() {
    let w = Workloads::generate();
    let trace = &w.tpcc;
    let stats = TraceStats::of(trace);
    // TPC-C is write-heavy with modest idle time; foreground propagation
    // is partially unmasked, which the model sees as p below 1.
    let p = stats.p_ratio(0.5);
    let character = drive_character().with_locality(stats.seek_locality);

    // Panel (a) then panel (b), one flat job list; the headline reuses the
    // measurements (the simulator is deterministic).
    let mut jobs = Vec::new();
    for &d in &DISKS_A {
        let sr_shape = recommend_latency_shape(&character, d, p);
        jobs.push(Job::trace(EngineConfig::new(sr_shape), trace));
        jobs.push(Job::trace(EngineConfig::new(Shape::striping(d)), trace));
        if let Some(s) = Shape::raid10(d) {
            jobs.push(Job::trace(EngineConfig::new(s), trace));
        }
    }
    for &d in &DISKS_B {
        for s in Shape::enumerate_sr(d, 6) {
            jobs.push(Job::trace(EngineConfig::new(s), trace));
        }
    }
    let mut reports = run_jobs(jobs).into_iter();

    let mut log = ExperimentLog::new("fig08_tpcc");
    let (mut stripe36, mut raid10_36, mut sr_9x4) = (f64::NAN, f64::NAN, f64::NAN);
    let mut rows = Vec::new();
    for &d in &DISKS_A {
        let sr_shape = recommend_latency_shape(&character, d, p);
        let mut take = |config: &str, shape: Shape| {
            let mut r = reports.next().expect("job order");
            let mean = r.mean_response_ms();
            log.push(
                vec![
                    ("panel", Json::from("a")),
                    ("d", Json::from(d)),
                    ("config", Json::from(config)),
                    ("shape", Json::from(shape.to_string())),
                ],
                &mut r,
            );
            mean
        };
        let sr = take("sr_array", sr_shape);
        let stripe = take("striping", Shape::striping(d));
        let raid10 = Shape::raid10(d).map(|s| take("raid10", s));
        if d == 36 {
            stripe36 = stripe;
            raid10_36 = raid10.expect("raid10 exists at D=36");
        }
        rows.push(vec![
            d.to_string(),
            sr_shape.to_string(),
            ms(sr),
            raid10.map(ms).unwrap_or_else(|| "-".into()),
            ms(stripe),
        ]);
    }
    print_table(
        "Figure 8(a) — TPC-C: mean response time (ms) vs disks",
        &["D", "SR cfg", "SR-Array", "RAID-10", "striping"],
        &rows,
    );

    let mut rows_b = Vec::new();
    for &d in &DISKS_B {
        let mut results: Vec<(Shape, f64)> = Shape::enumerate_sr(d, 6)
            .into_iter()
            .map(|s| {
                let mut r = reports.next().expect("job order");
                let mean = r.mean_response_ms();
                log.push(
                    vec![
                        ("panel", Json::from("b")),
                        ("d", Json::from(d)),
                        ("shape", Json::from(s.to_string())),
                    ],
                    &mut r,
                );
                if d == 36 && s == Shape::sr_array(9, 4).unwrap() {
                    sr_9x4 = mean;
                }
                (s, mean)
            })
            .collect();
        results.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
        rows_b.push(vec![
            d.to_string(),
            results
                .iter()
                .map(|(s, t)| format!("{}x{}={}", s.ds, s.dr, ms(*t)))
                .collect::<Vec<_>>()
                .join("  "),
        ]);
    }
    print_table(
        "Figure 8(b) — TPC-C: alternative SR-Array shapes (best first)",
        &["D", "shapes (mean ms)"],
        &rows_b,
    );

    // Headline ratios at 36 disks.
    println!("\nHeadline at D=36 (paper: 9x4x1 is 1.23x vs RAID-10, 1.39x vs striping):");
    println!(
        "  9x4x1 {sr_9x4:.2} ms | 18x1x2 {raid10_36:.2} ms ({:.2}x) | 36x1x1 {stripe36:.2} ms ({:.2}x)",
        raid10_36 / sr_9x4,
        stripe36 / sr_9x4
    );
    log.note(vec![
        ("headline_vs_raid10", Json::from(raid10_36 / sr_9x4)),
        ("headline_vs_striping", Json::from(stripe36 / sr_9x4)),
    ]);
    log.write();
}
