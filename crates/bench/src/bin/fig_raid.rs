//! Parity RAID vs replication at a fixed disk budget (not a paper figure
//! — the reliability companion to the capacity/performance trade).
//!
//! Three array organizations spend the same eight disks three ways:
//!
//! - **SR-Array `4x2x1`** — all eight disks buy performance (striping +
//!   rotational replication); a single disk failure loses data.
//! - **RAID 10 `4x1x2`** — half the capacity buys mirrored redundancy.
//! - **RAID 5 / RAID 4 (`Ds=8`, `G=4`)** — one unit in four buys XOR
//!   parity: 6/8 of the raw capacity holds data, any single failure per
//!   group is survivable, at the cost of small-write RMW and degraded
//!   reads that fan out to `G−1` survivors.
//!
//! Each organization is replayed healthy, degraded (a dead disk, no
//! spare), and rebuilding (a hot spare arrives and reconstruction rides
//! the delayed queues). The closing table gives the analytic MTTDL story:
//! what each organization's capacity sacrifice buys in expected time to
//! data loss.
//!
//! `MIMD_BENCH_QUICK=1` shrinks the sweep for CI smoke runs.

use mimd_bench::{ms, print_table, run_jobs, shared_trace, ExperimentLog, Job, Json};
use mimd_core::models::{mttdl_mirrored, mttdl_parity_array, mttdl_unprotected};
use mimd_core::{EngineConfig, FaultPlan, ParityConfig, RunReport, Shape};
use mimd_sim::{SimDuration, SimTime};
use mimd_workload::SyntheticSpec;

fn quick() -> bool {
    std::env::var("MIMD_BENCH_QUICK").is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"))
}

/// One organization of the eight-disk budget.
struct Org {
    name: &'static str,
    shape: Shape,
    parity: Option<ParityConfig>,
    /// Fraction of raw capacity that holds user data.
    data_frac: f64,
}

fn orgs() -> Vec<Org> {
    vec![
        Org {
            name: "SR-array 4x2x1",
            shape: Shape::new(4, 2, 1).expect("valid"),
            parity: None,
            data_frac: 0.5,
        },
        Org {
            name: "RAID-10 4x1x2",
            shape: Shape::raid10(8).expect("valid"),
            parity: None,
            data_frac: 0.5,
        },
        Org {
            name: "RAID-5 8 G=4",
            shape: Shape::striping(8),
            parity: Some(ParityConfig::raid5(4)),
            data_frac: 0.75,
        },
        Org {
            name: "RAID-4 8 G=4",
            shape: Shape::striping(8),
            parity: Some(ParityConfig::raid4(4)),
            data_frac: 0.75,
        },
    ]
}

/// Healthy / degraded / rebuilding scenarios. The failed disk (0) is a
/// member of RAID group 0 and of the first mirror pair alike.
fn scenarios(fail_at: SimTime) -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("healthy", FaultPlan::new()),
        ("degraded", FaultPlan::new().fail_stop(0, fail_at)),
        (
            "rebuilding",
            FaultPlan::new()
                .fail_stop_with_spare(0, fail_at)
                .rebuild(SimDuration::from_secs(1), 2048),
        ),
    ]
}

fn main() {
    let quick = quick();
    // Small data set + moderate rate so the throttled rebuild finishes
    // well inside the run even in quick mode (same recipe as the
    // fig_degraded hot-spare demo).
    let mut spec = SyntheticSpec::cello_base();
    spec.name = "Cello base (small)";
    spec.data_sectors = if quick { 400_000 } else { 1_200_000 };
    spec.rate_per_sec = 20.0;
    let n = if quick { 2_500 } else { 8_000 };
    let trace = shared_trace(&spec, 73, n);
    let fail_at = SimTime::from_secs(if quick { 30 } else { 60 });
    let panel = scenarios(fail_at);
    let orgs = orgs();

    let mut jobs = Vec::new();
    for org in &orgs {
        for (_, plan) in &panel {
            let mut cfg = EngineConfig::new(org.shape).with_faults(plan.clone());
            if let Some(p) = org.parity {
                cfg = cfg.with_parity(p);
            }
            jobs.push(Job::trace(cfg, &trace));
        }
    }

    let mut reports = run_jobs(jobs).into_iter();
    let mut log = ExperimentLog::new("fig_raid");

    for org in &orgs {
        let mut rows = Vec::new();
        for (name, _) in &panel {
            let mut r: RunReport = reports.next().expect("job order");
            let parity_counters = format!(
                "{}/{}/{}",
                r.faults.degraded_reads, r.faults.rmw_updates, r.faults.reconstruction_chunks
            );
            let rebuilt = r.faults.rebuilds_completed.to_string();
            rows.push(vec![
                name.to_string(),
                ms(r.mean_response_ms()),
                r.response_percentile_ms(0.95)
                    .map(ms)
                    .unwrap_or_else(|| "-".into()),
                r.failed_requests.to_string(),
                rebuilt,
                parity_counters,
            ]);
            log.push(
                vec![
                    ("part", Json::from("sweep")),
                    ("organization", Json::from(org.name)),
                    ("shape", Json::from(org.shape.to_string())),
                    (
                        "raid",
                        org.parity
                            .map(|p| Json::from(format!("{:?}", p.level)))
                            .unwrap_or(Json::Null),
                    ),
                    ("scenario", Json::from(*name)),
                ],
                &mut r,
            );
        }
        print_table(
            &format!("{} — {} requests at a fixed 8-disk budget", org.name, n),
            &[
                "scenario",
                "mean ms",
                "p95 ms",
                "failed",
                "rebuilt",
                "degr/rmw/recon",
            ],
            &rows,
        );
    }

    // The reliability side of the trade: spec-sheet MTTF, one-day repair.
    let (mttf_h, mttr_h) = (500_000.0, 24.0);
    let mttdl = |org: &Org| match org.parity {
        Some(p) => mttdl_parity_array(mttf_h, mttr_h, p.group, 8 / p.group),
        None if org.shape.dm > 1 => mttdl_mirrored(mttf_h, mttr_h, 8),
        None => mttdl_unprotected(mttf_h, 8),
    };
    let rows: Vec<Vec<String>> = orgs
        .iter()
        .map(|org| {
            let m = mttdl(org);
            vec![
                org.name.to_string(),
                format!("{:.0}%", org.data_frac * 100.0),
                format!("{:.2e} h", m),
                format!("{:.1} y", m / (24.0 * 365.25)),
            ]
        })
        .collect();
    print_table(
        &format!("Analytic MTTDL (MTTF {mttf_h:.0} h, MTTR {mttr_h:.0} h, 8 disks)"),
        &["organization", "data capacity", "MTTDL", "MTTDL (years)"],
        &rows,
    );
    for org in &orgs {
        let mut empty = RunReport::default();
        log.push(
            vec![
                ("part", Json::from("mttdl")),
                ("organization", Json::from(org.name)),
                ("data_frac", Json::from(org.data_frac)),
                ("mttdl_hours", Json::from(mttdl(org))),
            ],
            &mut empty,
        );
    }
    log.write();
}
