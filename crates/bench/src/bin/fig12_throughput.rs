//! Figure 12: random-read throughput versus array size and queue depth.
//!
//! Iometer-style closed loop (4 KiB reads, seek-locality index 3) at 8 and
//! 32 outstanding requests, from 2 to 12 disks: SR-Array under RSATF and
//! RLOOK, striping and RAID-10 under SATF, plus the RLOOK throughput model
//! (Equations (12)–(16)). The paper's claims: the SR-Array scales best;
//! the model tracks the simulation, including the short-queue degradation
//! of Equation (16); and the gap narrows at longer queues because SATF
//! compensates for missing replicas when it can choose among many
//! requests.

use mimd_bench::{drive_character_4k, print_table, sizes};
use mimd_core::models::{predict_throughput_iops, recommend_throughput_shape};
use mimd_core::{ArraySim, EngineConfig, Policy, Shape};
use mimd_workload::IometerSpec;

const DATA_SECTORS: u64 = 16_400_000;
const LOCALITY: f64 = 3.0;

fn measure(shape: Shape, policy: Policy, outstanding: usize) -> f64 {
    let cfg = EngineConfig::new(shape)
        .with_policy(policy)
        .with_perfect_knowledge();
    let spec = IometerSpec::microbench(DATA_SECTORS, 1.0);
    let mut sim = ArraySim::new(cfg, DATA_SECTORS).expect("shape fits");
    sim.run_closed_loop(&spec, outstanding, sizes::CLOSED_LOOP_COMPLETIONS)
        .throughput_iops()
}

fn panel(outstanding: usize) {
    let character = drive_character_4k().with_locality(LOCALITY);
    let mut rows = Vec::new();
    for d in [2u32, 4, 6, 8, 12] {
        let q = outstanding as f64;
        let sr_shape = recommend_throughput_shape(&character, d, 1.0, q / d as f64);
        let rsatf = measure(sr_shape, Policy::Rsatf, outstanding);
        let rlook = measure(sr_shape, Policy::Rlook, outstanding);
        let stripe = measure(Shape::striping(d), Policy::Satf, outstanding);
        let raid10 = Shape::raid10(d).map(|s| measure(s, Policy::Satf, outstanding));
        let model = predict_throughput_iops(&character, sr_shape.ds, sr_shape.dr, 1.0, q);
        rows.push(vec![
            d.to_string(),
            sr_shape.to_string(),
            format!("{rsatf:.0}"),
            format!("{rlook:.0}"),
            format!("{model:.0}"),
            format!("{stripe:.0}"),
            raid10
                .map(|t| format!("{t:.0}"))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    print_table(
        &format!("Figure 12 — random 4 KiB reads, {outstanding} outstanding (IO/s)"),
        &[
            "D",
            "SR cfg",
            "SR RSATF",
            "SR RLOOK",
            "RLOOK model",
            "stripe SATF",
            "RAID-10 SATF",
        ],
        &rows,
    );
}

fn main() {
    panel(8);
    panel(32);
}
