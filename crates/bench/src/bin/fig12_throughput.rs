//! Figure 12: random-read throughput versus array size and queue depth.
//!
//! Iometer-style closed loop (4 KiB reads, seek-locality index 3) at 8 and
//! 32 outstanding requests, from 2 to 12 disks: SR-Array under RSATF and
//! RLOOK, striping and RAID-10 under SATF, plus the RLOOK throughput model
//! (Equations (12)–(16)). The paper's claims: the SR-Array scales best;
//! the model tracks the simulation, including the short-queue degradation
//! of Equation (16); and the gap narrows at longer queues because SATF
//! compensates for missing replicas when it can choose among many
//! requests.

use mimd_bench::{drive_character_4k, print_table, run_jobs, sizes, ExperimentLog, Job, Json};
use mimd_core::models::{predict_throughput_iops, recommend_throughput_shape};
use mimd_core::{EngineConfig, Policy, Shape};
use mimd_workload::IometerSpec;

const DATA_SECTORS: u64 = 16_400_000;
const LOCALITY: f64 = 3.0;
const DISKS: [u32; 5] = [2, 4, 6, 8, 12];

fn job(shape: Shape, policy: Policy, outstanding: usize) -> mimd_bench::Job<'static> {
    let cfg = EngineConfig::new(shape)
        .with_policy(policy)
        .with_perfect_knowledge();
    mimd_bench::Job::closed(
        cfg,
        IometerSpec::microbench(DATA_SECTORS, 1.0),
        outstanding,
        sizes::CLOSED_LOOP_COMPLETIONS,
    )
}

fn main() {
    let character = drive_character_4k().with_locality(LOCALITY);

    // Both panels' runs in one flat list: (outstanding, D) × four configs.
    let mut jobs: Vec<Job> = Vec::new();
    for &outstanding in &[8usize, 32] {
        for &d in &DISKS {
            let q = outstanding as f64;
            let sr_shape = recommend_throughput_shape(&character, d, 1.0, q / d as f64);
            jobs.push(job(sr_shape, Policy::Rsatf, outstanding));
            jobs.push(job(sr_shape, Policy::Rlook, outstanding));
            jobs.push(job(Shape::striping(d), Policy::Satf, outstanding));
            if let Some(s) = Shape::raid10(d) {
                jobs.push(job(s, Policy::Satf, outstanding));
            }
        }
    }
    let mut reports = run_jobs(jobs).into_iter();

    let mut log = ExperimentLog::new("fig12_throughput");
    for &outstanding in &[8usize, 32] {
        let mut rows = Vec::new();
        for &d in &DISKS {
            let q = outstanding as f64;
            let sr_shape = recommend_throughput_shape(&character, d, 1.0, q / d as f64);
            let mut take = |config: &str, shape: Shape, policy: Policy| {
                let mut r = reports.next().expect("job order");
                let iops = r.throughput_iops();
                log.push(
                    vec![
                        ("outstanding", Json::from(outstanding)),
                        ("d", Json::from(d)),
                        ("config", Json::from(config)),
                        ("shape", Json::from(shape.to_string())),
                        ("policy", Json::from(policy.to_string())),
                    ],
                    &mut r,
                );
                iops
            };
            let rsatf = take("sr_rsatf", sr_shape, Policy::Rsatf);
            let rlook = take("sr_rlook", sr_shape, Policy::Rlook);
            let stripe = take("striping", Shape::striping(d), Policy::Satf);
            let raid10 = Shape::raid10(d).map(|s| take("raid10", s, Policy::Satf));
            let model = predict_throughput_iops(&character, sr_shape.ds, sr_shape.dr, 1.0, q);
            rows.push(vec![
                d.to_string(),
                sr_shape.to_string(),
                format!("{rsatf:.0}"),
                format!("{rlook:.0}"),
                format!("{model:.0}"),
                format!("{stripe:.0}"),
                raid10
                    .map(|t| format!("{t:.0}"))
                    .unwrap_or_else(|| "-".into()),
            ]);
        }
        print_table(
            &format!("Figure 12 — random 4 KiB reads, {outstanding} outstanding (IO/s)"),
            &[
                "D",
                "SR cfg",
                "SR RSATF",
                "SR RLOOK",
                "RLOOK model",
                "stripe SATF",
                "RAID-10 SATF",
            ],
            &rows,
        );
    }
    log.write();
}
