//! Drive-generation trend: the paper's motivating imbalance, projected.
//!
//! The introduction argues that disk areal density grows ~60 % per year
//! while latency improves only ~10 % per year, so drives become ever more
//! unbalanced between capacity and latency — which is exactly what makes
//! trading capacity for performance attractive. This experiment runs the
//! same Cello-like workload on a six-disk budget across three drive
//! generations and reports what the models recommend and what that buys:
//! the newer the drives, the more spare capacity there is, and rotational
//! replication remains worthwhile even as everything gets faster.

use mimd_bench::print_table;
use mimd_core::models::{recommend_latency_shape, DiskCharacter};
use mimd_core::{ArraySim, EngineConfig, Shape};
use mimd_disk::DiskParams;
use mimd_workload::SyntheticSpec;

fn main() {
    let generations = [
        DiskParams::circa_1992(),
        DiskParams::st39133lwv(),
        DiskParams::circa_2004_15k(),
    ];
    let budget = 6u32;

    let mut rows = Vec::new();
    for params in &generations {
        // Size the data set to a 1992 disk's worth so every generation
        // serves the same workload; newer generations have spare capacity.
        let data_sectors = DiskParams::circa_1992().total_sectors() * 9 / 10;
        let mut spec = SyntheticSpec::cello_base();
        spec.data_sectors = data_sectors;
        spec.hot_blocks = 4_000;
        let trace = spec.generate(71, 8_000);

        let c = DiskCharacter::from_params(params).with_locality(4.14);
        let shape = recommend_latency_shape(&c, budget, 1.0);
        let run = |s: Shape| {
            let mut cfg = EngineConfig::new(s);
            cfg.disk_params = params.clone();
            let mut sim = ArraySim::new(cfg, trace.data_sectors).expect("data fits");
            sim.run_trace(&trace).mean_response_ms()
        };
        let sr = run(shape);
        let stripe = run(Shape::striping(budget));
        let capacity_slack =
            params.capacity_bytes() as f64 * budget as f64 / (data_sectors as f64 * 512.0);
        rows.push(vec![
            params.model.to_string(),
            format!("{:.1}/{:.1}", c.s_ms, c.r_ms),
            format!("{capacity_slack:.0}x"),
            shape.to_string(),
            format!("{sr:.2}"),
            format!("{stripe:.2}"),
            format!("{:.2}x", stripe / sr),
        ]);
    }
    print_table(
        "Trend — six disks, one 1992-sized data set, across drive generations",
        &[
            "drive",
            "S/R (ms)",
            "capacity slack",
            "model pick",
            "SR-Array ms",
            "stripe ms",
            "SR gain",
        ],
        &rows,
    );
    println!("\nThe capacity-slack column is the paper's opening argument in one");
    println!("number: each generation multiplies the spare capacity available to");
    println!("spend on replicas, while the latency columns shrink only slowly.");
}
