//! Drive-generation trend: the paper's motivating imbalance, projected.
//!
//! The introduction argues that disk areal density grows ~60 % per year
//! while latency improves only ~10 % per year, so drives become ever more
//! unbalanced between capacity and latency — which is exactly what makes
//! trading capacity for performance attractive. This experiment runs the
//! same Cello-like workload on a six-disk budget across three drive
//! generations and reports what the models recommend and what that buys:
//! the newer the drives, the more spare capacity there is, and rotational
//! replication remains worthwhile even as everything gets faster.

use mimd_bench::{print_table, run_jobs, ExperimentLog, Job, Json};
use mimd_core::models::{recommend_latency_shape, DiskCharacter};
use mimd_core::{EngineConfig, Shape};
use mimd_disk::DiskParams;
use mimd_workload::SyntheticSpec;

fn main() {
    let generations = [
        DiskParams::circa_1992(),
        DiskParams::st39133lwv(),
        DiskParams::circa_2004_15k(),
    ];
    let budget = 6u32;

    // Size the data set to a 1992 disk's worth so every generation serves
    // the same workload; newer generations have spare capacity.
    let data_sectors = DiskParams::circa_1992().total_sectors() * 9 / 10;
    let trace = {
        let mut spec = SyntheticSpec::cello_base();
        spec.data_sectors = data_sectors;
        spec.hot_blocks = 4_000;
        mimd_bench::shared_trace(&spec, 71, 8_000)
    };

    let cfg_for = |params: &DiskParams, s: Shape| {
        let mut cfg = EngineConfig::new(s);
        cfg.disk_params = params.clone();
        cfg
    };
    let mut jobs = Vec::new();
    for params in &generations {
        let c = DiskCharacter::from_params(params).with_locality(4.14);
        let shape = recommend_latency_shape(&c, budget, 1.0);
        jobs.push(Job::trace(cfg_for(params, shape), &trace));
        jobs.push(Job::trace(cfg_for(params, Shape::striping(budget)), &trace));
    }
    let mut reports = run_jobs(jobs).into_iter();

    let mut log = ExperimentLog::new("trend_generations");
    let mut rows = Vec::new();
    for params in &generations {
        let c = DiskCharacter::from_params(params).with_locality(4.14);
        let shape = recommend_latency_shape(&c, budget, 1.0);
        let mut take = |config: &str, s: Shape| {
            let mut r = reports.next().expect("job order");
            let mean = r.mean_response_ms();
            log.push(
                vec![
                    ("drive", Json::from(params.model)),
                    ("config", Json::from(config)),
                    ("shape", Json::from(s.to_string())),
                ],
                &mut r,
            );
            mean
        };
        let sr = take("sr_array", shape);
        let stripe = take("striping", Shape::striping(budget));
        let capacity_slack =
            params.capacity_bytes() as f64 * budget as f64 / (data_sectors as f64 * 512.0);
        rows.push(vec![
            params.model.to_string(),
            format!("{:.1}/{:.1}", c.s_ms, c.r_ms),
            format!("{capacity_slack:.0}x"),
            shape.to_string(),
            format!("{sr:.2}"),
            format!("{stripe:.2}"),
            format!("{:.2}x", stripe / sr),
        ]);
    }
    print_table(
        "Trend — six disks, one 1992-sized data set, across drive generations",
        &[
            "drive",
            "S/R (ms)",
            "capacity slack",
            "model pick",
            "SR-Array ms",
            "stripe ms",
            "SR gain",
        ],
        &rows,
    );
    println!("\nThe capacity-slack column is the paper's opening argument in one");
    println!("number: each generation multiplies the spare capacity available to");
    println!("spend on replicas, while the latency columns shrink only slowly.");
    log.write();
}
