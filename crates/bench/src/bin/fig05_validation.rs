//! Figure 5: cross-validation of the two timing implementations.
//!
//! The paper validates its integrated simulator against the hardware
//! prototype with Iometer: 512-byte random requests on a 2×3 SR-Array under
//! RSATF, one read-only workload and one 50/50 read/write workload with
//! foreground propagation, sweeping the number of outstanding requests.
//! The reported discrepancy is under 3 % at every queue depth.
//!
//! Without the original hardware, the same claim is exercised between this
//! repository's two *independently coded* timing paths: the sector-accurate
//! detailed path (the "prototype" role) and the continuous-angle analytic
//! path (the "simulator" role).

use mimd_bench::{print_table, sizes};
use mimd_core::{ArraySim, EngineConfig, Shape, WriteMode};
use mimd_disk::TimingPath;
use mimd_workload::IometerSpec;

fn throughput(timing: TimingPath, spec: &IometerSpec, outstanding: usize) -> f64 {
    let mut cfg = EngineConfig::new(Shape::sr_array(2, 3).unwrap())
        .with_write_mode(WriteMode::Foreground)
        .with_perfect_knowledge();
    cfg.timing = timing;
    let mut sim = ArraySim::new(cfg, spec.data_sectors).expect("2x3 fits");
    sim.run_closed_loop(spec, outstanding, sizes::CLOSED_LOOP_COMPLETIONS)
        .throughput_iops()
}

fn panel(name: &str, spec: &IometerSpec) -> f64 {
    let mut rows = Vec::new();
    let mut worst: f64 = 0.0;
    for outstanding in [1usize, 2, 4, 8, 16, 32, 64] {
        let detailed = throughput(TimingPath::Detailed, spec, outstanding);
        let analytic = throughput(TimingPath::Analytic, spec, outstanding);
        let gap = (detailed - analytic).abs() / detailed * 100.0;
        worst = worst.max(gap);
        rows.push(vec![
            outstanding.to_string(),
            format!("{detailed:.0}"),
            format!("{analytic:.0}"),
            format!("{gap:.1}%"),
        ]);
    }
    print_table(
        &format!("Figure 5 — {name}: 2x3 SR-Array, RSATF, 512 B requests"),
        &["outstanding", "detailed (IO/s)", "analytic (IO/s)", "gap"],
        &rows,
    );
    worst
}

fn main() {
    let data = 16_400_000u64;
    let w1 = panel("random reads", &IometerSpec::random_read_512(data));
    let w2 = panel(
        "50/50 reads/writes (foreground propagation)",
        &IometerSpec::mixed_512(data),
    );
    println!("\nWorst discrepancy: reads {w1:.1}%, mixed {w2:.1}% (paper: under 3% everywhere)");
}
