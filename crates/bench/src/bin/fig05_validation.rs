//! Figure 5: cross-validation of the two timing implementations.
//!
//! The paper validates its integrated simulator against the hardware
//! prototype with Iometer: 512-byte random requests on a 2×3 SR-Array under
//! RSATF, one read-only workload and one 50/50 read/write workload with
//! foreground propagation, sweeping the number of outstanding requests.
//! The reported discrepancy is under 3 % at every queue depth.
//!
//! Without the original hardware, the same claim is exercised between this
//! repository's two *independently coded* timing paths: the sector-accurate
//! detailed path (the "prototype" role) and the continuous-angle analytic
//! path (the "simulator" role).

use mimd_bench::{print_table, run_jobs, sizes, ExperimentLog, Job, Json};
use mimd_core::{EngineConfig, Shape, WriteMode};
use mimd_disk::TimingPath;
use mimd_workload::IometerSpec;

const OUTSTANDING: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

fn cfg(timing: TimingPath) -> EngineConfig {
    let mut cfg = EngineConfig::new(Shape::sr_array(2, 3).unwrap())
        .with_write_mode(WriteMode::Foreground)
        .with_perfect_knowledge();
    cfg.timing = timing;
    cfg
}

fn main() {
    let data = 16_400_000u64;
    let panels = [
        ("random reads", IometerSpec::random_read_512(data)),
        (
            "50/50 reads/writes (foreground propagation)",
            IometerSpec::mixed_512(data),
        ),
    ];

    // Every (panel, depth, timing-path) run, enumerated up front and fanned
    // across the harness pool; results come back in this same order.
    let mut jobs = Vec::new();
    for (_, spec) in &panels {
        for &q in &OUTSTANDING {
            for timing in [TimingPath::Detailed, TimingPath::Analytic] {
                jobs.push(Job::closed(
                    cfg(timing),
                    *spec,
                    q,
                    sizes::CLOSED_LOOP_COMPLETIONS,
                ));
            }
        }
    }
    let mut reports = run_jobs(jobs).into_iter();

    let mut log = ExperimentLog::new("fig05_validation");
    let mut worst = Vec::new();
    for (name, _) in &panels {
        let mut rows = Vec::new();
        let mut w: f64 = 0.0;
        for &q in &OUTSTANDING {
            let mut det = reports.next().expect("job order");
            let mut ana = reports.next().expect("job order");
            let detailed = det.throughput_iops();
            let analytic = ana.throughput_iops();
            let gap = (detailed - analytic).abs() / detailed * 100.0;
            w = w.max(gap);
            rows.push(vec![
                q.to_string(),
                format!("{detailed:.0}"),
                format!("{analytic:.0}"),
                format!("{gap:.1}%"),
            ]);
            for (timing, r) in [("detailed", &mut det), ("analytic", &mut ana)] {
                log.push(
                    vec![
                        ("panel", Json::from(*name)),
                        ("timing", Json::from(timing)),
                        ("outstanding", Json::from(q)),
                    ],
                    r,
                );
            }
        }
        print_table(
            &format!("Figure 5 — {name}: 2x3 SR-Array, RSATF, 512 B requests"),
            &["outstanding", "detailed (IO/s)", "analytic (IO/s)", "gap"],
            &rows,
        );
        worst.push(w);
    }
    println!(
        "\nWorst discrepancy: reads {:.1}%, mixed {:.1}% (paper: under 3% everywhere)",
        worst[0], worst[1]
    );
    log.note(vec![
        ("worst_gap_reads_pct", Json::from(worst[0])),
        ("worst_gap_mixed_pct", Json::from(worst[1])),
    ]);
    log.write();
}
