//! Table 2: accuracy of the software-only head-position prediction.
//!
//! Two views are produced:
//!
//! 1. The *mechanism* itself: a drifting spindle observed through jittered
//!    reference-sector reads, tracked by the sliding least-squares
//!    estimator on the paper's two-minute recalibration schedule (§3.2).
//!    Reported: the fraction of predictions within 1 % of a rotation (the
//!    paper claims 98 % confidence at 1 % error).
//! 2. The *system view* of Table 2: the Cello base workload on a 2×3
//!    SR-Array under RSATF with tracked (imperfect) position knowledge —
//!    miss rate, prediction error, average access time, and the demerit
//!    figure versus measured access times.

use mimd_bench::{print_table, run_jobs, ExperimentLog, Job, Json, Workloads};
use mimd_core::{EngineConfig, Shape};
use mimd_disk::calibration::{CalibrationSchedule, DriftingSpindle, HeadTracker, ObservationNoise};
use mimd_disk::DiskParams;
use mimd_sim::{OnlineStats, SimDuration, SimRng, SimTime};

fn mechanism_accuracy(log: &mut ExperimentLog) {
    let nominal = DiskParams::st39133lwv().rotation_time();
    let mut spindle = DriftingSpindle::default_for(nominal, 11);
    let noise = ObservationNoise::default();
    let mut tracker = HeadTracker::new(nominal, noise);
    let mut schedule = CalibrationSchedule::paper_default();
    let mut rng = SimRng::named(12, "tab02-mech");

    let mut now = SimTime::from_millis(1);
    let mut err_us = OnlineStats::new();
    let mut within_1pct = 0u64;
    let mut samples = 0u64;
    let r_us = nominal.as_micros_f64();

    for round in 0..600 {
        let pass = spindle.next_time_at_angle(now, 0.0);
        let jitter = rng.normal_at_least(noise.mean_us, noise.std_us, noise.floor_us);
        tracker.observe(pass + SimDuration::from_micros_f64(jitter), 0.0);
        let interval = schedule.advance();
        // Probe prediction error at random instants inside the interval —
        // sorted, because the drifting spindle's ground truth advances
        // monotonically.
        if round > 12 {
            let mut offsets: Vec<u64> = (0..20)
                .map(|_| rng.below(interval.as_nanos().max(1)))
                .collect();
            offsets.sort_unstable();
            for off in offsets {
                let t = pass + SimDuration::from_nanos(off);
                if let Some(pred) = tracker.predict_angle(t) {
                    let actual = spindle.true_angle(t);
                    let e = (pred - actual).rem_euclid(1.0);
                    let e = e.min(1.0 - e) * r_us;
                    err_us.push(e);
                    samples += 1;
                    if e <= 0.01 * r_us {
                        within_1pct += 1;
                    }
                }
            }
        }
        now = pass + interval;
    }
    let within_pct = within_1pct as f64 / samples as f64 * 100.0;
    println!("\n== Head-tracking mechanism (steady state, 2-minute recalibration) ==");
    println!("  prediction samples        {samples}");
    println!("  mean |error|              {:.1} us", err_us.mean());
    println!("  max  |error|              {:.1} us", err_us.max());
    println!("  within 1% of a rotation   {within_pct:.1}%   (paper: 98% confidence at 1% error)");
    log.note(vec![
        ("view", Json::from("mechanism")),
        ("samples", Json::from(samples)),
        ("mean_abs_error_us", Json::from(err_us.mean())),
        ("max_abs_error_us", Json::from(err_us.max())),
        ("within_1pct_rotation_pct", Json::from(within_pct)),
    ]);
}

fn system_table(log: &mut ExperimentLog) {
    let w = Workloads::generate();
    let cfg = EngineConfig::new(Shape::sr_array(2, 3).unwrap()); // Tracked knowledge default.
    let mut r = run_jobs(vec![Job::trace(cfg, &w.cello_base)])
        .pop()
        .expect("one job");
    let demerit = r.prediction.demerit_us();
    let avg = r.prediction.avg_access_us();
    let rows = vec![
        vec![
            "Misses".into(),
            format!("{:.2}%", r.prediction.miss_rate() * 100.0),
            "0.22%".into(),
        ],
        vec![
            "Mean prediction error".into(),
            format!("{:.0} us", r.prediction.error.mean().abs()),
            "3 us".into(),
        ],
        vec![
            "Std dev of error".into(),
            format!("{:.0} us", r.prediction.error.sample_std_dev()),
            "31 us".into(),
        ],
        vec![
            "Average access time".into(),
            format!("{avg:.0} us"),
            "2746 us".into(),
        ],
        vec!["Demerit".into(), format!("{demerit:.0} us"), "52 us".into()],
        vec![
            "Demerit / access time".into(),
            format!("{:.1}%", demerit / avg * 100.0),
            "1.9%".into(),
        ],
    ];
    print_table(
        "Table 2 — model accuracy, Cello base on a 2x3 SR-Array (RSATF)",
        &["metric", "measured", "paper"],
        &rows,
    );
    log.push(
        vec![
            ("view", Json::from("system")),
            ("demerit_us", Json::from(demerit)),
            ("avg_access_us", Json::from(avg)),
        ],
        &mut r,
    );
}

fn main() {
    let mut log = ExperimentLog::new("tab02_headtracking");
    mechanism_accuracy(&mut log);
    system_table(&mut log);
    log.write();
}
