//! Table 3: trace characteristics.
//!
//! The synthetic generators stand in for the proprietary HP Cello '92 and
//! TPC-C traces; this binary *recomputes* every Table-3 statistic from the
//! generated traces and prints it against the paper's values, which is the
//! fidelity check for the substitution (see DESIGN.md).

use mimd_bench::{print_table, ExperimentLog, Json, Workloads};
use mimd_workload::TraceStats;

fn row(label: &str, s: &TraceStats) -> Vec<String> {
    vec![
        label.to_string(),
        format!("{:.1}", s.data_sectors as f64 * 512.0 / 1e9),
        s.ios.to_string(),
        format!("{:.2}", s.avg_rate),
        format!("{:.1}%", s.read_frac * 100.0),
        format!("{:.1}%", s.async_write_frac * 100.0),
        format!("{:.2}", s.seek_locality),
        format!("{:.1}%", s.read_after_write_1h * 100.0),
    ]
}

fn stats_row(log: &mut ExperimentLog, label: &str, s: &TraceStats) {
    log.note(vec![
        ("workload", Json::from(label)),
        ("gb", Json::from(s.data_sectors as f64 * 512.0 / 1e9)),
        ("ios", Json::from(s.ios)),
        ("avg_rate", Json::from(s.avg_rate)),
        ("read_frac", Json::from(s.read_frac)),
        ("async_write_frac", Json::from(s.async_write_frac)),
        ("seek_locality", Json::from(s.seek_locality)),
        ("read_after_write_1h", Json::from(s.read_after_write_1h)),
    ]);
}

fn main() {
    let w = Workloads::generate();
    let mut log = ExperimentLog::new("tab03_traces");
    let cello_base = TraceStats::of(&w.cello_base);
    let cello_disk6 = TraceStats::of(&w.cello_disk6);
    let tpcc = TraceStats::of(&w.tpcc);
    stats_row(&mut log, "Cello base", &cello_base);
    stats_row(&mut log, "Cello disk 6", &cello_disk6);
    stats_row(&mut log, "TPC-C", &tpcc);
    let rows = vec![
        row("Cello base", &cello_base),
        vec![
            "  (paper)".into(),
            "8.4".into(),
            "1717483".into(),
            "2.84".into(),
            "55.2%".into(),
            "18.9%".into(),
            "4.14".into(),
            "4.15%".into(),
        ],
        row("Cello disk 6", &cello_disk6),
        vec![
            "  (paper)".into(),
            "1.3".into(),
            "1545341".into(),
            "2.56".into(),
            "35.8%".into(),
            "16.1%".into(),
            "16.67".into(),
            "3.8%".into(),
        ],
        row("TPC-C", &tpcc),
        vec![
            "  (paper)".into(),
            "9.0".into(),
            "3598422".into(),
            "500".into(),
            "54.8%".into(),
            "0.0%".into(),
            "1.04".into(),
            "14.8%".into(),
        ],
    ];
    print_table(
        "Table 3 — trace characteristics (generated vs paper)",
        &[
            "workload", "GB", "I/Os", "rate/s", "reads", "async", "L", "RAW(1h)",
        ],
        &rows,
    );
    println!("\nNote: I/O counts differ by design — experiments replay a");
    println!("20k-request window; rates and mix match the full traces.");
    log.write();
}
