//! Ablation: delayed-write coalescing (§3.4).
//!
//! "For back-to-back writes to the same data block, which happens
//! frequently for data that die young, we can safely discard unfinished
//! updates from previous writes." This binary replays a write-heavy,
//! high-reuse workload with coalescing on and off and reports the
//! propagation work saved.

use mimd_bench::{print_table, run_jobs, ExperimentLog, Job, Json};
use mimd_core::{EngineConfig, Shape};
use mimd_sim::SimDuration;
use mimd_workload::SyntheticSpec;

fn main() {
    // A hot-spot-heavy variant of TPC-C played fast: many back-to-back
    // writes to the same blocks before idle time can propagate replicas.
    let mut spec = SyntheticSpec::tpcc();
    spec.seek_locality = 8.0;
    spec.local_step_sectors = 64.0;
    spec.sync_daemon_interval = Some(SimDuration::from_secs(5));
    spec.async_write_frac = 0.2;
    spec.read_frac = 0.35;
    let trace = mimd_bench::shared_trace(&spec, 77, 20_000).scaled(4.0);

    let modes = [("coalescing on", true), ("coalescing off", false)];
    let jobs = modes
        .iter()
        .map(|(_, coalesce)| {
            let mut cfg =
                EngineConfig::new(Shape::sr_array(3, 2).unwrap()).with_perfect_knowledge();
            cfg.coalesce_delayed = *coalesce;
            Job::trace(cfg, &trace)
        })
        .collect();
    let mut reports = run_jobs(jobs).into_iter();

    let mut log = ExperimentLog::new("ablate_write_coalescing");
    let mut rows = Vec::new();
    for (label, coalesce) in modes {
        let mut r = reports.next().expect("job order");
        rows.push(vec![
            label.to_string(),
            format!("{:.2}", r.mean_response_ms()),
            r.delayed_propagated.to_string(),
            r.delayed_coalesced.to_string(),
            r.nvram_peak.to_string(),
            r.phys_requests.to_string(),
        ]);
        log.push(vec![("coalesce", Json::from(coalesce))], &mut r);
    }
    print_table(
        "Ablation — delayed-write coalescing (hot-spot TPC-C variant, 3x2 SR-Array)",
        &[
            "mode",
            "mean resp (ms)",
            "propagated",
            "coalesced",
            "NVRAM peak",
            "phys ops",
        ],
        &rows,
    );
    println!("\nCoalescing should cut propagated replica writes (and disk busy time)");
    println!("without changing what the foreground observes.");
    log.write();
}
