//! Ablation: evenly spaced versus randomly placed rotational replicas.
//!
//! Section 2.2 derives `R / (2 Dr)` for evenly spaced replicas and only
//! `R / (Dr + 1)` for randomly placed ones, and rejects random placement.
//! This binary confirms the choice empirically on random reads and prints
//! the analytic expectations next to the measured rotational delays.

use mimd_bench::{print_table, run_jobs, sizes, ExperimentLog, Job, Json};
use mimd_core::models::components::{rot_read_even, rot_read_random};
use mimd_core::{EngineConfig, ReplicaPlacement, Shape};
use mimd_workload::IometerSpec;

const DATA_SECTORS: u64 = 16_400_000;

fn job(dr: u32, placement: ReplicaPlacement) -> Job<'static> {
    let mut cfg = EngineConfig::new(Shape::sr_array(1, dr).unwrap()).with_perfect_knowledge();
    cfg.replica_placement = placement;
    let spec = IometerSpec {
        read_frac: 1.0,
        sectors: 1,
        data_sectors: DATA_SECTORS / dr as u64,
        seek_locality: 1.0,
        access: mimd_workload::iometer::Access::Random,
    };
    // Single outstanding request: rotational delay is not masked by queueing.
    Job::closed(cfg, spec, 1, sizes::CLOSED_LOOP_COMPLETIONS / 2)
}

fn main() {
    const DR: [u32; 5] = [1, 2, 3, 4, 6];
    let placements = [
        ("even", ReplicaPlacement::Even),
        ("random", ReplicaPlacement::Random),
    ];
    let mut jobs = Vec::new();
    for &dr in &DR {
        for (_, placement) in placements {
            jobs.push(job(dr, placement));
        }
    }
    let mut reports = run_jobs(jobs).into_iter();

    let r_ms = 6.0;
    let mut log = ExperimentLog::new("ablate_replica_placement");
    let mut rows = Vec::new();
    for &dr in &DR {
        let mut rot = [0.0f64; 2];
        let mut resp = [0.0f64; 2];
        for (pi, (pname, _)) in placements.iter().enumerate() {
            let mut r = reports.next().expect("job order");
            rot[pi] = r.rotation_ms.mean();
            resp[pi] = r.mean_response_ms();
            log.push(
                vec![("dr", Json::from(dr)), ("placement", Json::from(*pname))],
                &mut r,
            );
        }
        rows.push(vec![
            dr.to_string(),
            format!("{:.2}", rot[0]),
            format!("{:.2}", rot_read_even(r_ms, dr)),
            format!("{:.2}", rot[1]),
            format!("{:.2}", rot_read_random(r_ms, dr)),
            format!("{:.2}", resp[0]),
            format!("{:.2}", resp[1]),
        ]);
    }
    print_table(
        "Ablation — replica placement (1xDr arrays, random 512 B reads)",
        &[
            "Dr",
            "rot even (ms)",
            "eq2 R/2Dr",
            "rot random (ms)",
            "R/(Dr+1)",
            "resp even",
            "resp random",
        ],
        &rows,
    );
    println!("\nEven spacing should track Equation (2) and beat random placement for Dr > 1.");
    log.write();
}
