//! Ablation: evenly spaced versus randomly placed rotational replicas.
//!
//! Section 2.2 derives `R / (2 Dr)` for evenly spaced replicas and only
//! `R / (Dr + 1)` for randomly placed ones, and rejects random placement.
//! This binary confirms the choice empirically on random reads and prints
//! the analytic expectations next to the measured rotational delays.

use mimd_bench::{print_table, sizes};
use mimd_core::models::components::{rot_read_even, rot_read_random};
use mimd_core::{ArraySim, EngineConfig, ReplicaPlacement, Shape};
use mimd_workload::IometerSpec;

const DATA_SECTORS: u64 = 16_400_000;

fn measure(dr: u32, placement: ReplicaPlacement) -> (f64, f64) {
    let mut cfg = EngineConfig::new(Shape::sr_array(1, dr).unwrap()).with_perfect_knowledge();
    cfg.replica_placement = placement;
    let spec = IometerSpec {
        read_frac: 1.0,
        sectors: 1,
        data_sectors: DATA_SECTORS / dr as u64,
        seek_locality: 1.0,
        access: mimd_workload::iometer::Access::Random,
    };
    let mut sim = ArraySim::new(cfg, DATA_SECTORS / dr as u64).expect("fits");
    // Single outstanding request: rotational delay is not masked by queueing.
    let r = sim.run_closed_loop(&spec, 1, sizes::CLOSED_LOOP_COMPLETIONS / 2);
    (r.rotation_ms.mean(), r.mean_response_ms())
}

fn main() {
    let r_ms = 6.0;
    let mut rows = Vec::new();
    for dr in [1u32, 2, 3, 4, 6] {
        let (rot_even, resp_even) = measure(dr, ReplicaPlacement::Even);
        let (rot_rand, resp_rand) = measure(dr, ReplicaPlacement::Random);
        rows.push(vec![
            dr.to_string(),
            format!("{rot_even:.2}"),
            format!("{:.2}", rot_read_even(r_ms, dr)),
            format!("{rot_rand:.2}"),
            format!("{:.2}", rot_read_random(r_ms, dr)),
            format!("{resp_even:.2}"),
            format!("{resp_rand:.2}"),
        ]);
    }
    print_table(
        "Ablation — replica placement (1xDr arrays, random 512 B reads)",
        &[
            "Dr",
            "rot even (ms)",
            "eq2 R/2Dr",
            "rot random (ms)",
            "R/(Dr+1)",
            "resp even",
            "resp random",
        ],
        &rows,
    );
    println!("\nEven spacing should track Equation (2) and beat random placement for Dr > 1.");
}
