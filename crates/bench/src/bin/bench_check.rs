//! Bench-regression gate: compares a fresh `hot_paths` JSON emission
//! against a committed baseline and fails if any benchmark regressed
//! beyond tolerance.
//!
//! ```text
//! bench_check <baseline.json> <fresh.json> [tolerance]
//! ```
//!
//! Raw nanosecond comparisons across machines are meaningless (a CI
//! runner is not the box the baseline was recorded on), so the check
//! first calibrates: it computes the median fresh/baseline ratio over
//! all shared benchmarks as the machine-speed factor, then flags any
//! benchmark whose own ratio exceeds `median * (1 + tolerance)`. A
//! uniform slowdown passes; one bench regressing relative to the rest
//! fails. Default tolerance is 0.25. Benchmarks only regress if they
//! also exceed the calibrated baseline by [`NOISE_FLOOR_NS`] — an
//! absolute floor below which per-iteration timings are dominated by
//! cache and timer granularity jitter, not code.
//!
//! Benchmarks present in only one file are reported but never fail the
//! check (new benches appear, old ones retire).

use std::process::ExitCode;

/// Absolute slowdown (ns/iter, after machine calibration) below which a
/// ratio excursion is treated as jitter rather than regression.
const NOISE_FLOOR_NS: f64 = 50.0;

/// Extracts `[(name, ns_per_iter)]` from the bench suite's JSON shape:
/// `{"suite":..,"benches":[{"name":"..","ns_per_iter":N},..]}`. A
/// hand-rolled scan for exactly that fixed, repo-generated schema.
fn parse(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(at) = rest.find("\"name\":\"") {
        rest = &rest[at + 8..];
        let Some(end) = rest.find('"') else { break };
        let name = rest[..end].to_string();
        let Some(vat) = rest.find("\"ns_per_iter\":") else {
            break;
        };
        let vrest = &rest[vat + 14..];
        let vend = vrest
            .find(|c: char| {
                c != '-' && c != '+' && c != '.' && c != 'e' && c != 'E' && !c.is_ascii_digit()
            })
            .unwrap_or(vrest.len());
        if let Ok(v) = vrest[..vend].parse::<f64>() {
            out.push((name, v));
        }
        rest = vrest;
    }
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let (Some(base_path), Some(fresh_path)) = (args.get(1), args.get(2)) else {
        eprintln!("usage: bench_check <baseline.json> <fresh.json> [tolerance]");
        return ExitCode::FAILURE;
    };
    let tolerance: f64 = args
        .get(3)
        .map(|s| s.parse().expect("tolerance must be a number"))
        .unwrap_or(0.25);
    let read = |p: &str| std::fs::read_to_string(p).unwrap_or_else(|e| panic!("read {p}: {e}"));
    let base = parse(&read(base_path));
    let fresh = parse(&read(fresh_path));

    let mut ratios: Vec<(String, f64, f64, f64)> = Vec::new(); // (name, ratio, base, fresh)
    for (name, f) in &fresh {
        match base.iter().find(|(n, _)| n == name) {
            Some((_, b)) if *b > 0.0 => ratios.push((name.clone(), f / b, *b, *f)),
            _ => println!("  (new)      {name}"),
        }
    }
    for (name, _) in &base {
        if !fresh.iter().any(|(n, _)| n == name) {
            println!("  (retired)  {name}");
        }
    }
    if ratios.is_empty() {
        eprintln!("no shared benchmarks between {base_path} and {fresh_path}");
        return ExitCode::FAILURE;
    }

    let mut sorted: Vec<f64> = ratios.iter().map(|(_, r, _, _)| *r).collect();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let median = sorted[sorted.len() / 2];
    let limit = median * (1.0 + tolerance);
    println!(
        "machine factor (median fresh/baseline): {median:.3}; \
         per-bench limit: {limit:.3} (tolerance {tolerance:.0}%)",
        tolerance = tolerance * 100.0
    );

    let mut failed = false;
    for (name, r, b, f) in &ratios {
        let verdict = if *r > limit && f - b * median > NOISE_FLOOR_NS {
            failed = true;
            "REGRESSED"
        } else {
            "ok"
        };
        println!("  {verdict:9}  {r:6.3}x  {name}");
    }
    if failed {
        eprintln!("bench_check: regression beyond {:.0}%", tolerance * 100.0);
        ExitCode::FAILURE
    } else {
        println!("bench_check: all within tolerance");
        ExitCode::SUCCESS
    }
}
