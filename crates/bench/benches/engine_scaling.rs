//! Whole-engine scaling: events/second of one large simulation as the
//! shard worker count grows.
//!
//! One 256-disk striped array replays one open-loop trace — structured
//! mode, so the engine fans its 256 single-disk shards across
//! `ArraySim::set_parallelism(N)` worker threads — at N ∈ {1, 2, 4, 8}
//! (quick mode: {1, 2}). Two records per worker count:
//!
//! - `engine_scaling/256disk/shards=N` — nanoseconds per *event pop*
//!   across all shards and the conductor (`last_run_events`), the
//!   engine-scaling figure of merit;
//! - `engine_scaling/256disk/per_request/shards=N` — nanoseconds per
//!   completed logical request, comparable against pre-shard builds that
//!   cannot count pops.
//!
//! The bench also asserts the determinism contract it rides on: the
//! witness must be byte-identical at every worker count.
//!
//! Environment knobs match `hot_paths`: `MIMD_BENCH_QUICK=1` shrinks the
//! workload, `MIMD_BENCH_JSON=<stem>` writes the JSON records.

use std::hint::black_box;
use std::time::Instant;

use mimd_core::{ArraySim, EngineConfig, Shape};
use mimd_harness::Json;
use mimd_workload::SyntheticSpec;

fn quick() -> bool {
    std::env::var("MIMD_BENCH_QUICK").is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"))
}

fn main() {
    let (worker_counts, n_requests, passes): (&[usize], usize, usize) = if quick() {
        (&[1, 2], 10_000, 2)
    } else {
        (&[1, 2, 4, 8], 60_000, 3)
    };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let trace = SyntheticSpec::cello_base().generate(1234, n_requests);
    let cfg = EngineConfig::new(Shape::striping(256));

    let mut records: Vec<Json> = Vec::new();
    let mut serial_events_per_sec = 0.0;
    let mut witness_at_1: Option<u64> = None;
    println!("engine_scaling: 256-disk array, {n_requests} requests, {cores} core(s) available");
    for &workers in worker_counts {
        // With fewer cores than workers the wall clock measures the host's
        // oversubscription, not the engine: run the passes for the witness
        // assertion but keep the timings out of the JSON so the ±25%
        // regression gate never sees them (missing names are reported, not
        // failed). Witness identity is asserted unconditionally.
        let timed = workers <= cores;
        let mut best_wall_ns = f64::INFINITY;
        let mut events = 0u64;
        let mut completed = 0u64;
        for _ in 0..passes {
            let mut sim = ArraySim::new(cfg.clone(), trace.data_sectors)
                .expect("256-disk stripe fits the cello data set");
            sim.set_parallelism(workers);
            let start = Instant::now();
            let report = black_box(sim.run_trace(&trace));
            let wall = start.elapsed().as_nanos() as f64;
            events = sim.last_run_events();
            completed = report.completed;
            // The contract this bench scales on: worker count never
            // changes a single popped event.
            match witness_at_1 {
                None => witness_at_1 = Some(report.witness),
                Some(w) => assert_eq!(w, report.witness, "witness diverged at {workers} workers"),
            }
            if wall < best_wall_ns {
                best_wall_ns = wall;
            }
        }
        assert!(events > 0 && completed > 0);
        if !timed {
            println!(
                "shards={workers:<2} untimed ({cores} core(s) < {workers} workers); \
                 witness identity asserted"
            );
            continue;
        }
        let ns_per_event = best_wall_ns / events as f64;
        let ns_per_request = best_wall_ns / completed as f64;
        let events_per_sec = 1e9 / ns_per_event;
        if workers == 1 {
            serial_events_per_sec = events_per_sec;
        }
        let speedup = events_per_sec / serial_events_per_sec;
        println!(
            "shards={workers:<2} {ns_per_event:>10.1} ns/event {events_per_sec:>12.0} events/s  \
             speedup {speedup:>5.2}x"
        );
        records.push(Json::object([
            (
                "name",
                Json::from(format!("engine_scaling/256disk/shards={workers}").as_str()),
            ),
            ("ns_per_iter", Json::from(ns_per_event)),
        ]));
        records.push(Json::object([
            (
                "name",
                Json::from(format!("engine_scaling/256disk/per_request/shards={workers}").as_str()),
            ),
            ("ns_per_iter", Json::from(ns_per_request)),
        ]));
    }

    if let Ok(stem) = std::env::var("MIMD_BENCH_JSON") {
        if !stem.is_empty() {
            let doc = Json::object([
                ("suite", Json::from("engine_scaling")),
                ("quick", Json::from(quick())),
                ("cores", Json::from(cores as f64)),
                ("benches", Json::Arr(records)),
            ]);
            match mimd_harness::write_json(&stem, &doc) {
                Ok(path) => println!("wrote {}", path.display()),
                Err(e) => eprintln!("failed to write bench JSON: {e}"),
            }
        }
    }
}
