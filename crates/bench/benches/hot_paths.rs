//! Criterion micro-benchmarks of the simulator's hot paths.
//!
//! These measure the *implementation* (the reproduction binaries measure
//! the *system*): per-call cost of service-time estimation on both timing
//! paths, scheduler decisions at realistic queue depths, logical→physical
//! translation, and whole-engine request throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use mimd_core::sched::{pick, LookState, Policy, Schedulable};
use mimd_core::{ArraySim, EngineConfig, Layout, Shape};
use mimd_disk::{
    DiskParams, Geometry, PositionKnowledge, SeekProfile, SimDisk, Target, TimingPath,
};
use mimd_sim::{SimDuration, SimRng, SimTime};
use mimd_workload::{IometerSpec, SyntheticSpec};

struct Entry {
    targets: Vec<Target>,
    at: SimTime,
}

impl Schedulable for Entry {
    fn candidates(&self) -> &[Target] {
        &self.targets
    }
    fn is_write(&self) -> bool {
        false
    }
    fn enqueued(&self) -> SimTime {
        self.at
    }
}

fn make_queue(n: usize, dr: u32, rng: &mut SimRng) -> Vec<Entry> {
    (0..n)
        .map(|i| Entry {
            targets: (0..dr)
                .map(|k| Target {
                    cylinder: rng.below(3_000) as u32,
                    surface: k,
                    angle: rng.unit(),
                    sectors: 8,
                })
                .collect(),
            at: SimTime::from_micros(i as u64),
        })
        .collect()
}

fn bench_disk_estimate(c: &mut Criterion) {
    let mut group = c.benchmark_group("disk_estimate");
    for (name, path) in [
        ("detailed", TimingPath::Detailed),
        ("analytic", TimingPath::Analytic),
    ] {
        let disk = SimDisk::new(
            DiskParams::st39133lwv(),
            path,
            PositionKnowledge::Perfect,
            1,
        )
        .expect("valid params");
        let t = Target {
            cylinder: 2_345,
            surface: 7,
            angle: 0.42,
            sectors: 8,
        };
        group.bench_function(name, |b| {
            b.iter(|| disk.estimate(black_box(SimTime::from_micros(123)), black_box(&t), false))
        });
    }
    group.finish();
}

fn bench_scheduler_pick(c: &mut Criterion) {
    let disk = SimDisk::new(
        DiskParams::st39133lwv(),
        TimingPath::Detailed,
        PositionKnowledge::Perfect,
        2,
    )
    .expect("valid params");
    let mut rng = SimRng::seed_from(3);
    let mut group = c.benchmark_group("scheduler_pick");
    for depth in [8usize, 32, 128] {
        let queue = make_queue(depth, 3, &mut rng);
        for policy in [Policy::Satf, Policy::Rsatf, Policy::Rlook] {
            group.bench_with_input(
                BenchmarkId::new(format!("{policy}"), depth),
                &queue,
                |b, q| {
                    let mut look = LookState::default();
                    b.iter(|| {
                        pick(
                            policy,
                            &disk,
                            black_box(SimTime::from_millis(5)),
                            q,
                            &mut look,
                            SimDuration::ZERO,
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_layout_translation(c: &mut Criterion) {
    let g = Geometry::new(&DiskParams::st39133lwv());
    let layout = Layout::new(
        Shape::new(3, 2, 2).expect("valid"),
        &g,
        8_000_000,
        128,
        false,
    )
    .expect("fits");
    let mut rng = SimRng::seed_from(4);
    let lbns: Vec<u64> = (0..1024).map(|_| rng.below(7_900_000)).collect();
    let mut i = 0;
    c.bench_function("layout_read_candidates", |b| {
        b.iter(|| {
            i = (i + 1) % lbns.len();
            let frag = layout.fragments(lbns[i], 16);
            layout.read_candidates(black_box(frag[0]))
        })
    });
}

fn bench_seek_fit(c: &mut Criterion) {
    let params = DiskParams::st39133lwv();
    c.bench_function("seek_profile_fit", |b| {
        b.iter(|| SeekProfile::fit(black_box(&params)).expect("fits"))
    });
}

fn bench_engine_closed_loop(c: &mut Criterion) {
    let data = 16_000_000u64;
    let spec = IometerSpec::microbench(data, 1.0);
    c.bench_function("engine_1k_requests_2x3", |b| {
        b.iter(|| {
            let mut sim = ArraySim::new(
                EngineConfig::new(Shape::sr_array(2, 3).expect("valid")).with_perfect_knowledge(),
                data,
            )
            .expect("fits");
            sim.run_closed_loop(black_box(&spec), 16, 1_000).completed
        })
    });
}

fn bench_trace_generation(c: &mut Criterion) {
    c.bench_function("generate_cello_1k", |b| {
        let spec = SyntheticSpec::cello_base();
        b.iter(|| spec.generate(black_box(9), 1_000).len())
    });
}

criterion_group!(
    benches,
    bench_disk_estimate,
    bench_scheduler_pick,
    bench_layout_translation,
    bench_seek_fit,
    bench_engine_closed_loop,
    bench_trace_generation,
);
criterion_main!(benches);
