//! Micro-benchmarks of the simulator's hot paths.
//!
//! These measure the *implementation* (the reproduction binaries measure
//! the *system*): per-call cost of service-time estimation on both timing
//! paths, scheduler decisions at realistic queue depths, logical→physical
//! translation, and whole-engine request throughput.
//!
//! The harness is hand-rolled (the workspace builds offline with no
//! external dependencies): each benchmark is warmed up, then timed over
//! enough iterations to fill a sampling window, and the best-of-N rate is
//! reported. Run with `cargo bench -p mimd-bench`.
//!
//! Environment knobs:
//!
//! - `MIMD_BENCH_QUICK=1` — shrink windows for CI smoke runs (noisier).
//! - `MIMD_BENCH_JSON=<stem>` — also write `<stem>.json` under
//!   `MIMD_JSON_DIR` (default `target/experiments/`), one
//!   `{name, ns_per_iter}` record per benchmark, for the perf trajectory.

use std::alloc::{GlobalAlloc, Layout as AllocLayout, System};
use std::cell::RefCell;
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use mimd_core::sched::{pick, LookState, Policy, Schedulable};
use mimd_core::{ArraySim, DriveQueue, EngineConfig, Layout, Shape};
use mimd_disk::{
    DiskParams, Geometry, PositionKnowledge, SeekProfile, SimDisk, Target, TimingPath,
};
use mimd_harness::Json;
use mimd_sim::{SimDuration, SimRng, SimTime};
use mimd_workload::{IometerSpec, RequestSource, SyntheticSpec};

thread_local! {
    static RESULTS: RefCell<Vec<(String, f64)>> = const { RefCell::new(Vec::new()) };
}

/// A counting wrapper around the system allocator: lets steady-state
/// sections assert they allocate nothing at all.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter is a side effect.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: AllocLayout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: AllocLayout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: AllocLayout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `op` repeatedly and asserts the steady state allocates nothing:
/// one warmup call may allocate (scratch buffers growing to capacity);
/// the next `iters` calls must not touch the allocator at all.
fn assert_allocation_free<T>(name: &str, iters: u64, mut op: impl FnMut() -> T) {
    black_box(op()); // Warmup: scratch capacity is allowed to grow here.
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..iters {
        black_box(op());
    }
    let grew = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(grew, 0, "{name}: {grew} allocations in steady state");
    println!("{name:<40} allocation-free over {iters} iters");
}

fn quick() -> bool {
    std::env::var("MIMD_BENCH_QUICK").is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"))
}

/// Times `op`, prints a `name: ns/iter` line, and records the result.
///
/// Runs a short calibration pass to size the measurement loop, then takes
/// the fastest of five windows, mirroring what Criterion's point estimate
/// converges to for cheap, steady-state operations.
fn bench<T>(name: &str, mut op: impl FnMut() -> T) {
    let (window, passes) = if quick() {
        (Duration::from_millis(2), 2)
    } else {
        (Duration::from_millis(10), 5)
    };
    // Calibrate: find an iteration count that fills a window.
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(op());
        }
        if start.elapsed() >= window || iters >= 1 << 30 {
            break;
        }
        iters *= 4;
    }
    let mut best = f64::INFINITY;
    for _ in 0..passes {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(op());
        }
        let per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
        if per_iter < best {
            best = per_iter;
        }
    }
    println!("{name:<40} {best:>12.1} ns/iter");
    RESULTS.with(|r| r.borrow_mut().push((name.to_string(), best)));
}

/// Writes recorded results as JSON when `MIMD_BENCH_JSON` names a file stem.
fn emit_json() {
    let Ok(stem) = std::env::var("MIMD_BENCH_JSON") else {
        return;
    };
    if stem.is_empty() {
        return;
    }
    let records: Vec<Json> = RESULTS.with(|r| {
        r.borrow()
            .iter()
            .map(|(name, ns)| {
                Json::object([
                    ("name", Json::from(name.as_str())),
                    ("ns_per_iter", Json::from(*ns)),
                ])
            })
            .collect()
    });
    let doc = Json::object([
        ("suite", Json::from("hot_paths")),
        ("quick", Json::from(quick())),
        ("benches", Json::Arr(records)),
    ]);
    match mimd_harness::write_json(&stem, &doc) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write bench JSON: {e}"),
    }
}

#[derive(Clone)]
struct Entry {
    targets: Vec<Target>,
    at: SimTime,
}

impl Schedulable for Entry {
    fn candidates(&self) -> &[Target] {
        &self.targets
    }
    fn is_write(&self) -> bool {
        false
    }
    fn enqueued(&self) -> SimTime {
        self.at
    }
}

fn make_queue(n: usize, dr: u32, rng: &mut SimRng) -> Vec<Entry> {
    (0..n)
        .map(|i| Entry {
            targets: (0..dr)
                .map(|k| Target {
                    cylinder: rng.below(3_000) as u32,
                    surface: k,
                    angle: rng.unit(),
                    sectors: 8,
                })
                .collect(),
            at: SimTime::from_micros(i as u64),
        })
        .collect()
}

fn bench_disk_estimate() {
    for (name, path) in [
        ("detailed", TimingPath::Detailed),
        ("analytic", TimingPath::Analytic),
    ] {
        let disk = SimDisk::new(
            &DiskParams::st39133lwv(),
            path,
            PositionKnowledge::Perfect,
            1,
        )
        .expect("valid params");
        let t = Target {
            cylinder: 2_345,
            surface: 7,
            angle: 0.42,
            sectors: 8,
        };
        bench(&format!("disk_estimate/{name}"), || {
            disk.estimate(black_box(SimTime::from_micros(123)), black_box(&t), false)
        });
    }
}

fn bench_scheduler_pick() {
    let disk = SimDisk::new(
        &DiskParams::st39133lwv(),
        TimingPath::Detailed,
        PositionKnowledge::Perfect,
        2,
    )
    .expect("valid params");
    let mut rng = SimRng::seed_from(3);
    for depth in [4usize, 16, 64, 256] {
        let queue = make_queue(depth, 3, &mut rng);
        for policy in [Policy::Satf, Policy::Rsatf, Policy::Rlook] {
            let mut look = LookState::default();
            bench(&format!("scheduler_pick/{policy}/{depth}"), || {
                pick(
                    policy,
                    &disk,
                    black_box(SimTime::from_millis(5)),
                    &queue,
                    &mut look,
                    SimDuration::ZERO,
                )
            });
        }
    }
}

fn bench_drive_queue_pick() {
    // The indexed twin of `scheduler_pick`: identical entry distribution,
    // picked through the DriveQueue rotational-band / sweep indexes
    // instead of the linear candidate scan.
    let disk = SimDisk::new(
        &DiskParams::st39133lwv(),
        TimingPath::Detailed,
        PositionKnowledge::Perfect,
        2,
    )
    .expect("valid params");
    let mut rng = SimRng::seed_from(3);
    for depth in [4usize, 16, 64, 256] {
        let entries = make_queue(depth, 3, &mut rng);
        for policy in [Policy::Satf, Policy::Rsatf, Policy::Rlook] {
            let mut dq: DriveQueue<Entry> = DriveQueue::new(policy);
            for e in &entries {
                dq.insert(&disk, e.clone());
            }
            let mut look = LookState::default();
            bench(&format!("drive_queue_pick/{policy}/{depth}"), || {
                dq.pick(
                    &disk,
                    black_box(SimTime::from_millis(5)),
                    &mut look,
                    SimDuration::ZERO,
                    usize::MAX,
                )
            });
        }
    }
}

fn bench_drive_queue_churn() {
    // One request's worth of DriveQueue work at steady depth: pick the
    // best entry, remove it, insert a fresh arrival. This is the
    // per-request queue cost the engine pays, index maintenance included.
    let disk = SimDisk::new(
        &DiskParams::st39133lwv(),
        TimingPath::Detailed,
        PositionKnowledge::Perfect,
        2,
    )
    .expect("valid params");
    for depth in [4usize, 16, 64, 256] {
        let mut rng = SimRng::seed_from(11);
        let mut dq: DriveQueue<Entry> = DriveQueue::new(Policy::Rsatf);
        for e in make_queue(depth, 3, &mut rng) {
            dq.insert(&disk, e);
        }
        let mut look = LookState::default();
        let mut now = SimTime::ZERO;
        bench(&format!("drive_queue_churn/RSATF/{depth}"), || {
            now += SimDuration::from_micros(200);
            let (id, _) = dq
                .pick(
                    &disk,
                    black_box(now),
                    &mut look,
                    SimDuration::ZERO,
                    usize::MAX,
                )
                .expect("non-empty");
            let mut e = dq.remove(id).expect("live");
            for t in &mut e.targets {
                t.cylinder = rng.below(3_000) as u32;
                t.angle = rng.unit();
            }
            e.at = now;
            dq.insert(&disk, e)
        });
    }
}

fn bench_layout_translation() {
    let g = Geometry::new(&DiskParams::st39133lwv());
    let layout = Layout::new(
        Shape::new(3, 2, 2).expect("valid"),
        &g,
        8_000_000,
        128,
        false,
    )
    .expect("fits");
    let mut rng = SimRng::seed_from(4);
    let lbns: Vec<u64> = (0..1024).map(|_| rng.below(7_900_000)).collect();
    let mut i = 0;
    bench("layout_read_candidates", || {
        i = (i + 1) % lbns.len();
        let frag = layout.fragments(lbns[i], 16);
        layout.read_candidates(black_box(frag[0]))
    });
}

fn bench_seek_fit() {
    let params = DiskParams::st39133lwv();
    bench("seek_profile_fit", || {
        SeekProfile::fit(black_box(&params)).expect("fits")
    });
}

fn bench_seek_estimation() {
    // The per-candidate seek-time kernel: a sweep of cylinder distances
    // with the stride pattern a scheduler scan produces.
    let params = DiskParams::st39133lwv();
    let profile = SeekProfile::fit(&params).expect("fits");
    let mut rng = SimRng::seed_from(5);
    let cyls = params.total_cylinders();
    let distances: Vec<u32> = (0..1024).map(|_| rng.below(cyls as u64) as u32).collect();
    let mut i = 0;
    bench("seek_estimation/read", || {
        i = (i + 1) % distances.len();
        profile.seek(black_box(distances[i]))
    });
    let mut j = 0;
    bench("seek_estimation/write", || {
        j = (j + 1) % distances.len();
        profile.seek_write(black_box(distances[j]))
    });
}

fn bench_engine_closed_loop() {
    let data = 16_000_000u64;
    let spec = IometerSpec::microbench(data, 1.0);
    bench("engine_1k_requests_2x3", || {
        let mut sim = ArraySim::new(
            EngineConfig::new(Shape::sr_array(2, 3).expect("valid")).with_perfect_knowledge(),
            data,
        )
        .expect("fits");
        sim.run_closed_loop(black_box(&spec), 16, 1_000).completed
    });
}

fn bench_engine_depth_sweep() {
    // Whole-engine cost as a function of per-array queue depth. A narrow
    // shape (1 logical disk, 3-way rotational replication) concentrates the
    // queue on few spindles, so deep-queue scheduling dominates the profile.
    let data = 16_000_000u64;
    let spec = IometerSpec::microbench(data, 1.0);
    for q in [4usize, 16, 64, 256] {
        bench(&format!("engine_depth/q{q}"), || {
            let mut sim = ArraySim::new(
                EngineConfig::new(Shape::sr_array(1, 3).expect("valid")).with_perfect_knowledge(),
                data,
            )
            .expect("fits");
            sim.run_closed_loop(black_box(&spec), q, 1_000).completed
        });
    }
}

fn assert_steady_state_alloc_free() {
    // The scheduler pick path must not allocate once scratch capacity has
    // grown: the bound-ordered scan reuses `LookState` buffers across calls.
    let disk = SimDisk::new(
        &DiskParams::st39133lwv(),
        TimingPath::Detailed,
        PositionKnowledge::Perfect,
        2,
    )
    .expect("valid params");
    let mut rng = SimRng::seed_from(7);
    let queue = make_queue(256, 3, &mut rng);
    for policy in [Policy::Satf, Policy::Rsatf, Policy::Rlook] {
        let mut look = LookState::default();
        assert_allocation_free(&format!("alloc_free/pick/{policy}/256"), 100, || {
            pick(
                policy,
                &disk,
                black_box(SimTime::from_millis(5)),
                &queue,
                &mut look,
                SimDuration::ZERO,
            )
        });
    }
}

fn bench_trace_generation() {
    let spec = SyntheticSpec::cello_base();
    bench("generate_cello_1k", || {
        spec.generate(black_box(9), 1_000).len()
    });
}

fn bench_engine_replay() {
    // What the shared-workload arenas buy a grid: `legacy` pays the
    // generation cost per job (the pre-arena pattern — every cell built
    // its own trace), `arena` replays the process-shared struct-of-arrays
    // stream through `run_source`. Same simulated work, same output.
    let spec = SyntheticSpec::cello_base();
    let cfg = || EngineConfig::new(Shape::sr_array(2, 3).expect("valid")).with_perfect_knowledge();
    let arena = mimd_harness::shared_arena(&spec, 9, 1_000);
    bench("engine_replay/legacy_generate", || {
        let trace = spec.generate(black_box(9), 1_000);
        let mut sim = ArraySim::new(cfg(), trace.data_sectors).expect("fits");
        sim.run_trace(&trace).completed
    });
    bench("engine_replay/arena", || {
        let mut sim = ArraySim::new(cfg(), arena.data_sectors()).expect("fits");
        sim.run_source(black_box(arena.as_ref())).completed
    });
}

fn main() {
    if std::env::var("MIMD_ALLOC_PROFILE").is_ok() {
        let data = 16_000_000u64;
        let spec = IometerSpec::microbench(data, 1.0);
        for q in [4usize, 64] {
            let mut sim = ArraySim::new(
                EngineConfig::new(Shape::sr_array(1, 3).expect("valid")).with_perfect_knowledge(),
                data,
            )
            .expect("fits");
            let before = ALLOCATIONS.load(Ordering::Relaxed);
            sim.run_closed_loop(&spec, q, 1_000);
            let grew = ALLOCATIONS.load(Ordering::Relaxed) - before;
            println!("engine_depth/q{q}: {grew} allocations / 1000 requests");
        }
        return;
    }
    bench_disk_estimate();
    bench_scheduler_pick();
    bench_drive_queue_pick();
    bench_drive_queue_churn();
    bench_layout_translation();
    bench_seek_fit();
    bench_seek_estimation();
    bench_engine_closed_loop();
    bench_engine_depth_sweep();
    bench_trace_generation();
    bench_engine_replay();
    assert_steady_state_alloc_free();
    emit_json();
}
