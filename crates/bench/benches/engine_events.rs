//! Whole-engine events/sec ceiling: the figure every grid sweep
//! multiplies.
//!
//! `engine_depth` (in `hot_paths`) times 1000 *requests*; this bench pins
//! the complementary figure of merit — nanoseconds per popped *event*
//! (`ArraySim::last_run_events`) and its reciprocal, events per second —
//! across the shapes the paper's experiments lean on: a narrow 3-way
//! rotationally-replicated array at shallow and deep queues (scheduling
//! bound) and an 8-disk RAID-10 (dispatch/fan-out bound).
//!
//! Records go to the bench JSON as `engine_events/<shape>/<depth>` with
//! `ns_per_iter` = ns/event so `bench_check` can gate them like any other
//! bench; the document also carries a top-level `events_per_sec` summary
//! for the CI artifact.
//!
//! Environment knobs match `hot_paths`: `MIMD_BENCH_QUICK=1` shrinks the
//! workload, `MIMD_BENCH_JSON=<stem>` writes the JSON records.

use std::hint::black_box;
use std::time::Instant;

use mimd_core::{ArraySim, EngineConfig, Shape};
use mimd_harness::Json;
use mimd_workload::IometerSpec;

fn quick() -> bool {
    std::env::var("MIMD_BENCH_QUICK").is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"))
}

fn main() {
    let (passes, requests) = if quick() { (2, 2_000) } else { (3, 10_000) };
    let data = 16_000_000u64;
    let spec = IometerSpec::microbench(data, 1.0);
    let cells: &[(&str, Shape, usize)] = &[
        ("sr1x3/q16", Shape::sr_array(1, 3).expect("valid shape"), 16),
        (
            "sr1x3/q256",
            Shape::sr_array(1, 3).expect("valid shape"),
            256,
        ),
        ("raid10_8/q64", Shape::raid10(8).expect("valid shape"), 64),
    ];

    let mut records: Vec<Json> = Vec::new();
    let mut summary: Vec<(String, Json)> = Vec::new();
    println!("engine_events: {requests} requests/cell, best of {passes}");
    for (label, shape, depth) in cells {
        let mut best_wall_ns = f64::INFINITY;
        let mut events = 0u64;
        for _ in 0..passes {
            let mut sim = ArraySim::new(EngineConfig::new(*shape).with_perfect_knowledge(), data)
                .expect("workload fits the shape");
            let start = Instant::now();
            let report = black_box(sim.run_closed_loop(black_box(&spec), *depth, requests));
            let wall = start.elapsed().as_nanos() as f64;
            assert!(report.completed >= requests);
            events = sim.last_run_events();
            if wall < best_wall_ns {
                best_wall_ns = wall;
            }
        }
        assert!(events > 0);
        let ns_per_event = best_wall_ns / events as f64;
        let events_per_sec = 1e9 / ns_per_event;
        println!(
            "{label:<14} {ns_per_event:>8.1} ns/event {events_per_sec:>12.0} events/s \
             ({events} events)"
        );
        records.push(Json::object([
            (
                "name",
                Json::from(format!("engine_events/{label}").as_str()),
            ),
            ("ns_per_iter", Json::from(ns_per_event)),
        ]));
        summary.push((format!("engine_events/{label}"), Json::from(events_per_sec)));
    }

    if let Ok(stem) = std::env::var("MIMD_BENCH_JSON") {
        if !stem.is_empty() {
            let doc = Json::object([
                ("suite", Json::from("engine_events")),
                ("quick", Json::from(quick())),
                ("events_per_sec", Json::Obj(summary)),
                ("benches", Json::Arr(records)),
            ]);
            match mimd_harness::write_json(&stem, &doc) {
                Ok(path) => println!("wrote {}", path.display()),
                Err(e) => eprintln!("failed to write bench JSON: {e}"),
            }
        }
    }
}
