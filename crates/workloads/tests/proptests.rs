//! Property tests for traces and generators, driven by the deterministic
//! in-repo harness (`mimd_sim::check`).

use mimd_sim::check::{check_cases, f64_in};
use mimd_sim::{SimRng, SimTime};
use mimd_workload::io::{read_trace, write_trace};
use mimd_workload::{Op, Request, SyntheticSpec, Trace, TraceStats};

fn arb_op(rng: &mut SimRng) -> Op {
    match rng.below(3) {
        0 => Op::Read,
        1 => Op::SyncWrite,
        _ => Op::AsyncWrite,
    }
}

fn arb_request(rng: &mut SimRng, data: u64) -> Request {
    Request {
        id: 0,
        arrival: SimTime::from_micros(rng.below(1 << 40)),
        op: arb_op(rng),
        lbn: rng.below(data - 256),
        sectors: rng.range(1, 256) as u32,
    }
}

fn arb_requests(rng: &mut SimRng, data: u64, lo: u64, hi: u64) -> Vec<Request> {
    let n = lo + rng.below(hi - lo);
    (0..n).map(|_| arb_request(rng, data)).collect()
}

#[test]
fn trace_io_round_trips() {
    check_cases("trace io round trips", 256, |_, rng| {
        let reqs = arb_requests(rng, 1_000_000, 0, 100);
        let t = Trace::new("prop", 1_000_000, reqs);
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).expect("write");
        let back = read_trace(buf.as_slice()).expect("read");
        assert_eq!(back.len(), t.len());
        assert_eq!(back.data_sectors, t.data_sectors);
        for (a, b) in t.requests().iter().zip(back.requests()) {
            assert_eq!(a.op, b.op);
            assert_eq!(a.lbn, b.lbn);
            assert_eq!(a.sectors, b.sectors);
            assert_eq!(a.arrival, b.arrival); // Microsecond inputs are exact.
        }
    });
}

#[test]
fn traces_are_sorted_and_renumbered() {
    check_cases("traces are sorted and renumbered", 256, |_, rng| {
        let reqs = arb_requests(rng, 1_000_000, 1, 100);
        let t = Trace::new("prop", 1_000_000, reqs);
        for (i, w) in t.requests().windows(2).enumerate() {
            assert!(w[0].arrival <= w[1].arrival);
            assert_eq!(w[0].id, i as u64);
        }
    });
}

#[test]
fn merge_concat_preserves_counts_and_offsets() {
    check_cases(
        "merge_concat preserves counts and offsets",
        256,
        |_, rng| {
            let a = arb_requests(rng, 10_000, 0, 50);
            let b = arb_requests(rng, 10_000, 0, 50);
            let ta = Trace::new("a", 10_000, a);
            let tb = Trace::new("b", 10_000, b);
            let m = ta.merge_concat(&tb);
            assert_eq!(m.len(), ta.len() + tb.len());
            assert_eq!(m.data_sectors, 20_000);
            assert!(m.max_block() <= 20_000);
            // Every b-block appears offset by ta's data size.
            let b_blocks: Vec<u64> = tb.requests().iter().map(|r| r.lbn + 10_000).collect();
            for blk in b_blocks {
                assert!(m.requests().iter().any(|r| r.lbn == blk));
            }
        },
    );
}

#[test]
fn truncate_then_scale_commutes() {
    check_cases("truncate then scale commutes", 256, |_, rng| {
        let reqs = arb_requests(rng, 100_000, 2, 60);
        let n = rng.range(1, 30) as usize;
        let rate = f64_in(rng, 1.0, 32.0);
        let t = Trace::new("prop", 100_000, reqs);
        let a = t.truncated(n).scaled(rate);
        let b = t.scaled(rate).truncated(n);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.requests().iter().zip(b.requests()) {
            assert_eq!(x.lbn, y.lbn);
            assert_eq!(x.arrival, y.arrival);
        }
    });
}

#[test]
fn generator_respects_bounds_for_any_seed() {
    check_cases("generator respects bounds for any seed", 64, |_, rng| {
        let seed = rng.below(500);
        let t = SyntheticSpec::cello_base().generate(seed, 300);
        assert_eq!(t.len(), 300);
        assert!(t.max_block() <= t.data_sectors);
        for w in t.requests().windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
    });
}

#[test]
fn stats_fractions_are_probabilities() {
    check_cases("stats fractions are probabilities", 48, |_, rng| {
        let seed = rng.below(100);
        let t = SyntheticSpec::tpcc().generate(seed, 400);
        let s = TraceStats::of(&t);
        assert!((0.0..=1.0).contains(&s.read_frac));
        assert!((0.0..=1.0).contains(&s.async_write_frac));
        assert!((0.0..=1.0).contains(&s.read_after_write_1h));
        assert!(s.read_frac + s.async_write_frac <= 1.0 + 1e-12);
        assert!(s.seek_locality >= 1.0);
        // p_ratio is monotone decreasing in the foreground share.
        assert!(s.p_ratio(0.0) >= s.p_ratio(0.5));
        assert!(s.p_ratio(0.5) >= s.p_ratio(1.0));
    });
}
