//! Property tests for traces and generators.

use proptest::prelude::*;

use mimd_sim::SimTime;
use mimd_workload::io::{read_trace, write_trace};
use mimd_workload::{Op, Request, SyntheticSpec, Trace, TraceStats};

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![Just(Op::Read), Just(Op::SyncWrite), Just(Op::AsyncWrite),]
}

fn arb_request(data: u64) -> impl Strategy<Value = Request> {
    (0u64..1 << 40, arb_op(), 0u64..data - 256, 1u32..256).prop_map(
        move |(us, op, lbn, sectors)| Request {
            id: 0,
            arrival: SimTime::from_micros(us),
            op,
            lbn,
            sectors,
        },
    )
}

proptest! {
    #[test]
    fn trace_io_round_trips(reqs in prop::collection::vec(arb_request(1_000_000), 0..100)) {
        let t = Trace::new("prop", 1_000_000, reqs);
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).expect("write");
        let back = read_trace(buf.as_slice()).expect("read");
        prop_assert_eq!(back.len(), t.len());
        prop_assert_eq!(back.data_sectors, t.data_sectors);
        for (a, b) in t.requests().iter().zip(back.requests()) {
            prop_assert_eq!(a.op, b.op);
            prop_assert_eq!(a.lbn, b.lbn);
            prop_assert_eq!(a.sectors, b.sectors);
            prop_assert_eq!(a.arrival, b.arrival); // Microsecond inputs are exact.
        }
    }

    #[test]
    fn traces_are_sorted_and_renumbered(reqs in prop::collection::vec(arb_request(1_000_000), 1..100)) {
        let t = Trace::new("prop", 1_000_000, reqs);
        for (i, w) in t.requests().windows(2).enumerate() {
            prop_assert!(w[0].arrival <= w[1].arrival);
            prop_assert_eq!(w[0].id, i as u64);
        }
    }

    #[test]
    fn merge_concat_preserves_counts_and_offsets(
        a in prop::collection::vec(arb_request(10_000), 0..50),
        b in prop::collection::vec(arb_request(10_000), 0..50),
    ) {
        let ta = Trace::new("a", 10_000, a);
        let tb = Trace::new("b", 10_000, b);
        let m = ta.merge_concat(&tb);
        prop_assert_eq!(m.len(), ta.len() + tb.len());
        prop_assert_eq!(m.data_sectors, 20_000);
        prop_assert!(m.max_block() <= 20_000);
        // Every b-block appears offset by ta's data size.
        let b_blocks: Vec<u64> = tb.requests().iter().map(|r| r.lbn + 10_000).collect();
        for blk in b_blocks {
            prop_assert!(m.requests().iter().any(|r| r.lbn == blk));
        }
    }

    #[test]
    fn truncate_then_scale_commutes(
        reqs in prop::collection::vec(arb_request(100_000), 2..60),
        n in 1usize..30,
        rate in 1.0f64..32.0,
    ) {
        let t = Trace::new("prop", 100_000, reqs);
        let a = t.truncated(n).scaled(rate);
        let b = t.scaled(rate).truncated(n);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.requests().iter().zip(b.requests()) {
            prop_assert_eq!(x.lbn, y.lbn);
            prop_assert_eq!(x.arrival, y.arrival);
        }
    }

    #[test]
    fn generator_respects_bounds_for_any_seed(seed in 0u64..500) {
        let t = SyntheticSpec::cello_base().generate(seed, 300);
        prop_assert_eq!(t.len(), 300);
        prop_assert!(t.max_block() <= t.data_sectors);
        for w in t.requests().windows(2) {
            prop_assert!(w[0].arrival <= w[1].arrival);
        }
    }

    #[test]
    fn stats_fractions_are_probabilities(seed in 0u64..100) {
        let t = SyntheticSpec::tpcc().generate(seed, 400);
        let s = TraceStats::of(&t);
        prop_assert!((0.0..=1.0).contains(&s.read_frac));
        prop_assert!((0.0..=1.0).contains(&s.async_write_frac));
        prop_assert!((0.0..=1.0).contains(&s.read_after_write_1h));
        prop_assert!(s.read_frac + s.async_write_frac <= 1.0 + 1e-12);
        prop_assert!(s.seek_locality >= 1.0);
        // p_ratio is monotone decreasing in the foreground share.
        prop_assert!(s.p_ratio(0.0) >= s.p_ratio(0.5));
        prop_assert!(s.p_ratio(0.5) >= s.p_ratio(1.0));
    }
}
