//! Closed-loop synthetic load generation (the paper's Iometer role).
//!
//! Iometer "can generate different workloads of various characteristics
//! including read/write ratio, request size, and the maximum number of
//! outstanding requests" (§3.5). This module provides the request stream;
//! the array engine keeps the configured number of requests outstanding by
//! drawing a new one on every completion.

use mimd_sim::SimRng;

use crate::request::Op;

/// Access pattern of the closed-loop stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Uniformly random within the locality span.
    Random,
    /// Sequential from block 0, wrapping at the data-set end — the
    /// "large I/O" regime of §2.2's bandwidth discussion.
    Sequential,
}

/// Specification of an Iometer-like closed-loop workload.
#[derive(Debug, Clone, Copy)]
pub struct IometerSpec {
    /// Fraction of requests that are reads; the rest are synchronous
    /// writes (Iometer has no async-write notion).
    pub read_frac: f64,
    /// Request size in sectors.
    pub sectors: u32,
    /// Logical data-set size in sectors.
    pub data_sectors: u64,
    /// Seek-locality index: accesses are uniform over the first
    /// `1 / seek_locality` of the data set, making the mean logical hop
    /// `N / (3 L)` — the definition used throughout the micro-benchmarks
    /// ("we use a seek locality index of 3", §4.2).
    pub seek_locality: f64,
    /// Random or sequential addressing.
    pub access: Access,
}

impl IometerSpec {
    /// Random 512-byte reads over the whole data set — the Figure 5
    /// validation workload.
    pub fn random_read_512(data_sectors: u64) -> Self {
        IometerSpec {
            read_frac: 1.0,
            sectors: 1,
            data_sectors,
            seek_locality: 1.0,
            access: Access::Random,
        }
    }

    /// The 50/50 read/write variant of the Figure 5 workload.
    pub fn mixed_512(data_sectors: u64) -> Self {
        IometerSpec {
            read_frac: 0.5,
            sectors: 1,
            data_sectors,
            seek_locality: 1.0,
            access: Access::Random,
        }
    }

    /// The micro-benchmark operating point of §4.2: configurable read
    /// fraction, 4 KiB requests, seek-locality index 3.
    pub fn microbench(data_sectors: u64, read_frac: f64) -> Self {
        IometerSpec {
            read_frac,
            sectors: 8,
            data_sectors,
            seek_locality: 3.0,
            access: Access::Random,
        }
    }

    /// A sequential streaming-read workload of `sectors`-sized requests.
    pub fn sequential_read(data_sectors: u64, sectors: u32) -> Self {
        IometerSpec {
            read_frac: 1.0,
            sectors,
            data_sectors,
            seek_locality: 1.0,
            access: Access::Sequential,
        }
    }

    /// Draws the next request: `(op, lbn, sectors)`.
    ///
    /// # Panics
    ///
    /// Panics if the spec is inconsistent (zero-size data set or request,
    /// locality below 1).
    ///
    /// # Examples
    ///
    /// ```
    /// use mimd_sim::SimRng;
    /// use mimd_workload::IometerSpec;
    ///
    /// let spec = IometerSpec::random_read_512(1_000_000);
    /// let mut rng = SimRng::seed_from(1);
    /// let (op, lbn, sectors) = spec.next(&mut rng);
    /// assert_eq!(op, mimd_workload::Op::Read);
    /// assert!(lbn < 1_000_000);
    /// assert_eq!(sectors, 1);
    /// ```
    pub fn next(&self, rng: &mut SimRng) -> (Op, u64, u32) {
        self.next_at(rng, 0)
    }

    /// Draws the request with sequence number `seq` (used by sequential
    /// streams, where `seq` determines the position; random streams ignore
    /// it).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`IometerSpec::next`].
    pub fn next_at(&self, rng: &mut SimRng, seq: u64) -> (Op, u64, u32) {
        assert!(self.sectors > 0, "zero-length requests");
        assert!(
            self.data_sectors > self.sectors as u64,
            "data set too small"
        );
        assert!(self.seek_locality >= 1.0, "locality index is >= 1");
        let op = if rng.chance(self.read_frac) {
            Op::Read
        } else {
            Op::SyncWrite
        };
        let lbn = match self.access {
            Access::Random => {
                let span = ((self.data_sectors as f64 / self.seek_locality) as u64)
                    .clamp(self.sectors as u64 + 1, self.data_sectors);
                rng.below(span - self.sectors as u64)
            }
            Access::Sequential => {
                let stride = self.sectors as u64;
                (seq * stride) % (self.data_sectors - stride)
            }
        };
        (op, lbn, self.sectors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_fraction_converges() {
        let spec = IometerSpec::mixed_512(1_000_000);
        let mut rng = SimRng::seed_from(2);
        let n = 50_000;
        let reads = (0..n)
            .filter(|_| matches!(spec.next(&mut rng).0, Op::Read))
            .count();
        let frac = reads as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "read frac {frac}");
    }

    #[test]
    fn pure_read_spec_never_writes() {
        let spec = IometerSpec::random_read_512(1_000_000);
        let mut rng = SimRng::seed_from(3);
        for _ in 0..1_000 {
            assert_eq!(spec.next(&mut rng).0, Op::Read);
        }
    }

    #[test]
    fn locality_restricts_span() {
        let spec = IometerSpec::microbench(900_000, 1.0);
        let mut rng = SimRng::seed_from(4);
        let span = 900_000 / 3;
        for _ in 0..10_000 {
            let (_, lbn, sectors) = spec.next(&mut rng);
            assert!(lbn + sectors as u64 <= span as u64 + sectors as u64);
            assert_eq!(sectors, 8);
        }
    }

    #[test]
    fn requests_stay_in_bounds() {
        let spec = IometerSpec {
            read_frac: 0.3,
            sectors: 64,
            data_sectors: 10_000,
            seek_locality: 1.0,
            access: Access::Random,
        };
        let mut rng = SimRng::seed_from(5);
        for _ in 0..10_000 {
            let (_, lbn, sectors) = spec.next(&mut rng);
            assert!(lbn + sectors as u64 <= 10_000);
        }
    }

    #[test]
    fn locality_one_covers_most_of_the_set() {
        let spec = IometerSpec::random_read_512(100_000);
        let mut rng = SimRng::seed_from(6);
        let max = (0..20_000).map(|_| spec.next(&mut rng).1).max().unwrap();
        assert!(max > 95_000, "max lbn {max}");
    }

    #[test]
    fn sequential_stream_walks_forward() {
        let spec = IometerSpec::sequential_read(10_000, 64);
        let mut rng = SimRng::seed_from(8);
        for seq in 0..100u64 {
            let (op, lbn, sectors) = spec.next_at(&mut rng, seq);
            assert_eq!(op, Op::Read);
            assert_eq!(sectors, 64);
            assert_eq!(lbn, (seq * 64) % (10_000 - 64));
        }
    }

    #[test]
    fn sequential_stream_wraps_in_bounds() {
        let spec = IometerSpec::sequential_read(1_000, 128);
        let mut rng = SimRng::seed_from(9);
        for seq in 0..1_000u64 {
            let (_, lbn, sectors) = spec.next_at(&mut rng, seq);
            assert!(lbn + sectors as u64 <= 1_000, "seq {seq} lbn {lbn}");
        }
    }

    #[test]
    #[should_panic(expected = "locality")]
    fn rejects_bad_locality() {
        let spec = IometerSpec {
            read_frac: 1.0,
            sectors: 1,
            data_sectors: 1_000,
            seek_locality: 0.0,
            access: Access::Random,
        };
        let mut rng = SimRng::seed_from(7);
        let _ = spec.next(&mut rng);
    }
}
