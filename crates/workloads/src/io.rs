//! Plain-text trace serialization.
//!
//! A downstream user reproduces the paper's experiments on *their own*
//! traces by converting them to this format. One record per line:
//!
//! ```text
//! # mimdraid-trace v1 name=<name> data_sectors=<n>
//! <arrival_us> <R|W|A> <lbn> <sectors>
//! ```
//!
//! `R` = read, `W` = synchronous write, `A` = asynchronous write. Arrival
//! times are microseconds from trace start. Lines starting with `#` after
//! the header are comments. The format intentionally matches what one can
//! produce from `blktrace`/`blkparse` output with a one-line awk script.

use std::io::{BufRead, Write};

use mimd_sim::SimTime;

use crate::request::{Op, Request};
use crate::trace::Trace;

/// Errors while reading a trace file.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Missing or malformed header line.
    BadHeader(String),
    /// Malformed record, with its line number.
    BadRecord {
        /// 1-based line number.
        line: usize,
        /// Problem description.
        reason: String,
    },
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "I/O error: {e}"),
            TraceIoError::BadHeader(h) => write!(f, "bad trace header: {h:?}"),
            TraceIoError::BadRecord { line, reason } => {
                write!(f, "bad record at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

fn op_code(op: Op) -> char {
    match op {
        Op::Read => 'R',
        Op::SyncWrite => 'W',
        Op::AsyncWrite => 'A',
    }
}

fn parse_op(s: &str) -> Option<Op> {
    match s {
        "R" => Some(Op::Read),
        "W" => Some(Op::SyncWrite),
        "A" => Some(Op::AsyncWrite),
        _ => None,
    }
}

/// Writes a trace in the v1 text format.
///
/// # Examples
///
/// ```
/// use mimd_workload::{io::{read_trace, write_trace}, SyntheticSpec};
///
/// let t = SyntheticSpec::tpcc().generate(1, 50);
/// let mut buf = Vec::new();
/// write_trace(&t, &mut buf).unwrap();
/// let back = read_trace(buf.as_slice()).unwrap();
/// assert_eq!(back.len(), 50);
/// assert_eq!(back.data_sectors, t.data_sectors);
/// ```
pub fn write_trace<W: Write>(trace: &Trace, mut out: W) -> Result<(), TraceIoError> {
    writeln!(
        out,
        "# mimdraid-trace v1 name={} data_sectors={}",
        trace.name.replace(char::is_whitespace, "_"),
        trace.data_sectors
    )?;
    for r in trace.requests() {
        writeln!(
            out,
            "{} {} {} {}",
            r.arrival.as_nanos() / 1_000,
            op_code(r.op),
            r.lbn,
            r.sectors
        )?;
    }
    Ok(())
}

/// Reads a trace in the v1 text format.
pub fn read_trace<R: BufRead>(input: R) -> Result<Trace, TraceIoError> {
    let mut lines = input.lines();
    let header = lines
        .next()
        .ok_or_else(|| TraceIoError::BadHeader("empty input".into()))??;
    if !header.starts_with("# mimdraid-trace v1") {
        return Err(TraceIoError::BadHeader(header));
    }
    let mut name = String::from("trace");
    let mut data_sectors: Option<u64> = None;
    for field in header.split_whitespace() {
        if let Some(v) = field.strip_prefix("name=") {
            name = v.to_string();
        } else if let Some(v) = field.strip_prefix("data_sectors=") {
            data_sectors = v.parse().ok();
        }
    }
    let data_sectors = data_sectors
        .ok_or_else(|| TraceIoError::BadHeader(format!("missing data_sectors: {header}")))?;

    let mut requests = Vec::new();
    for (i, line) in lines.enumerate() {
        let line_no = i + 2;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let bad = |reason: &str| TraceIoError::BadRecord {
            line: line_no,
            reason: reason.into(),
        };
        let arrival_us: u64 = parts
            .next()
            .ok_or_else(|| bad("missing arrival"))?
            .parse()
            .map_err(|_| bad("unparseable arrival"))?;
        let op = parse_op(parts.next().ok_or_else(|| bad("missing op"))?)
            .ok_or_else(|| bad("op must be R, W, or A"))?;
        let lbn: u64 = parts
            .next()
            .ok_or_else(|| bad("missing lbn"))?
            .parse()
            .map_err(|_| bad("unparseable lbn"))?;
        let sectors: u32 = parts
            .next()
            .ok_or_else(|| bad("missing sectors"))?
            .parse()
            .map_err(|_| bad("unparseable sectors"))?;
        if sectors == 0 {
            return Err(bad("zero-length request"));
        }
        if lbn + sectors as u64 > data_sectors {
            return Err(bad("request beyond data_sectors"));
        }
        if parts.next().is_some() {
            return Err(bad("trailing fields"));
        }
        requests.push(Request {
            id: 0,
            arrival: SimTime::from_micros(arrival_us),
            op,
            lbn,
            sectors,
        });
    }
    Ok(Trace::new(name, data_sectors, requests))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SyntheticSpec;

    #[test]
    fn round_trip_preserves_everything_to_microsecond() {
        let t = SyntheticSpec::cello_base().generate(3, 500);
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).expect("write");
        let back = read_trace(buf.as_slice()).expect("read");
        assert_eq!(back.len(), t.len());
        assert_eq!(back.data_sectors, t.data_sectors);
        for (a, b) in t.requests().iter().zip(back.requests()) {
            assert_eq!(a.op, b.op);
            assert_eq!(a.lbn, b.lbn);
            assert_eq!(a.sectors, b.sectors);
            // Arrivals round to the microsecond on disk.
            assert!(a.arrival.as_nanos().abs_diff(b.arrival.as_nanos()) < 1_000);
        }
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "# mimdraid-trace v1 name=x data_sectors=1000\n\
                    \n\
                    # a comment\n\
                    10 R 0 8\n\
                    20 W 100 16\n\
                    30 A 200 2\n";
        let t = read_trace(text.as_bytes()).expect("read");
        assert_eq!(t.len(), 3);
        assert_eq!(t.requests()[0].op, Op::Read);
        assert_eq!(t.requests()[1].op, Op::SyncWrite);
        assert_eq!(t.requests()[2].op, Op::AsyncWrite);
        assert_eq!(t.name, "x");
    }

    #[test]
    fn rejects_bad_header() {
        assert!(matches!(
            read_trace("hello\n".as_bytes()),
            Err(TraceIoError::BadHeader(_))
        ));
        assert!(matches!(
            read_trace("# mimdraid-trace v1 name=x\n".as_bytes()),
            Err(TraceIoError::BadHeader(_))
        ));
        assert!(matches!(
            read_trace("".as_bytes()),
            Err(TraceIoError::BadHeader(_))
        ));
    }

    #[test]
    fn rejects_malformed_records() {
        let base = "# mimdraid-trace v1 name=x data_sectors=1000\n";
        for bad in [
            "10 R 0\n",
            "10 X 0 8\n",
            "abc R 0 8\n",
            "10 R 0 0\n",
            "10 R 999 8\n",
            "10 R 0 8 extra\n",
        ] {
            let text = format!("{base}{bad}");
            let r = read_trace(text.as_bytes());
            assert!(
                matches!(r, Err(TraceIoError::BadRecord { line: 2, .. })),
                "accepted {bad:?}"
            );
        }
    }

    #[test]
    fn errors_display_reason() {
        let text = "# mimdraid-trace v1 name=x data_sectors=1000\n10 R 0\n";
        let err = read_trace(text.as_bytes()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "{msg}");
    }
}
