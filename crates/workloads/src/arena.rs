//! Shared, struct-of-arrays workload storage.
//!
//! Experiment grids replay the same request stream into dozens of
//! simulator configurations. [`WorkloadArena`] stores one generated
//! stream in struct-of-arrays form — parallel `arrivals` / `ops` / `lbns`
//! / `sectors` columns — behind an `Arc`, so every grid job walks the
//! same immutable memory instead of regenerating (or cloning) the trace
//! per job. Replay is an index walk: [`RequestSource::get`] reassembles
//! the `i`-th [`Request`] from the columns without allocating.
//!
//! [`RequestSource`] is the replay abstraction the engine consumes: both
//! [`Trace`] (array-of-structs, the construction/transformation type) and
//! [`WorkloadArena`] implement it, and `ArraySim::run_source` accepts
//! either. A trace and the arena built from it replay **identically** —
//! `get` returns the same `Request` values in the same order — which is
//! what keeps the arena path value-exact (see the round-trip test).

use mimd_sim::SimTime;

use crate::request::{Op, Request};
use crate::trace::Trace;

/// An indexed, immutable request stream the engine can replay.
pub trait RequestSource {
    /// Human-readable stream name (for labels and fingerprints).
    fn source_name(&self) -> &str;
    /// Size of the logical data set, in sectors.
    fn data_sectors(&self) -> u64;
    /// Number of requests.
    fn len(&self) -> usize;
    /// The `i`-th request, in arrival order.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    fn get(&self, i: usize) -> Request;
    /// Whether the stream is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl RequestSource for Trace {
    fn source_name(&self) -> &str {
        &self.name
    }
    fn data_sectors(&self) -> u64 {
        self.data_sectors
    }
    fn len(&self) -> usize {
        self.requests().len()
    }
    fn get(&self, i: usize) -> Request {
        self.requests()[i]
    }
}

/// One request stream in struct-of-arrays layout.
///
/// # Examples
///
/// ```
/// use mimd_workload::{RequestSource, SyntheticSpec, WorkloadArena};
///
/// let trace = SyntheticSpec::cello_base().generate(1, 100);
/// let arena = WorkloadArena::from_trace(&trace);
/// assert_eq!(arena.len(), trace.len());
/// assert_eq!(arena.get(42), trace.requests()[42]);
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadArena {
    name: String,
    data_sectors: u64,
    arrivals: Vec<SimTime>,
    ops: Vec<Op>,
    lbns: Vec<u64>,
    sectors: Vec<u32>,
}

impl WorkloadArena {
    /// Builds an arena holding `trace`'s requests in column form.
    pub fn from_trace(trace: &Trace) -> WorkloadArena {
        let reqs = trace.requests();
        WorkloadArena {
            name: trace.name.clone(),
            data_sectors: trace.data_sectors,
            arrivals: reqs.iter().map(|r| r.arrival).collect(),
            ops: reqs.iter().map(|r| r.op).collect(),
            lbns: reqs.iter().map(|r| r.lbn).collect(),
            sectors: reqs.iter().map(|r| r.sectors).collect(),
        }
    }

    /// The stream's name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl RequestSource for WorkloadArena {
    fn source_name(&self) -> &str {
        &self.name
    }
    fn data_sectors(&self) -> u64 {
        self.data_sectors
    }
    fn len(&self) -> usize {
        self.arrivals.len()
    }
    fn get(&self, i: usize) -> Request {
        Request {
            // Trace construction renumbers ids to 0..n in arrival order,
            // so the index IS the id.
            id: i as u64,
            arrival: self.arrivals[i],
            op: self.ops[i],
            lbn: self.lbns[i],
            sectors: self.sectors[i],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SyntheticSpec;

    #[test]
    fn arena_round_trips_trace_exactly() {
        let trace = SyntheticSpec::tpcc().generate(9, 500);
        let arena = WorkloadArena::from_trace(&trace);
        assert_eq!(arena.source_name(), trace.source_name());
        assert_eq!(arena.data_sectors(), trace.data_sectors);
        assert_eq!(arena.len(), trace.len());
        for (i, &want) in trace.requests().iter().enumerate() {
            assert_eq!(arena.get(i), want, "request {i}");
        }
    }

    #[test]
    fn empty_arena() {
        let trace = Trace::new("empty", 1_000, vec![]);
        let arena = WorkloadArena::from_trace(&trace);
        assert!(arena.is_empty());
        assert_eq!(arena.len(), 0);
    }
}
