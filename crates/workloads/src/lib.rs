//! Workloads for the MimdRAID reproduction: request/trace types, Table-3
//! statistics, and synthetic generators standing in for the paper's
//! proprietary traces.
//!
//! - [`request`]: the logical I/O vocabulary ([`Op`], [`Request`]).
//! - [`trace`]: trace containers with merge/concat, rate scaling, and
//!   truncation ([`Trace`]).
//! - [`stats`]: trace characterisation — read fraction, seek-locality
//!   index `L`, one-hour read-after-write — exactly the rows of the
//!   paper's Table 3 ([`TraceStats`]).
//! - [`synth`]: open-loop generators matched to the Cello and TPC-C
//!   statistics ([`SyntheticSpec`]).
//! - [`iometer`]: the closed-loop micro-benchmark generator
//!   ([`IometerSpec`]).
//! - [`arena`]: shared struct-of-arrays request storage and the
//!   [`RequestSource`] replay abstraction ([`WorkloadArena`]).
//!
//! # Examples
//!
//! ```
//! use mimd_workload::{SyntheticSpec, TraceStats};
//!
//! let trace = SyntheticSpec::cello_base().generate(1, 1_000);
//! let stats = TraceStats::of(&trace);
//! assert!(stats.read_frac > 0.4);
//! ```

pub mod arena;
pub mod io;
pub mod iometer;
pub mod request;
pub mod stats;
pub mod synth;
pub mod trace;

pub use arena::{RequestSource, WorkloadArena};
pub use iometer::{Access, IometerSpec};
pub use request::{Op, Request};
pub use stats::TraceStats;
pub use synth::SyntheticSpec;
pub use trace::Trace;
