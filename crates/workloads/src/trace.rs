//! Trace containers and transformations.
//!
//! The paper merges per-disk traces by timestamp, concatenates their data
//! sets into one logical address space (§4.1 "Logical Data Sets"), and
//! replays traces at uniformly scaled rates ("when the scaling rate is two,
//! the traced inter-arrival times are halved"). [`Trace`] supports all
//! three.

use mimd_sim::{SimDuration, SimTime};

use crate::request::{Op, Request};

/// An ordered sequence of logical requests over a data set.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Human-readable workload name.
    pub name: String,
    /// Size of the logical data set, in sectors.
    pub data_sectors: u64,
    requests: Vec<Request>,
}

impl Trace {
    /// Builds a trace, sorting requests by arrival time (stable, so equal
    /// timestamps keep their relative order) and renumbering ids.
    pub fn new(name: impl Into<String>, data_sectors: u64, mut requests: Vec<Request>) -> Self {
        requests.sort_by_key(|r| r.arrival);
        for (i, r) in requests.iter_mut().enumerate() {
            r.id = i as u64;
        }
        Trace {
            name: name.into(),
            data_sectors,
            requests,
        }
    }

    /// The requests, in arrival order.
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Wall-clock span from first to last arrival.
    pub fn duration(&self) -> SimDuration {
        match (self.requests.first(), self.requests.last()) {
            (Some(a), Some(b)) => b.arrival.saturating_since(a.arrival),
            _ => SimDuration::ZERO,
        }
    }

    /// Average I/O rate in requests per second (zero for traces shorter
    /// than two requests).
    pub fn avg_rate(&self) -> f64 {
        let d = self.duration().as_secs_f64();
        if d <= 0.0 {
            0.0
        } else {
            (self.len() as f64 - 1.0) / d
        }
    }

    /// Returns a copy replayed at `rate` times the original speed: arrival
    /// times are divided by `rate`, halving inter-arrival times at rate 2.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive and finite.
    pub fn scaled(&self, rate: f64) -> Trace {
        assert!(
            rate.is_finite() && rate > 0.0,
            "scale rate must be positive"
        );
        let requests = self
            .requests
            .iter()
            .map(|r| Request {
                arrival: SimTime::from_nanos((r.arrival.as_nanos() as f64 / rate).round() as u64),
                ..*r
            })
            .collect();
        Trace::new(
            format!("{} (x{rate})", self.name),
            self.data_sectors,
            requests,
        )
    }

    /// Merges two traces by timestamp, concatenating their data sets:
    /// `other`'s blocks are offset past `self`'s data set, mirroring the
    /// paper's disk-concatenation step.
    pub fn merge_concat(&self, other: &Trace) -> Trace {
        let offset = self.data_sectors;
        let mut requests = self.requests.clone();
        requests.extend(other.requests.iter().map(|r| Request {
            lbn: r.lbn + offset,
            ..*r
        }));
        Trace::new(
            format!("{}+{}", self.name, other.name),
            self.data_sectors + other.data_sectors,
            requests,
        )
    }

    /// Keeps only the first `n` requests (used to bound experiment time).
    pub fn truncated(&self, n: usize) -> Trace {
        Trace::new(
            self.name.clone(),
            self.data_sectors,
            self.requests.iter().take(n).copied().collect(),
        )
    }

    /// Fraction of requests with the given op kind.
    pub fn fraction(&self, op: Op) -> f64 {
        if self.requests.is_empty() {
            return 0.0;
        }
        self.requests.iter().filter(|r| r.op == op).count() as f64 / self.len() as f64
    }

    /// Largest end block referenced (sanity bound versus `data_sectors`).
    pub fn max_block(&self) -> u64 {
        self.requests.iter().map(|r| r.end()).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(arrival_ms: u64, lbn: u64, op: Op) -> Request {
        Request {
            id: 0,
            arrival: SimTime::from_millis(arrival_ms),
            op,
            lbn,
            sectors: 8,
        }
    }

    fn sample() -> Trace {
        Trace::new(
            "t",
            1_000,
            vec![
                r(20, 100, Op::Read),
                r(0, 0, Op::SyncWrite),
                r(10, 50, Op::Read),
            ],
        )
    }

    #[test]
    fn construction_sorts_and_renumbers() {
        let t = sample();
        let arrivals: Vec<u64> = t
            .requests()
            .iter()
            .map(|x| x.arrival.as_nanos() / 1_000_000)
            .collect();
        assert_eq!(arrivals, vec![0, 10, 20]);
        let ids: Vec<u64> = t.requests().iter().map(|x| x.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn duration_and_rate() {
        let t = sample();
        assert_eq!(t.duration(), SimDuration::from_millis(20));
        assert!((t.avg_rate() - 100.0).abs() < 1e-9);
        assert_eq!(Trace::new("e", 0, vec![]).avg_rate(), 0.0);
    }

    #[test]
    fn scaling_halves_interarrivals() {
        let t = sample().scaled(2.0);
        let arrivals: Vec<u64> = t
            .requests()
            .iter()
            .map(|x| x.arrival.as_nanos() / 1_000_000)
            .collect();
        assert_eq!(arrivals, vec![0, 5, 10]);
        assert_eq!(t.duration(), SimDuration::from_millis(10));
    }

    #[test]
    #[should_panic(expected = "scale rate")]
    fn scaling_rejects_zero_rate() {
        let _ = sample().scaled(0.0);
    }

    #[test]
    fn merge_concat_offsets_blocks_and_interleaves() {
        let a = Trace::new("a", 1_000, vec![r(0, 10, Op::Read), r(30, 20, Op::Read)]);
        let b = Trace::new("b", 500, vec![r(15, 5, Op::SyncWrite)]);
        let m = a.merge_concat(&b);
        assert_eq!(m.data_sectors, 1_500);
        assert_eq!(m.len(), 3);
        // b's request lands between a's two, with its block offset by 1000.
        assert_eq!(m.requests()[1].lbn, 1_005);
        assert_eq!(m.requests()[1].op, Op::SyncWrite);
    }

    #[test]
    fn truncation_keeps_prefix() {
        let t = sample().truncated(2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.requests()[1].lbn, 50);
    }

    #[test]
    fn fractions_sum_to_one() {
        let t = sample();
        let total = t.fraction(Op::Read) + t.fraction(Op::SyncWrite) + t.fraction(Op::AsyncWrite);
        assert!((total - 1.0).abs() < 1e-12);
        assert!((t.fraction(Op::Read) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn max_block_bounds_data_set() {
        let t = sample();
        assert_eq!(t.max_block(), 108);
        assert!(t.max_block() <= t.data_sectors);
    }
}
