//! Trace characterisation: everything the paper's Table 3 reports.
//!
//! The two derived quantities feed the configuration models directly:
//!
//! - *Seek locality* `L`: "the ratio between the average of random seek
//!   distances on that disk and the average seek distance observed in the
//!   trace" (Table 3 caption). Computed in logical-block space: a uniformly
//!   random pair over a data set of `N` blocks is `N/3` apart on average,
//!   so `L = (N/3) / mean(|lbn_i - lbn_{i-1}|)`.
//! - *Read-after-write*: the fraction of I/Os that read data written less
//!   than one hour earlier, which gauges how much a delayed-write scheme
//!   risks serving stale replicas and how effective caching will be.

use std::collections::HashMap;

use mimd_sim::SimDuration;

use crate::request::Op;
use crate::trace::Trace;

/// Granularity (in sectors) at which read-after-write tracking buckets
/// block addresses; 8 sectors = 4 KiB, a typical file-system block.
const RAW_BUCKET_SECTORS: u64 = 8;

/// Summary characteristics of a trace (the rows of Table 3).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Data set size in sectors.
    pub data_sectors: u64,
    /// Total request count.
    pub ios: usize,
    /// Trace wall-clock span.
    pub duration: SimDuration,
    /// Average request rate per second.
    pub avg_rate: f64,
    /// Fraction of requests that are reads.
    pub read_frac: f64,
    /// Fraction of requests that are asynchronous writes.
    pub async_write_frac: f64,
    /// Seek locality index `L` (1.0 = uniformly random).
    pub seek_locality: f64,
    /// Fraction of I/Os that are reads of data written within the last hour.
    pub read_after_write_1h: f64,
}

impl TraceStats {
    /// Computes the statistics of a trace.
    ///
    /// # Examples
    ///
    /// ```
    /// use mimd_workload::{Op, Request, Trace, TraceStats};
    /// use mimd_sim::SimTime;
    ///
    /// let t = Trace::new(
    ///     "tiny",
    ///     1000,
    ///     vec![Request { id: 0, arrival: SimTime::ZERO, op: Op::Read, lbn: 0, sectors: 8 }],
    /// );
    /// let s = TraceStats::of(&t);
    /// assert_eq!(s.ios, 1);
    /// ```
    pub fn of(trace: &Trace) -> TraceStats {
        let reqs = trace.requests();
        let ios = reqs.len();

        // Mean successive logical seek distance.
        let mut dist_sum = 0.0f64;
        let mut dist_n = 0u64;
        for w in reqs.windows(2) {
            dist_sum += w[0].lbn.abs_diff(w[1].lbn) as f64;
            dist_n += 1;
        }
        let mean_dist = if dist_n == 0 {
            0.0
        } else {
            dist_sum / dist_n as f64
        };
        let random_mean = trace.data_sectors as f64 / 3.0;
        let seek_locality = if mean_dist <= 0.0 {
            1.0
        } else {
            (random_mean / mean_dist).max(1.0)
        };

        // Read-after-write within one hour, tracked at 4 KiB buckets.
        let hour = SimDuration::from_secs(3600);
        let mut last_write: HashMap<u64, mimd_sim::SimTime> = HashMap::new();
        let mut raw_hits = 0usize;
        for r in reqs {
            let first = r.lbn / RAW_BUCKET_SECTORS;
            let last = (r.end().saturating_sub(1)) / RAW_BUCKET_SECTORS;
            if r.op == Op::Read {
                let mut hit = false;
                for b in first..=last {
                    if let Some(&t) = last_write.get(&b) {
                        if r.arrival.saturating_since(t) <= hour {
                            hit = true;
                            break;
                        }
                    }
                }
                if hit {
                    raw_hits += 1;
                }
            } else {
                for b in first..=last {
                    last_write.insert(b, r.arrival);
                }
            }
        }

        TraceStats {
            data_sectors: trace.data_sectors,
            ios,
            duration: trace.duration(),
            avg_rate: trace.avg_rate(),
            read_frac: trace.fraction(Op::Read),
            async_write_frac: trace.fraction(Op::AsyncWrite),
            seek_locality,
            read_after_write_1h: if ios == 0 {
                0.0
            } else {
                raw_hits as f64 / ios as f64
            },
        }
    }

    /// The model ratio `p` (Equation 8) implied by these statistics,
    /// assuming asynchronous writes and masked replica propagation count as
    /// background (`X_r + X_wb`) and the given fraction of synchronous
    /// writes must propagate in the foreground.
    pub fn p_ratio(&self, foreground_frac_of_sync_writes: f64) -> f64 {
        let sync_writes = (1.0 - self.read_frac - self.async_write_frac).max(0.0);
        1.0 - sync_writes * foreground_frac_of_sync_writes.clamp(0.0, 1.0)
    }

    /// Formats one Table-3-style row.
    pub fn table_row(&self, label: &str) -> String {
        format!(
            "{label:<14} {:>7.1} GB {:>9} I/Os {:>8.0} s {:>7.2}/s {:>6.1}% reads {:>6.1}% async {:>6.2} L {:>5.1}% RAW",
            self.data_sectors as f64 * 512.0 / 1e9,
            self.ios,
            self.duration.as_secs_f64(),
            self.avg_rate,
            self.read_frac * 100.0,
            self.async_write_frac * 100.0,
            self.seek_locality,
            self.read_after_write_1h * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Request;
    use mimd_sim::SimTime;

    fn req(at_s: u64, op: Op, lbn: u64) -> Request {
        Request {
            id: 0,
            arrival: SimTime::from_secs(at_s),
            op,
            lbn,
            sectors: 8,
        }
    }

    #[test]
    fn uniform_random_trace_has_locality_near_one() {
        use mimd_sim::SimRng;
        let mut rng = SimRng::seed_from(5);
        let n = 1_000_000u64;
        let reqs: Vec<Request> = (0..20_000)
            .map(|i| req(i, Op::Read, rng.below(n)))
            .collect();
        let t = Trace::new("uniform", n, reqs);
        let s = TraceStats::of(&t);
        assert!(
            (s.seek_locality - 1.0).abs() < 0.05,
            "locality {}",
            s.seek_locality
        );
    }

    #[test]
    fn clustered_trace_has_high_locality() {
        let n = 1_000_000u64;
        // All requests within a 1000-block neighbourhood.
        let reqs: Vec<Request> = (0..5_000)
            .map(|i| req(i, Op::Read, 500_000 + (i * 37) % 1_000))
            .collect();
        let t = Trace::new("local", n, reqs);
        let s = TraceStats::of(&t);
        assert!(s.seek_locality > 100.0, "locality {}", s.seek_locality);
    }

    #[test]
    fn read_after_write_counts_only_recent() {
        let reqs = vec![
            req(0, Op::SyncWrite, 100),
            req(10, Op::Read, 100),     // Within the hour: counts.
            req(10_000, Op::Read, 100), // Nearly 3 hours later: stale.
            req(20, Op::Read, 900),     // Never written: no.
        ];
        let t = Trace::new("raw", 10_000, reqs);
        let s = TraceStats::of(&t);
        assert!((s.read_after_write_1h - 0.25).abs() < 1e-12);
    }

    #[test]
    fn read_after_write_sees_partial_overlap() {
        let reqs = vec![
            Request {
                id: 0,
                arrival: SimTime::ZERO,
                op: Op::SyncWrite,
                lbn: 0,
                sectors: 16,
            },
            // Overlaps the written bucket range at its tail.
            Request {
                id: 0,
                arrival: SimTime::from_secs(5),
                op: Op::Read,
                lbn: 12,
                sectors: 8,
            },
        ];
        let t = Trace::new("raw2", 10_000, reqs);
        let s = TraceStats::of(&t);
        assert!((s.read_after_write_1h - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fractions_reported() {
        let reqs = vec![
            req(0, Op::Read, 0),
            req(1, Op::SyncWrite, 10),
            req(2, Op::AsyncWrite, 20),
            req(3, Op::Read, 30),
        ];
        let t = Trace::new("mix", 1_000, reqs);
        let s = TraceStats::of(&t);
        assert!((s.read_frac - 0.5).abs() < 1e-12);
        assert!((s.async_write_frac - 0.25).abs() < 1e-12);
        assert_eq!(s.ios, 4);
    }

    #[test]
    fn p_ratio_reflects_foreground_sync_writes() {
        let reqs = vec![
            req(0, Op::Read, 0),
            req(1, Op::SyncWrite, 10),
            req(2, Op::SyncWrite, 20),
            req(3, Op::Read, 30),
        ];
        let t = Trace::new("p", 1_000, reqs);
        let s = TraceStats::of(&t);
        // Half the requests are sync writes; all propagated in foreground.
        assert!((s.p_ratio(1.0) - 0.5).abs() < 1e-12);
        // All masked in background: p = 1.
        assert!((s.p_ratio(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_well_defined() {
        let t = Trace::new("empty", 1_000, vec![]);
        let s = TraceStats::of(&t);
        assert_eq!(s.ios, 0);
        assert_eq!(s.seek_locality, 1.0);
        assert_eq!(s.read_after_write_1h, 0.0);
    }

    #[test]
    fn table_row_formats() {
        let t = Trace::new("empty", 1_000, vec![req(0, Op::Read, 0)]);
        let row = TraceStats::of(&t).table_row("x");
        assert!(row.contains("I/Os"));
        assert!(row.contains("reads"));
    }
}
