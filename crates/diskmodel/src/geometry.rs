//! Zoned disk geometry: logical-block ↔ physical-sector mapping and
//! rotational angles.
//!
//! The paper's Calibration Layer extracts "disk zones, track skew, bad
//! sectors, and reserved sectors through a sequence of low-level disk
//! operations" (§3.2, following Worthington et al.). Here the geometry is
//! constructed directly from [`DiskParams`]; the calibration module then
//! *re-derives* timing facts against it the way the prototype did against
//! real hardware.
//!
//! Layout convention: LBNs are assigned zone-by-zone from the outer edge,
//! cylinder-major, surface-minor — cylinder `c` holds LBNs for surface 0's
//! track, then surface 1's, and so on. Track skew rotates each successive
//! track's logical origin by [`DiskParams::track_skew_frac`] so that
//! sequential transfers crossing a track boundary line up with the head
//! switch.

use crate::params::DiskParams;

/// Physical address of a sector: cylinder, surface, and sector-within-track.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Chs {
    /// Cylinder index, 0 = outermost.
    pub cylinder: u32,
    /// Surface (head) index.
    pub surface: u32,
    /// Sector index within the track, before skew.
    pub sector: u32,
}

#[derive(Debug, Clone)]
struct ZoneExtent {
    first_cylinder: u32,
    cylinders: u32,
    sectors_per_track: u32,
    /// LBN of the first sector in this zone.
    first_lbn: u64,
}

/// Public view of one zone's extent (for layout planning).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZoneInfo {
    /// First cylinder of the zone.
    pub first_cylinder: u32,
    /// Number of cylinders in the zone.
    pub cylinders: u32,
    /// Sectors per track within the zone.
    pub sectors_per_track: u32,
}

/// Immutable geometry derived from a parameter set.
#[derive(Debug, Clone)]
pub struct Geometry {
    surfaces: u32,
    track_skew_frac: f64,
    zones: Vec<ZoneExtent>,
    /// Zone index per cylinder — O(1) zone lookup on the timing hot path.
    /// `Arc`-shared so per-disk clones of an array's geometry stay cheap.
    cyl_zone: std::sync::Arc<[u16]>,
    total_sectors: u64,
    total_cylinders: u32,
}

impl Geometry {
    /// Builds the geometry for a parameter set.
    ///
    /// # Examples
    ///
    /// ```
    /// use mimd_disk::{DiskParams, Geometry};
    ///
    /// let g = Geometry::new(&DiskParams::st39133lwv());
    /// let chs = g.lbn_to_chs(0).unwrap();
    /// assert_eq!((chs.cylinder, chs.surface, chs.sector), (0, 0, 0));
    /// ```
    pub fn new(params: &DiskParams) -> Self {
        let mut zones = Vec::with_capacity(params.zones.len());
        let mut cyl_zone = Vec::new();
        let mut cyl = 0u32;
        let mut lbn = 0u64;
        for (zi, z) in params.zones.iter().enumerate() {
            zones.push(ZoneExtent {
                first_cylinder: cyl,
                cylinders: z.cylinders,
                sectors_per_track: z.sectors_per_track,
                first_lbn: lbn,
            });
            // Real drives have tens of zones; saturating at u16::MAX keeps
            // construction panic-free without a fallible constructor.
            let idx = u16::try_from(zi).unwrap_or(u16::MAX);
            cyl_zone.extend(std::iter::repeat_n(idx, z.cylinders as usize));
            cyl += z.cylinders;
            lbn += z.cylinders as u64 * params.surfaces as u64 * z.sectors_per_track as u64;
        }
        Geometry {
            surfaces: params.surfaces,
            track_skew_frac: params.track_skew_frac,
            zones,
            cyl_zone: cyl_zone.into(),
            total_sectors: lbn,
            total_cylinders: cyl,
        }
    }

    /// Total addressable sectors.
    pub fn total_sectors(&self) -> u64 {
        self.total_sectors
    }

    /// Total cylinders.
    pub fn total_cylinders(&self) -> u32 {
        self.total_cylinders
    }

    /// Number of surfaces.
    pub fn surfaces(&self) -> u32 {
        self.surfaces
    }

    /// The zone table, outermost zone first.
    pub fn zone_table(&self) -> Vec<ZoneInfo> {
        self.zones
            .iter()
            .map(|z| ZoneInfo {
                first_cylinder: z.first_cylinder,
                cylinders: z.cylinders,
                sectors_per_track: z.sectors_per_track,
            })
            .collect()
    }

    #[inline]
    fn zone_of_cylinder(&self, cylinder: u32) -> Option<&ZoneExtent> {
        let idx = *self.cyl_zone.get(cylinder as usize)?;
        self.zones.get(idx as usize)
    }

    fn zone_of_lbn(&self, lbn: u64) -> Option<&ZoneExtent> {
        if lbn >= self.total_sectors {
            return None;
        }
        let idx = self.zones.partition_point(|z| {
            z.first_lbn + z.cylinders as u64 * self.surfaces as u64 * z.sectors_per_track as u64
                <= lbn
        });
        self.zones.get(idx)
    }

    /// Sectors per track for a cylinder; `None` if out of range.
    pub fn sectors_per_track(&self, cylinder: u32) -> Option<u32> {
        self.zone_of_cylinder(cylinder).map(|z| z.sectors_per_track)
    }

    /// Average sectors per track across the whole drive (capacity-weighted).
    pub fn avg_sectors_per_track(&self) -> f64 {
        let tracks: u64 = self
            .zones
            .iter()
            .map(|z| z.cylinders as u64 * self.surfaces as u64)
            .sum();
        self.total_sectors as f64 / tracks as f64
    }

    /// Maps a logical block number to its physical address.
    pub fn lbn_to_chs(&self, lbn: u64) -> Option<Chs> {
        let z = self.zone_of_lbn(lbn)?;
        let rel = lbn - z.first_lbn;
        let per_cyl = self.surfaces as u64 * z.sectors_per_track as u64;
        let cyl_rel = rel / per_cyl;
        let in_cyl = rel % per_cyl;
        let surface = (in_cyl / z.sectors_per_track as u64) as u32;
        let sector = (in_cyl % z.sectors_per_track as u64) as u32;
        let chs = Chs {
            cylinder: z.first_cylinder + cyl_rel as u32,
            surface,
            sector,
        };
        mimd_sim::sim_invariant!(
            self.chs_to_lbn(chs) == Some(lbn),
            "lbn<->chs bijectivity broke: lbn {lbn} maps to {chs:?} which maps back to {:?}",
            self.chs_to_lbn(chs)
        );
        Some(chs)
    }

    /// Maps a physical address back to its logical block number.
    pub fn chs_to_lbn(&self, chs: Chs) -> Option<u64> {
        let z = self.zone_of_cylinder(chs.cylinder)?;
        if chs.surface >= self.surfaces || chs.sector >= z.sectors_per_track {
            return None;
        }
        let cyl_rel = (chs.cylinder - z.first_cylinder) as u64;
        let per_cyl = self.surfaces as u64 * z.sectors_per_track as u64;
        Some(
            z.first_lbn
                + cyl_rel * per_cyl
                + chs.surface as u64 * z.sectors_per_track as u64
                + chs.sector as u64,
        )
    }

    /// Global track index (0-based from the outer edge) of an address.
    fn track_index(&self, cylinder: u32, surface: u32) -> u64 {
        cylinder as u64 * self.surfaces as u64 + surface as u64
    }

    /// Rotational angle, in fractions of a revolution, at which the *start*
    /// of the given sector passes under the head, accounting for track skew.
    ///
    /// Angle 0 is an arbitrary but fixed spindle reference.
    pub fn angle_of(&self, chs: Chs) -> Option<f64> {
        let z = self.zone_of_cylinder(chs.cylinder)?;
        if chs.surface >= self.surfaces || chs.sector >= z.sectors_per_track {
            return None;
        }
        let skew = self.track_index(chs.cylinder, chs.surface) as f64 * self.track_skew_frac;
        let within = chs.sector as f64 / z.sectors_per_track as f64;
        Some((skew + within).rem_euclid(1.0))
    }

    /// The sector on `(cylinder, surface)` whose start angle is nearest at
    /// or after the requested angle (used to materialise a rotational
    /// replica "at angle θ" on a concrete track).
    pub fn sector_at_angle(&self, cylinder: u32, surface: u32, angle: f64) -> Option<u32> {
        let z = self.zone_of_cylinder(cylinder)?;
        if surface >= self.surfaces {
            return None;
        }
        let spt = z.sectors_per_track as f64;
        let skew = self.track_index(cylinder, surface) as f64 * self.track_skew_frac;
        let within = (angle - skew).rem_euclid(1.0);
        // The epsilon absorbs float error when `angle` is exactly a sector
        // start, so the inverse of `angle_of` returns that same sector.
        let sector = (within * spt - 1e-6).ceil().max(0.0) as u32 % z.sectors_per_track;
        Some(sector)
    }

    /// Quantises `angle` to the owning track's sector grid in one pass,
    /// returning `(start_angle, sector, sectors_per_track)`.
    ///
    /// Computes exactly what separate [`Geometry::sector_at_angle`],
    /// [`Geometry::angle_of`], and [`Geometry::sectors_per_track`] calls
    /// would — bit-for-bit, since the skew term is shared — but with a
    /// single zone lookup. This is the detailed timing path's inner loop.
    #[inline]
    pub fn quantise_angle(
        &self,
        cylinder: u32,
        surface: u32,
        angle: f64,
    ) -> Option<(f64, u32, u32)> {
        let z = self.zone_of_cylinder(cylinder)?;
        if surface >= self.surfaces {
            return None;
        }
        let spt = z.sectors_per_track;
        let skew = self.track_index(cylinder, surface) as f64 * self.track_skew_frac;
        let within = (angle - skew).rem_euclid(1.0);
        let sector = (within * spt as f64 - 1e-6).ceil().max(0.0) as u32 % spt;
        let start = (skew + sector as f64 / spt as f64).rem_euclid(1.0);
        Some((start, sector, spt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> Geometry {
        Geometry::new(&DiskParams::st39133lwv())
    }

    #[test]
    fn totals_match_params() {
        let p = DiskParams::st39133lwv();
        let g = Geometry::new(&p);
        assert_eq!(g.total_sectors(), p.total_sectors());
        assert_eq!(g.total_cylinders(), p.total_cylinders());
        assert_eq!(g.surfaces(), p.surfaces);
        let avg = g.avg_sectors_per_track();
        assert!((avg - 213.0).abs() < 2.0, "avg spt {avg}");
    }

    #[test]
    fn lbn_chs_round_trip_over_zone_boundaries() {
        let g = geom();
        let total = g.total_sectors();
        // Probe a spread of LBNs, including first/last sector of the drive.
        let probes = [
            0,
            1,
            total / 7,
            total / 3,
            total / 2,
            2 * total / 3,
            total - 2,
            total - 1,
        ];
        for &lbn in &probes {
            let chs = g.lbn_to_chs(lbn).expect("in range");
            let back = g.chs_to_lbn(chs).expect("valid chs");
            assert_eq!(back, lbn, "round trip failed at {lbn} ({chs:?})");
        }
    }

    #[test]
    fn out_of_range_is_none() {
        let g = geom();
        assert!(g.lbn_to_chs(g.total_sectors()).is_none());
        assert!(g
            .chs_to_lbn(Chs {
                cylinder: g.total_cylinders(),
                surface: 0,
                sector: 0
            })
            .is_none());
        assert!(g
            .chs_to_lbn(Chs {
                cylinder: 0,
                surface: 99,
                sector: 0
            })
            .is_none());
        assert!(g
            .chs_to_lbn(Chs {
                cylinder: 0,
                surface: 0,
                sector: 10_000
            })
            .is_none());
        assert!(g.sectors_per_track(u32::MAX).is_none());
    }

    #[test]
    fn consecutive_lbns_are_contiguous_within_track() {
        let g = geom();
        let a = g.lbn_to_chs(100).unwrap();
        let b = g.lbn_to_chs(101).unwrap();
        assert_eq!(a.cylinder, b.cylinder);
        assert_eq!(a.surface, b.surface);
        assert_eq!(a.sector + 1, b.sector);
    }

    #[test]
    fn track_boundary_switches_surface_then_cylinder() {
        let g = geom();
        let spt = g.sectors_per_track(0).unwrap() as u64;
        let last_of_track0 = g.lbn_to_chs(spt - 1).unwrap();
        let first_of_track1 = g.lbn_to_chs(spt).unwrap();
        assert_eq!(last_of_track0.surface, 0);
        assert_eq!(first_of_track1.surface, 1);
        assert_eq!(first_of_track1.sector, 0);
        assert_eq!(first_of_track1.cylinder, 0);

        let per_cyl = spt * g.surfaces() as u64;
        let next_cyl = g.lbn_to_chs(per_cyl).unwrap();
        assert_eq!(next_cyl.cylinder, 1);
        assert_eq!(next_cyl.surface, 0);
    }

    #[test]
    fn zone_boundary_changes_sectors_per_track() {
        let g = geom();
        // Zone 0 spans 633 cylinders at 248 spt.
        assert_eq!(g.sectors_per_track(0), Some(248));
        assert_eq!(g.sectors_per_track(632), Some(248));
        assert_eq!(g.sectors_per_track(633), Some(241));
        // Innermost zone.
        assert_eq!(g.sectors_per_track(g.total_cylinders() - 1), Some(178));
    }

    #[test]
    fn skew_advances_angle_per_track() {
        let g = geom();
        let a0 = g
            .angle_of(Chs {
                cylinder: 0,
                surface: 0,
                sector: 0,
            })
            .unwrap();
        let a1 = g
            .angle_of(Chs {
                cylinder: 0,
                surface: 1,
                sector: 0,
            })
            .unwrap();
        let p = DiskParams::st39133lwv();
        let diff = (a1 - a0).rem_euclid(1.0);
        assert!((diff - p.track_skew_frac).abs() < 1e-9);
    }

    #[test]
    fn angle_within_track_is_uniform() {
        let g = geom();
        let spt = g.sectors_per_track(0).unwrap();
        let a_first = g
            .angle_of(Chs {
                cylinder: 0,
                surface: 0,
                sector: 0,
            })
            .unwrap();
        let a_mid = g
            .angle_of(Chs {
                cylinder: 0,
                surface: 0,
                sector: spt / 2,
            })
            .unwrap();
        let expect = (spt / 2) as f64 / spt as f64;
        assert!(((a_mid - a_first).rem_euclid(1.0) - expect).abs() < 1e-9);
    }

    #[test]
    fn sector_at_angle_inverts_angle_of() {
        let g = geom();
        for &(cyl, surf) in &[(0u32, 0u32), (700, 3), (4000, 11), (6961, 5)] {
            let spt = g.sectors_per_track(cyl).unwrap();
            for sector in [0, spt / 3, spt - 1] {
                let chs = Chs {
                    cylinder: cyl,
                    surface: surf,
                    sector,
                };
                let angle = g.angle_of(chs).unwrap();
                let found = g.sector_at_angle(cyl, surf, angle).unwrap();
                assert_eq!(found, sector, "at {chs:?}");
            }
        }
    }

    #[test]
    fn quantise_angle_matches_separate_queries() {
        let g = geom();
        let mut angle = 0.0137_f64;
        for &(cyl, surf) in &[(0u32, 0u32), (633, 2), (700, 3), (4000, 11), (6961, 5)] {
            for _ in 0..64 {
                angle = (angle + 0.618_033_988_749_895).rem_euclid(1.0);
                let (start, sector, spt) = g.quantise_angle(cyl, surf, angle).unwrap();
                let want_sector = g.sector_at_angle(cyl, surf, angle).unwrap();
                assert_eq!(sector, want_sector, "sector at ({cyl},{surf},{angle})");
                assert_eq!(spt, g.sectors_per_track(cyl).unwrap());
                let want_angle = g
                    .angle_of(Chs {
                        cylinder: cyl,
                        surface: surf,
                        sector,
                    })
                    .unwrap();
                assert_eq!(
                    start.to_bits(),
                    want_angle.to_bits(),
                    "angle at ({cyl},{surf},{angle})"
                );
            }
        }
        // Out of range in either coordinate is None, matching the parts.
        assert!(g.quantise_angle(g.total_cylinders(), 0, 0.5).is_none());
        assert!(g.quantise_angle(0, g.surfaces(), 0.5).is_none());
    }

    #[test]
    fn sector_at_angle_rounds_up_to_next_start() {
        let g = geom();
        let spt = g.sectors_per_track(0).unwrap();
        let a = g
            .angle_of(Chs {
                cylinder: 0,
                surface: 0,
                sector: 5,
            })
            .unwrap();
        // Slightly past sector 5's start: the next full sector start is 6.
        let nudged = a + 0.25 / spt as f64;
        assert_eq!(g.sector_at_angle(0, 0, nudged), Some(6));
    }
}
