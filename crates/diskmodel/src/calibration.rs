//! Software-only disk-head position prediction (§3.2).
//!
//! The paper's mechanism issues reads to a fixed *reference sector* at
//! growing intervals; the time between two such reads is an integral number
//! of rotations plus unpredictable OS/SCSI overhead. From those jittered
//! timestamps the host estimates the rotation period and spindle phase,
//! and thereafter predicts where the head is at any instant. The paper
//! reports (Table 2) a prediction error within 1 % of a rotation with 98 %
//! confidence at a two-minute recalibration interval, a 0.22 % rotation-miss
//! rate under RSATF, and a 1.9 % demerit relative to measured access times.
//!
//! This module simulates both sides:
//!
//! - [`DriftingSpindle`] — ground truth: a spindle whose period wanders
//!   within a few tenths of a ppm (real 10 000 RPM spindles are servo-locked
//!   far below their ±0.1 % static spec on these timescales).
//! - [`HeadTracker`] — the estimator: a sliding-window least-squares fit of
//!   observation time against rotation count, exactly the "integral
//!   multiple of the full rotation time plus unpredictable overhead" model.
//! - [`SlackController`] — the k-sector slack feedback loop that keeps the
//!   on-target rate above a set point (§3.2's ">99 % of requests on
//!   target").

use mimd_sim::{SimDuration, SimRng, SimTime};

use crate::mechanics::mod1;

/// Parts-per-million per unit fraction (dimensionless drift scale).
const PPM_SCALE: f64 = 1e6;

/// Ground-truth spindle whose rotation period drifts slowly.
///
/// The period is piecewise-constant over fixed epochs; each epoch nudges it
/// by a small bounded random step. Phase accumulates continuously across
/// epoch boundaries.
#[derive(Debug, Clone)]
pub struct DriftingSpindle {
    nominal_ns: f64,
    period_ns: f64,
    epoch: SimDuration,
    epoch_start: SimTime,
    phase_at_epoch_start: f64,
    max_drift_ppm: f64,
    step_ppm: f64,
    rng: SimRng,
}

impl DriftingSpindle {
    /// Creates a spindle with the given nominal period.
    ///
    /// `step_ppm` is the per-epoch random-walk step and `max_drift_ppm`
    /// bounds the total deviation from nominal. Epochs are one second.
    ///
    /// # Panics
    ///
    /// Panics if the period is zero.
    pub fn new(nominal: SimDuration, step_ppm: f64, max_drift_ppm: f64, seed: u64) -> Self {
        assert!(nominal > SimDuration::ZERO);
        DriftingSpindle {
            nominal_ns: nominal.as_nanos() as f64,
            period_ns: nominal.as_nanos() as f64,
            epoch: SimDuration::from_secs(1),
            epoch_start: SimTime::ZERO,
            phase_at_epoch_start: 0.0,
            max_drift_ppm,
            step_ppm,
            rng: SimRng::named(seed, "spindle-drift"),
        }
    }

    /// Default drift character used by the Table-2 experiment: 0.01 ppm
    /// steps bounded at ±0.1 ppm — the short-term stability of a
    /// servo-locked 10 000 RPM spindle, far inside its ±0.1 % static spec.
    pub fn default_for(nominal: SimDuration, seed: u64) -> Self {
        Self::new(nominal, 0.01, 0.1, seed)
    }

    /// Nominal (data-sheet) rotation period.
    pub fn nominal(&self) -> SimDuration {
        SimDuration::from_nanos(self.nominal_ns as u64)
    }

    fn advance_to(&mut self, t: SimTime) {
        while t >= self.epoch_start + self.epoch {
            let dt = self.epoch.as_nanos() as f64;
            self.phase_at_epoch_start += dt / self.period_ns;
            self.epoch_start += self.epoch;
            // Random-walk the period within the drift bound.
            let step = (self.rng.unit() * 2.0 - 1.0) * self.step_ppm;
            let cur_ppm = (self.period_ns / self.nominal_ns - 1.0) * PPM_SCALE;
            let next_ppm = (cur_ppm + step).clamp(-self.max_drift_ppm, self.max_drift_ppm);
            self.period_ns = self.nominal_ns * (1.0 + next_ppm / PPM_SCALE);
        }
    }

    /// True platter phase at `t`.
    ///
    /// Queries must be (weakly) monotone in time at epoch granularity: the
    /// drift walk advances destructively, so `t` must not precede the
    /// current epoch (checked in debug builds).
    pub fn true_angle(&mut self, t: SimTime) -> f64 {
        self.advance_to(t);
        debug_assert!(t >= self.epoch_start);
        let dt = (t - self.epoch_start).as_nanos() as f64;
        mod1(self.phase_at_epoch_start + dt / self.period_ns)
    }

    /// First instant at or after `from` at which the platter reaches
    /// `target` phase.
    pub fn next_time_at_angle(&mut self, from: SimTime, target: f64) -> SimTime {
        self.advance_to(from);
        let mut t = from;
        loop {
            let cur = self.true_angle(t);
            let delta = mod1(target - cur);
            let wait = SimDuration::from_nanos((delta * self.period_ns) as u64);
            let cand = t + wait;
            // If the wait fits within the current epoch, the linear solve is
            // exact; otherwise step to the epoch boundary and retry.
            if cand < self.epoch_start + self.epoch || wait == SimDuration::ZERO {
                return cand;
            }
            t = self.epoch_start + self.epoch;
        }
    }
}

/// Configuration of the reference-sector observation channel.
#[derive(Debug, Clone, Copy)]
pub struct ObservationNoise {
    /// Mean OS + SCSI completion overhead, in microseconds (subtracted by
    /// the tracker as a known constant).
    pub mean_us: f64,
    /// Standard deviation of the overhead, in microseconds.
    pub std_us: f64,
    /// Hard floor of the overhead, in microseconds.
    pub floor_us: f64,
}

impl Default for ObservationNoise {
    fn default() -> Self {
        ObservationNoise {
            mean_us: 150.0,
            std_us: 25.0,
            floor_us: 60.0,
        }
    }
}

/// Sliding-window least-squares estimator of rotation period and phase.
///
/// Observations are completion timestamps of reference-sector reads. The
/// tracker assigns each a rotation index (`round((t_i - t_{i-1}) / R̂)`
/// rotations after its predecessor) and fits `t ≈ t0 + k * R̂` over the most
/// recent window.
///
/// # Examples
///
/// ```
/// use mimd_disk::calibration::{DriftingSpindle, HeadTracker, ObservationNoise};
/// use mimd_sim::{SimDuration, SimTime};
///
/// let period = SimDuration::from_millis(6);
/// let mut tracker = HeadTracker::new(period, ObservationNoise::default());
/// assert!(!tracker.is_calibrated());
/// ```
#[derive(Debug, Clone)]
pub struct HeadTracker {
    nominal_ns: f64,
    period_ns: f64,
    noise: ObservationNoise,
    /// (rotation index, adjusted observation time in ns) pairs.
    window: Vec<(f64, f64)>,
    window_cap: usize,
    /// Fitted phase anchor: time (ns) at which the reference angle passed
    /// on the most recent observation's rotation, per the fit.
    fit_t0_ns: f64,
    /// Reference angle observed by the reads.
    reference_angle: f64,
    observations: u64,
}

impl HeadTracker {
    /// Creates a tracker for a drive with the given nominal period.
    pub fn new(nominal: SimDuration, noise: ObservationNoise) -> Self {
        HeadTracker {
            nominal_ns: nominal.as_nanos() as f64,
            period_ns: nominal.as_nanos() as f64,
            noise,
            window: Vec::new(),
            // A short window keeps the fit local in time: spindle drift
            // makes very old observations misleading for the current phase.
            window_cap: 6,
            fit_t0_ns: 0.0,
            reference_angle: 0.0,
            observations: 0,
        }
    }

    /// Number of reference reads consumed.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Whether enough observations have arrived to predict.
    pub fn is_calibrated(&self) -> bool {
        self.window.len() >= 2
    }

    /// Current period estimate.
    pub fn period_estimate(&self) -> SimDuration {
        SimDuration::from_nanos(self.period_ns as u64)
    }

    /// Feeds one reference-sector completion timestamp.
    ///
    /// `reference_angle` is the platter phase corresponding to the *end* of
    /// the reference sector (known from the layout extraction step).
    ///
    /// The paper notes (without implementing it) that "we can exploit the
    /// timing information and known disk head location at the end of a
    /// request" to cut the reference-read overhead further: any request
    /// completion whose final platter angle is known from the layout is an
    /// equally good observation, so callers may feed those here too — see
    /// `request_completions_substitute_for_reference_reads` in the tests.
    pub fn observe(&mut self, t_obs: SimTime, reference_angle: f64) {
        self.observations += 1;
        // Strip the known mean overhead, then normalise the observation to
        // an angle-zero passage by subtracting the angular offset — this is
        // what lets arbitrary-angle request completions share one fit with
        // the fixed reference sector.
        let y = t_obs.as_nanos() as f64
            - self.noise.mean_us * mimd_sim::time::NANOS_PER_MICRO
            - crate::mechanics::mod1(reference_angle) * self.period_ns;
        self.reference_angle = 0.0;
        let k = match self.window.last() {
            None => 0.0,
            Some(&(k_prev, y_prev)) => {
                let rotations = ((y - y_prev) / self.period_ns).round();
                k_prev + rotations.max(1.0)
            }
        };
        self.window.push((k, y));
        if self.window.len() > self.window_cap {
            self.window.remove(0);
        }
        self.refit();
    }

    fn refit(&mut self) {
        let n = self.window.len();
        if n < 2 {
            if let Some(&(_, y)) = self.window.first() {
                self.fit_t0_ns = y;
            }
            return;
        }
        // Ordinary least squares of y on k, on *centred* data: raw k*y
        // products reach ~1e20 ns-rotations where f64 ulp is ~1e5 ns, and
        // the uncentred normal equations would turn that into hundreds of
        // microseconds of phase error.
        let n_f = n as f64;
        let k_mean = self.window.iter().map(|&(k, _)| k).sum::<f64>() / n_f;
        let y_mean = self.window.iter().map(|&(_, y)| y).sum::<f64>() / n_f;
        let (mut skk, mut sky) = (0.0, 0.0);
        for &(k, y) in &self.window {
            let (dk, dy) = (k - k_mean, y - y_mean);
            skk += dk * dk;
            sky += dk * dy;
        }
        if skk < f64::EPSILON {
            return;
        }
        let slope = sky / skk;
        // Reject nonsense fits (e.g. if rotation indexing slipped) by
        // bounding the slope near nominal.
        if (slope / self.nominal_ns - 1.0).abs() < 100e-6 {
            self.period_ns = slope;
            // Anchor the phase at the fitted passage time of the latest
            // rotation index: extrapolation error then grows only from
            // "now", not from the middle of the window.
            let k_last = self.window.last().map(|&(k, _)| k).unwrap_or(k_mean);
            self.fit_t0_ns = y_mean + slope * (k_last - k_mean);
        }
    }

    /// Predicted platter phase at instant `t`.
    ///
    /// Returns `None` until calibrated.
    pub fn predict_angle(&self, t: SimTime) -> Option<f64> {
        if !self.is_calibrated() {
            return None;
        }
        let dt = t.as_nanos() as f64 - self.fit_t0_ns;
        Some(mod1(self.reference_angle + dt / self.period_ns))
    }

    /// Predicted wait from `t` until the platter reaches `target` phase.
    pub fn predict_wait(&self, t: SimTime, target: f64) -> Option<SimDuration> {
        let cur = self.predict_angle(t)?;
        let delta = mod1(target - cur);
        Some(SimDuration::from_nanos((delta * self.period_ns) as u64))
    }
}

/// The recalibration schedule: intervals grow geometrically from
/// `initial` to `max`, amortising the reference-read overhead (§3.2).
#[derive(Debug, Clone, Copy)]
pub struct CalibrationSchedule {
    next: SimDuration,
    max: SimDuration,
}

impl CalibrationSchedule {
    /// Creates a schedule growing from `initial` to `max` (doubling).
    pub fn new(initial: SimDuration, max: SimDuration) -> Self {
        CalibrationSchedule { next: initial, max }
    }

    /// The paper's operating point: start fast, settle at two minutes.
    pub fn paper_default() -> Self {
        Self::new(SimDuration::from_millis(50), SimDuration::from_secs(120))
    }

    /// Returns the current interval and advances the schedule.
    pub fn advance(&mut self) -> SimDuration {
        let cur = self.next;
        self.next = (self.next * 2).min(self.max);
        cur
    }

    /// The steady-state (maximum) interval.
    pub fn steady_state(&self) -> SimDuration {
        self.max
    }
}

/// Feedback controller for the k-sector scheduling slack (§3.2).
///
/// The scheduler treats a replica as unreachable when the predicted wait is
/// under `k` sector times; the controller widens `k` when the observed miss
/// rate exceeds the set point and narrows it when comfortably below.
#[derive(Debug, Clone)]
pub struct SlackController {
    slack_sectors: u32,
    min_sectors: u32,
    max_sectors: u32,
    target_miss_rate: f64,
    window: u32,
    requests: u32,
    misses: u32,
}

impl SlackController {
    /// Creates a controller targeting the given miss rate, evaluated over
    /// windows of `window` requests.
    pub fn new(initial_sectors: u32, target_miss_rate: f64, window: u32) -> Self {
        SlackController {
            slack_sectors: initial_sectors,
            min_sectors: 0,
            max_sectors: 64,
            target_miss_rate,
            window: window.max(1),
            requests: 0,
            misses: 0,
        }
    }

    /// The paper's operating point: keep more than 99 % of requests on
    /// target.
    pub fn paper_default() -> Self {
        Self::new(4, 0.01, 500)
    }

    /// Current slack in sectors.
    pub fn slack_sectors(&self) -> u32 {
        self.slack_sectors
    }

    /// Current slack as a time, given the sector pass time.
    pub fn slack_time(&self, sector_time: SimDuration) -> SimDuration {
        sector_time * self.slack_sectors as u64
    }

    /// Records one request outcome and adapts at window boundaries.
    pub fn record(&mut self, missed: bool) {
        self.requests += 1;
        if missed {
            self.misses += 1;
        }
        if self.requests >= self.window {
            let rate = self.misses as f64 / self.requests as f64;
            if rate > self.target_miss_rate {
                self.slack_sectors = (self.slack_sectors + 2).min(self.max_sectors);
            } else if rate < self.target_miss_rate / 4.0 {
                self.slack_sectors = self.slack_sectors.saturating_sub(1).max(self.min_sectors);
            }
            self.requests = 0;
            self.misses = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drifting_spindle_stays_near_nominal() {
        let nominal = SimDuration::from_millis(6);
        let mut s = DriftingSpindle::default_for(nominal, 1);
        // After an hour of drift the phase advance still matches nominal to
        // within the ppm bound.
        let t = SimTime::from_secs(3600);
        let _ = s.true_angle(t);
        let est = s.period_ns;
        let dev_ppm = (est / nominal.as_nanos() as f64 - 1.0).abs() * 1e6;
        assert!(dev_ppm <= 0.5 + 1e-9, "deviation {dev_ppm} ppm");
    }

    #[test]
    fn spindle_angle_is_monotone_in_phase() {
        let mut s = DriftingSpindle::default_for(SimDuration::from_millis(6), 2);
        let a0 = s.true_angle(SimTime::from_micros(100));
        let a1 = s.true_angle(SimTime::from_micros(1_600));
        let advance = mod1(a1 - a0);
        // 1.5 ms at 6 ms/rev is a quarter revolution.
        assert!((advance - 0.25).abs() < 1e-4, "advance {advance}");
    }

    #[test]
    fn next_time_at_angle_lands_on_target() {
        let mut s = DriftingSpindle::default_for(SimDuration::from_millis(6), 3);
        for i in 0..50 {
            let from = SimTime::from_micros(123_457 * i);
            let target = mod1(i as f64 * 0.137);
            let t = s.next_time_at_angle(from, target);
            assert!(t >= from);
            let got = s.true_angle(t);
            let err = mod1(got - target).min(mod1(target - got));
            assert!(err < 1e-5, "angle error {err} at iteration {i}");
        }
    }

    #[test]
    fn tracker_converges_on_ideal_spindle() {
        let period = SimDuration::from_millis(6);
        let noise = ObservationNoise {
            mean_us: 150.0,
            std_us: 0.0,
            floor_us: 150.0,
        };
        let mut tracker = HeadTracker::new(period, noise);
        // Ideal spindle: reference angle 0 passes at exact multiples of R.
        for i in 1..=10u64 {
            let passes = SimTime::from_nanos(i * 100 * period.as_nanos());
            let obs = passes + SimDuration::from_micros(150);
            tracker.observe(obs, 0.0);
        }
        assert!(tracker.is_calibrated());
        let est = tracker.period_estimate();
        let err = est.as_nanos().abs_diff(period.as_nanos());
        assert!(err < 10, "period error {err} ns");
        // Prediction at a future instant: phase should be ~dt/R mod 1.
        let t = SimTime::from_nanos(7_000 * period.as_nanos() + period.as_nanos() / 4);
        let angle = tracker.predict_angle(t).unwrap();
        assert!((angle - 0.25).abs() < 1e-3, "angle {angle}");
    }

    #[test]
    fn tracker_tracks_drifting_spindle_to_table2_accuracy() {
        let nominal = SimDuration::from_millis(6);
        let mut spindle = DriftingSpindle::default_for(nominal, 5);
        let mut rng = SimRng::seed_from(6);
        let noise = ObservationNoise::default();
        let mut tracker = HeadTracker::new(nominal, noise);
        let mut schedule = CalibrationSchedule::paper_default();

        let mut now = SimTime::from_millis(1);
        // Warm up through the growing schedule, then measure in steady state.
        for _ in 0..40 {
            let pass = spindle.next_time_at_angle(now, 0.0);
            let jitter = rng.normal_at_least(noise.mean_us, noise.std_us, noise.floor_us);
            tracker.observe(pass + SimDuration::from_micros_f64(jitter), 0.0);
            now = pass + schedule.advance();
        }
        // Sample prediction error at random instants between recalibrations.
        let mut worst_us: f64 = 0.0;
        for i in 0..200 {
            let t = now + SimDuration::from_millis(i * 40);
            let predicted = tracker.predict_angle(t).unwrap();
            let actual = spindle.true_angle(t);
            let err_rev = mod1(predicted - actual).min(mod1(actual - predicted));
            worst_us = worst_us.max(err_rev * 6_000.0);
        }
        // Table 2 reports errors within 1% of a rotation (60us) with 98%
        // confidence; allow some headroom for the worst case here.
        assert!(worst_us < 90.0, "worst prediction error {worst_us} us");
    }

    #[test]
    fn request_completions_substitute_for_reference_reads() {
        // §3.2's unimplemented optimisation, implemented: after an initial
        // calibration, ordinary request completions (whose end angles the
        // layout knows) keep the tracker locked without any further
        // reference-sector reads.
        let nominal = SimDuration::from_millis(6);
        let mut spindle = DriftingSpindle::default_for(nominal, 21);
        let mut rng = SimRng::seed_from(22);
        let noise = ObservationNoise::default();
        let mut tracker = HeadTracker::new(nominal, noise);

        // Boot-strap with a few reference reads at angle 0.
        let mut now = SimTime::from_millis(1);
        for _ in 0..6 {
            let pass = spindle.next_time_at_angle(now, 0.0);
            let jitter = rng.normal_at_least(noise.mean_us, noise.std_us, noise.floor_us);
            tracker.observe(pass + SimDuration::from_micros_f64(jitter), 0.0);
            now = pass + SimDuration::from_millis(500);
        }
        // Thereafter: only request completions at arbitrary angles, spaced
        // 20-40 s apart for ten minutes.
        let mut worst_us: f64 = 0.0;
        for i in 0..20u64 {
            let angle = (i as f64 * 0.377).rem_euclid(1.0);
            let pass = spindle.next_time_at_angle(now, angle);
            let jitter = rng.normal_at_least(noise.mean_us, noise.std_us, noise.floor_us);
            tracker.observe(pass + SimDuration::from_micros_f64(jitter), angle);
            // Score a prediction mid-gap, once the fit window has grown
            // past the short bootstrap baseline.
            if i >= 6 {
                let t = pass + SimDuration::from_secs(10);
                let pred = tracker.predict_angle(t).expect("calibrated");
                let act = spindle.true_angle(t);
                let e = (pred - act).rem_euclid(1.0);
                worst_us = worst_us.max(e.min(1.0 - e) * 6_000.0);
            }
            now = pass + SimDuration::from_secs(20 + i % 20);
        }
        assert!(worst_us < 90.0, "worst error {worst_us} us");
    }

    #[test]
    fn schedule_grows_and_saturates() {
        let mut s =
            CalibrationSchedule::new(SimDuration::from_millis(50), SimDuration::from_secs(120));
        let mut last = SimDuration::ZERO;
        for _ in 0..20 {
            let cur = s.advance();
            assert!(cur >= last);
            last = cur;
        }
        assert_eq!(last, SimDuration::from_secs(120));
        assert_eq!(s.steady_state(), SimDuration::from_secs(120));
    }

    #[test]
    fn slack_controller_widens_under_misses() {
        let mut c = SlackController::new(2, 0.01, 100);
        for _ in 0..100 {
            c.record(true);
        }
        assert!(c.slack_sectors() > 2);
    }

    #[test]
    fn slack_controller_narrows_when_clean() {
        let mut c = SlackController::new(8, 0.01, 100);
        for _ in 0..300 {
            c.record(false);
        }
        assert!(c.slack_sectors() < 8);
    }

    #[test]
    fn slack_controller_respects_bounds() {
        let mut c = SlackController::new(0, 0.01, 10);
        for _ in 0..50 {
            c.record(false);
        }
        assert_eq!(c.slack_sectors(), 0);
        let mut c = SlackController::new(64, 0.01, 10);
        for _ in 0..1000 {
            c.record(true);
        }
        assert_eq!(c.slack_sectors(), 64);
    }

    #[test]
    fn slack_time_scales_with_sector_time() {
        let c = SlackController::new(4, 0.01, 100);
        let sector = SimDuration::from_micros(28);
        assert_eq!(c.slack_time(sector), SimDuration::from_micros(112));
    }
}
