//! The seek-time profile and its numeric calibration.
//!
//! Following Ruemmler & Wilkes, seek time is modelled in two regimes: an
//! acceleration-dominated region where time grows with the square root of
//! distance, and a coast region where it is linear ("seek latency is
//! approximately a linear function of seek distance only for long seeks",
//! §2.1). The profile is
//!
//! ```text
//! t(d) = a + b * sqrt(d)            for 1 <= d <= d0
//! t(d) = t(d0) + (b / (2*sqrt(d0))) * (d - d0)   for d > d0
//! ```
//!
//! which is continuous and has a continuous derivative at the regime
//! boundary `d0`. [`SeekProfile::fit`] solves for `(a, b, d0)` numerically
//! so that the profile reproduces a drive's published minimum, average, and
//! maximum seek times — the same calibration the paper's prototype performs
//! against live hardware (§3.2).

use std::cell::RefCell;
use std::sync::Arc;

use mimd_sim::SimDuration;

use crate::params::DiskParams;

/// Most distinct drive models a process plausibly simulates; beyond it the
/// memo stops growing and extra models just refit.
const FIT_CACHE_CAP: usize = 16;

// simlint: shard-local(per-thread fit memo; value-transparent — a refit returns bit-identical tables. The engine fits once on the conductor thread and Arc-shares into shards, so shard workers never refit)
thread_local! {
    /// Per-thread memo for [`SeekProfile::fit`]: `(params, fitted profile)`
    /// pairs, searched linearly (the list holds a handful of drive models
    /// at most). Thread-local rather than shared so the simulation crates
    /// stay lock-free; each harness worker refits at most once per model.
    // simlint: shard-local(same memo — the fit is a pure function of DiskParams)
    static FIT_CACHE: RefCell<Vec<(DiskParams, SeekProfile)>> = const { RefCell::new(Vec::new()) };
}

/// A calibrated two-regime seek-time curve.
///
/// After calibration the curve is tabulated per cylinder distance, so the
/// scheduler-facing [`SeekProfile::seek`] / [`SeekProfile::seek_write`] hot
/// paths are a single indexed load instead of a `sqrt` and float→duration
/// conversion. The tables are `Arc`-shared: cloning a fitted profile (one
/// per disk in an array) costs two refcount bumps, not half a megabyte.
#[derive(Debug, Clone)]
pub struct SeekProfile {
    /// Intercept of the sqrt regime, in microseconds.
    a_us: f64,
    /// Coefficient of the sqrt regime, in microseconds per sqrt(cylinder).
    b_us: f64,
    /// Regime-boundary distance in cylinders.
    d0: f64,
    /// Total cylinders (domain of the curve).
    cylinders: u32,
    /// Extra settle time for writes, in microseconds.
    write_settle_us: f64,
    /// Read-seek nanoseconds per cylinder distance (`0..cylinders`); empty
    /// only in the throwaway profiles the fit's bisection evaluates.
    lut_ns: Arc<[u64]>,
    /// Write-seek nanoseconds per cylinder distance, settle included.
    lut_write_ns: Arc<[u64]>,
}

impl SeekProfile {
    /// Fits a profile to a drive's published seek figures.
    ///
    /// Solves for the curve that passes through `min_seek` at distance 1 and
    /// `max_seek` at the full stroke, whose *expected* seek time over
    /// uniformly random cylinder pairs equals `avg_seek`. Returns an error
    /// string if the target average is unreachable for the given endpoints
    /// (it must lie between the purely-linear and purely-sqrt extremes).
    ///
    /// # Examples
    ///
    /// ```
    /// use mimd_disk::{DiskParams, SeekProfile};
    ///
    /// let p = DiskParams::st39133lwv();
    /// let s = SeekProfile::fit(&p).unwrap();
    /// let avg = s.expected_random_seek(p.total_cylinders());
    /// assert!((avg.as_millis_f64() - 5.2).abs() < 0.02);
    /// ```
    pub fn fit(params: &DiskParams) -> Result<Self, String> {
        // The fit is pure in `params` but costs ~1ms (80 bisection probes,
        // each a 4000-step numeric integration, then two 7000-entry LUT
        // builds), and simulations are built far more often than new drive
        // models appear. Memoise per thread: same parameters return a clone
        // of the same fitted profile, bit-for-bit.
        if let Some(hit) = FIT_CACHE.with(|c| {
            c.borrow()
                .iter()
                .find(|(p, _)| p == params)
                .map(|(_, s)| s.clone())
        }) {
            return Ok(hit);
        }
        let prof = Self::fit_uncached(params)?;
        FIT_CACHE.with(|c| {
            let mut cache = c.borrow_mut();
            if cache.len() < FIT_CACHE_CAP {
                cache.push((params.clone(), prof.clone()));
            }
        });
        Ok(prof)
    }

    /// The fit itself, bypassing the memo (exposed for cost measurement).
    pub fn fit_uncached(params: &DiskParams) -> Result<Self, String> {
        params.validate()?;
        let c = params.total_cylinders() as f64;
        let min = params.min_seek.as_micros_f64();
        let avg = params.avg_seek.as_micros_f64();
        let max = params.max_seek.as_micros_f64();
        if !(min < avg && avg < max) {
            return Err("seek fit requires min < avg < max".into());
        }

        // For a candidate boundary d0, the endpoint constraints determine a
        // and b in closed form; the expected seek is then evaluated
        // numerically. avg(d0) is monotonically increasing in d0 (more
        // sqrt-like curves bow upward), so bisection applies.
        let solve = |d0: f64| -> (f64, f64) {
            let denom = d0.sqrt() - 1.0 + (c - d0) / (2.0 * d0.sqrt());
            let b = (max - min) / denom;
            let a = min - b;
            (a, b)
        };
        let avg_of = |d0: f64| -> f64 {
            let (a, b) = solve(d0);
            let prof = SeekProfile::analytic(a, b, d0, params.total_cylinders(), 0.0);
            prof.numeric_expected_random_seek_us(c)
        };

        let mut lo = 1.5;
        let mut hi = c - 1.0;
        let (avg_lo, avg_hi) = (avg_of(lo), avg_of(hi));
        if avg < avg_lo - 1.0 || avg > avg_hi + 1.0 {
            return Err(format!(
                "average seek {avg:.0}us unreachable; fit range is [{avg_lo:.0}, {avg_hi:.0}]us"
            ));
        }
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if avg_of(mid) < avg {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let d0 = 0.5 * (lo + hi);
        let (a, b) = solve(d0);
        if b <= 0.0 || a < 0.0 {
            return Err("fit produced a non-physical curve".into());
        }
        let mut prof = SeekProfile::analytic(
            a,
            b,
            d0,
            params.total_cylinders(),
            params.write_settle.as_micros_f64(),
        );
        prof.build_luts();
        Ok(prof)
    }

    /// A curve without lookup tables; [`Self::seek`] falls back to the
    /// analytic formula. Used for the fit's throwaway bisection probes.
    fn analytic(a_us: f64, b_us: f64, d0: f64, cylinders: u32, write_settle_us: f64) -> Self {
        SeekProfile {
            a_us,
            b_us,
            d0,
            cylinders,
            write_settle_us,
            lut_ns: Arc::from(Vec::new()),
            lut_write_ns: Arc::from(Vec::new()),
        }
    }

    /// Tabulates the curve per cylinder distance. Entries reproduce the
    /// analytic path bit-for-bit: each is exactly what
    /// `SimDuration::from_micros_f64(time_us(d))` would return.
    fn build_luts(&mut self) {
        let n = self.cylinders as usize;
        let mut read = Vec::with_capacity(n);
        let mut write = Vec::with_capacity(n);
        for d in 0..n {
            let t = self.time_us(d as f64);
            read.push(SimDuration::from_micros_f64(t).as_nanos());
            write.push(if d == 0 {
                0
            } else {
                SimDuration::from_micros_f64(t + self.write_settle_us).as_nanos()
            });
        }
        // Weak monotonicity underwrites `max_dist_within_ns`'s binary
        // search (the analytic curve is strictly increasing; rounding to
        // nanoseconds can only flatten it).
        debug_assert!(read.windows(2).all(|w| w[0] <= w[1]));
        self.lut_ns = Arc::from(read);
        self.lut_write_ns = Arc::from(write);
    }

    fn time_us(&self, distance: f64) -> f64 {
        if distance <= 0.0 {
            return 0.0;
        }
        let d = distance.max(1.0);
        if d <= self.d0 {
            self.a_us + self.b_us * d.sqrt()
        } else {
            let at_d0 = self.a_us + self.b_us * self.d0.sqrt();
            at_d0 + self.b_us / (2.0 * self.d0.sqrt()) * (d - self.d0)
        }
    }

    /// Read-seek time for a cylinder distance.
    #[inline]
    pub fn seek(&self, distance: u32) -> SimDuration {
        match self.lut_ns.get(distance as usize) {
            Some(&ns) => SimDuration::from_nanos(ns),
            None => SimDuration::from_micros_f64(self.time_us(distance as f64)),
        }
    }

    /// Write-seek time: read seek plus the write settle penalty.
    ///
    /// The settle is charged whenever the arm repositions (`distance > 0`);
    /// a zero-distance write pays nothing extra here.
    #[inline]
    pub fn seek_write(&self, distance: u32) -> SimDuration {
        if distance == 0 {
            return SimDuration::ZERO;
        }
        match self.lut_write_ns.get(distance as usize) {
            Some(&ns) => SimDuration::from_nanos(ns),
            None => {
                SimDuration::from_micros_f64(self.time_us(distance as f64) + self.write_settle_us)
            }
        }
    }

    /// Read-seek nanoseconds for a cylinder distance — the raw table entry,
    /// for callers (the scheduler's candidate scan) that compare costs in
    /// integer nanoseconds without constructing durations.
    #[inline]
    pub fn seek_ns(&self, distance: u32) -> u64 {
        match self.lut_ns.get(distance as usize) {
            Some(&ns) => ns,
            None => self.seek(distance).as_nanos(),
        }
    }

    /// Write-seek nanoseconds for a cylinder distance — the raw write-table
    /// entry (settle included), the integer twin of
    /// [`SeekProfile::seek_write`]. Zero at distance 0, like `seek_write`.
    #[inline]
    pub fn seek_write_ns(&self, distance: u32) -> u64 {
        if distance == 0 {
            return 0;
        }
        match self.lut_write_ns.get(distance as usize) {
            Some(&ns) => ns,
            None => self.seek_write(distance).as_nanos(),
        }
    }

    /// Batched [`SeekProfile::seek_ns`]: one flat pass of LUT gathers over a
    /// lane of cylinder distances. Each output is bit-identical to the
    /// scalar call; the in-domain body is branch-free (the bounds check
    /// compiles to a select) and the analytic fallback only runs for
    /// distances past the drive's last cylinder.
    ///
    /// # Panics
    ///
    /// Panics if the lanes differ in length.
    pub fn seek_ns_batch(&self, distances: &[u32], out: &mut [u64]) {
        assert_eq!(
            distances.len(),
            out.len(),
            "seek_ns_batch lane length mismatch"
        );
        let lut = &self.lut_ns[..];
        for (o, &d) in out.iter_mut().zip(distances) {
            *o = match lut.get(d as usize) {
                Some(&ns) => ns,
                None => self.seek(d).as_nanos(),
            };
        }
    }

    /// The largest cylinder distance whose read-seek time fits in
    /// `budget_ns` — the inverse of the (weakly monotone) seek curve,
    /// answered by one binary search over the tabulated LUT. Distance 0
    /// always fits (`lut[0] == 0`). Returns `u32::MAX` on an un-tabulated
    /// profile, i.e. "no distance can be ruled out", which is always safe
    /// for callers that use the answer to prune.
    ///
    /// Band indexes use this to turn "skip every band whose seek lower
    /// bound exceeds the incumbent's cost" into a pure integer comparison
    /// per band: `band_min_dist > max_dist_within_ns(cost)` holds exactly
    /// when `seek_ns(band_min_dist) > cost`.
    #[inline]
    pub fn max_dist_within_ns(&self, budget_ns: u64) -> u32 {
        if self.lut_ns.is_empty() {
            return u32::MAX;
        }
        let pp = self.lut_ns.partition_point(|&ns| ns <= budget_ns);
        pp.saturating_sub(1) as u32
    }

    /// The regime-boundary distance found by the fit.
    pub fn boundary(&self) -> f64 {
        self.d0
    }

    /// Expected seek time when both endpoints are uniform over a span of
    /// `span` cylinders (numeric integration against the triangular distance
    /// density `f(x) = 2(span - x) / span^2`).
    ///
    /// With `span` equal to the whole drive this reproduces the drive's
    /// average seek; with `span = C / Ds` it gives the average seek of one
    /// stripe of a `Ds`-way striped layout — the quantity the paper's
    /// Equation (1) approximates as `S / (3 Ds)`.
    pub fn expected_random_seek(&self, span: u32) -> SimDuration {
        SimDuration::from_micros_f64(self.numeric_expected_random_seek_us(span as f64))
    }

    fn numeric_expected_random_seek_us(&self, span: f64) -> f64 {
        if span <= 1.0 {
            return 0.0;
        }
        // Trapezoidal integration of t(x) * 2(span - x)/span^2 over [0, span].
        let steps = 4_000usize;
        let h = span / steps as f64;
        let f = |x: f64| self.time_us(x) * 2.0 * (span - x) / (span * span);
        let mut acc = 0.5 * (f(0.0) + f(span));
        for i in 1..steps {
            acc += f(i as f64 * h);
        }
        acc * h
    }

    /// Maximum (full-stroke) seek time for this profile's domain.
    pub fn max_seek(&self) -> SimDuration {
        self.seek(self.cylinders.saturating_sub(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fitted() -> (DiskParams, SeekProfile) {
        let p = DiskParams::st39133lwv();
        let s = SeekProfile::fit(&p).expect("fit succeeds");
        (p, s)
    }

    #[test]
    fn fit_reproduces_published_endpoints() {
        let (p, s) = fitted();
        let min = s.seek(1).as_millis_f64();
        let max = s.seek(p.total_cylinders() - 1).as_millis_f64();
        assert!((min - p.min_seek.as_millis_f64()).abs() < 0.01, "min {min}");
        assert!((max - p.max_seek.as_millis_f64()).abs() < 0.02, "max {max}");
    }

    #[test]
    fn fit_reproduces_published_average() {
        let (p, s) = fitted();
        let avg = s.expected_random_seek(p.total_cylinders()).as_millis_f64();
        assert!((avg - 5.2).abs() < 0.02, "avg {avg}");
    }

    #[test]
    fn seek_zero_distance_is_free() {
        let (_, s) = fitted();
        assert_eq!(s.seek(0), SimDuration::ZERO);
        assert_eq!(s.seek_write(0), SimDuration::ZERO);
    }

    #[test]
    fn seek_ns_batch_matches_scalar_at_edges_and_randomized() {
        let (p, s) = fitted();
        let total = p.total_cylinders();
        // Edge distances around both LUT boundaries (0 and the last
        // tabulated cylinder), plus a pseudo-random sweep of the interior
        // and a few past-the-end distances that hit the analytic fallback.
        let mut dists: Vec<u32> = vec![0, 1, 2, total - 2, total - 1, total, total + 7];
        let mut x = 9u64;
        for _ in 0..4_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            dists.push((x >> 33) as u32 % (total + 32));
        }
        let mut out = vec![0u64; dists.len()];
        s.seek_ns_batch(&dists, &mut out);
        for (&d, &got) in dists.iter().zip(&out) {
            assert_eq!(got, s.seek_ns(d), "distance {d}");
        }
    }

    #[test]
    fn max_dist_within_ns_is_dual_to_seek_bound() {
        let (p, s) = fitted();
        let total = p.total_cylinders();
        // `d <= max_dist_within_ns(c)` must hold exactly when
        // `seek_ns(d) <= c`: sample budgets across the whole curve,
        // including exact LUT values (ties) and off-by-one nanoseconds.
        for d in [1u32, 2, 17, 100, 999, total / 2, total - 1] {
            let ns = s.seek_ns(d);
            for budget in [ns.saturating_sub(1), ns, ns + 1] {
                let m = s.max_dist_within_ns(budget);
                assert!(
                    s.seek_ns(m) <= budget,
                    "d={d} budget={budget}: max {m} does not fit"
                );
                if m < total + 8 {
                    assert!(
                        s.seek_ns(m + 1) > budget,
                        "d={d} budget={budget}: max {m} not maximal"
                    );
                }
            }
        }
    }

    #[test]
    fn seek_is_monotone_in_distance() {
        let (p, s) = fitted();
        let mut prev = SimDuration::ZERO;
        for d in [
            1,
            2,
            5,
            10,
            50,
            100,
            500,
            1000,
            3000,
            p.total_cylinders() - 1,
        ] {
            let t = s.seek(d);
            assert!(t > prev, "t({d}) = {t} not increasing");
            prev = t;
        }
    }

    #[test]
    fn write_seek_adds_settle() {
        let (p, s) = fitted();
        let r = s.seek(100);
        let w = s.seek_write(100);
        assert_eq!(w - r, p.write_settle);
    }

    #[test]
    fn striped_span_shrinks_average_seek() {
        let (p, s) = fitted();
        let c = p.total_cylinders();
        let full = s.expected_random_seek(c);
        let half = s.expected_random_seek(c / 2);
        let sixth = s.expected_random_seek(c / 6);
        assert!(half < full);
        assert!(sixth < half);
        // Sub-linear: at short spans the sqrt regime dominates, so a 6x
        // smaller span shrinks the average seek by less than 6x.
        assert!(sixth.as_micros_f64() > full.as_micros_f64() / 6.0);
    }

    #[test]
    fn curve_is_continuous_at_boundary() {
        let (_, s) = fitted();
        let d0 = s.boundary();
        let before = s.time_us(d0 - 0.01);
        let after = s.time_us(d0 + 0.01);
        assert!(
            (before - after).abs() < 1.0,
            "jump at d0: {before} vs {after}"
        );
    }

    #[test]
    fn fit_rejects_degenerate_inputs() {
        let mut p = DiskParams::st39133lwv();
        p.avg_seek = p.min_seek;
        assert!(SeekProfile::fit(&p).is_err());

        // Average below the linear-curve floor is unreachable.
        let mut p = DiskParams::st39133lwv();
        p.avg_seek = SimDuration::from_micros(1_000);
        assert!(SeekProfile::fit(&p).is_err());
    }

    #[test]
    fn lut_matches_analytic_curve_at_every_distance() {
        // The table is a pure cache: for every representable cylinder
        // distance, the tabulated read and write seeks must equal what the
        // analytic two-regime formula produces, bit for bit.
        for p in [
            DiskParams::st39133lwv(),
            DiskParams::slow_spindle_7200(),
            DiskParams::circa_2004_15k(),
        ] {
            let s = SeekProfile::fit(&p).expect("fit succeeds");
            for d in 0..p.total_cylinders() {
                let analytic_read = SimDuration::from_micros_f64(s.time_us(d as f64));
                assert_eq!(s.seek(d), analytic_read, "{}: read seek({d})", p.model);
                assert_eq!(s.seek_ns(d), analytic_read.as_nanos());
                let analytic_write = if d == 0 {
                    SimDuration::ZERO
                } else {
                    SimDuration::from_micros_f64(s.time_us(d as f64) + s.write_settle_us)
                };
                assert_eq!(
                    s.seek_write(d),
                    analytic_write,
                    "{}: write seek({d})",
                    p.model
                );
            }
        }
    }

    #[test]
    fn out_of_domain_distances_fall_back_to_analytic() {
        let (p, s) = fitted();
        let beyond = p.total_cylinders() + 10;
        assert_eq!(
            s.seek(beyond),
            SimDuration::from_micros_f64(s.time_us(beyond as f64))
        );
        assert_eq!(s.seek_ns(beyond), s.seek(beyond).as_nanos());
    }

    #[test]
    fn fit_handles_ablation_presets() {
        for p in [DiskParams::slow_spindle_7200(), DiskParams::slow_seek()] {
            let s = SeekProfile::fit(&p).expect("ablation preset fits");
            let avg = s.expected_random_seek(p.total_cylinders());
            let want = p.avg_seek.as_millis_f64();
            assert!(
                (avg.as_millis_f64() - want).abs() < 0.05,
                "avg {avg} vs {want}"
            );
        }
    }
}
