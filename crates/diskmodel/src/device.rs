//! The block-device abstraction (the paper's "SCSI Abstraction Layer").
//!
//! The prototype's lowest shared layer hides whether requests hit a real
//! SCSI drive or the integrated simulator (§3.1, Figure 4). Here the trait
//! captures the capacity/addressing contract that the array layouts rely
//! on; [`crate::SimDisk`] is the (only) simulated implementation, and the
//! array engine in `mimd-core` composes many of them.

use crate::disk::SimDisk;

/// Errors surfaced by block-device operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// A request addressed sectors beyond the device capacity.
    OutOfRange {
        /// First requested sector.
        lbn: u64,
        /// Requested length in sectors.
        sectors: u32,
        /// Device capacity in sectors.
        capacity: u64,
    },
    /// A request of zero length was submitted.
    EmptyRequest,
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::OutOfRange {
                lbn,
                sectors,
                capacity,
            } => write!(
                f,
                "request [{lbn}, {}) exceeds device capacity {capacity}",
                lbn + *sectors as u64
            ),
            DeviceError::EmptyRequest => write!(f, "zero-length request"),
        }
    }
}

impl std::error::Error for DeviceError {}

/// Capacity/addressing contract of a block device.
pub trait BlockDevice {
    /// Addressable capacity in sectors.
    fn capacity_sectors(&self) -> u64;

    /// Bytes per sector.
    fn sector_bytes(&self) -> u32;

    /// Validates that a request fits the device.
    fn check_range(&self, lbn: u64, sectors: u32) -> Result<(), DeviceError> {
        if sectors == 0 {
            return Err(DeviceError::EmptyRequest);
        }
        let cap = self.capacity_sectors();
        if lbn >= cap || cap - lbn < sectors as u64 {
            return Err(DeviceError::OutOfRange {
                lbn,
                sectors,
                capacity: cap,
            });
        }
        Ok(())
    }
}

impl BlockDevice for SimDisk {
    fn capacity_sectors(&self) -> u64 {
        self.geometry().total_sectors()
    }

    fn sector_bytes(&self) -> u32 {
        512
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::{PositionKnowledge, TimingPath};
    use crate::params::DiskParams;

    fn disk() -> SimDisk {
        SimDisk::new(
            &DiskParams::st39133lwv(),
            TimingPath::Detailed,
            PositionKnowledge::Perfect,
            0,
        )
        .unwrap()
    }

    #[test]
    fn capacity_matches_geometry() {
        let d = disk();
        assert_eq!(d.capacity_sectors(), d.geometry().total_sectors());
        assert_eq!(d.sector_bytes(), 512);
    }

    #[test]
    fn range_checks() {
        let d = disk();
        let cap = d.capacity_sectors();
        assert!(d.check_range(0, 1).is_ok());
        assert!(d.check_range(cap - 8, 8).is_ok());
        assert!(matches!(
            d.check_range(cap - 8, 9),
            Err(DeviceError::OutOfRange { .. })
        ));
        assert!(matches!(
            d.check_range(cap, 1),
            Err(DeviceError::OutOfRange { .. })
        ));
        assert_eq!(d.check_range(0, 0), Err(DeviceError::EmptyRequest));
    }

    #[test]
    fn errors_display() {
        let e = DeviceError::OutOfRange {
            lbn: 10,
            sectors: 5,
            capacity: 12,
        };
        assert!(e.to_string().contains("exceeds"));
        assert!(DeviceError::EmptyRequest.to_string().contains("zero"));
    }
}
