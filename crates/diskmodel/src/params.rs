//! Physical drive parameter sets.
//!
//! The paper's prototype used Seagate ST39133LWV (Cheetah 9LP family)
//! drives: 9.1 GB, 10 000 RPM, 5.2 ms average read seek, 6.0 ms average
//! write seek (Table 1). [`DiskParams::st39133lwv`] encodes those published
//! figures; the geometry (cylinder count, zone layout) follows the drive
//! family's data sheet shape. Everything is a plain value object so
//! experiments can perturb single parameters (e.g. Figure-ablation studies
//! on slower spindles).

use mimd_sim::SimDuration;

/// Specification of one recording zone: a run of cylinders sharing a
/// sectors-per-track count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZoneSpec {
    /// Number of cylinders in this zone.
    pub cylinders: u32,
    /// Sectors per track within this zone.
    pub sectors_per_track: u32,
}

/// Complete parameter set for a simulated drive.
#[derive(Debug, Clone, PartialEq)]
pub struct DiskParams {
    /// Human-readable model name.
    pub model: &'static str,
    /// Spindle speed in revolutions per minute.
    pub rpm: u32,
    /// Number of recording surfaces (heads).
    pub surfaces: u32,
    /// Bytes per sector.
    pub sector_bytes: u32,
    /// Zone table, outermost first.
    pub zones: Vec<ZoneSpec>,
    /// Track skew, expressed as a fraction of a revolution, applied per
    /// track so sequential transfers survive a head switch.
    pub track_skew_frac: f64,
    /// Single-cylinder (minimum) seek time.
    pub min_seek: SimDuration,
    /// Average read seek time over uniformly random cylinder pairs.
    pub avg_seek: SimDuration,
    /// Full-stroke (maximum) seek time.
    pub max_seek: SimDuration,
    /// Extra settle time charged to writes (writes settle more carefully).
    pub write_settle: SimDuration,
    /// Head-switch time (same cylinder, different surface).
    pub head_switch: SimDuration,
    /// Fixed per-request command/controller overhead occupying the drive.
    pub overhead: SimDuration,
}

impl DiskParams {
    /// Parameters matching the paper's Seagate ST39133LWV (Table 1).
    ///
    /// # Examples
    ///
    /// ```
    /// let p = mimd_disk::DiskParams::st39133lwv();
    /// assert_eq!(p.rpm, 10_000);
    /// assert!((p.rotation_time().as_millis_f64() - 6.0).abs() < 1e-9);
    /// ```
    pub fn st39133lwv() -> Self {
        // Eleven zones, 248 down to 178 sectors/track, averaging ~213, so
        // 6 962 cylinders x 12 surfaces x 512 B lands at the drive's 9.1 GB.
        let spt = [248, 241, 234, 227, 220, 213, 206, 199, 192, 185, 178];
        let zones = spt
            .iter()
            .enumerate()
            .map(|(i, &s)| ZoneSpec {
                cylinders: if i == 10 { 632 } else { 633 },
                sectors_per_track: s,
            })
            .collect();
        DiskParams {
            model: "Seagate ST39133LWV",
            rpm: 10_000,
            surfaces: 12,
            sector_bytes: 512,
            zones,
            // 32 sectors of ~213 at 6 ms/rev is ~0.9 ms, matching the
            // paper's quoted track-switch cost.
            track_skew_frac: 32.0 / 213.0,
            min_seek: SimDuration::from_micros(600),
            avg_seek: SimDuration::from_micros(5_200),
            max_seek: SimDuration::from_micros(10_500),
            write_settle: SimDuration::from_micros(800),
            head_switch: SimDuration::from_micros(850),
            // The paper's 2.7 ms "overhead" bundles processing, transfer,
            // track switches, and acceleration tails (§2.3); transfer and
            // switches are computed explicitly here, so the fixed
            // command/controller share is about a millisecond.
            overhead: SimDuration::from_micros(1_000),
        }
    }

    /// A deliberately slow-spindle variant (7 200 RPM) of the same drive,
    /// used by ablation experiments: larger `R` shifts the optimal SR-Array
    /// aspect ratio toward more rotational replicas (Section 2.3).
    pub fn slow_spindle_7200() -> Self {
        let mut p = Self::st39133lwv();
        p.model = "ST39133LWV @ 7200 RPM (ablation)";
        p.rpm = 7_200;
        p
    }

    /// A 1992-era drive in the spirit of the Cello servers' HP C2474S
    /// class: ~1 GB, 5 400 RPM, slow seeks. Used by the drive-generation
    /// trend experiment motivated by the paper's introduction (capacity
    /// grows ~60 %/year while latency improves ~10 %/year).
    pub fn circa_1992() -> Self {
        let spt = [72, 68, 64, 60, 56];
        let zones = spt
            .iter()
            .map(|&s| ZoneSpec {
                cylinders: 400,
                sectors_per_track: s,
            })
            .collect();
        DiskParams {
            model: "circa-1992 1 GB 5400 RPM",
            rpm: 5_400,
            surfaces: 16,
            sector_bytes: 512,
            zones,
            track_skew_frac: 0.2,
            min_seek: SimDuration::from_micros(2_000),
            avg_seek: SimDuration::from_micros(11_500),
            max_seek: SimDuration::from_micros(22_000),
            write_settle: SimDuration::from_micros(1_200),
            head_switch: SimDuration::from_micros(1_500),
            overhead: SimDuration::from_micros(1_500),
        }
    }

    /// A 2004-era drive: ~70 GB, 15 000 RPM, fast seeks (Cheetah 15K
    /// class). Same trend experiment as [`DiskParams::circa_1992`].
    pub fn circa_2004_15k() -> Self {
        let spt = [700, 672, 645, 617, 590, 563, 535, 508, 480];
        let zones = spt
            .iter()
            .map(|&s| ZoneSpec {
                cylinders: 3_000,
                sectors_per_track: s,
            })
            .collect();
        DiskParams {
            model: "circa-2004 70 GB 15000 RPM",
            rpm: 15_000,
            surfaces: 8,
            sector_bytes: 512,
            zones,
            track_skew_frac: 0.15,
            min_seek: SimDuration::from_micros(400),
            avg_seek: SimDuration::from_micros(3_500),
            max_seek: SimDuration::from_micros(7_500),
            write_settle: SimDuration::from_micros(500),
            head_switch: SimDuration::from_micros(600),
            overhead: SimDuration::from_micros(500),
        }
    }

    /// A poor-seek variant (doubled seek times), which shifts the optimal
    /// aspect ratio toward more striping (Section 2.3).
    pub fn slow_seek() -> Self {
        let mut p = Self::st39133lwv();
        p.model = "ST39133LWV, 2x seek (ablation)";
        p.min_seek = p.min_seek * 2;
        p.avg_seek = p.avg_seek * 2;
        p.max_seek = p.max_seek * 2;
        p
    }

    /// Time for one full platter revolution.
    pub fn rotation_time(&self) -> SimDuration {
        SimDuration::from_nanos(60_000_000_000 / self.rpm as u64)
    }

    /// Total number of cylinders across all zones.
    pub fn total_cylinders(&self) -> u32 {
        self.zones.iter().map(|z| z.cylinders).sum()
    }

    /// Total capacity in sectors.
    pub fn total_sectors(&self) -> u64 {
        self.zones
            .iter()
            .map(|z| z.cylinders as u64 * self.surfaces as u64 * z.sectors_per_track as u64)
            .sum()
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_sectors() * self.sector_bytes as u64
    }

    /// Checks internal consistency, returning a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.rpm == 0 {
            return Err("rpm must be positive".into());
        }
        if self.surfaces == 0 {
            return Err("surfaces must be positive".into());
        }
        if self.sector_bytes == 0 {
            return Err("sector_bytes must be positive".into());
        }
        if self.zones.is_empty() {
            return Err("zone table is empty".into());
        }
        if self.zones.iter().any(|z| z.cylinders == 0) {
            return Err("zone with zero cylinders".into());
        }
        if self.zones.iter().any(|z| z.sectors_per_track == 0) {
            return Err("zone with zero sectors per track".into());
        }
        if !(0.0..1.0).contains(&self.track_skew_frac) {
            return Err("track skew must be in [0, 1)".into());
        }
        if self.min_seek > self.avg_seek || self.avg_seek > self.max_seek {
            return Err("seek times must satisfy min <= avg <= max".into());
        }
        if self.total_cylinders() < 2 {
            return Err("need at least two cylinders".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn st39133lwv_matches_table_1() {
        let p = DiskParams::st39133lwv();
        p.validate().expect("preset is valid");
        assert_eq!(p.rpm, 10_000);
        assert!((p.rotation_time().as_millis_f64() - 6.0).abs() < 1e-9);
        assert!((p.avg_seek.as_millis_f64() - 5.2).abs() < 1e-9);
        // Average write seek = 5.2 read + 0.8 settle = 6.0 ms (Table 1).
        assert!(((p.avg_seek + p.write_settle).as_millis_f64() - 6.0).abs() < 1e-9);
        // Capacity close to the advertised 9.1 GB.
        let gb = p.capacity_bytes() as f64 / 1e9;
        assert!((gb - 9.1).abs() < 0.1, "capacity {gb} GB");
        assert_eq!(p.total_cylinders(), 6_962);
    }

    #[test]
    fn zone_table_is_monotone_outer_to_inner() {
        let p = DiskParams::st39133lwv();
        for w in p.zones.windows(2) {
            assert!(w[0].sectors_per_track > w[1].sectors_per_track);
        }
    }

    #[test]
    fn validation_catches_broken_params() {
        let mut p = DiskParams::st39133lwv();
        p.rpm = 0;
        assert!(p.validate().is_err());

        let mut p = DiskParams::st39133lwv();
        p.zones.clear();
        assert!(p.validate().is_err());

        let mut p = DiskParams::st39133lwv();
        p.min_seek = SimDuration::from_millis(20);
        assert!(p.validate().is_err());

        let mut p = DiskParams::st39133lwv();
        p.track_skew_frac = 1.5;
        assert!(p.validate().is_err());
    }

    #[test]
    fn generation_presets_are_valid_and_trend_correctly() {
        let old = DiskParams::circa_1992();
        let mid = DiskParams::st39133lwv();
        let new = DiskParams::circa_2004_15k();
        for p in [&old, &mid, &new] {
            p.validate().expect("preset valid");
        }
        // Capacity explodes across generations; latency only creeps.
        assert!(mid.capacity_bytes() > 8 * old.capacity_bytes());
        assert!(new.capacity_bytes() > 7 * mid.capacity_bytes());
        assert!(old.rotation_time() > mid.rotation_time());
        assert!(mid.rotation_time() > new.rotation_time());
        assert!(old.avg_seek > mid.avg_seek);
        assert!(mid.avg_seek > new.avg_seek);
        // The capacity/latency imbalance grows: capacity ratio far
        // outpaces the latency ratio, the paper's motivating trend.
        let cap_ratio = new.capacity_bytes() as f64 / old.capacity_bytes() as f64;
        let lat_ratio = (old.avg_seek.as_millis_f64() + old.rotation_time().as_millis_f64())
            / (new.avg_seek.as_millis_f64() + new.rotation_time().as_millis_f64());
        assert!(
            cap_ratio > 10.0 * lat_ratio,
            "cap {cap_ratio} vs lat {lat_ratio}"
        );
    }

    #[test]
    fn ablation_variants_differ_as_labelled() {
        let base = DiskParams::st39133lwv();
        let slow = DiskParams::slow_spindle_7200();
        assert!(slow.rotation_time() > base.rotation_time());
        let seeky = DiskParams::slow_seek();
        assert_eq!(seeky.avg_seek, base.avg_seek * 2);
        seeky.validate().expect("ablation preset valid");
        slow.validate().expect("ablation preset valid");
    }
}
