//! Rotational mechanics helpers shared by the disk and calibration layers.

use mimd_sim::{SimDuration, SimTime};

/// Reduces an angle to the canonical `[0, 1)` revolution fraction.
///
/// The scheduler's inner loop only ever passes angle *differences* in
/// `(-1, 1)`; for those the fast paths below are bit-identical to
/// `rem_euclid(1.0)` (`fmod` of `|x| < 1` by one returns `x` unchanged,
/// so the reduction is at most the same single add) without the `fmod`
/// libcall.
#[inline]
pub fn mod1(x: f64) -> f64 {
    if (0.0..1.0).contains(&x) {
        return x;
    }
    if -1.0 < x && x < 0.0 {
        let r = x + 1.0;
        return if r >= 1.0 { 0.0 } else { r };
    }
    let r = x.rem_euclid(1.0);
    if r >= 1.0 {
        0.0
    } else {
        r
    }
}

/// A constant-speed spindle: maps instants to platter phase.
///
/// Phase 0 is the spindle index mark at `t = 0`. Real spindles drift; the
/// calibration module models drift separately — the service-time path uses
/// this ideal clock, which is what the drive's own servo also presents to
/// the host at the timescale of a single request.
#[derive(Debug, Clone, Copy)]
pub struct Spindle {
    period: SimDuration,
}

impl Spindle {
    /// Creates a spindle with the given rotation period.
    ///
    /// # Panics
    ///
    /// Panics if the period is zero.
    pub fn new(period: SimDuration) -> Self {
        assert!(
            period > SimDuration::ZERO,
            "rotation period must be positive"
        );
        Spindle { period }
    }

    /// Full-rotation time.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// Platter phase (fraction of a revolution) at instant `t`.
    #[inline]
    pub fn angle_at(&self, t: SimTime) -> f64 {
        let p = self.period.as_nanos();
        (t.as_nanos() % p) as f64 / p as f64
    }

    /// Time to wait from instant `t` until the platter reaches `target`
    /// phase. Zero if the target is exactly under the head.
    #[inline]
    pub fn wait_until_angle(&self, t: SimTime, target: f64) -> SimDuration {
        let delta = mod1(target - self.angle_at(t));
        SimDuration::from_nanos((delta * self.period.as_nanos() as f64).round() as u64)
    }

    /// Duration of a rotational arc of `frac` revolutions (`frac >= 0`).
    #[inline]
    pub fn arc(&self, frac: f64) -> SimDuration {
        debug_assert!(frac >= 0.0);
        SimDuration::from_nanos((frac * self.period.as_nanos() as f64).round() as u64)
    }
}

/// Decomposition of one physical request's service time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceBreakdown {
    /// Fixed command/controller overhead.
    pub overhead: SimDuration,
    /// Arm positioning time (including any write settle).
    pub seek: SimDuration,
    /// Rotational wait for the target to come under the head, including a
    /// full-rotation miss penalty when head tracking mispredicted.
    pub rotation: SimDuration,
    /// Media transfer time, including head switches mid-transfer.
    pub transfer: SimDuration,
    /// Whether a rotational-prediction miss added a full extra revolution.
    pub missed_rotation: bool,
}

impl ServiceBreakdown {
    /// Total service time.
    pub fn total(&self) -> SimDuration {
        self.overhead + self.seek + self.rotation + self.transfer
    }

    /// Positioning time only (seek + rotation), the quantity SATF orders by.
    pub fn positioning(&self) -> SimDuration {
        self.seek + self.rotation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mod1_wraps_both_directions() {
        assert_eq!(mod1(0.25), 0.25);
        assert_eq!(mod1(1.25), 0.25);
        assert_eq!(mod1(-0.25), 0.75);
        assert_eq!(mod1(0.0), 0.0);
        assert_eq!(mod1(3.0), 0.0);
    }

    #[test]
    fn spindle_angle_advances_linearly() {
        let s = Spindle::new(SimDuration::from_millis(6));
        assert_eq!(s.angle_at(SimTime::ZERO), 0.0);
        assert!((s.angle_at(SimTime::from_millis(3)) - 0.5).abs() < 1e-12);
        assert!((s.angle_at(SimTime::from_millis(9)) - 0.5).abs() < 1e-12);
        assert!((s.angle_at(SimTime::from_micros(1_500)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn wait_until_angle_is_forward_only() {
        let s = Spindle::new(SimDuration::from_millis(6));
        let t = SimTime::from_millis(3); // Phase 0.5.
        assert_eq!(s.wait_until_angle(t, 0.75), SimDuration::from_micros(1_500));
        // Going "backwards" costs most of a revolution.
        assert_eq!(s.wait_until_angle(t, 0.25), SimDuration::from_micros(4_500));
        assert_eq!(s.wait_until_angle(t, 0.5), SimDuration::ZERO);
    }

    #[test]
    fn arc_scales_with_fraction() {
        let s = Spindle::new(SimDuration::from_millis(6));
        assert_eq!(s.arc(0.5), SimDuration::from_millis(3));
        assert_eq!(s.arc(2.0), SimDuration::from_millis(12));
        assert_eq!(s.arc(0.0), SimDuration::ZERO);
    }

    #[test]
    fn breakdown_totals() {
        let b = ServiceBreakdown {
            overhead: SimDuration::from_micros(500),
            seek: SimDuration::from_micros(2_000),
            rotation: SimDuration::from_micros(1_500),
            transfer: SimDuration::from_micros(250),
            missed_rotation: false,
        };
        assert_eq!(b.total(), SimDuration::from_micros(4_250));
        assert_eq!(b.positioning(), SimDuration::from_micros(3_500));
    }
}
