//! Mechanical disk-drive model for the MimdRAID reproduction.
//!
//! Simulates the Seagate ST39133LWV-class drives of the paper's prototype
//! (Table 1): zoned geometry with track skew, a numerically calibrated
//! two-regime seek profile, constant-speed rotation, and — the paper's
//! §3.2 contribution — software-only head-position prediction with its
//! slack feedback loop.
//!
//! Layer map versus the paper's Figure 4:
//!
//! - *SCSI Abstraction Layer* → [`device::BlockDevice`]
//! - *Calibration Layer* → [`calibration`] (head tracking, slack control)
//!   plus [`seek::SeekProfile::fit`] (timing extraction)
//! - *Simulator* → [`disk::SimDisk`] with its two timing fidelities
//!   ([`disk::TimingPath`]), which the Figure-5 experiment cross-validates
//!
//! # Examples
//!
//! ```
//! use mimd_disk::{DiskParams, PositionKnowledge, SimDisk, Target, TimingPath};
//! use mimd_sim::SimTime;
//!
//! let mut disk = SimDisk::new(
//!     &DiskParams::st39133lwv(),
//!     TimingPath::Detailed,
//!     PositionKnowledge::Perfect,
//!     1,
//! )
//! .unwrap();
//! let target = Target { cylinder: 3000, surface: 4, angle: 0.25, sectors: 16 };
//! let service = disk.begin(SimTime::ZERO, &target, false);
//! assert!(service.total() > service.transfer);
//! ```

pub mod calibration;
pub mod device;
pub mod disk;
pub mod geometry;
pub mod mechanics;
pub mod params;
pub mod seek;

pub use device::{BlockDevice, DeviceError};
pub use disk::{PhaseFloorRuler, PositionKnowledge, SimDisk, Target, TimingPath};
pub use geometry::{Chs, Geometry, ZoneInfo};
pub use mechanics::{mod1, ServiceBreakdown, Spindle};
pub use params::{DiskParams, ZoneSpec};
pub use seek::SeekProfile;
