//! The simulated drive: head state, service-time computation, and the two
//! timing fidelities.
//!
//! The paper's architecture (§3.1, Figure 4) runs the same upper layers
//! against either real SCSI disks or an integrated simulator calibrated
//! from them; Figure 5 validates that the two agree within 3 %. We
//! reproduce that structure with two independently-coded timing paths:
//!
//! - [`TimingPath::Detailed`] — sector-accurate: target angles are
//!   quantised to real sector boundaries on the addressed track, transfer
//!   time uses that zone's sectors-per-track, and head switches during a
//!   transfer are counted exactly.
//! - [`TimingPath::Analytic`] — continuous: angles are taken as given and
//!   transfer time uses the drive-wide average track length.
//!
//! The array engine can run on either; the Figure-5 reproduction runs both
//! and reports the discrepancy.

use mimd_sim::{SimDuration, SimRng, SimTime};

use crate::geometry::Geometry;
use crate::mechanics::{mod1, ServiceBreakdown, Spindle};
use crate::params::DiskParams;
use crate::seek::SeekProfile;

/// Which service-time implementation a [`SimDisk`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimingPath {
    /// Sector-accurate timing (the "prototype" role in Figure 5).
    Detailed,
    /// Continuous-angle timing (the "simulator" role in Figure 5).
    Analytic,
}

/// How the drive's rotational position is known to the scheduler.
///
/// `Perfect` corresponds to hardware-assisted position knowledge;
/// `Tracked` injects the residual error of the paper's software-only
/// head-tracking mechanism (§3.2): Gaussian prediction error, and a full
/// extra revolution whenever the error eats the entire rotational wait
/// (a *rotation miss*, Table 2's 0.22 %).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PositionKnowledge {
    /// Predictions are exact.
    Perfect,
    /// Predictions carry Gaussian error.
    Tracked {
        /// Mean prediction error in microseconds (Table 2: ~3 µs).
        mean_error_us: f64,
        /// Standard deviation of prediction error in µs (Table 2: ~31 µs).
        std_error_us: f64,
    },
}

/// A physical access target expressed in positioning terms.
///
/// The array layout computes these from the geometry: a rotational replica
/// "at angle θ on cylinder c" becomes a `Target`. The detailed timing path
/// re-quantises the angle to the owning track's sector grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Target {
    /// Cylinder holding the data.
    pub cylinder: u32,
    /// Surface holding the data.
    pub surface: u32,
    /// Start angle of the transfer, in revolutions.
    pub angle: f64,
    /// Transfer length in sectors.
    pub sectors: u32,
}

/// Slots in the [`QuantCache`] direct-mapped memo.
const QUANT_WAYS: usize = 64;

/// One memoised [`Geometry::quantise_angle`] result.
#[derive(Debug, Clone, Copy)]
struct QuantSlot {
    valid: bool,
    cylinder: u32,
    surface: u32,
    angle_bits: u64,
    start: f64,
    sector: u32,
    spt: u32,
}

/// A tiny direct-mapped memo for [`Geometry::quantise_angle`].
///
/// The quantised start angle of a `(cylinder, surface, angle)` triple is a
/// pure function of the (immutable) geometry, and the schedulers re-rank
/// the same queued targets on every pick — so repeat quantisations hit
/// here instead of redoing the skew `fmod`s. Purely an evaluation cache:
/// hits return bit-identical values, never changing simulated time.
#[derive(Debug, Clone)]
struct QuantCache {
    // simlint: shard-local(per-disk evaluation memo owned by one SimDisk, itself owned by one engine Shard — never visible to two worker threads at once; hits return bit-identical values)
    slots: [std::cell::Cell<QuantSlot>; QUANT_WAYS],
}

impl QuantCache {
    fn new() -> Self {
        QuantCache {
            slots: std::array::from_fn(|_| {
                std::cell::Cell::new(QuantSlot {
                    valid: false,
                    cylinder: 0,
                    surface: 0,
                    angle_bits: 0,
                    start: 0.0,
                    sector: 0,
                    spt: 0,
                })
            }),
        }
    }

    #[inline]
    fn index(cylinder: u32, surface: u32, angle_bits: u64) -> usize {
        let h = (cylinder as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ angle_bits
            ^ ((surface as u64) << 32);
        (h as usize) & (QUANT_WAYS - 1)
    }
}

/// A simulated disk drive.
///
/// Holds the arm position (`cylinder`) — the rotational position is a pure
/// function of time via the spindle — plus the busy horizon used by the
/// per-disk queues.
///
/// # Examples
///
/// ```
/// use mimd_disk::{DiskParams, PositionKnowledge, SimDisk, Target, TimingPath};
/// use mimd_sim::SimTime;
///
/// let mut d = SimDisk::new(
///     &DiskParams::st39133lwv(),
///     TimingPath::Detailed,
///     PositionKnowledge::Perfect,
///     7,
/// )
/// .unwrap();
/// let t = Target { cylinder: 1000, surface: 0, angle: 0.5, sectors: 16 };
/// let est = d.estimate(SimTime::ZERO, &t, false);
/// let got = d.begin(SimTime::ZERO, &t, false);
/// assert_eq!(est.total(), got.total());
/// assert_eq!(d.arm_cylinder(), 1000);
/// ```
#[derive(Debug, Clone)]
pub struct SimDisk {
    geometry: Geometry,
    seek: SeekProfile,
    spindle: Spindle,
    path: TimingPath,
    knowledge: PositionKnowledge,
    head_switch: SimDuration,
    overhead: SimDuration,
    rotation: SimDuration,
    /// `rotation` in nanoseconds, cached for the scheduler's integer cost
    /// comparisons.
    rotation_ns: u64,
    avg_spt: f64,
    arm_cylinder: u32,
    arm_surface: u32,
    /// When true, the drive buffers the track it last read; re-reads from
    /// that track are served at transfer speed with no positioning.
    read_ahead: bool,
    /// The `(cylinder, surface)` whose contents sit in the track buffer.
    buffered_track: Option<(u32, u32)>,
    /// Spindle phase offset in revolutions; non-zero models unsynchronised
    /// spindles across an array (§2.5).
    phase_offset: f64,
    /// Bumped on every [`SimDisk::set_phase_offset`]. External caches of
    /// phase-derived values (the drive queue's [`SimDisk::sched_phase`]
    /// memo) stamp this and treat a mismatch as a miss, so a stale phase
    /// can never survive a spindle-phase change.
    phase_epoch: u32,
    busy_until: SimTime,
    rng: SimRng,
    rotation_misses: u64,
    requests_served: u64,
    quant: QuantCache,
    /// Fail-slow windows `(from, until, factor)`: operations *started*
    /// inside a window take `factor`× their healthy service time. Empty
    /// (the default) costs one branch per `begin`.
    fail_slow: Vec<(SimTime, SimTime, f64)>,
}

impl SimDisk {
    /// Builds a drive from parameters; fails if the parameters are invalid
    /// or the seek curve cannot be fitted.
    pub fn new(
        params: &DiskParams,
        path: TimingPath,
        knowledge: PositionKnowledge,
        seed: u64,
    ) -> Result<Self, String> {
        let seek = SeekProfile::fit(params)?;
        let geometry = Geometry::new(params);
        Ok(Self::with_parts(
            params, geometry, seek, path, knowledge, seed,
        ))
    }

    /// Builds a drive from a pre-fitted seek profile and geometry.
    ///
    /// An array builds these once and clones them per disk — the profile's
    /// lookup tables are `Arc`-shared, and the expensive numeric fit runs a
    /// single time instead of once per spindle. `geometry` and `seek` must
    /// have been derived from this same `params`.
    pub fn with_parts(
        params: &DiskParams,
        geometry: Geometry,
        seek: SeekProfile,
        path: TimingPath,
        knowledge: PositionKnowledge,
        seed: u64,
    ) -> Self {
        let rotation = params.rotation_time();
        SimDisk {
            avg_spt: geometry.avg_sectors_per_track(),
            geometry,
            seek,
            spindle: Spindle::new(rotation),
            path,
            knowledge,
            head_switch: params.head_switch,
            overhead: params.overhead,
            rotation,
            rotation_ns: rotation.as_nanos(),
            arm_cylinder: 0,
            arm_surface: 0,
            read_ahead: false,
            buffered_track: None,
            phase_offset: 0.0,
            phase_epoch: 0,
            busy_until: SimTime::ZERO,
            rng: SimRng::named(seed, "disk-head"),
            rotation_misses: 0,
            requests_served: 0,
            quant: QuantCache::new(),
            fail_slow: Vec::new(),
        }
    }

    /// Adds a fail-slow window: operations started in `[from, until)` take
    /// `factor`× their healthy time. Only the *realised* service stretches —
    /// [`SimDisk::estimate`] keeps reporting healthy timings, so schedulers
    /// retain their normal picture of the drive and steering work away from
    /// a sick disk stays an array-level decision. Windows with non-finite
    /// or non-positive factors are ignored.
    pub fn add_fail_slow(&mut self, from: SimTime, until: SimTime, factor: f64) {
        if factor.is_finite() && factor > 0.0 && until > from {
            self.fail_slow.push((from, until, factor));
        }
    }

    /// [`Geometry::quantise_angle`] through the per-disk memo.
    #[inline]
    fn quantise_cached(&self, cylinder: u32, surface: u32, angle: f64) -> Option<(f64, u32, u32)> {
        let bits = angle.to_bits();
        let slot = &self.quant.slots[QuantCache::index(cylinder, surface, bits)];
        let s = slot.get();
        if s.valid && s.cylinder == cylinder && s.surface == surface && s.angle_bits == bits {
            return Some((s.start, s.sector, s.spt));
        }
        let r = self.geometry.quantise_angle(cylinder, surface, angle);
        if let Some((start, sector, spt)) = r {
            slot.set(QuantSlot {
                valid: true,
                cylinder,
                surface,
                angle_bits: bits,
                start,
                sector,
                spt,
            });
        }
        r
    }

    /// The drive's geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// The fitted seek profile.
    pub fn seek_profile(&self) -> &SeekProfile {
        &self.seek
    }

    /// Full rotation time.
    pub fn rotation_time(&self) -> SimDuration {
        self.rotation
    }

    /// Full rotation time in nanoseconds (cached; hot in the scheduler).
    #[inline]
    pub fn rotation_ns(&self) -> u64 {
        self.rotation_ns
    }

    /// A lower bound, in nanoseconds, on the positioning component
    /// ([`ServiceBreakdown::positioning`]) that [`SimDisk::estimate`] would
    /// report for `target`: the seek alone, before any rotational wait.
    ///
    /// Exactness matters — the SATF scan uses this to skip candidates whose
    /// bound already exceeds the incumbent, which only preserves the pick
    /// when the bound never overshoots. A track-buffer hit has zero
    /// positioning, so potential hits return 0; write settle only adds
    /// time, so the read seek bounds both directions.
    #[inline]
    pub fn positioning_lower_bound_ns(&self, target: &Target, write: bool) -> u64 {
        if !write
            && self.read_ahead
            && self.buffered_track == Some((target.cylinder, target.surface))
        {
            return 0;
        }
        let distance = self.arm_cylinder.abs_diff(target.cylinder);
        if distance == 0 {
            0
        } else {
            self.seek.seek_ns(distance)
        }
    }

    /// The seek-only lower bound for a cylinder `distance`, in nanoseconds:
    /// the by-distance form of [`SimDisk::positioning_lower_bound_ns`], for
    /// index structures that bound whole cylinder bands at once. Monotone in
    /// `distance` (the seek curve is), which is what lets a band index visit
    /// bands in ascending-bound order. Not valid for potential track-buffer
    /// hits (their positioning bound is 0 regardless of distance) — callers
    /// must check [`SimDisk::read_ahead_enabled`] first.
    #[inline]
    pub fn seek_bound_ns(&self, distance: u32) -> u64 {
        if distance == 0 {
            0
        } else {
            self.seek.seek_ns(distance)
        }
    }

    /// Whether the track read-ahead buffer is enabled.
    pub fn read_ahead_enabled(&self) -> bool {
        self.read_ahead
    }

    /// Current arm cylinder.
    pub fn arm_cylinder(&self) -> u32 {
        self.arm_cylinder
    }

    /// Current arm surface (the head last used).
    pub fn arm_surface(&self) -> u32 {
        self.arm_surface
    }

    /// Earliest instant at which the drive can start a new request.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Enables or disables the drive's track read-ahead buffer.
    ///
    /// Period drives buffered the remainder of the track they had just
    /// read; a subsequent read from the same track is then served from the
    /// buffer at transfer speed, with no seek or rotational wait. Off by
    /// default to keep the paper's mechanical-positioning experiments
    /// undiluted; the read-ahead ablation turns it on.
    pub fn set_read_ahead(&mut self, enabled: bool) {
        self.read_ahead = enabled;
        if !enabled {
            self.buffered_track = None;
        }
    }

    /// Sets this spindle's phase offset in revolutions.
    ///
    /// All [`SimDisk`]s share the simulation clock, which makes their
    /// spindles implicitly synchronised; give each a random offset to model
    /// the unsynchronised spindles of commodity arrays (§2.5).
    pub fn set_phase_offset(&mut self, offset: f64) {
        self.phase_offset = mod1(offset);
        self.phase_epoch = self.phase_epoch.wrapping_add(1);
    }

    /// Generation counter for phase-derived memos: changes whenever
    /// [`SimDisk::set_phase_offset`] does. Stamp it next to any cached
    /// [`SimDisk::sched_phase`] value and re-derive on mismatch.
    pub fn phase_epoch(&self) -> u32 {
        self.phase_epoch
    }

    /// Platter phase at instant `t` (including this disk's phase offset).
    pub fn angle_at(&self, t: SimTime) -> f64 {
        mod1(self.spindle.angle_at(t) + self.phase_offset)
    }

    /// Count of rotational-prediction misses so far.
    pub fn rotation_misses(&self) -> u64 {
        self.rotation_misses
    }

    /// Count of requests served (via [`SimDisk::begin`]).
    pub fn requests_served(&self) -> u64 {
        self.requests_served
    }

    /// Effective start angle and transfer time of a target, resolved
    /// together: on the detailed path one zone lookup and one sector
    /// quantisation serve both (they are the estimate's dominant cost).
    fn angle_and_transfer(&self, target: &Target) -> (f64, SimDuration) {
        if self.path == TimingPath::Detailed {
            if let Some((angle, sector, spt)) =
                self.quantise_cached(target.cylinder, target.surface, target.angle)
            {
                let media = self.spindle.arc(target.sectors as f64 / spt as f64);
                let switches =
                    (sector as u64 + target.sectors.saturating_sub(1) as u64) / spt as u64;
                return (angle, media + self.head_switch * switches);
            }
        }
        // Analytic path, or a target outside the geometry (falls back to
        // the continuous angle and the generic transfer estimate).
        (mod1(target.angle), self.transfer_time(target))
    }

    /// Transfer time for `sectors` starting at the effective angle.
    fn transfer_time(&self, target: &Target) -> SimDuration {
        let spt = match self.path {
            TimingPath::Analytic => self.avg_spt,
            TimingPath::Detailed => self
                .geometry
                .sectors_per_track(target.cylinder)
                .unwrap_or(self.avg_spt as u32) as f64,
        };
        let media = self.spindle.arc(target.sectors as f64 / spt);
        let switches = match self.path {
            TimingPath::Analytic => ((target.sectors as f64 - 1.0) / spt).floor() as u64,
            TimingPath::Detailed => {
                let sector = self
                    .geometry
                    .sector_at_angle(target.cylinder, target.surface, target.angle)
                    .unwrap_or(0) as u64;
                (sector + target.sectors.saturating_sub(1) as u64) / spt as u64
            }
        };
        media + self.head_switch * switches
    }

    /// Mechanical repositioning time to reach a target track: a seek when
    /// the cylinder changes, a head switch when only the surface does, and
    /// the write settle whenever the heads reposition before a write.
    #[inline]
    fn positioning_time(&self, target: &Target, write: bool) -> SimDuration {
        let distance = self.arm_cylinder.abs_diff(target.cylinder);
        if distance > 0 {
            if write {
                self.seek.seek_write(distance)
            } else {
                self.seek.seek(distance)
            }
        } else if target.surface != self.arm_surface {
            let settle = if write {
                // The write-settle penalty, recovered from the profile.
                self.seek.seek_write(1).saturating_sub(self.seek.seek(1))
            } else {
                SimDuration::ZERO
            };
            self.head_switch + settle
        } else {
            SimDuration::ZERO
        }
    }

    fn estimate_inner(
        &self,
        start: SimTime,
        target: &Target,
        write: bool,
        overhead: SimDuration,
    ) -> ServiceBreakdown {
        if !write
            && self.read_ahead
            && self.buffered_track == Some((target.cylinder, target.surface))
        {
            // Track-buffer hit: data streams from the drive's cache.
            return ServiceBreakdown {
                overhead,
                seek: SimDuration::ZERO,
                rotation: SimDuration::ZERO,
                transfer: self.transfer_time(target),
                missed_rotation: false,
            };
        }
        let seek = self.positioning_time(target, write);
        let arrive = start + overhead + seek;
        let (angle, transfer) = self.angle_and_transfer(target);
        // `wait_until_angle` works in absolute spindle phase; fold the
        // per-disk phase offset into the target.
        let rotation = self
            .spindle
            .wait_until_angle(arrive, self.target_phase(angle));
        ServiceBreakdown {
            overhead,
            seek,
            rotation,
            transfer,
            missed_rotation: false,
        }
    }

    /// Predicts the service breakdown for starting `target` at `start`,
    /// without changing drive state. Deterministic: this is what the
    /// schedulers (SATF/RSATF/RLOOK replica choice) rank candidates by.
    pub fn estimate(&self, start: SimTime, target: &Target, write: bool) -> ServiceBreakdown {
        self.estimate_inner(start, target, write, self.overhead)
    }

    /// The scheduler's view of [`SimDisk::estimate`]: `(positioning,
    /// rotation)` in nanoseconds, skipping the transfer-time computation
    /// that candidate ranking never reads. Agrees exactly with
    /// `estimate(start, target, write)`'s `positioning()` and `rotation`.
    #[inline]
    pub fn sched_cost_ns(&self, start: SimTime, target: &Target, write: bool) -> (u64, u64) {
        self.sched_cost_at_phase_ns(start, target, write, self.sched_phase(target))
    }

    /// The effective spindle phase at which `target`'s first sector passes
    /// under the head: the quantised track angle with this disk's phase
    /// offset folded in. Never depends on the clock or the arm, so index
    /// structures may compute it once per queued candidate and reuse it
    /// across picks — but it *does* fold in the mutable phase offset, so
    /// any such memo must stamp [`SimDisk::phase_epoch`] and re-derive
    /// when the epoch has moved.
    #[inline]
    pub fn sched_phase(&self, target: &Target) -> f64 {
        let angle = if self.path == TimingPath::Detailed {
            match self.quantise_cached(target.cylinder, target.surface, target.angle) {
                Some((angle, _, _)) => angle,
                None => mod1(target.angle),
            }
        } else {
            mod1(target.angle)
        };
        self.target_phase(angle)
    }

    /// [`SimDisk::sched_cost_ns`] with the effective phase supplied by the
    /// caller (from [`SimDisk::sched_phase`]), skipping the per-call angle
    /// quantisation. `sched_cost_ns(s, t, w)` is defined as
    /// `sched_cost_at_phase_ns(s, t, w, sched_phase(t))`.
    #[inline]
    pub fn sched_cost_at_phase_ns(
        &self,
        start: SimTime,
        target: &Target,
        write: bool,
        phase: f64,
    ) -> (u64, u64) {
        if !write
            && self.read_ahead
            && self.buffered_track == Some((target.cylinder, target.surface))
        {
            return (0, 0); // Track-buffer hit: no positioning at all.
        }
        let seek = self.positioning_time(target, write);
        let arrive = start + self.overhead + seek;
        let rotation = self.spindle.wait_until_angle(arrive, phase);
        ((seek + rotation).as_nanos(), rotation.as_nanos())
    }

    /// Raw spindle phase at the earliest arrival a candidate with seek
    /// bound `seek_bound_ns` can manage: `now + overhead + bound`. This is
    /// the reference point for rotational lower bounds — for any candidate
    /// whose seek is at least the bound, `positioning >= bound +
    /// mod1(sched_phase - floor) * rotation` (first-hit times are monotone
    /// in the arrival instant). Raw, not offset-adjusted: effective phases
    /// from [`SimDisk::sched_phase`] already fold the offset in.
    #[inline]
    pub fn arrival_phase_floor(&self, now: SimTime, seek_bound_ns: u64) -> f64 {
        self.spindle
            .angle_at(now + self.overhead + SimDuration::from_nanos(seek_bound_ns))
    }

    /// Folds the per-disk phase offset into an effective target angle
    /// (already reduced to `[0, 1)`). The zero-offset fast path skips a
    /// `rem_euclid` division and is value-exact: `angle - 0.0 == angle`
    /// and `mod1` is the identity on `[0, 1)`.
    #[inline]
    fn target_phase(&self, angle: f64) -> f64 {
        if self.phase_offset == 0.0 {
            angle
        } else {
            mod1(angle - self.phase_offset)
        }
    }

    /// Like [`SimDisk::estimate`], but without the per-command overhead:
    /// used for the follow-on replica writes of a single multi-replica
    /// write command (§3.4's foreground propagation).
    pub fn estimate_chained(
        &self,
        start: SimTime,
        target: &Target,
        write: bool,
    ) -> ServiceBreakdown {
        self.estimate_inner(start, target, write, SimDuration::ZERO)
    }

    fn begin_inner(
        &mut self,
        start: SimTime,
        target: &Target,
        write: bool,
        overhead: SimDuration,
    ) -> ServiceBreakdown {
        let mut b = self.estimate_inner(start, target, write, overhead);
        if let PositionKnowledge::Tracked {
            mean_error_us,
            std_error_us,
        } = self.knowledge
        {
            // The scheduler believed the rotational wait was b.rotation; the
            // true platter position differs by a Gaussian error. A positive
            // error means the platter is ahead of the prediction: the wait
            // shrinks, and if it shrinks through zero the sector has already
            // passed and a full extra revolution is paid (§3.2).
            let err =
                SimDuration::from_micros_f64(self.rng.normal(mean_error_us, std_error_us).abs());
            let ahead = self.rng.chance(0.5);
            if ahead {
                if err > b.rotation {
                    b.rotation = b.rotation + self.rotation - err;
                    b.missed_rotation = true;
                    self.rotation_misses += 1;
                } else {
                    b.rotation -= err;
                }
            } else {
                b.rotation += err;
            }
        }
        if !self.fail_slow.is_empty() {
            // Fail-slow: inflate every realised component by the product of
            // the open windows (overlaps compound). The busy horizon below
            // commits the stretched total, so queueing behind a sick disk
            // degrades exactly as the inflation says it should.
            let mut f = 1.0;
            for &(from, until, factor) in &self.fail_slow {
                if start >= from && start < until {
                    f *= factor;
                }
            }
            if f != 1.0 {
                b.overhead = b.overhead.mul_f64(f);
                b.seek = b.seek.mul_f64(f);
                b.rotation = b.rotation.mul_f64(f);
                b.transfer = b.transfer.mul_f64(f);
            }
        }
        self.arm_cylinder = target.cylinder;
        self.arm_surface = target.surface;
        self.busy_until = start + b.total();
        self.requests_served += 1;
        if self.read_ahead {
            // Reads fill the buffer with their track; writes invalidate it
            // (the buffered image may now be stale).
            self.buffered_track = if write {
                None
            } else {
                Some((target.cylinder, target.surface))
            };
        }
        b
    }

    /// Starts servicing `target` at `start`, committing arm movement and
    /// the busy horizon, and (under [`PositionKnowledge::Tracked`]) rolling
    /// the head-tracking prediction error.
    ///
    /// Returns the realised breakdown; the request completes at
    /// `start + breakdown.total()`.
    pub fn begin(&mut self, start: SimTime, target: &Target, write: bool) -> ServiceBreakdown {
        self.begin_inner(start, target, write, self.overhead)
    }

    /// Like [`SimDisk::begin`], but without the per-command overhead (the
    /// follow-on writes of one multi-replica command).
    pub fn begin_chained(
        &mut self,
        start: SimTime,
        target: &Target,
        write: bool,
    ) -> ServiceBreakdown {
        self.begin_inner(start, target, write, SimDuration::ZERO)
    }

    /// Reports position knowledge mode (used by experiment printouts).
    pub fn knowledge(&self) -> PositionKnowledge {
        self.knowledge
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk(path: TimingPath) -> SimDisk {
        SimDisk::new(
            &DiskParams::st39133lwv(),
            path,
            PositionKnowledge::Perfect,
            42,
        )
        .unwrap()
    }

    #[test]
    fn estimate_matches_begin_under_perfect_knowledge() {
        let mut d = disk(TimingPath::Detailed);
        let t = Target {
            cylinder: 2_000,
            surface: 3,
            angle: 0.7,
            sectors: 8,
        };
        let est = d.estimate(SimTime::from_millis(1), &t, false);
        let got = d.begin(SimTime::from_millis(1), &t, false);
        assert_eq!(est, got);
        assert!(!got.missed_rotation);
        assert_eq!(d.rotation_misses(), 0);
        assert_eq!(d.requests_served(), 1);
    }

    #[test]
    fn sched_cost_matches_estimate_exactly() {
        for path in [TimingPath::Detailed, TimingPath::Analytic] {
            let mut d = disk(path);
            d.set_phase_offset(0.37);
            for i in 0..500u64 {
                let t = Target {
                    cylinder: ((i * 131) % 9_000) as u32,
                    surface: (i % 12) as u32,
                    angle: (i as f64 * 0.618).rem_euclid(1.0),
                    sectors: 1 + (i % 64) as u32,
                };
                let start = SimTime::from_micros(i * 977);
                for write in [false, true] {
                    let est = d.estimate(start, &t, write);
                    let (pos, rot) = d.sched_cost_ns(start, &t, write);
                    assert_eq!(pos, est.positioning().as_nanos(), "{path:?} i={i}");
                    assert_eq!(rot, est.rotation.as_nanos(), "{path:?} i={i}");
                }
            }
        }
    }

    #[test]
    fn sched_cost_matches_estimate_on_buffer_hits() {
        let mut d = disk(TimingPath::Detailed);
        d.set_read_ahead(true);
        let t = Target {
            cylinder: 500,
            surface: 2,
            angle: 0.3,
            sectors: 16,
        };
        let _ = d.begin(SimTime::ZERO, &t, false);
        let now = d.busy_until();
        let est = d.estimate(now, &t, false);
        let (pos, rot) = d.sched_cost_ns(now, &t, false);
        assert_eq!(pos, est.positioning().as_nanos());
        assert_eq!(rot, est.rotation.as_nanos());
        assert_eq!(pos, 0);
    }

    #[test]
    fn service_time_components_are_sane() {
        let mut d = disk(TimingPath::Detailed);
        let t = Target {
            cylinder: 3_000,
            surface: 0,
            angle: 0.0,
            sectors: 16,
        };
        let b = d.begin(SimTime::ZERO, &t, false);
        assert!(b.seek >= SimDuration::from_micros(600));
        assert!(b.seek <= SimDuration::from_micros(10_600));
        assert!(b.rotation <= d.rotation_time());
        assert!(b.transfer > SimDuration::ZERO);
        assert_eq!(d.arm_cylinder(), 3_000);
        assert_eq!(d.busy_until(), SimTime::ZERO + b.total());
    }

    #[test]
    fn same_cylinder_access_has_no_seek() {
        let mut d = disk(TimingPath::Detailed);
        let t = Target {
            cylinder: 0,
            surface: 0,
            angle: 0.5,
            sectors: 1,
        };
        let b = d.begin(SimTime::ZERO, &t, false);
        assert_eq!(b.seek, SimDuration::ZERO);
    }

    #[test]
    fn writes_pay_settle() {
        let d = disk(TimingPath::Detailed);
        let t = Target {
            cylinder: 500,
            surface: 0,
            angle: 0.0,
            sectors: 1,
        };
        let r = d.estimate(SimTime::ZERO, &t, false);
        let w = d.estimate(SimTime::ZERO, &t, true);
        assert!(w.seek > r.seek);
    }

    #[test]
    fn rotational_wait_depends_on_start_time() {
        let d = disk(TimingPath::Analytic);
        let t = Target {
            cylinder: 0,
            surface: 0,
            angle: 0.5,
            sectors: 1,
        };
        let b1 = d.estimate(SimTime::ZERO, &t, false);
        let b2 = d.estimate(SimTime::from_micros(1_000), &t, false);
        assert_ne!(b1.rotation, b2.rotation);
        // One millisecond later the wait is one millisecond shorter (mod R).
        let diff = b1.rotation.as_micros_f64() - b2.rotation.as_micros_f64();
        assert!((diff - 1_000.0).abs() < 1.0, "diff {diff}");
    }

    #[test]
    fn detailed_and_analytic_agree_closely_on_singles() {
        let dd = disk(TimingPath::Detailed);
        let da = disk(TimingPath::Analytic);
        let t = Target {
            cylinder: 1_234,
            surface: 2,
            angle: 0.3,
            sectors: 1,
        };
        let bd = dd.estimate(SimTime::ZERO, &t, false);
        let ba = da.estimate(SimTime::ZERO, &t, false);
        assert_eq!(bd.seek, ba.seek);
        // Angles agree to within one sector of quantisation (~28 µs).
        let gap = (bd.rotation.as_micros_f64() - ba.rotation.as_micros_f64()).abs();
        assert!(gap < 6_000.0 / 170.0 + 1.0, "gap {gap}us");
    }

    #[test]
    fn long_transfers_cross_tracks_and_pay_switches() {
        let d = disk(TimingPath::Detailed);
        let spt = d.geometry().sectors_per_track(0).unwrap();
        let short = Target {
            cylinder: 0,
            surface: 0,
            angle: 0.0,
            sectors: spt / 2,
        };
        let long = Target {
            cylinder: 0,
            surface: 0,
            angle: 0.0,
            sectors: spt * 2,
        };
        let bs = d.estimate(SimTime::ZERO, &short, false);
        let bl = d.estimate(SimTime::ZERO, &long, false);
        // The long transfer covers 4x the media plus at least one switch.
        assert!(bl.transfer > bs.transfer * 4);
    }

    #[test]
    fn read_ahead_serves_repeat_track_reads_from_buffer() {
        let mut d = disk(TimingPath::Detailed);
        d.set_read_ahead(true);
        let t = Target {
            cylinder: 500,
            surface: 2,
            angle: 0.3,
            sectors: 16,
        };
        let first = d.begin(SimTime::ZERO, &t, false);
        assert!(first.positioning() > SimDuration::ZERO);
        // Second read of the same track: no positioning at all.
        let again = Target { angle: 0.8, ..t };
        let hit = d.begin(d.busy_until(), &again, false);
        assert_eq!(hit.seek, SimDuration::ZERO);
        assert_eq!(hit.rotation, SimDuration::ZERO);
        assert!(hit.transfer > SimDuration::ZERO);
        // A different track misses the buffer.
        let other = Target { surface: 3, ..t };
        let miss = d.begin(d.busy_until(), &other, false);
        assert!(miss.positioning() > SimDuration::ZERO);
    }

    #[test]
    fn writes_invalidate_the_track_buffer() {
        let mut d = disk(TimingPath::Detailed);
        d.set_read_ahead(true);
        let t = Target {
            cylinder: 500,
            surface: 2,
            angle: 0.3,
            sectors: 16,
        };
        let _ = d.begin(SimTime::ZERO, &t, false);
        let _ = d.begin(d.busy_until(), &t, true); // Write to the track.
        let after = d.begin(d.busy_until(), &t, false);
        assert!(after.positioning() > SimDuration::ZERO, "stale buffer used");
    }

    #[test]
    fn read_ahead_disabled_never_hits() {
        let mut d = disk(TimingPath::Detailed);
        let t = Target {
            cylinder: 500,
            surface: 2,
            angle: 0.3,
            sectors: 16,
        };
        let _ = d.begin(SimTime::ZERO, &t, false);
        let b = d.begin(d.busy_until(), &t, false);
        // Re-reading the just-read sectors costs a near-full revolution.
        assert!(b.rotation > SimDuration::from_millis(4));
    }

    #[test]
    fn tracked_knowledge_produces_rare_misses() {
        let mut d = SimDisk::new(
            &DiskParams::st39133lwv(),
            TimingPath::Detailed,
            PositionKnowledge::Tracked {
                mean_error_us: 3.0,
                std_error_us: 31.0,
            },
            7,
        )
        .unwrap();
        let mut now = SimTime::ZERO;
        let n = 20_000;
        for i in 0..n {
            let t = Target {
                cylinder: (i * 37) % 6_000,
                surface: (i % 12),
                angle: (i as f64 * 0.618).rem_euclid(1.0),
                sectors: 8,
            };
            let b = d.begin(now, &t, false);
            now += b.total();
        }
        let miss_rate = d.rotation_misses() as f64 / n as f64;
        // Random rotational waits average R/2 = 3000us against ~31us errors:
        // misses happen but rarely (Table 2 reports 0.22% under RSATF, which
        // targets much tighter waits; random targets are rarer still).
        assert!(miss_rate < 0.02, "miss rate {miss_rate}");
    }

    #[test]
    fn begin_with_zero_wait_target_can_miss() {
        // A target placed exactly under the head with Tracked knowledge has
        // a ~50% miss chance (any positive "ahead" error overshoots).
        let mut d = SimDisk::new(
            &DiskParams::st39133lwv(),
            TimingPath::Analytic,
            PositionKnowledge::Tracked {
                mean_error_us: 3.0,
                std_error_us: 31.0,
            },
            11,
        )
        .unwrap();
        let mut misses = 0;
        for i in 0..200 {
            let start = SimTime::from_micros(i * 13);
            let angle = d.angle_at(
                start
                    + d.estimate(
                        start,
                        &Target {
                            cylinder: d.arm_cylinder(),
                            surface: 0,
                            angle: 0.0,
                            sectors: 1,
                        },
                        false,
                    )
                    .overhead,
            );
            let t = Target {
                cylinder: d.arm_cylinder(),
                surface: 0,
                angle,
                sectors: 1,
            };
            let b = d.begin(start, &t, false);
            if b.missed_rotation {
                misses += 1;
            }
        }
        assert!(misses > 20, "expected frequent misses, got {misses}");
    }
}
