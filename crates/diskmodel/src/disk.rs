//! The simulated drive: head state, service-time computation, and the two
//! timing fidelities.
//!
//! The paper's architecture (§3.1, Figure 4) runs the same upper layers
//! against either real SCSI disks or an integrated simulator calibrated
//! from them; Figure 5 validates that the two agree within 3 %. We
//! reproduce that structure with two independently-coded timing paths:
//!
//! - [`TimingPath::Detailed`] — sector-accurate: target angles are
//!   quantised to real sector boundaries on the addressed track, transfer
//!   time uses that zone's sectors-per-track, and head switches during a
//!   transfer are counted exactly.
//! - [`TimingPath::Analytic`] — continuous: angles are taken as given and
//!   transfer time uses the drive-wide average track length.
//!
//! The array engine can run on either; the Figure-5 reproduction runs both
//! and reports the discrepancy.

use mimd_sim::{SimDuration, SimRng, SimTime};

use crate::geometry::Geometry;
use crate::mechanics::{mod1, ServiceBreakdown, Spindle};
use crate::params::DiskParams;
use crate::seek::SeekProfile;

/// Which service-time implementation a [`SimDisk`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimingPath {
    /// Sector-accurate timing (the "prototype" role in Figure 5).
    Detailed,
    /// Continuous-angle timing (the "simulator" role in Figure 5).
    Analytic,
}

/// How the drive's rotational position is known to the scheduler.
///
/// `Perfect` corresponds to hardware-assisted position knowledge;
/// `Tracked` injects the residual error of the paper's software-only
/// head-tracking mechanism (§3.2): Gaussian prediction error, and a full
/// extra revolution whenever the error eats the entire rotational wait
/// (a *rotation miss*, Table 2's 0.22 %).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PositionKnowledge {
    /// Predictions are exact.
    Perfect,
    /// Predictions carry Gaussian error.
    Tracked {
        /// Mean prediction error in microseconds (Table 2: ~3 µs).
        mean_error_us: f64,
        /// Standard deviation of prediction error in µs (Table 2: ~31 µs).
        std_error_us: f64,
    },
}

/// A physical access target expressed in positioning terms.
///
/// The array layout computes these from the geometry: a rotational replica
/// "at angle θ on cylinder c" becomes a `Target`. The detailed timing path
/// re-quantises the angle to the owning track's sector grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Target {
    /// Cylinder holding the data.
    pub cylinder: u32,
    /// Surface holding the data.
    pub surface: u32,
    /// Start angle of the transfer, in revolutions.
    pub angle: f64,
    /// Transfer length in sectors.
    pub sectors: u32,
}

/// Slots in the [`QuantCache`] direct-mapped memo.
const QUANT_WAYS: usize = 64;

/// One memoised [`Geometry::quantise_angle`] result.
#[derive(Debug, Clone, Copy)]
struct QuantSlot {
    valid: bool,
    cylinder: u32,
    surface: u32,
    angle_bits: u64,
    start: f64,
    sector: u32,
    spt: u32,
}

/// A tiny direct-mapped memo for [`Geometry::quantise_angle`].
///
/// The quantised start angle of a `(cylinder, surface, angle)` triple is a
/// pure function of the (immutable) geometry, and the schedulers re-rank
/// the same queued targets on every pick — so repeat quantisations hit
/// here instead of redoing the skew `fmod`s. Purely an evaluation cache:
/// hits return bit-identical values, never changing simulated time.
#[derive(Debug, Clone)]
struct QuantCache {
    // simlint: shard-local(per-disk evaluation memo owned by one SimDisk, itself owned by one engine Shard — never visible to two worker threads at once; hits return bit-identical values)
    slots: [std::cell::Cell<QuantSlot>; QUANT_WAYS],
}

impl QuantCache {
    fn new() -> Self {
        QuantCache {
            slots: std::array::from_fn(|_| {
                std::cell::Cell::new(QuantSlot {
                    valid: false,
                    cylinder: 0,
                    surface: 0,
                    angle_bits: 0,
                    start: 0.0,
                    sector: 0,
                    spt: 0,
                })
            }),
        }
    }

    #[inline]
    fn index(cylinder: u32, surface: u32, angle_bits: u64) -> usize {
        let h = (cylinder as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ angle_bits
            ^ ((surface as u64) << 32);
        (h as usize) & (QUANT_WAYS - 1)
    }
}

/// A simulated disk drive.
///
/// Holds the arm position (`cylinder`) — the rotational position is a pure
/// function of time via the spindle — plus the busy horizon used by the
/// per-disk queues.
///
/// # Examples
///
/// ```
/// use mimd_disk::{DiskParams, PositionKnowledge, SimDisk, Target, TimingPath};
/// use mimd_sim::SimTime;
///
/// let mut d = SimDisk::new(
///     &DiskParams::st39133lwv(),
///     TimingPath::Detailed,
///     PositionKnowledge::Perfect,
///     7,
/// )
/// .unwrap();
/// let t = Target { cylinder: 1000, surface: 0, angle: 0.5, sectors: 16 };
/// let est = d.estimate(SimTime::ZERO, &t, false);
/// let got = d.begin(SimTime::ZERO, &t, false);
/// assert_eq!(est.total(), got.total());
/// assert_eq!(d.arm_cylinder(), 1000);
/// ```
#[derive(Debug, Clone)]
pub struct SimDisk {
    geometry: Geometry,
    seek: SeekProfile,
    spindle: Spindle,
    path: TimingPath,
    knowledge: PositionKnowledge,
    head_switch: SimDuration,
    overhead: SimDuration,
    rotation: SimDuration,
    /// `rotation` in nanoseconds, cached for the scheduler's integer cost
    /// comparisons.
    rotation_ns: u64,
    /// `u64::MAX / rotation_ns`: the Barrett-style reciprocal the batched
    /// cost kernel uses for its per-lane `% rotation_ns`. Computed once
    /// here so each kernel call skips the hardware divide.
    rot_recip: u64,
    /// Extra write settle: `seek_write(1) - seek(1)` in nanoseconds, the
    /// head-switch surcharge for writes. Loop-invariant in the kernel.
    write_settle_ns: u64,
    avg_spt: f64,
    arm_cylinder: u32,
    arm_surface: u32,
    /// When true, the drive buffers the track it last read; re-reads from
    /// that track are served at transfer speed with no positioning.
    read_ahead: bool,
    /// The `(cylinder, surface)` whose contents sit in the track buffer.
    buffered_track: Option<(u32, u32)>,
    /// Spindle phase offset in revolutions; non-zero models unsynchronised
    /// spindles across an array (§2.5).
    phase_offset: f64,
    /// Bumped on every [`SimDisk::set_phase_offset`]. External caches of
    /// phase-derived values (the drive queue's [`SimDisk::sched_phase`]
    /// memo) stamp this and treat a mismatch as a miss, so a stale phase
    /// can never survive a spindle-phase change.
    phase_epoch: u32,
    busy_until: SimTime,
    rng: SimRng,
    rotation_misses: u64,
    requests_served: u64,
    quant: QuantCache,
    /// Fail-slow windows `(from, until, factor)`: operations *started*
    /// inside a window take `factor`× their healthy service time. Empty
    /// (the default) costs one branch per `begin`.
    fail_slow: Vec<(SimTime, SimTime, f64)>,
}

impl SimDisk {
    /// Builds a drive from parameters; fails if the parameters are invalid
    /// or the seek curve cannot be fitted.
    pub fn new(
        params: &DiskParams,
        path: TimingPath,
        knowledge: PositionKnowledge,
        seed: u64,
    ) -> Result<Self, String> {
        let seek = SeekProfile::fit(params)?;
        let geometry = Geometry::new(params);
        Ok(Self::with_parts(
            params, geometry, seek, path, knowledge, seed,
        ))
    }

    /// Builds a drive from a pre-fitted seek profile and geometry.
    ///
    /// An array builds these once and clones them per disk — the profile's
    /// lookup tables are `Arc`-shared, and the expensive numeric fit runs a
    /// single time instead of once per spindle. `geometry` and `seek` must
    /// have been derived from this same `params`.
    pub fn with_parts(
        params: &DiskParams,
        geometry: Geometry,
        seek: SeekProfile,
        path: TimingPath,
        knowledge: PositionKnowledge,
        seed: u64,
    ) -> Self {
        let rotation = params.rotation_time();
        let rotation_ns = rotation.as_nanos();
        let write_settle_ns = seek.seek_write(1).saturating_sub(seek.seek(1)).as_nanos();
        SimDisk {
            avg_spt: geometry.avg_sectors_per_track(),
            geometry,
            seek,
            spindle: Spindle::new(rotation),
            path,
            knowledge,
            head_switch: params.head_switch,
            overhead: params.overhead,
            rotation,
            rotation_ns,
            rot_recip: u64::MAX / rotation_ns.max(1),
            write_settle_ns,
            arm_cylinder: 0,
            arm_surface: 0,
            read_ahead: false,
            buffered_track: None,
            phase_offset: 0.0,
            phase_epoch: 0,
            busy_until: SimTime::ZERO,
            rng: SimRng::named(seed, "disk-head"),
            rotation_misses: 0,
            requests_served: 0,
            quant: QuantCache::new(),
            fail_slow: Vec::new(),
        }
    }

    /// Adds a fail-slow window: operations started in `[from, until)` take
    /// `factor`× their healthy time. Only the *realised* service stretches —
    /// [`SimDisk::estimate`] keeps reporting healthy timings, so schedulers
    /// retain their normal picture of the drive and steering work away from
    /// a sick disk stays an array-level decision. Windows with non-finite
    /// or non-positive factors are ignored.
    pub fn add_fail_slow(&mut self, from: SimTime, until: SimTime, factor: f64) {
        if factor.is_finite() && factor > 0.0 && until > from {
            self.fail_slow.push((from, until, factor));
        }
    }

    /// [`Geometry::quantise_angle`] through the per-disk memo.
    #[inline]
    fn quantise_cached(&self, cylinder: u32, surface: u32, angle: f64) -> Option<(f64, u32, u32)> {
        let bits = angle.to_bits();
        let slot = &self.quant.slots[QuantCache::index(cylinder, surface, bits)];
        let s = slot.get();
        if s.valid && s.cylinder == cylinder && s.surface == surface && s.angle_bits == bits {
            return Some((s.start, s.sector, s.spt));
        }
        let r = self.geometry.quantise_angle(cylinder, surface, angle);
        if let Some((start, sector, spt)) = r {
            slot.set(QuantSlot {
                valid: true,
                cylinder,
                surface,
                angle_bits: bits,
                start,
                sector,
                spt,
            });
        }
        r
    }

    /// The drive's geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// The fitted seek profile.
    pub fn seek_profile(&self) -> &SeekProfile {
        &self.seek
    }

    /// Full rotation time.
    pub fn rotation_time(&self) -> SimDuration {
        self.rotation
    }

    /// Full rotation time in nanoseconds (cached; hot in the scheduler).
    #[inline]
    pub fn rotation_ns(&self) -> u64 {
        self.rotation_ns
    }

    /// A lower bound, in nanoseconds, on the positioning component
    /// ([`ServiceBreakdown::positioning`]) that [`SimDisk::estimate`] would
    /// report for `target`: the seek alone, before any rotational wait.
    ///
    /// Exactness matters — the SATF scan uses this to skip candidates whose
    /// bound already exceeds the incumbent, which only preserves the pick
    /// when the bound never overshoots. A track-buffer hit has zero
    /// positioning, so potential hits return 0; write settle only adds
    /// time, so the read seek bounds both directions.
    #[inline]
    pub fn positioning_lower_bound_ns(&self, target: &Target, write: bool) -> u64 {
        if !write
            && self.read_ahead
            && self.buffered_track == Some((target.cylinder, target.surface))
        {
            return 0;
        }
        let distance = self.arm_cylinder.abs_diff(target.cylinder);
        if distance == 0 {
            0
        } else {
            self.seek.seek_ns(distance)
        }
    }

    /// The seek-only lower bound for a cylinder `distance`, in nanoseconds:
    /// the by-distance form of [`SimDisk::positioning_lower_bound_ns`], for
    /// index structures that bound whole cylinder bands at once. Monotone in
    /// `distance` (the seek curve is), which is what lets a band index visit
    /// bands in ascending-bound order. Not valid for potential track-buffer
    /// hits (their positioning bound is 0 regardless of distance) — callers
    /// must check [`SimDisk::read_ahead_enabled`] first.
    #[inline]
    pub fn seek_bound_ns(&self, distance: u32) -> u64 {
        if distance == 0 {
            0
        } else {
            self.seek.seek_ns(distance)
        }
    }

    /// Whether the track read-ahead buffer is enabled.
    pub fn read_ahead_enabled(&self) -> bool {
        self.read_ahead
    }

    /// Current arm cylinder.
    pub fn arm_cylinder(&self) -> u32 {
        self.arm_cylinder
    }

    /// Current arm surface (the head last used).
    pub fn arm_surface(&self) -> u32 {
        self.arm_surface
    }

    /// Earliest instant at which the drive can start a new request.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Enables or disables the drive's track read-ahead buffer.
    ///
    /// Period drives buffered the remainder of the track they had just
    /// read; a subsequent read from the same track is then served from the
    /// buffer at transfer speed, with no seek or rotational wait. Off by
    /// default to keep the paper's mechanical-positioning experiments
    /// undiluted; the read-ahead ablation turns it on.
    pub fn set_read_ahead(&mut self, enabled: bool) {
        self.read_ahead = enabled;
        if !enabled {
            self.buffered_track = None;
        }
    }

    /// Sets this spindle's phase offset in revolutions.
    ///
    /// All [`SimDisk`]s share the simulation clock, which makes their
    /// spindles implicitly synchronised; give each a random offset to model
    /// the unsynchronised spindles of commodity arrays (§2.5).
    pub fn set_phase_offset(&mut self, offset: f64) {
        self.phase_offset = mod1(offset);
        self.phase_epoch = self.phase_epoch.wrapping_add(1);
    }

    /// Generation counter for phase-derived memos: changes whenever
    /// [`SimDisk::set_phase_offset`] does. Stamp it next to any cached
    /// [`SimDisk::sched_phase`] value and re-derive on mismatch.
    pub fn phase_epoch(&self) -> u32 {
        self.phase_epoch
    }

    /// Platter phase at instant `t` (including this disk's phase offset).
    pub fn angle_at(&self, t: SimTime) -> f64 {
        mod1(self.spindle.angle_at(t) + self.phase_offset)
    }

    /// Count of rotational-prediction misses so far.
    pub fn rotation_misses(&self) -> u64 {
        self.rotation_misses
    }

    /// Count of requests served (via [`SimDisk::begin`]).
    pub fn requests_served(&self) -> u64 {
        self.requests_served
    }

    /// Effective start angle and transfer time of a target, resolved
    /// together: on the detailed path one zone lookup and one sector
    /// quantisation serve both (they are the estimate's dominant cost).
    fn angle_and_transfer(&self, target: &Target) -> (f64, SimDuration) {
        if self.path == TimingPath::Detailed {
            if let Some((angle, sector, spt)) =
                self.quantise_cached(target.cylinder, target.surface, target.angle)
            {
                let media = self.spindle.arc(target.sectors as f64 / spt as f64);
                let switches =
                    (sector as u64 + target.sectors.saturating_sub(1) as u64) / spt as u64;
                return (angle, media + self.head_switch * switches);
            }
        }
        // Analytic path, or a target outside the geometry (falls back to
        // the continuous angle and the generic transfer estimate).
        (mod1(target.angle), self.transfer_time(target))
    }

    /// Transfer time for `sectors` starting at the effective angle.
    fn transfer_time(&self, target: &Target) -> SimDuration {
        let spt = match self.path {
            TimingPath::Analytic => self.avg_spt,
            TimingPath::Detailed => self
                .geometry
                .sectors_per_track(target.cylinder)
                .unwrap_or(self.avg_spt as u32) as f64,
        };
        let media = self.spindle.arc(target.sectors as f64 / spt);
        let switches = match self.path {
            TimingPath::Analytic => ((target.sectors as f64 - 1.0) / spt).floor() as u64,
            TimingPath::Detailed => {
                let sector = self
                    .geometry
                    .sector_at_angle(target.cylinder, target.surface, target.angle)
                    .unwrap_or(0) as u64;
                (sector + target.sectors.saturating_sub(1) as u64) / spt as u64
            }
        };
        media + self.head_switch * switches
    }

    /// Mechanical repositioning time to reach a target track: a seek when
    /// the cylinder changes, a head switch when only the surface does, and
    /// the write settle whenever the heads reposition before a write.
    #[inline]
    fn positioning_time(&self, target: &Target, write: bool) -> SimDuration {
        let distance = self.arm_cylinder.abs_diff(target.cylinder);
        if distance > 0 {
            if write {
                self.seek.seek_write(distance)
            } else {
                self.seek.seek(distance)
            }
        } else if target.surface != self.arm_surface {
            let settle = if write {
                // The write-settle penalty, recovered from the profile.
                self.seek.seek_write(1).saturating_sub(self.seek.seek(1))
            } else {
                SimDuration::ZERO
            };
            self.head_switch + settle
        } else {
            SimDuration::ZERO
        }
    }

    fn estimate_inner(
        &self,
        start: SimTime,
        target: &Target,
        write: bool,
        overhead: SimDuration,
    ) -> ServiceBreakdown {
        if !write
            && self.read_ahead
            && self.buffered_track == Some((target.cylinder, target.surface))
        {
            // Track-buffer hit: data streams from the drive's cache.
            return ServiceBreakdown {
                overhead,
                seek: SimDuration::ZERO,
                rotation: SimDuration::ZERO,
                transfer: self.transfer_time(target),
                missed_rotation: false,
            };
        }
        let seek = self.positioning_time(target, write);
        let arrive = start + overhead + seek;
        let (angle, transfer) = self.angle_and_transfer(target);
        // `wait_until_angle` works in absolute spindle phase; fold the
        // per-disk phase offset into the target.
        let rotation = self
            .spindle
            .wait_until_angle(arrive, self.target_phase(angle));
        ServiceBreakdown {
            overhead,
            seek,
            rotation,
            transfer,
            missed_rotation: false,
        }
    }

    /// Predicts the service breakdown for starting `target` at `start`,
    /// without changing drive state. Deterministic: this is what the
    /// schedulers (SATF/RSATF/RLOOK replica choice) rank candidates by.
    pub fn estimate(&self, start: SimTime, target: &Target, write: bool) -> ServiceBreakdown {
        self.estimate_inner(start, target, write, self.overhead)
    }

    /// The scheduler's view of [`SimDisk::estimate`]: `(positioning,
    /// rotation)` in nanoseconds, skipping the transfer-time computation
    /// that candidate ranking never reads. Agrees exactly with
    /// `estimate(start, target, write)`'s `positioning()` and `rotation`.
    #[inline]
    pub fn sched_cost_ns(&self, start: SimTime, target: &Target, write: bool) -> (u64, u64) {
        self.sched_cost_at_phase_ns(start, target, write, self.sched_phase(target))
    }

    /// The effective spindle phase at which `target`'s first sector passes
    /// under the head: the quantised track angle with this disk's phase
    /// offset folded in. Never depends on the clock or the arm, so index
    /// structures may compute it once per queued candidate and reuse it
    /// across picks — but it *does* fold in the mutable phase offset, so
    /// any such memo must stamp [`SimDisk::phase_epoch`] and re-derive
    /// when the epoch has moved.
    #[inline]
    pub fn sched_phase(&self, target: &Target) -> f64 {
        self.target_phase(self.sched_base_angle(target))
    }

    /// The quantised, pre-offset track angle [`SimDisk::sched_phase`]
    /// starts from: a pure function of the target and the (immutable)
    /// geometry, so index structures may store it once per queued candidate
    /// and re-derive the effective phase after any spindle-phase change via
    /// [`SimDisk::phase_of_angle`] — no re-quantisation needed.
    /// `sched_phase(t) == phase_of_angle(sched_base_angle(t))`, bit for bit.
    #[inline]
    pub fn sched_base_angle(&self, target: &Target) -> f64 {
        if self.path == TimingPath::Detailed {
            match self.quantise_cached(target.cylinder, target.surface, target.angle) {
                Some((angle, _, _)) => angle,
                None => mod1(target.angle),
            }
        } else {
            mod1(target.angle)
        }
    }

    /// Folds the current spindle-phase offset into a pre-offset base angle
    /// (from [`SimDisk::sched_base_angle`]): the repair half of an
    /// epoch-stamped phase memo. Valid for the current
    /// [`SimDisk::phase_epoch`] only.
    #[inline]
    pub fn phase_of_angle(&self, base_angle: f64) -> f64 {
        self.target_phase(base_angle)
    }

    /// Batched [`SimDisk::sched_cost_at_phase_ns`] over struct-of-arrays
    /// candidate lanes: cylinder distance from the current arm position,
    /// target surface, write flag (0/1), and memoised effective phase
    /// (from [`SimDisk::sched_phase`], epoch-repaired by the caller).
    /// Writes the `(positioning, rotation)` nanosecond pair into
    /// `pos_out`/`rot_out`.
    ///
    /// Every lane is bit-identical to the scalar call: the seek comes from
    /// the same LUTs (gathered flat via [`SeekProfile::seek_ns_batch`] on
    /// the all-read fast path), the arrival fold uses the same saturating
    /// adds, and the rotation wait reduces the phase delta with the same
    /// arithmetic `mod1` (two selects — the delta of two `[0, 1)` phases
    /// always lies in `(-1, 1)`) before the same `round()`. Per-candidate
    /// branching is gone: the loop body is select-based and call-free, so
    /// it auto-vectorizes everywhere the LUT gather allows.
    ///
    /// Track read-ahead is *hoisted out*, not handled per lane: a potential
    /// buffer hit costs `(0, 0)` regardless of distance, so callers on the
    /// batched path must check [`SimDisk::read_ahead_enabled`] first and
    /// fall back to the scalar scan (exactly as the band index already does
    /// for its bound-monotonicity).
    ///
    /// # Panics
    ///
    /// Panics if the lanes differ in length; debug-asserts that read-ahead
    /// is disabled.
    #[allow(clippy::too_many_arguments)] // flat SoA lanes are the point of the batch API
    pub fn sched_cost_batch(
        &self,
        start: SimTime,
        dist: &[u32],
        surface: &[u32],
        write: &[u8],
        phase: &[f64],
        pos_out: &mut [u64],
        rot_out: &mut [u64],
    ) {
        let n = dist.len();
        assert!(
            surface.len() == n
                && write.len() == n
                && phase.len() == n
                && pos_out.len() == n
                && rot_out.len() == n,
            "sched_cost_batch lane length mismatch"
        );
        debug_assert!(
            !self.read_ahead,
            "batched costing requires read-ahead hoisted out (use the scalar path)"
        );
        // Hoisted per-pick scalars: everything the scalar path re-derives
        // per candidate.
        let base_ns = (start + self.overhead).as_nanos();
        let p = self.rotation_ns;
        let pf = p as f64;
        let arm_surface = self.arm_surface;
        let hs_ns = self.head_switch.as_nanos();
        let settle_ns = self.write_settle_ns;
        // Barrett-style reciprocal for the per-lane `% p`: one u128
        // multiply-high replaces a hardware divide the compiler cannot
        // strength-reduce (p is loop-invariant but not a constant).
        // `recip <= 2^64 / p` makes the estimated quotient an
        // underestimate by at most 2, so the correction loop below runs at
        // most twice and the remainder is *exactly* `arrive % p`.
        let recip = self.rot_recip;

        // Pass 1: the seek lane, into `pos_out`.
        if write.iter().all(|&w| w == 0) {
            self.seek.seek_ns_batch(dist, pos_out);
        } else {
            for i in 0..n {
                pos_out[i] = if write[i] != 0 {
                    self.seek.seek_write_ns(dist[i])
                } else {
                    self.seek.seek_ns(dist[i])
                };
            }
        }

        // Pass 2: zero-distance repositioning fix-up, rotation wait, and
        // the positioning sum — all selects, no branches.
        for i in 0..n {
            let zero_dist = dist[i] == 0;
            let switch = if surface[i] != arm_surface {
                hs_ns + if write[i] != 0 { settle_ns } else { 0 }
            } else {
                0
            };
            let seek = if zero_dist { switch } else { pos_out[i] };
            let arrive = base_ns.saturating_add(seek);
            let q = ((arrive as u128 * recip as u128) >> 64) as u64;
            let mut rem = arrive - q * p;
            while rem >= p {
                rem -= p;
            }
            debug_assert_eq!(rem, arrive % p);
            let angle = rem as f64 / pf;
            let delta = phase[i] - angle;
            let delta = if delta < 0.0 { delta + 1.0 } else { delta };
            let delta = if delta >= 1.0 { 0.0 } else { delta };
            let rot = (delta * pf).round() as u64;
            pos_out[i] = seek.saturating_add(rot);
            rot_out[i] = rot;
        }
    }

    /// The largest cylinder distance whose read seek fits in `budget_ns`:
    /// [`SeekProfile::max_dist_within_ns`] for this drive's fitted curve.
    /// `d > max_seek_dist_within_ns(c)` holds exactly when
    /// [`SimDisk::seek_bound_ns`]`(d) > c`.
    #[inline]
    pub fn max_seek_dist_within_ns(&self, budget_ns: u64) -> u32 {
        self.seek.max_dist_within_ns(budget_ns)
    }

    /// [`SimDisk::sched_cost_ns`] with the effective phase supplied by the
    /// caller (from [`SimDisk::sched_phase`]), skipping the per-call angle
    /// quantisation. `sched_cost_ns(s, t, w)` is defined as
    /// `sched_cost_at_phase_ns(s, t, w, sched_phase(t))`.
    #[inline]
    pub fn sched_cost_at_phase_ns(
        &self,
        start: SimTime,
        target: &Target,
        write: bool,
        phase: f64,
    ) -> (u64, u64) {
        if !write
            && self.read_ahead
            && self.buffered_track == Some((target.cylinder, target.surface))
        {
            return (0, 0); // Track-buffer hit: no positioning at all.
        }
        let seek = self.positioning_time(target, write);
        let arrive = start + self.overhead + seek;
        let rotation = self.spindle.wait_until_angle(arrive, phase);
        ((seek + rotation).as_nanos(), rotation.as_nanos())
    }

    /// Raw spindle phase at the earliest arrival a candidate with seek
    /// bound `seek_bound_ns` can manage: `now + overhead + bound`. This is
    /// the reference point for rotational lower bounds — for any candidate
    /// whose seek is at least the bound, `positioning >= bound +
    /// mod1(sched_phase - floor) * rotation` (first-hit times are monotone
    /// in the arrival instant). Raw, not offset-adjusted: effective phases
    /// from [`SimDisk::sched_phase`] already fold the offset in.
    #[inline]
    pub fn arrival_phase_floor(&self, now: SimTime, seek_bound_ns: u64) -> f64 {
        self.spindle
            .angle_at(now + self.overhead + SimDuration::from_nanos(seek_bound_ns))
    }

    /// Hoists the `now`-dependent parts of [`SimDisk::arrival_phase_floor`]
    /// so a band walk can take one floor per band without a hardware
    /// division each time. [`PhaseFloorRuler::floor`] is bit-identical to
    /// `arrival_phase_floor(now, b)` for every `b`.
    #[inline]
    pub fn phase_floor_ruler(&self, now: SimTime) -> PhaseFloorRuler {
        let p = self.spindle.period().as_nanos();
        debug_assert_eq!(p, self.rotation_ns);
        PhaseFloorRuler {
            t0_ns: (now + self.overhead).as_nanos(),
            p,
            pf: p as f64,
            recip: self.rot_recip,
        }
    }

    /// Folds the per-disk phase offset into an effective target angle
    /// (already reduced to `[0, 1)`). The zero-offset fast path skips a
    /// `rem_euclid` division and is value-exact: `angle - 0.0 == angle`
    /// and `mod1` is the identity on `[0, 1)`.
    #[inline]
    fn target_phase(&self, angle: f64) -> f64 {
        if self.phase_offset == 0.0 {
            angle
        } else {
            mod1(angle - self.phase_offset)
        }
    }

    /// Like [`SimDisk::estimate`], but without the per-command overhead:
    /// used for the follow-on replica writes of a single multi-replica
    /// write command (§3.4's foreground propagation).
    pub fn estimate_chained(
        &self,
        start: SimTime,
        target: &Target,
        write: bool,
    ) -> ServiceBreakdown {
        self.estimate_inner(start, target, write, SimDuration::ZERO)
    }

    fn begin_inner(
        &mut self,
        start: SimTime,
        target: &Target,
        write: bool,
        overhead: SimDuration,
    ) -> ServiceBreakdown {
        let b = self.estimate_inner(start, target, write, overhead);
        self.commit(b, start, target, write)
    }

    /// The mutating half of [`SimDisk::begin_inner`]: takes the prediction
    /// for `(start, target, write)` and commits it — rolls the
    /// head-tracking error, applies fail-slow inflation, moves the arm,
    /// and advances the busy horizon.
    fn commit(
        &mut self,
        mut b: ServiceBreakdown,
        start: SimTime,
        target: &Target,
        write: bool,
    ) -> ServiceBreakdown {
        if let PositionKnowledge::Tracked {
            mean_error_us,
            std_error_us,
        } = self.knowledge
        {
            // The scheduler believed the rotational wait was b.rotation; the
            // true platter position differs by a Gaussian error. A positive
            // error means the platter is ahead of the prediction: the wait
            // shrinks, and if it shrinks through zero the sector has already
            // passed and a full extra revolution is paid (§3.2).
            let err =
                SimDuration::from_micros_f64(self.rng.normal(mean_error_us, std_error_us).abs());
            let ahead = self.rng.chance(0.5);
            if ahead {
                if err > b.rotation {
                    b.rotation = b.rotation + self.rotation - err;
                    b.missed_rotation = true;
                    self.rotation_misses += 1;
                } else {
                    b.rotation -= err;
                }
            } else {
                b.rotation += err;
            }
        }
        if !self.fail_slow.is_empty() {
            // Fail-slow: inflate every realised component by the product of
            // the open windows (overlaps compound). The busy horizon below
            // commits the stretched total, so queueing behind a sick disk
            // degrades exactly as the inflation says it should.
            let mut f = 1.0;
            for &(from, until, factor) in &self.fail_slow {
                if start >= from && start < until {
                    f *= factor;
                }
            }
            if f != 1.0 {
                b.overhead = b.overhead.mul_f64(f);
                b.seek = b.seek.mul_f64(f);
                b.rotation = b.rotation.mul_f64(f);
                b.transfer = b.transfer.mul_f64(f);
            }
        }
        self.arm_cylinder = target.cylinder;
        self.arm_surface = target.surface;
        self.busy_until = start + b.total();
        self.requests_served += 1;
        if self.read_ahead {
            // Reads fill the buffer with their track; writes invalidate it
            // (the buffered image may now be stale).
            self.buffered_track = if write {
                None
            } else {
                Some((target.cylinder, target.surface))
            };
        }
        b
    }

    /// Starts servicing `target` at `start`, committing arm movement and
    /// the busy horizon, and (under [`PositionKnowledge::Tracked`]) rolling
    /// the head-tracking prediction error.
    ///
    /// Returns the realised breakdown; the request completes at
    /// `start + breakdown.total()`.
    pub fn begin(&mut self, start: SimTime, target: &Target, write: bool) -> ServiceBreakdown {
        self.begin_inner(start, target, write, self.overhead)
    }

    /// [`SimDisk::estimate`] and [`SimDisk::begin`] fused into one call:
    /// returns `(predicted, realised)`, with `predicted` bit-identical to
    /// a separate `estimate(start, target, write)` and `realised`
    /// bit-identical to the `begin(start, target, write)` that would have
    /// followed it. The dispatch path needs both views of every command;
    /// fusing them runs the shared seek/quantise/rotation prediction once.
    pub fn begin_with_estimate(
        &mut self,
        start: SimTime,
        target: &Target,
        write: bool,
    ) -> (ServiceBreakdown, ServiceBreakdown) {
        let predicted = self.estimate_inner(start, target, write, self.overhead);
        (predicted, self.commit(predicted, start, target, write))
    }

    /// Like [`SimDisk::begin`], but without the per-command overhead (the
    /// follow-on writes of one multi-replica command).
    pub fn begin_chained(
        &mut self,
        start: SimTime,
        target: &Target,
        write: bool,
    ) -> ServiceBreakdown {
        self.begin_inner(start, target, write, SimDuration::ZERO)
    }

    /// Reports position knowledge mode (used by experiment printouts).
    pub fn knowledge(&self) -> PositionKnowledge {
        self.knowledge
    }
}

/// See [`SimDisk::phase_floor_ruler`]. The Barrett step underestimates the
/// quotient by at most 2, so the correction loop runs at most twice and the
/// remainder is exact; the final divide is then the same f64 operation
/// [`SimDisk::arrival_phase_floor`] performs, making `floor` bit-identical.
#[derive(Debug, Clone, Copy)]
pub struct PhaseFloorRuler {
    t0_ns: u64,
    p: u64,
    pf: f64,
    recip: u64,
}

impl PhaseFloorRuler {
    /// `arrival_phase_floor(now, seek_bound_ns)` for the hoisted `now`.
    #[inline]
    pub fn floor(&self, seek_bound_ns: u64) -> f64 {
        let t = self.t0_ns.saturating_add(seek_bound_ns);
        let q = ((t as u128 * self.recip as u128) >> 64) as u64;
        let mut rem = t - q * self.p;
        while rem >= self.p {
            rem -= self.p;
        }
        debug_assert_eq!(rem, t % self.p);
        rem as f64 / self.pf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk(path: TimingPath) -> SimDisk {
        SimDisk::new(
            &DiskParams::st39133lwv(),
            path,
            PositionKnowledge::Perfect,
            42,
        )
        .unwrap()
    }

    #[test]
    fn estimate_matches_begin_under_perfect_knowledge() {
        let mut d = disk(TimingPath::Detailed);
        let t = Target {
            cylinder: 2_000,
            surface: 3,
            angle: 0.7,
            sectors: 8,
        };
        let est = d.estimate(SimTime::from_millis(1), &t, false);
        let got = d.begin(SimTime::from_millis(1), &t, false);
        assert_eq!(est, got);
        assert!(!got.missed_rotation);
        assert_eq!(d.rotation_misses(), 0);
        assert_eq!(d.requests_served(), 1);
    }

    #[test]
    fn sched_cost_matches_estimate_exactly() {
        for path in [TimingPath::Detailed, TimingPath::Analytic] {
            let mut d = disk(path);
            d.set_phase_offset(0.37);
            for i in 0..500u64 {
                let t = Target {
                    cylinder: ((i * 131) % 9_000) as u32,
                    surface: (i % 12) as u32,
                    angle: (i as f64 * 0.618).rem_euclid(1.0),
                    sectors: 1 + (i % 64) as u32,
                };
                let start = SimTime::from_micros(i * 977);
                for write in [false, true] {
                    let est = d.estimate(start, &t, write);
                    let (pos, rot) = d.sched_cost_ns(start, &t, write);
                    assert_eq!(pos, est.positioning().as_nanos(), "{path:?} i={i}");
                    assert_eq!(rot, est.rotation.as_nanos(), "{path:?} i={i}");
                }
            }
        }
    }

    #[test]
    fn sched_cost_matches_estimate_on_buffer_hits() {
        let mut d = disk(TimingPath::Detailed);
        d.set_read_ahead(true);
        let t = Target {
            cylinder: 500,
            surface: 2,
            angle: 0.3,
            sectors: 16,
        };
        let _ = d.begin(SimTime::ZERO, &t, false);
        let now = d.busy_until();
        let est = d.estimate(now, &t, false);
        let (pos, rot) = d.sched_cost_ns(now, &t, false);
        assert_eq!(pos, est.positioning().as_nanos());
        assert_eq!(rot, est.rotation.as_nanos());
        assert_eq!(pos, 0);
    }

    /// Splitmix-style generator for the property tests below: cheap,
    /// deterministic, and independent of the simulator's own RNG streams.
    fn mix(x: &mut u64) -> u64 {
        *x = x.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    #[test]
    fn sched_cost_batch_matches_scalar_randomized() {
        for path in [TimingPath::Detailed, TimingPath::Analytic] {
            let mut d = disk(path);
            d.set_phase_offset(0.37);
            let cyls = d.geometry().total_cylinders();
            let surfaces = d.geometry().surfaces();
            let mut x = 1234u64;
            // Several arm positions: zero-distance and surface-switch lanes
            // only exercise their select arms when the arm actually sits on
            // the lane's cylinder/surface.
            for round in 0..8u64 {
                let park = Target {
                    cylinder: (mix(&mut x) % u64::from(cyls)) as u32,
                    surface: (mix(&mut x) % u64::from(surfaces)) as u32,
                    angle: (round as f64) / 8.0,
                    sectors: 8,
                };
                let _ = d.begin(SimTime::from_millis(round), &park, false);
                let now = d.busy_until();
                let arm = d.arm_cylinder();
                let n = 257usize; // off any chunking boundary
                let mut dist = Vec::new();
                let mut surface = Vec::new();
                let mut write = Vec::new();
                let mut phase = Vec::new();
                let mut targets = Vec::new();
                for i in 0..n {
                    let t = Target {
                        // Mix in exact-arm lanes so dist == 0 occurs.
                        cylinder: if i % 17 == 0 {
                            arm
                        } else {
                            (mix(&mut x) % u64::from(cyls)) as u32
                        },
                        surface: if i % 5 == 0 {
                            d.arm_surface()
                        } else {
                            (mix(&mut x) % u64::from(surfaces)) as u32
                        },
                        angle: (mix(&mut x) % 10_000) as f64 / 10_000.0,
                        sectors: 1 + (mix(&mut x) % 64) as u32,
                    };
                    let w = i % 3 == 0;
                    dist.push(arm.abs_diff(t.cylinder));
                    surface.push(t.surface);
                    write.push(u8::from(w));
                    phase.push(d.sched_phase(&t));
                    targets.push((t, w));
                }
                let mut pos = vec![0u64; n];
                let mut rot = vec![0u64; n];
                d.sched_cost_batch(now, &dist, &surface, &write, &phase, &mut pos, &mut rot);
                for (i, (t, w)) in targets.iter().enumerate() {
                    let (sp, sr) = d.sched_cost_at_phase_ns(now, t, *w, phase[i]);
                    assert_eq!(
                        (pos[i], rot[i]),
                        (sp, sr),
                        "{path:?} round={round} lane={i}"
                    );
                }
            }
        }
    }

    #[test]
    fn sched_cost_batch_write_settle_path_matches_scalar() {
        // All-write lanes route the seek pass through `seek_write_ns`
        // (settle included) and surface switches add the write settle on
        // top of the head switch; every lane must still match the scalar
        // call bit-for-bit, and switching surfaces on a write must never
        // be cheaper than the same read switch.
        let mut d = disk(TimingPath::Detailed);
        let park = Target {
            cylinder: 4_000,
            surface: 1,
            angle: 0.25,
            sectors: 8,
        };
        let _ = d.begin(SimTime::ZERO, &park, false);
        let now = d.busy_until();
        let arm = d.arm_cylinder();
        let mut x = 77u64;
        let n = 128usize;
        let (mut dist, mut surface, mut phase, mut targets) =
            (Vec::new(), Vec::new(), Vec::new(), Vec::new());
        for i in 0..n {
            let t = Target {
                cylinder: if i % 7 == 0 {
                    arm
                } else {
                    (mix(&mut x) % 9_000) as u32
                },
                surface: (i % d.geometry().surfaces() as usize) as u32,
                angle: (mix(&mut x) % 10_000) as f64 / 10_000.0,
                sectors: 8,
            };
            dist.push(arm.abs_diff(t.cylinder));
            surface.push(t.surface);
            phase.push(d.sched_phase(&t));
            targets.push(t);
        }
        let writes = vec![1u8; n];
        let reads = vec![0u8; n];
        let mut wpos = vec![0u64; n];
        let mut wrot = vec![0u64; n];
        let mut rpos = vec![0u64; n];
        let mut rrot = vec![0u64; n];
        d.sched_cost_batch(now, &dist, &surface, &writes, &phase, &mut wpos, &mut wrot);
        d.sched_cost_batch(now, &dist, &surface, &reads, &phase, &mut rpos, &mut rrot);
        for (i, t) in targets.iter().enumerate() {
            let (sp, sr) = d.sched_cost_at_phase_ns(now, t, true, phase[i]);
            assert_eq!((wpos[i], wrot[i]), (sp, sr), "write lane {i}");
            let (sp, sr) = d.sched_cost_at_phase_ns(now, t, false, phase[i]);
            assert_eq!((rpos[i], rrot[i]), (sp, sr), "read lane {i}");
        }
    }

    #[test]
    fn sched_cost_batch_matches_scalar_across_read_ahead_boundary() {
        // The batch kernel hoists track read-ahead out entirely, so it is
        // only defined for read-ahead-off disks. Pin the boundary from both
        // sides: with the buffer on, the *scalar* path serves exactly the
        // buffered (cylinder, surface) for free and charges full
        // positioning one track over; with the buffer off again, the batch
        // kernel matches the scalar path even though `buffered_track` still
        // points at the last track read.
        let mut d = disk(TimingPath::Detailed);
        d.set_read_ahead(true);
        let t = Target {
            cylinder: 500,
            surface: 2,
            angle: 0.3,
            sectors: 16,
        };
        let _ = d.begin(SimTime::ZERO, &t, false);
        let now = d.busy_until();
        let hit = d.sched_cost_at_phase_ns(now, &t, false, d.sched_phase(&t));
        assert_eq!(hit, (0, 0), "buffered track is free");
        let next_surface = Target { surface: 3, ..t };
        let next_cyl = Target { cylinder: 501, ..t };
        for miss in [&next_surface, &next_cyl] {
            let (pos, _) = d.sched_cost_at_phase_ns(now, miss, false, d.sched_phase(miss));
            assert!(pos > 0, "adjacent track must pay positioning");
        }
        d.set_read_ahead(false);
        for probe in [&t, &next_surface, &next_cyl] {
            let ph = d.sched_phase(probe);
            let dist = [d.arm_cylinder().abs_diff(probe.cylinder)];
            let surf = [probe.surface];
            let (mut pos, mut rot) = ([0u64; 1], [0u64; 1]);
            d.sched_cost_batch(now, &dist, &surf, &[0], &[ph], &mut pos, &mut rot);
            let scalar = d.sched_cost_at_phase_ns(now, probe, false, ph);
            assert_eq!((pos[0], rot[0]), scalar);
        }
    }

    #[test]
    fn phase_floor_ruler_is_bit_identical_to_arrival_phase_floor() {
        let mut d = disk(TimingPath::Detailed);
        d.set_phase_offset(0.61);
        let mut x = 5u64;
        for _ in 0..5_000 {
            let now = SimTime::from_nanos(mix(&mut x) % 400_000_000_000);
            let ruler = d.phase_floor_ruler(now);
            let bound = mix(&mut x) % 40_000_000;
            let a = d.arrival_phase_floor(now, bound);
            let b = ruler.floor(bound);
            assert_eq!(a.to_bits(), b.to_bits(), "now={now:?} bound={bound}");
        }
    }

    #[test]
    fn service_time_components_are_sane() {
        let mut d = disk(TimingPath::Detailed);
        let t = Target {
            cylinder: 3_000,
            surface: 0,
            angle: 0.0,
            sectors: 16,
        };
        let b = d.begin(SimTime::ZERO, &t, false);
        assert!(b.seek >= SimDuration::from_micros(600));
        assert!(b.seek <= SimDuration::from_micros(10_600));
        assert!(b.rotation <= d.rotation_time());
        assert!(b.transfer > SimDuration::ZERO);
        assert_eq!(d.arm_cylinder(), 3_000);
        assert_eq!(d.busy_until(), SimTime::ZERO + b.total());
    }

    #[test]
    fn same_cylinder_access_has_no_seek() {
        let mut d = disk(TimingPath::Detailed);
        let t = Target {
            cylinder: 0,
            surface: 0,
            angle: 0.5,
            sectors: 1,
        };
        let b = d.begin(SimTime::ZERO, &t, false);
        assert_eq!(b.seek, SimDuration::ZERO);
    }

    #[test]
    fn writes_pay_settle() {
        let d = disk(TimingPath::Detailed);
        let t = Target {
            cylinder: 500,
            surface: 0,
            angle: 0.0,
            sectors: 1,
        };
        let r = d.estimate(SimTime::ZERO, &t, false);
        let w = d.estimate(SimTime::ZERO, &t, true);
        assert!(w.seek > r.seek);
    }

    #[test]
    fn rotational_wait_depends_on_start_time() {
        let d = disk(TimingPath::Analytic);
        let t = Target {
            cylinder: 0,
            surface: 0,
            angle: 0.5,
            sectors: 1,
        };
        let b1 = d.estimate(SimTime::ZERO, &t, false);
        let b2 = d.estimate(SimTime::from_micros(1_000), &t, false);
        assert_ne!(b1.rotation, b2.rotation);
        // One millisecond later the wait is one millisecond shorter (mod R).
        let diff = b1.rotation.as_micros_f64() - b2.rotation.as_micros_f64();
        assert!((diff - 1_000.0).abs() < 1.0, "diff {diff}");
    }

    #[test]
    fn detailed_and_analytic_agree_closely_on_singles() {
        let dd = disk(TimingPath::Detailed);
        let da = disk(TimingPath::Analytic);
        let t = Target {
            cylinder: 1_234,
            surface: 2,
            angle: 0.3,
            sectors: 1,
        };
        let bd = dd.estimate(SimTime::ZERO, &t, false);
        let ba = da.estimate(SimTime::ZERO, &t, false);
        assert_eq!(bd.seek, ba.seek);
        // Angles agree to within one sector of quantisation (~28 µs).
        let gap = (bd.rotation.as_micros_f64() - ba.rotation.as_micros_f64()).abs();
        assert!(gap < 6_000.0 / 170.0 + 1.0, "gap {gap}us");
    }

    #[test]
    fn long_transfers_cross_tracks_and_pay_switches() {
        let d = disk(TimingPath::Detailed);
        let spt = d.geometry().sectors_per_track(0).unwrap();
        let short = Target {
            cylinder: 0,
            surface: 0,
            angle: 0.0,
            sectors: spt / 2,
        };
        let long = Target {
            cylinder: 0,
            surface: 0,
            angle: 0.0,
            sectors: spt * 2,
        };
        let bs = d.estimate(SimTime::ZERO, &short, false);
        let bl = d.estimate(SimTime::ZERO, &long, false);
        // The long transfer covers 4x the media plus at least one switch.
        assert!(bl.transfer > bs.transfer * 4);
    }

    #[test]
    fn read_ahead_serves_repeat_track_reads_from_buffer() {
        let mut d = disk(TimingPath::Detailed);
        d.set_read_ahead(true);
        let t = Target {
            cylinder: 500,
            surface: 2,
            angle: 0.3,
            sectors: 16,
        };
        let first = d.begin(SimTime::ZERO, &t, false);
        assert!(first.positioning() > SimDuration::ZERO);
        // Second read of the same track: no positioning at all.
        let again = Target { angle: 0.8, ..t };
        let hit = d.begin(d.busy_until(), &again, false);
        assert_eq!(hit.seek, SimDuration::ZERO);
        assert_eq!(hit.rotation, SimDuration::ZERO);
        assert!(hit.transfer > SimDuration::ZERO);
        // A different track misses the buffer.
        let other = Target { surface: 3, ..t };
        let miss = d.begin(d.busy_until(), &other, false);
        assert!(miss.positioning() > SimDuration::ZERO);
    }

    #[test]
    fn writes_invalidate_the_track_buffer() {
        let mut d = disk(TimingPath::Detailed);
        d.set_read_ahead(true);
        let t = Target {
            cylinder: 500,
            surface: 2,
            angle: 0.3,
            sectors: 16,
        };
        let _ = d.begin(SimTime::ZERO, &t, false);
        let _ = d.begin(d.busy_until(), &t, true); // Write to the track.
        let after = d.begin(d.busy_until(), &t, false);
        assert!(after.positioning() > SimDuration::ZERO, "stale buffer used");
    }

    #[test]
    fn read_ahead_disabled_never_hits() {
        let mut d = disk(TimingPath::Detailed);
        let t = Target {
            cylinder: 500,
            surface: 2,
            angle: 0.3,
            sectors: 16,
        };
        let _ = d.begin(SimTime::ZERO, &t, false);
        let b = d.begin(d.busy_until(), &t, false);
        // Re-reading the just-read sectors costs a near-full revolution.
        assert!(b.rotation > SimDuration::from_millis(4));
    }

    #[test]
    fn tracked_knowledge_produces_rare_misses() {
        let mut d = SimDisk::new(
            &DiskParams::st39133lwv(),
            TimingPath::Detailed,
            PositionKnowledge::Tracked {
                mean_error_us: 3.0,
                std_error_us: 31.0,
            },
            7,
        )
        .unwrap();
        let mut now = SimTime::ZERO;
        let n = 20_000;
        for i in 0..n {
            let t = Target {
                cylinder: (i * 37) % 6_000,
                surface: (i % 12),
                angle: (i as f64 * 0.618).rem_euclid(1.0),
                sectors: 8,
            };
            let b = d.begin(now, &t, false);
            now += b.total();
        }
        let miss_rate = d.rotation_misses() as f64 / n as f64;
        // Random rotational waits average R/2 = 3000us against ~31us errors:
        // misses happen but rarely (Table 2 reports 0.22% under RSATF, which
        // targets much tighter waits; random targets are rarer still).
        assert!(miss_rate < 0.02, "miss rate {miss_rate}");
    }

    #[test]
    fn begin_with_zero_wait_target_can_miss() {
        // A target placed exactly under the head with Tracked knowledge has
        // a ~50% miss chance (any positive "ahead" error overshoots).
        let mut d = SimDisk::new(
            &DiskParams::st39133lwv(),
            TimingPath::Analytic,
            PositionKnowledge::Tracked {
                mean_error_us: 3.0,
                std_error_us: 31.0,
            },
            11,
        )
        .unwrap();
        let mut misses = 0;
        for i in 0..200 {
            let start = SimTime::from_micros(i * 13);
            let angle = d.angle_at(
                start
                    + d.estimate(
                        start,
                        &Target {
                            cylinder: d.arm_cylinder(),
                            surface: 0,
                            angle: 0.0,
                            sectors: 1,
                        },
                        false,
                    )
                    .overhead,
            );
            let t = Target {
                cylinder: d.arm_cylinder(),
                surface: 0,
                angle,
                sectors: 1,
            };
            let b = d.begin(start, &t, false);
            if b.missed_rotation {
                misses += 1;
            }
        }
        assert!(misses > 20, "expected frequent misses, got {misses}");
    }
}
