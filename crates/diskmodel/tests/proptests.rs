//! Property tests for the mechanical disk model, driven by the
//! deterministic in-repo harness (`mimd_sim::check`).

use mimd_disk::{
    Chs, DiskParams, Geometry, PositionKnowledge, SeekProfile, SimDisk, Spindle, Target, TimingPath,
};
use mimd_sim::check::{check_cases, f64_in};
use mimd_sim::{SimDuration, SimTime};

fn geometry() -> Geometry {
    Geometry::new(&DiskParams::st39133lwv())
}

fn disk(path: TimingPath) -> SimDisk {
    SimDisk::new(
        &DiskParams::st39133lwv(),
        path,
        PositionKnowledge::Perfect,
        1,
    )
    .expect("valid params")
}

#[test]
fn lbn_chs_round_trip() {
    check_cases("lbn↔chs round trip", 512, |_, rng| {
        let lbn = rng.below(17_795_292);
        let g = geometry();
        let chs = g.lbn_to_chs(lbn).expect("in range");
        assert!(chs.cylinder < g.total_cylinders());
        assert!(chs.surface < g.surfaces());
        assert_eq!(g.chs_to_lbn(chs).expect("valid"), lbn);
    });
}

#[test]
fn consecutive_lbns_never_move_backward() {
    check_cases("consecutive lbns never move backward", 512, |_, rng| {
        let lbn = rng.below(17_795_000);
        let g = geometry();
        let a = g.lbn_to_chs(lbn).expect("in range");
        let b = g.lbn_to_chs(lbn + 1).expect("in range");
        // Cylinder-major, surface-minor layout: addresses only advance.
        let ka = (a.cylinder as u64, a.surface as u64, a.sector as u64);
        let kb = (b.cylinder as u64, b.surface as u64, b.sector as u64);
        assert!(kb > ka);
    });
}

#[test]
fn angles_are_canonical() {
    check_cases("angles are canonical", 512, |_, rng| {
        let lbn = rng.below(17_795_292);
        let g = geometry();
        let chs = g.lbn_to_chs(lbn).expect("in range");
        let angle = g.angle_of(chs).expect("valid");
        assert!((0.0..1.0).contains(&angle));
    });
}

#[test]
fn sector_at_angle_is_a_right_inverse() {
    check_cases("sector_at_angle is a right inverse", 512, |_, rng| {
        let cylinder = rng.below(6_962) as u32;
        let surface = rng.below(12) as u32;
        let angle = rng.unit();
        let g = geometry();
        let sector = g.sector_at_angle(cylinder, surface, angle).expect("valid");
        let spt = g.sectors_per_track(cylinder).expect("valid");
        assert!(sector < spt);
        // The found sector's start angle is at or just after the request,
        // within one sector of wrap-around.
        let got = g
            .angle_of(Chs {
                cylinder,
                surface,
                sector,
            })
            .expect("valid");
        let forward = (got - angle).rem_euclid(1.0);
        assert!(forward <= 1.0 / spt as f64 + 1e-9, "forward {forward}");
    });
}

#[test]
fn seek_time_is_monotone_and_bounded() {
    check_cases("seek time is monotone and bounded", 256, |_, rng| {
        let a = rng.range(1, 6_961) as u32;
        let b = rng.range(1, 6_961) as u32;
        let params = DiskParams::st39133lwv();
        let profile = SeekProfile::fit(&params).expect("fit");
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(profile.seek(lo) <= profile.seek(hi));
        assert!(profile.seek(hi) <= params.max_seek + SimDuration::from_micros(30));
        assert!(profile.seek(lo) >= params.min_seek - SimDuration::from_micros(30));
    });
}

#[test]
fn spindle_wait_always_lands_on_target() {
    check_cases("spindle wait always lands on target", 512, |_, rng| {
        let start_ns = rng.below(1 << 40);
        let target = rng.unit();
        let s = Spindle::new(SimDuration::from_millis(6));
        let t = SimTime::from_nanos(start_ns);
        let wait = s.wait_until_angle(t, target);
        assert!(wait < SimDuration::from_millis(6));
        let landed = s.angle_at(t + wait);
        let err = (landed - target).rem_euclid(1.0);
        let err = err.min(1.0 - err);
        assert!(err < 1e-3, "err {err}");
    });
}

#[test]
fn estimate_equals_begin_under_perfect_knowledge() {
    check_cases(
        "estimate equals begin under perfect knowledge",
        256,
        |_, rng| {
            let cylinder = rng.below(6_962) as u32;
            let surface = rng.below(12) as u32;
            let angle = rng.unit();
            let sectors = rng.range(1, 256) as u32;
            let start_us = rng.below(1_000_000);
            let write = rng.chance(0.5);
            let mut d = disk(TimingPath::Detailed);
            let t = Target {
                cylinder,
                surface,
                angle,
                sectors,
            };
            let now = SimTime::from_micros(start_us);
            let est = d.estimate(now, &t, write);
            let got = d.begin(now, &t, write);
            assert_eq!(est, got);
            assert_eq!(d.arm_cylinder(), cylinder);
            assert_eq!(d.arm_surface(), surface);
            assert_eq!(d.busy_until(), now + got.total());
        },
    );
}

#[test]
fn service_components_are_sane() {
    check_cases("service components are sane", 256, |_, rng| {
        let cylinder = rng.below(6_962) as u32;
        let surface = rng.below(12) as u32;
        let angle = rng.unit();
        let sectors = rng.range(1, 256) as u32;
        let d = disk(TimingPath::Detailed);
        let b = d.estimate(
            SimTime::ZERO,
            &Target {
                cylinder,
                surface,
                angle,
                sectors,
            },
            false,
        );
        assert!(b.rotation <= d.rotation_time());
        assert!(b.transfer > SimDuration::ZERO);
        // A transfer of n sectors takes at least n sector times at the
        // densest zone.
        let min_transfer =
            SimDuration::from_nanos((sectors as u64) * d.rotation_time().as_nanos() / 248);
        assert!(b.transfer >= min_transfer);
        assert!(b.total() >= b.positioning());
    });
}

#[test]
fn writes_never_cost_less_than_reads() {
    check_cases("writes never cost less than reads", 256, |_, rng| {
        let cylinder = rng.range(1, 6_962) as u32;
        let angle = rng.unit();
        let d = disk(TimingPath::Analytic);
        let t = Target {
            cylinder,
            surface: 3,
            angle,
            sectors: 8,
        };
        let r = d.estimate(SimTime::ZERO, &t, false);
        let w = d.estimate(SimTime::ZERO, &t, true);
        assert!(w.seek >= r.seek);
    });
}

#[test]
fn phase_offsets_shift_rotation_only() {
    check_cases("phase offsets shift rotation only", 256, |_, rng| {
        let cylinder = rng.below(6_962) as u32;
        let angle = rng.unit();
        let offset = f64_in(rng, 0.0, 1.0);
        let mut a = disk(TimingPath::Analytic);
        let mut b = disk(TimingPath::Analytic);
        b.set_phase_offset(offset);
        let t = Target {
            cylinder,
            surface: 0,
            angle,
            sectors: 8,
        };
        let ea = a.begin(SimTime::ZERO, &t, false);
        let eb = b.begin(SimTime::ZERO, &t, false);
        assert_eq!(ea.seek, eb.seek);
        assert_eq!(ea.transfer, eb.transfer);
        // Rotation differs by exactly the offset (mod a revolution).
        let diff_ns = ea.rotation.as_nanos() as i64 - eb.rotation.as_nanos() as i64;
        let period = a.rotation_time().as_nanos() as i64;
        let expected = (offset * period as f64) as i64;
        let delta = (diff_ns - expected).rem_euclid(period);
        let delta = delta.min(period - delta);
        assert!(delta < 2_000, "delta {delta} ns");
    });
}
