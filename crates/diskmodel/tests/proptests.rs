//! Property tests for the mechanical disk model.

use proptest::prelude::*;

use mimd_disk::{
    Chs, DiskParams, Geometry, PositionKnowledge, SeekProfile, SimDisk, Spindle, Target, TimingPath,
};
use mimd_sim::{SimDuration, SimTime};

fn geometry() -> Geometry {
    Geometry::new(&DiskParams::st39133lwv())
}

fn disk(path: TimingPath) -> SimDisk {
    SimDisk::new(
        DiskParams::st39133lwv(),
        path,
        PositionKnowledge::Perfect,
        1,
    )
    .expect("valid params")
}

proptest! {
    #[test]
    fn lbn_chs_round_trip(lbn in 0u64..17_795_292) {
        let g = geometry();
        let chs = g.lbn_to_chs(lbn).expect("in range");
        prop_assert!(chs.cylinder < g.total_cylinders());
        prop_assert!(chs.surface < g.surfaces());
        prop_assert_eq!(g.chs_to_lbn(chs).expect("valid"), lbn);
    }

    #[test]
    fn consecutive_lbns_never_move_backward(lbn in 0u64..17_795_000) {
        let g = geometry();
        let a = g.lbn_to_chs(lbn).expect("in range");
        let b = g.lbn_to_chs(lbn + 1).expect("in range");
        // Cylinder-major, surface-minor layout: addresses only advance.
        let ka = (a.cylinder as u64, a.surface as u64, a.sector as u64);
        let kb = (b.cylinder as u64, b.surface as u64, b.sector as u64);
        prop_assert!(kb > ka);
    }

    #[test]
    fn angles_are_canonical(lbn in 0u64..17_795_292) {
        let g = geometry();
        let chs = g.lbn_to_chs(lbn).expect("in range");
        let angle = g.angle_of(chs).expect("valid");
        prop_assert!((0.0..1.0).contains(&angle));
    }

    #[test]
    fn sector_at_angle_is_a_right_inverse(
        cylinder in 0u32..6_962,
        surface in 0u32..12,
        angle in 0f64..1.0,
    ) {
        let g = geometry();
        let sector = g.sector_at_angle(cylinder, surface, angle).expect("valid");
        let spt = g.sectors_per_track(cylinder).expect("valid");
        prop_assert!(sector < spt);
        // The found sector's start angle is at or just after the request,
        // within one sector of wrap-around.
        let got = g
            .angle_of(Chs { cylinder, surface, sector })
            .expect("valid");
        let forward = (got - angle).rem_euclid(1.0);
        prop_assert!(forward <= 1.0 / spt as f64 + 1e-9, "forward {forward}");
    }

    #[test]
    fn seek_time_is_monotone_and_bounded(a in 1u32..6_961, b in 1u32..6_961) {
        let params = DiskParams::st39133lwv();
        let profile = SeekProfile::fit(&params).expect("fit");
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(profile.seek(lo) <= profile.seek(hi));
        prop_assert!(profile.seek(hi) <= params.max_seek + SimDuration::from_micros(30));
        prop_assert!(profile.seek(lo) >= params.min_seek - SimDuration::from_micros(30));
    }

    #[test]
    fn spindle_wait_always_lands_on_target(start_ns in 0u64..1u64 << 40, target in 0f64..1.0) {
        let s = Spindle::new(SimDuration::from_millis(6));
        let t = SimTime::from_nanos(start_ns);
        let wait = s.wait_until_angle(t, target);
        prop_assert!(wait < SimDuration::from_millis(6));
        let landed = s.angle_at(t + wait);
        let err = (landed - target).rem_euclid(1.0);
        let err = err.min(1.0 - err);
        prop_assert!(err < 1e-3, "err {err}");
    }

    #[test]
    fn estimate_equals_begin_under_perfect_knowledge(
        cylinder in 0u32..6_962,
        surface in 0u32..12,
        angle in 0f64..1.0,
        sectors in 1u32..256,
        start_us in 0u64..1_000_000,
        write in any::<bool>(),
    ) {
        let mut d = disk(TimingPath::Detailed);
        let t = Target { cylinder, surface, angle, sectors };
        let now = SimTime::from_micros(start_us);
        let est = d.estimate(now, &t, write);
        let got = d.begin(now, &t, write);
        prop_assert_eq!(est, got);
        prop_assert_eq!(d.arm_cylinder(), cylinder);
        prop_assert_eq!(d.arm_surface(), surface);
        prop_assert_eq!(d.busy_until(), now + got.total());
    }

    #[test]
    fn service_components_are_sane(
        cylinder in 0u32..6_962,
        surface in 0u32..12,
        angle in 0f64..1.0,
        sectors in 1u32..256,
    ) {
        let d = disk(TimingPath::Detailed);
        let b = d.estimate(SimTime::ZERO, &Target { cylinder, surface, angle, sectors }, false);
        prop_assert!(b.rotation <= d.rotation_time());
        prop_assert!(b.transfer > SimDuration::ZERO);
        // A transfer of n sectors takes at least n sector times at the
        // densest zone.
        let min_transfer = SimDuration::from_nanos(
            (sectors as u64) * d.rotation_time().as_nanos() / 248,
        );
        prop_assert!(b.transfer >= min_transfer);
        prop_assert!(b.total() >= b.positioning());
    }

    #[test]
    fn writes_never_cost_less_than_reads(
        cylinder in 1u32..6_962,
        angle in 0f64..1.0,
    ) {
        let d = disk(TimingPath::Analytic);
        let t = Target { cylinder, surface: 3, angle, sectors: 8 };
        let r = d.estimate(SimTime::ZERO, &t, false);
        let w = d.estimate(SimTime::ZERO, &t, true);
        prop_assert!(w.seek >= r.seek);
    }

    #[test]
    fn phase_offsets_shift_rotation_only(
        cylinder in 0u32..6_962,
        angle in 0f64..1.0,
        offset in 0f64..1.0,
    ) {
        let mut a = disk(TimingPath::Analytic);
        let mut b = disk(TimingPath::Analytic);
        b.set_phase_offset(offset);
        let t = Target { cylinder, surface: 0, angle, sectors: 8 };
        let ea = a.begin(SimTime::ZERO, &t, false);
        let eb = b.begin(SimTime::ZERO, &t, false);
        prop_assert_eq!(ea.seek, eb.seek);
        prop_assert_eq!(ea.transfer, eb.transfer);
        // Rotation differs by exactly the offset (mod a revolution).
        let diff_ns = ea.rotation.as_nanos() as i64 - eb.rotation.as_nanos() as i64;
        let period = a.rotation_time().as_nanos() as i64;
        let expected = (offset * period as f64) as i64;
        let delta = (diff_ns - expected).rem_euclid(period);
        let delta = delta.min(period - delta);
        prop_assert!(delta < 2_000, "delta {delta} ns");
    }
}
