//! Cache-correctness properties for the content-addressed run cache.
//!
//! Three families, per the cache's safety story:
//!
//! 1. **Hit fidelity** — for randomized grids, a warm re-run through the
//!    cache emits bytes identical to a cold run (and to a cache-disabled
//!    run).
//! 2. **Fingerprint sensitivity** — flipping any config field, the seed,
//!    the workload, or the baked-in code-version fingerprint misses.
//! 3. **Corruption detection** — truncated or bit-flipped entries fail
//!    the checksum and fall back to a cold run that still returns the
//!    right answer (and repairs the entry).

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Arc;

use mimd_core::{EngineConfig, MirrorPolicy, Policy, ReplicaPlacement, Shape, WriteMode};
use mimd_harness::fp;
use mimd_harness::{GridSpec, RunCache, Workload};
use mimd_sim::check::{case_seed, check_cases};
use mimd_sim::{SimDuration, SimRng};
use mimd_workload::{IometerSpec, SyntheticSpec};

fn temp_cache_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mimd-cache-prop-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small random grid: 1–2 shapes × 1–2 policies × trace-or-closed
/// workload × 1–2 seeds, all drawn from the case's seeded stream.
///
/// Axes are distinct **as resolved configs** (distinct shapes, policies
/// that can't alias the `None` default, distinct seeds), so every cell is
/// a unique job and hit/miss counts are exact.
fn random_grid(rng: &mut SimRng) -> GridSpec {
    let all_shapes = [
        Shape::striping(2),
        Shape::striping(3),
        Shape::sr_array(2, 2).unwrap(),
        Shape::sr_array(2, 3).unwrap(),
    ];
    // `None` resolves to SATF/RSATF, so the explicit pool avoids both.
    let all_policies = [None, Some(Policy::Look), Some(Policy::Fcfs)];
    let start = rng.below(all_shapes.len() as u64) as usize;
    let shapes: Vec<Shape> = (0..1 + rng.below(2) as usize)
        .map(|i| all_shapes[(start + i) % all_shapes.len()])
        .collect();
    let start = rng.below(all_policies.len() as u64) as usize;
    let policies: Vec<Option<Policy>> = (0..1 + rng.below(2) as usize)
        .map(|i| all_policies[(start + i) % all_policies.len()])
        .collect();
    let base_seed = 1 + rng.below(1_000);
    let mut seeds = vec![base_seed];
    if rng.below(2) == 1 {
        seeds.push(base_seed + 1 + rng.below(1_000));
    }
    let workload = if rng.below(2) == 0 {
        let n = 80 + rng.below(120) as usize;
        let trace = Arc::new(SyntheticSpec::cello_base().generate(rng.below(1 << 20), n));
        Workload::Trace(trace)
    } else {
        let data = 4 * 1024 * 1024;
        Workload::Closed {
            spec: IometerSpec::random_read_512(data),
            data_sectors: data,
            outstanding: 2 + rng.below(6) as usize,
            completions: 40 + rng.below(60),
        }
    };
    GridSpec {
        name: "cache-prop".into(),
        shapes,
        policies,
        workloads: vec![("w".into(), workload)],
        seeds,
    }
}

#[test]
fn warm_rerun_is_byte_identical_to_cold() {
    check_cases("cache::hit_fidelity", 6, |case, rng| {
        let grid = random_grid(rng);
        let dir = temp_cache_dir(&format!("fidelity-{case}"));
        let cache = RunCache::at(&dir, 0xC0DE + case);

        let disabled = grid
            .run_cached(1, &RunCache::disabled(), |c| c)
            .to_json()
            .to_json();
        let cold = grid.run_cached(1, &cache, |c| c).to_json().to_json();
        let cells = grid.cells().len() as u64;
        assert_eq!(cache.hits(), 0, "case {case}: cold pass must not hit");
        assert_eq!(cache.misses(), cells, "case {case}");

        let warm = grid.run_cached(1, &cache, |c| c).to_json().to_json();
        assert_eq!(
            cache.hits(),
            cells,
            "case {case}: warm pass must hit every cell"
        );
        assert_eq!(warm, cold, "case {case}: warm bytes differ from cold");
        assert_eq!(cold, disabled, "case {case}: cache changed the output");

        // Parallel warm replay is byte-identical too (tiny jobs exercise
        // the chunked work-claiming path).
        let parallel = grid.run_cached(4, &cache, |c| c).to_json().to_json();
        assert_eq!(parallel, cold, "case {case}: parallel warm bytes differ");
        let _ = std::fs::remove_dir_all(&dir);
    });
}

#[test]
fn every_config_field_flip_changes_the_fingerprint() {
    let trace = SyntheticSpec::cello_base().generate(11, 60);
    let base = EngineConfig::new(Shape::sr_array(2, 3).unwrap());
    type Mutation = (&'static str, Box<dyn Fn(&mut EngineConfig)>);
    let mutations: Vec<Mutation> = vec![
        ("seed", Box::new(|c| c.seed ^= 1)),
        ("policy", Box::new(|c| c.policy = Policy::Fcfs)),
        (
            "write_mode",
            Box::new(|c| c.write_mode = WriteMode::Foreground),
        ),
        ("stripe_unit", Box::new(|c| c.stripe_unit += 8)),
        (
            "mirror_stagger",
            Box::new(|c| c.mirror_stagger = !c.mirror_stagger),
        ),
        (
            "sync_spindles",
            Box::new(|c| c.sync_spindles = !c.sync_spindles),
        ),
        (
            "mirror_policy",
            Box::new(|c| c.mirror_policy = MirrorPolicy::Static),
        ),
        ("nvram_threshold", Box::new(|c| c.nvram_threshold += 1)),
        (
            "coalesce_delayed",
            Box::new(|c| c.coalesce_delayed = !c.coalesce_delayed),
        ),
        (
            "slack",
            Box::new(|c| c.slack += SimDuration::from_micros(1)),
        ),
        (
            "replica_placement",
            Box::new(|c| c.replica_placement = ReplicaPlacement::Random),
        ),
        ("read_ahead", Box::new(|c| c.read_ahead = !c.read_ahead)),
        ("rpm", Box::new(|c| c.disk_params.rpm += 60)),
        (
            "track_skew",
            Box::new(|c| c.disk_params.track_skew_frac += 0.01),
        ),
        (
            "faults",
            Box::new(|c| {
                c.faults = mimd_core::FaultPlan::new()
                    .fail_stop(0, mimd_sim::SimTime::ZERO + SimDuration::from_millis(500))
            }),
        ),
        (
            "faults_retry",
            Box::new(|c| {
                c.faults = mimd_core::FaultPlan::new().retry(
                    SimDuration::from_millis(40),
                    3,
                    SimDuration::from_millis(320),
                )
            }),
        ),
    ];
    let mut digests = BTreeSet::new();
    assert!(digests.insert(fp::trace_job(&base, &trace)));
    for (name, mutate) in &mutations {
        let mut cfg = base.clone();
        mutate(&mut cfg);
        assert!(
            digests.insert(fp::trace_job(&cfg, &trace)),
            "flipping `{name}` did not change the fingerprint"
        );
    }
    // Workload flips miss too: different content, same config.
    let other = SyntheticSpec::cello_base().generate(12, 60);
    assert!(digests.insert(fp::trace_job(&base, &other)));
    let shorter = trace.truncated(59);
    assert!(digests.insert(fp::trace_job(&base, &shorter)));
}

#[test]
fn faulted_grids_replay_byte_identical_at_any_thread_count() {
    // Fault scenarios draw from a dedicated named RNG stream inside each
    // (single-threaded) simulator, so the harness thread count cannot
    // leak into results — and a warm cache replay returns the same bytes.
    let trace = Arc::new(SyntheticSpec::cello_base().generate(21, 120));
    let grid = GridSpec {
        name: "faulted".into(),
        shapes: vec![Shape::mirror(2), Shape::sr_array(2, 2).unwrap()],
        policies: vec![None, Some(Policy::Look)],
        workloads: vec![("w".into(), Workload::Trace(trace))],
        seeds: vec![3, 4],
    };
    let customize = |c: EngineConfig| {
        let faults = mimd_core::FaultPlan::new()
            .fail_stop(0, mimd_sim::SimTime::from_secs(2))
            .media_errors(0.02, 0.0)
            .retry(
                SimDuration::from_millis(50),
                3,
                SimDuration::from_millis(400),
            )
            .redirect_slow_reads();
        c.with_faults(faults)
    };
    let serial = grid
        .run_cached(1, &RunCache::disabled(), customize)
        .to_json()
        .to_json();
    for threads in [2, 8] {
        let parallel = grid
            .run_cached(threads, &RunCache::disabled(), customize)
            .to_json()
            .to_json();
        assert_eq!(parallel, serial, "threads = {threads}");
    }
    let dir = temp_cache_dir("faulted-threads");
    let cache = RunCache::at(&dir, 0xFA17);
    let cold = grid.run_cached(4, &cache, customize).to_json().to_json();
    let warm = grid.run_cached(4, &cache, customize).to_json().to_json();
    assert_eq!(cold, serial);
    assert_eq!(warm, serial, "warm faulted replay must be byte-identical");
    assert_eq!(cache.hits(), grid.cells().len() as u64);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn code_fingerprint_flip_misses_the_cache() {
    check_cases("cache::code_fp", 4, |case, rng| {
        let grid = random_grid(rng);
        let dir = temp_cache_dir(&format!("codefp-{case}"));
        let cells = grid.cells().len() as u64;

        let old_code = RunCache::at(&dir, 1000 + case);
        let baseline = grid.run_cached(1, &old_code, |c| c).to_json().to_json();
        assert_eq!(old_code.misses(), cells);

        // Same directory, different code fingerprint: every entry is
        // invisible, the grid re-runs cold, and the bytes still agree.
        let new_code = RunCache::at(&dir, 2000 + case);
        let rerun = grid.run_cached(1, &new_code, |c| c).to_json().to_json();
        assert_eq!(new_code.hits(), 0, "case {case}: stale code version hit");
        assert_eq!(new_code.misses(), cells, "case {case}");
        assert_eq!(rerun, baseline, "case {case}: determinism across versions");
        let _ = std::fs::remove_dir_all(&dir);
    });
}

#[test]
fn corrupted_and_truncated_entries_fall_back_to_cold_runs() {
    check_cases("cache::corruption", 4, |case, rng| {
        let grid = random_grid(rng);
        let dir = temp_cache_dir(&format!("corrupt-{case}"));
        let cache = RunCache::at(&dir, 0xBAD + case);
        let baseline = grid.run_cached(1, &cache, |c| c).to_json().to_json();
        let cells = grid.cells().len() as u64;

        // Mangle every stored entry: truncate odd files, flip a byte in
        // even ones (dir listing is sorted for determinism).
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
            .expect("cache dir exists")
            .map(|e| e.expect("entry").path())
            .filter(|p| p.extension().is_some_and(|x| x == "rpt"))
            .collect();
        entries.sort();
        assert!(!entries.is_empty(), "case {case}: no entries stored");
        for (i, path) in entries.iter().enumerate() {
            let mut bytes = std::fs::read(path).expect("readable");
            if i % 2 == 0 {
                let at = bytes.len() / 2;
                bytes[at] ^= 0x01;
            } else {
                let keep = rng.below(bytes.len() as u64) as usize;
                bytes.truncate(keep);
            }
            std::fs::write(path, &bytes).expect("rewrite");
        }

        let fresh = RunCache::at(&dir, 0xBAD + case);
        let recovered = grid.run_cached(1, &fresh, |c| c).to_json().to_json();
        assert_eq!(fresh.hits(), 0, "case {case}: corrupted entry served");
        assert_eq!(fresh.misses(), cells, "case {case}");
        assert_eq!(recovered, baseline, "case {case}: fallback bytes differ");

        // The cold fallback rewrote good entries: a third pass hits.
        let repaired = RunCache::at(&dir, 0xBAD + case);
        let warm = grid.run_cached(1, &repaired, |c| c).to_json().to_json();
        assert_eq!(repaired.hits(), cells, "case {case}: repair did not stick");
        assert_eq!(warm, baseline, "case {case}");
        let _ = std::fs::remove_dir_all(&dir);
    });
}

#[test]
fn seeded_cases_are_reproducible() {
    // The property harness derives per-case seeds deterministically, so
    // any failure above is replayable from its case number alone.
    assert_eq!(case_seed(3), case_seed(3));
    assert_ne!(case_seed(3), case_seed(4));
}
