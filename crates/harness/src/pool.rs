//! An ordered, work-stealing parallel map over scoped threads.
//!
//! The pool is the sanctioned place where experiment-level threads are
//! spawned (the `parallelism` simlint rule enforces this; the engine's
//! sharded conductor seam is the one waived exception below it): every
//! simulation below it stays deterministic, and the pool preserves that
//! determinism by collecting results back in job order — the output of
//! [`parallel_map`] is byte-for-byte identical to a serial
//! `jobs.iter().map(f)` regardless of thread count or OS scheduling.
//!
//! # The nested-parallelism budget rule
//!
//! A job that can itself go parallel (an `ArraySim` running sharded) must
//! size its internal worker count from [`shard_budget`], never from the
//! machine's core count or `MIMD_THREADS` directly. The budget divides
//! the machine's cores by the number of pool workers currently active, so
//! `jobs × shards` never oversubscribes the machine: 8 grid cells on an
//! 8-core box each get a budget of 1 (stay serial), while a single
//! engine-scaling job gets the whole machine.
//!
//! Panic isolation: each job runs under `catch_unwind`, so one panicking
//! grid cell cannot tear down a sweep that has hours of sibling work in
//! flight. Every other job still runs to completion; afterwards the map
//! panics once with the index and payload of each failed job.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// The worker count used by [`parallel_map`]: the `MIMD_THREADS`
/// environment variable when set to a positive integer, else the
/// machine's available parallelism (1 if unknown).
pub fn configured_threads() -> usize {
    if let Ok(v) = std::env::var("MIMD_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Worker threads currently claimed by in-flight [`parallel_map`] calls
/// (0 when none is running). Bookkeeping only — never used to order or
/// gate simulation work, so it cannot affect results.
static ACTIVE_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// The thread budget available to one pool job for *nested* parallelism
/// (e.g. `ArraySim::set_parallelism`): the machine's cores divided by the
/// pool workers currently active, never below 1.
///
/// Called outside any `parallel_map`, this is the machine's available
/// parallelism. Called from inside a job, it shrinks so that every
/// concurrently-running job can use its budget without the combined
/// thread count exceeding the machine. Deliberately based on available
/// cores, not `MIMD_THREADS`: the env var sizes the *pool*, while the
/// budget guards the *machine*.
pub fn shard_budget() -> usize {
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let active = ACTIVE_WORKERS.load(Ordering::Relaxed).max(1);
    (avail / active).max(1)
}

/// The panic payload of one failed job, rendered for the aggregate error.
fn describe_panic(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic payload".to_string())
    }
}

/// Aggregates per-job panics into one message and raises it, after every
/// surviving job has finished.
fn raise_job_panics(failures: Vec<(usize, String)>) {
    if failures.is_empty() {
        return;
    }
    let lines: Vec<String> = failures
        .iter()
        .map(|(i, msg)| format!("  job {i}: {msg}"))
        .collect();
    panic!(
        "{} of the mapped jobs panicked (all others completed):\n{}",
        failures.len(),
        lines.join("\n")
    );
}

/// Maps `f` over `jobs` on [`configured_threads`] workers, returning
/// results in job order.
///
/// # Examples
///
/// ```
/// let squares = mimd_harness::parallel_map(vec![1u64, 2, 3, 4], |x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn parallel_map<T, R, F>(jobs: Vec<T>, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_with(configured_threads(), jobs, f)
}

/// [`parallel_map`] with an explicit worker count.
///
/// Work distribution is a shared atomic cursor (idle workers steal the
/// next un-started run of jobs), so stragglers never serialize the tail.
/// Claims come in contiguous chunks — each `fetch_add` grabs a short run
/// instead of a single index — so when jobs are tiny (a grid of warm
/// cache hits decodes in microseconds) workers are not bottlenecked on
/// one contended cache line. The chunk size `(n / (threads * 8))`,
/// clamped to `[1, 64]`, keeps at least ~8 steal opportunities per worker
/// for load balance while amortizing the atomic for large grids. With
/// `threads <= 1` the map runs inline on the caller's thread; either way
/// the result vector is ordered by job index.
///
/// A panicking job does not abort the map: the remaining jobs run to
/// completion first, then the map panics with every failed job's index
/// and payload (so a 300-cell sweep reports "cell 217 panicked" instead
/// of losing the night's run to a poisoned thread).
pub fn parallel_map_with<T, R, F>(threads: usize, jobs: Vec<T>, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = jobs.len();
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 {
        let mut out = Vec::with_capacity(n);
        let mut failures = Vec::new();
        for (i, job) in jobs.iter().enumerate() {
            match catch_unwind(AssertUnwindSafe(|| f(job))) {
                Ok(r) => out.push(r),
                Err(payload) => failures.push((i, describe_panic(payload.as_ref()))),
            }
        }
        raise_job_panics(failures);
        return out;
    }
    let chunk = (n / (threads * 8)).clamp(1, 64);
    let cursor = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, R)> = Vec::with_capacity(n);
    let mut failures: Vec<(usize, String)> = Vec::new();
    ACTIVE_WORKERS.fetch_add(threads, Ordering::Relaxed);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    let mut broken: Vec<(usize, String)> = Vec::new();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let end = (start + chunk).min(n);
                        for (i, job) in jobs[start..end].iter().enumerate() {
                            match catch_unwind(AssertUnwindSafe(|| f(job))) {
                                Ok(r) => local.push((start + i, r)),
                                Err(payload) => {
                                    broken.push((start + i, describe_panic(payload.as_ref())));
                                }
                            }
                        }
                    }
                    (local, broken)
                })
            })
            .collect();
        for h in handles {
            let (local, broken) = h.join().expect("harness worker panicked");
            indexed.extend(local);
            failures.extend(broken);
        }
    });
    ACTIVE_WORKERS.fetch_sub(threads, Ordering::Relaxed);
    failures.sort_by_key(|(i, _)| *i);
    raise_job_panics(failures);
    indexed.sort_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_single_job_edge_cases() {
        let none: Vec<u32> = parallel_map_with(8, Vec::<u32>::new(), |x| *x);
        assert!(none.is_empty());
        assert_eq!(parallel_map_with(8, vec![7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn order_is_preserved_at_any_thread_count() {
        let jobs: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = jobs.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = parallel_map_with(threads, jobs.clone(), |x| x * 3 + 1);
            assert_eq!(got, serial, "threads = {threads}");
        }
    }

    #[test]
    fn uneven_job_costs_still_collect_in_order() {
        // Early jobs are the slowest; a naive chunking would reorder.
        let jobs: Vec<u64> = (0..64).collect();
        let got = parallel_map_with(4, jobs, |x| {
            let spin = (64 - x) * 1_000;
            let mut acc = 0u64;
            for i in 0..spin {
                acc = acc.wrapping_add(i ^ x);
            }
            (*x, acc).0
        });
        assert_eq!(got, (0..64).collect::<Vec<u64>>());
    }

    #[test]
    fn configured_threads_is_positive() {
        assert!(configured_threads() >= 1);
    }

    #[test]
    fn chunked_claims_cover_every_job_exactly_once() {
        // Sizes around the chunk clamp edges: chunk = 1 (tiny), interior
        // runs with a ragged tail, and the 64-cap (10_000 / 16 > 64).
        for n in [2usize, 63, 64, 65, 1000, 10_000] {
            let jobs: Vec<u64> = (0..n as u64).collect();
            let got = parallel_map_with(2, jobs, |x| x * 2);
            assert_eq!(got.len(), n, "n = {n}");
            assert!(
                got.iter().enumerate().all(|(i, &r)| r == 2 * i as u64),
                "n = {n}"
            );
        }
    }

    #[test]
    fn shard_budget_divides_cores_among_active_workers() {
        let avail = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(shard_budget(), avail, "idle budget is the whole machine");
        // Inside a 2-worker map every job sees a budget that two
        // concurrent jobs can spend without oversubscribing; results still
        // arrive exactly once, in order.
        let jobs: Vec<u64> = (0..64).collect();
        let got = parallel_map_with(2, jobs, |&x| (x * 2, shard_budget()));
        for (i, &(r, b)) in got.iter().enumerate() {
            assert_eq!(r, 2 * i as u64, "claims cover every job exactly once");
            assert!(
                b >= 1 && b <= (avail / 2).max(1),
                "budget {b} with 2 workers on {avail} cores"
            );
        }
        assert_eq!(shard_budget(), avail, "budget restored after the map");
    }

    #[test]
    fn one_panicking_job_reports_its_index_and_spares_the_rest() {
        use std::sync::atomic::AtomicUsize;
        for threads in [1, 4] {
            let ran = AtomicUsize::new(0);
            let jobs: Vec<u64> = (0..100).collect();
            let err = catch_unwind(AssertUnwindSafe(|| {
                parallel_map_with(threads, jobs, |&x| {
                    if x == 37 {
                        panic!("cell exploded on purpose");
                    }
                    ran.fetch_add(1, Ordering::Relaxed);
                    x
                })
            }))
            .expect_err("the map must re-raise the job panic");
            let msg = describe_panic(err.as_ref());
            assert!(msg.contains("job 37"), "threads = {threads}: {msg}");
            assert!(
                msg.contains("cell exploded on purpose"),
                "threads = {threads}: {msg}"
            );
            assert_eq!(
                ran.load(Ordering::Relaxed),
                99,
                "threads = {threads}: every other job still ran"
            );
        }
    }

    #[test]
    fn multiple_panics_aggregate_in_job_order() {
        let jobs: Vec<u64> = (0..64).collect();
        let err = catch_unwind(AssertUnwindSafe(|| {
            parallel_map_with(4, jobs, |&x| {
                if x % 20 == 3 {
                    panic!("bad job {x}");
                }
                x
            })
        }))
        .expect_err("panics must propagate");
        let msg = describe_panic(err.as_ref());
        let positions: Vec<usize> = [3usize, 23, 43, 63]
            .iter()
            .map(|i| msg.find(&format!("job {i}:")).expect("listed"))
            .collect();
        assert!(positions.windows(2).all(|w| w[0] < w[1]), "{msg}");
    }
}
