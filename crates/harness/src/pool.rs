//! An ordered, work-stealing parallel map over scoped threads.
//!
//! The pool is the **only** place in the workspace where threads are
//! spawned (the `parallelism` simlint rule enforces this): every
//! simulation below it stays single-threaded and deterministic, and the
//! pool preserves that determinism by collecting results back in job
//! order — the output of [`parallel_map`] is byte-for-byte identical to a
//! serial `jobs.iter().map(f)` regardless of thread count or OS
//! scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};

/// The worker count used by [`parallel_map`]: the `MIMD_THREADS`
/// environment variable when set to a positive integer, else the
/// machine's available parallelism (1 if unknown).
pub fn configured_threads() -> usize {
    if let Ok(v) = std::env::var("MIMD_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `jobs` on [`configured_threads`] workers, returning
/// results in job order.
///
/// # Examples
///
/// ```
/// let squares = mimd_harness::parallel_map(vec![1u64, 2, 3, 4], |x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn parallel_map<T, R, F>(jobs: Vec<T>, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_with(configured_threads(), jobs, f)
}

/// [`parallel_map`] with an explicit worker count.
///
/// Work distribution is a shared atomic cursor (idle workers steal the
/// next un-started run of jobs), so stragglers never serialize the tail.
/// Claims come in contiguous chunks — each `fetch_add` grabs a short run
/// instead of a single index — so when jobs are tiny (a grid of warm
/// cache hits decodes in microseconds) workers are not bottlenecked on
/// one contended cache line. The chunk size `(n / (threads * 8))`,
/// clamped to `[1, 64]`, keeps at least ~8 steal opportunities per worker
/// for load balance while amortizing the atomic for large grids. With
/// `threads <= 1` the map runs inline on the caller's thread; either way
/// the result vector is ordered by job index.
pub fn parallel_map_with<T, R, F>(threads: usize, jobs: Vec<T>, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = jobs.len();
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 {
        return jobs.iter().map(f).collect();
    }
    let chunk = (n / (threads * 8)).clamp(1, 64);
    let cursor = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, R)> = Vec::with_capacity(n);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let end = (start + chunk).min(n);
                        for (i, job) in jobs[start..end].iter().enumerate() {
                            local.push((start + i, f(job)));
                        }
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            indexed.extend(h.join().expect("harness worker panicked"));
        }
    });
    indexed.sort_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_single_job_edge_cases() {
        let none: Vec<u32> = parallel_map_with(8, Vec::<u32>::new(), |x| *x);
        assert!(none.is_empty());
        assert_eq!(parallel_map_with(8, vec![7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn order_is_preserved_at_any_thread_count() {
        let jobs: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = jobs.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = parallel_map_with(threads, jobs.clone(), |x| x * 3 + 1);
            assert_eq!(got, serial, "threads = {threads}");
        }
    }

    #[test]
    fn uneven_job_costs_still_collect_in_order() {
        // Early jobs are the slowest; a naive chunking would reorder.
        let jobs: Vec<u64> = (0..64).collect();
        let got = parallel_map_with(4, jobs, |x| {
            let spin = (64 - x) * 1_000;
            let mut acc = 0u64;
            for i in 0..spin {
                acc = acc.wrapping_add(i ^ x);
            }
            (*x, acc).0
        });
        assert_eq!(got, (0..64).collect::<Vec<u64>>());
    }

    #[test]
    fn configured_threads_is_positive() {
        assert!(configured_threads() >= 1);
    }

    #[test]
    fn chunked_claims_cover_every_job_exactly_once() {
        // Sizes around the chunk clamp edges: chunk = 1 (tiny), interior
        // runs with a ragged tail, and the 64-cap (10_000 / 16 > 64).
        for n in [2usize, 63, 64, 65, 1000, 10_000] {
            let jobs: Vec<u64> = (0..n as u64).collect();
            let got = parallel_map_with(2, jobs, |x| x * 2);
            assert_eq!(got.len(), n, "n = {n}");
            assert!(
                got.iter().enumerate().all(|(i, &r)| r == 2 * i as u64),
                "n = {n}"
            );
        }
    }
}
