//! A minimal hand-rolled JSON value and serializer.
//!
//! The workspace builds offline with no external crates, so experiment
//! output is serialized by this module instead of serde. Serialization is
//! deterministic: object fields keep insertion order, floats print in
//! Rust's shortest round-trip form, and non-finite floats become `null`.
//! Determinism matters more than generality here — the harness's
//! byte-identical parallel-vs-serial guarantee is checked on these bytes.

use std::fmt::Write as _;

/// A JSON value with insertion-ordered objects.
///
/// # Examples
///
/// ```
/// use mimd_harness::Json;
///
/// let j = Json::object([
///     ("name", Json::from("fig09")),
///     ("cells", Json::array(vec![Json::from(1.5), Json::from(2u64)])),
/// ]);
/// assert_eq!(j.to_json(), r#"{"name":"fig09","cells":[1.5,2]}"#);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A finite float (non-finite values serialize as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; fields serialize in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn object<K: Into<String>>(fields: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array.
    pub fn array(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }

    /// Appends a field to an object.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn push_field(&mut self, key: impl Into<String>, value: Json) {
        match self {
            Json::Obj(fields) => fields.push((key.into(), value)),
            _ => panic!("push_field on a non-object Json"),
        }
    }

    /// Serializes to a compact JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    // Rust's float Display is the shortest round-trip form,
                    // which is stable across runs and platforms.
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}
impl From<u64> for Json {
    fn from(u: u64) -> Json {
        Json::UInt(u)
    }
}
impl From<u32> for Json {
    fn from(u: u32) -> Json {
        Json::UInt(u as u64)
    }
}
impl From<usize> for Json {
    fn from(u: usize) -> Json {
        Json::UInt(u as u64)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialize() {
        assert_eq!(Json::Null.to_json(), "null");
        assert_eq!(Json::from(true).to_json(), "true");
        assert_eq!(Json::Int(-3).to_json(), "-3");
        assert_eq!(Json::from(42u64).to_json(), "42");
        assert_eq!(Json::from(1.5).to_json(), "1.5");
        assert_eq!(Json::from(0.1).to_json(), "0.1");
        assert_eq!(Json::Num(f64::NAN).to_json(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn strings_escape_specials() {
        assert_eq!(
            Json::from("a\"b\\c\nd\u{1}").to_json(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn nested_structures_keep_order() {
        let j = Json::object([
            ("z", Json::from(1u64)),
            ("a", Json::array(vec![Json::Null, Json::from("x")])),
        ]);
        assert_eq!(j.to_json(), r#"{"z":1,"a":[null,"x"]}"#);
    }

    #[test]
    fn float_formatting_is_shortest_round_trip() {
        assert_eq!(Json::from(6.0).to_json(), "6");
        assert_eq!(
            Json::from(0.30000000000000004).to_json(),
            "0.30000000000000004"
        );
    }

    #[test]
    #[should_panic(expected = "non-object")]
    fn push_field_rejects_non_objects() {
        Json::Arr(vec![]).push_field("x", Json::Null);
    }
}
