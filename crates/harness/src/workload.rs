//! The process-wide shared-workload registry.
//!
//! Grid binaries used to regenerate the same synthetic trace once per
//! grid (or worse, once per cell). The registry generates each
//! `(spec, seed, n)` stream **once per process**, wraps it in an `Arc`,
//! and hands the same immutable storage to every caller — so a 19-binary
//! experiment sweep does each generation exactly once and replays share
//! memory instead of cloning requests.
//!
//! Keys are structural fingerprints of the generator parameters (see
//! [`crate::fp::write_synth_spec`]), so two call sites asking for "Cello
//! base, seed 101, 20 000 requests" — even with separately constructed
//! spec values — get the same `Arc`.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use mimd_workload::{SyntheticSpec, Trace, WorkloadArena};

use crate::fp::{write_synth_spec, Fp};

fn spec_key(spec: &SyntheticSpec, seed: u64, n: usize) -> u64 {
    let mut fp = Fp::new();
    write_synth_spec(&mut fp, spec, seed, n);
    fp.finish()
}

fn trace_registry() -> &'static Mutex<BTreeMap<u64, Arc<Trace>>> {
    static REG: OnceLock<Mutex<BTreeMap<u64, Arc<Trace>>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn arena_registry() -> &'static Mutex<BTreeMap<u64, Arc<WorkloadArena>>> {
    static REG: OnceLock<Mutex<BTreeMap<u64, Arc<WorkloadArena>>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// The shared trace for `(spec, seed, n)`, generated at most once per
/// process.
pub fn shared_trace(spec: &SyntheticSpec, seed: u64, n: usize) -> Arc<Trace> {
    let key = spec_key(spec, seed, n);
    if let Some(t) = trace_registry().lock().unwrap().get(&key) {
        return Arc::clone(t);
    }
    // Generate outside the lock: generation is the expensive part, and
    // holding the lock across it would serialize unrelated lookups. A
    // racing duplicate generation is deterministic, so first-in wins and
    // both callers observe identical content.
    let trace = Arc::new(spec.generate(seed, n));
    Arc::clone(trace_registry().lock().unwrap().entry(key).or_insert(trace))
}

/// The shared struct-of-arrays arena for `(spec, seed, n)`, built at most
/// once per process from the shared trace.
pub fn shared_arena(spec: &SyntheticSpec, seed: u64, n: usize) -> Arc<WorkloadArena> {
    let key = spec_key(spec, seed, n);
    if let Some(a) = arena_registry().lock().unwrap().get(&key) {
        return Arc::clone(a);
    }
    let arena = Arc::new(WorkloadArena::from_trace(&shared_trace(spec, seed, n)));
    Arc::clone(arena_registry().lock().unwrap().entry(key).or_insert(arena))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimd_workload::RequestSource;

    #[test]
    fn shared_trace_returns_same_arc() {
        let spec = SyntheticSpec::cello_base();
        let a = shared_trace(&spec, 12345, 64);
        let b = shared_trace(&spec, 12345, 64);
        assert!(Arc::ptr_eq(&a, &b), "same key must share storage");
        // Separately constructed but equal specs also share.
        let c = shared_trace(&SyntheticSpec::cello_base(), 12345, 64);
        assert!(Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn different_parameters_are_distinct() {
        let spec = SyntheticSpec::tpcc();
        let a = shared_trace(&spec, 1, 32);
        let b = shared_trace(&spec, 2, 32);
        let c = shared_trace(&spec, 1, 33);
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(a.len(), 32);
        assert_eq!(c.len(), 33);
    }

    #[test]
    fn shared_arena_matches_shared_trace() {
        let spec = SyntheticSpec::cello_disk6();
        let trace = shared_trace(&spec, 777, 40);
        let arena = shared_arena(&spec, 777, 40);
        let again = shared_arena(&spec, 777, 40);
        assert!(Arc::ptr_eq(&arena, &again));
        assert_eq!(arena.len(), trace.len());
        for i in 0..trace.len() {
            assert_eq!(arena.get(i), trace.get(i), "request {i}");
        }
    }
}
