//! Structural fingerprints for the content-addressed run cache.
//!
//! A run is identified by what actually determines its output: the fully
//! resolved [`EngineConfig`] (every field, enums by stable tag, floats by
//! raw bits), the workload *content* (every request of a trace, or the
//! closed-loop generator's parameters), and the workspace code-version
//! fingerprint baked in at build time (see `build.rs`). Two runs with the
//! same fingerprint are byte-identical by construction; any edit to a
//! config field, a workload, a seed, or any source file in the workspace
//! changes the fingerprint and misses the cache.
//!
//! The hash is 64-bit FNV-1a — not cryptographic, but the cache is a
//! private performance artifact, not a trust boundary, and 2^-64
//! accidental-collision odds across a few thousand grid cells is far
//! below the noise floor of everything else.

use mimd_core::{EngineConfig, MirrorPolicy, Policy, RaidLevel, ReplicaPlacement, WriteMode};
use mimd_disk::{PositionKnowledge, TimingPath};
use mimd_workload::{Access, IometerSpec, Op, RequestSource, SyntheticSpec, Trace};

/// An incremental FNV-1a 64-bit hasher.
#[derive(Debug, Clone)]
pub struct Fp(u64);

impl Default for Fp {
    fn default() -> Self {
        Fp::new()
    }
}

impl Fp {
    /// The FNV-1a offset basis.
    pub fn new() -> Fp {
        Fp(0xcbf29ce484222325)
    }

    /// Absorbs raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }

    /// Absorbs a `u64` (little-endian).
    pub fn write_u64(&mut self, x: u64) {
        self.write_bytes(&x.to_le_bytes());
    }

    /// Absorbs an `f64` by raw bits, so `-0.0` ≠ `0.0` and every value
    /// hashes exactly.
    pub fn write_f64(&mut self, x: f64) {
        self.write_u64(x.to_bits());
    }

    /// Absorbs a length-prefixed string.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

fn op_tag(op: Op) -> u64 {
    match op {
        Op::Read => 0,
        Op::SyncWrite => 1,
        Op::AsyncWrite => 2,
    }
}

/// Absorbs every field of a resolved engine configuration.
pub fn write_config(fp: &mut Fp, cfg: &EngineConfig) {
    fp.write_str("EngineConfig");
    fp.write_u64(cfg.shape.ds as u64);
    fp.write_u64(cfg.shape.dr as u64);
    fp.write_u64(cfg.shape.dm as u64);
    fp.write_u64(match cfg.policy {
        Policy::Fcfs => 0,
        Policy::Look => 1,
        Policy::Satf => 2,
        Policy::Rlook => 3,
        Policy::Rsatf => 4,
    });
    fp.write_u64(match cfg.write_mode {
        WriteMode::Foreground => 0,
        WriteMode::Background => 1,
    });
    let p = &cfg.disk_params;
    fp.write_str(p.model);
    fp.write_u64(p.rpm as u64);
    fp.write_u64(p.surfaces as u64);
    fp.write_u64(p.sector_bytes as u64);
    fp.write_u64(p.zones.len() as u64);
    for z in &p.zones {
        fp.write_u64(z.cylinders as u64);
        fp.write_u64(z.sectors_per_track as u64);
    }
    fp.write_f64(p.track_skew_frac);
    fp.write_u64(p.min_seek.as_nanos());
    fp.write_u64(p.avg_seek.as_nanos());
    fp.write_u64(p.max_seek.as_nanos());
    fp.write_u64(p.write_settle.as_nanos());
    fp.write_u64(p.head_switch.as_nanos());
    fp.write_u64(p.overhead.as_nanos());
    fp.write_u64(match cfg.timing {
        TimingPath::Detailed => 0,
        TimingPath::Analytic => 1,
    });
    match cfg.knowledge {
        PositionKnowledge::Perfect => fp.write_u64(0),
        PositionKnowledge::Tracked {
            mean_error_us,
            std_error_us,
        } => {
            fp.write_u64(1);
            fp.write_f64(mean_error_us);
            fp.write_f64(std_error_us);
        }
    }
    fp.write_u64(cfg.stripe_unit as u64);
    fp.write_u64(cfg.mirror_stagger as u64);
    fp.write_u64(cfg.sync_spindles as u64);
    fp.write_u64(match cfg.mirror_policy {
        MirrorPolicy::IdleOrDuplicate => 0,
        MirrorPolicy::Static => 1,
    });
    fp.write_u64(cfg.nvram_threshold as u64);
    fp.write_u64(cfg.coalesce_delayed as u64);
    match &cfg.cache {
        None => fp.write_u64(0),
        Some(c) => {
            fp.write_u64(1);
            fp.write_u64(c.bytes);
            fp.write_u64(c.hit_time.as_nanos());
        }
    }
    fp.write_u64(cfg.slack.as_nanos());
    fp.write_u64(match cfg.replica_placement {
        ReplicaPlacement::Even => 0,
        ReplicaPlacement::Random => 1,
        ReplicaPlacement::IntraTrack => 2,
    });
    fp.write_u64(cfg.read_ahead as u64);
    fp.write_u64(cfg.seed);
    // The fault plan is part of the run's identity: fault-bearing runs
    // must never alias fault-free cache entries.
    let f = &cfg.faults;
    fp.write_str("FaultPlan");
    fp.write_u64(f.fail_stop.len() as u64);
    for s in &f.fail_stop {
        fp.write_u64(s.disk as u64);
        fp.write_u64(s.at.as_nanos());
        fp.write_u64(s.spare as u64);
    }
    fp.write_u64(f.fail_slow.len() as u64);
    for w in &f.fail_slow {
        fp.write_u64(w.disk as u64);
        fp.write_u64(w.from.as_nanos());
        fp.write_u64(w.until.as_nanos());
        fp.write_f64(w.factor);
    }
    fp.write_f64(f.media.read_rate);
    fp.write_f64(f.media.write_rate);
    fp.write_u64(f.retry.timeout.as_nanos());
    fp.write_u64(f.retry.max_retries as u64);
    fp.write_u64(f.retry.backoff_cap.as_nanos());
    fp.write_u64(f.redirect as u64);
    fp.write_u64(f.rebuild.spare_delay.as_nanos());
    fp.write_u64(f.rebuild.chunk_sectors as u64);
    // The parity organization likewise changes what a run means; `None`
    // keeps the stream identical to pre-parity builds.
    match cfg.parity {
        None => fp.write_u64(0),
        Some(p) => {
            fp.write_u64(1);
            fp.write_u64(match p.level {
                RaidLevel::Raid4 => 4,
                RaidLevel::Raid5 => 5,
            });
            fp.write_u64(p.group as u64);
        }
    }
}

/// Absorbs a request stream by content: name, data-set size, and every
/// request's arrival/op/lbn/size. Works for traces and arenas alike.
pub fn write_source<S: RequestSource + ?Sized>(fp: &mut Fp, src: &S) {
    fp.write_str("RequestSource");
    fp.write_str(src.source_name());
    fp.write_u64(src.data_sectors());
    fp.write_u64(src.len() as u64);
    for i in 0..src.len() {
        let r = src.get(i);
        fp.write_u64(r.arrival.as_nanos());
        fp.write_u64(op_tag(r.op));
        fp.write_u64(r.lbn);
        fp.write_u64(r.sectors as u64);
    }
}

/// Absorbs a closed-loop generator spec plus its loop parameters.
pub fn write_closed(fp: &mut Fp, spec: &IometerSpec, outstanding: usize, completions: u64) {
    fp.write_str("Closed");
    fp.write_f64(spec.read_frac);
    fp.write_u64(spec.sectors as u64);
    fp.write_u64(spec.data_sectors);
    fp.write_f64(spec.seek_locality);
    fp.write_u64(match spec.access {
        Access::Random => 0,
        Access::Sequential => 1,
    });
    fp.write_u64(outstanding as u64);
    fp.write_u64(completions);
}

/// Absorbs a synthetic-workload spec plus its generation parameters —
/// the key for the process-wide shared-workload registry.
pub fn write_synth_spec(fp: &mut Fp, spec: &SyntheticSpec, seed: u64, n: usize) {
    fp.write_str("SyntheticSpec");
    fp.write_str(spec.name);
    fp.write_u64(spec.data_sectors);
    fp.write_f64(spec.rate_per_sec);
    fp.write_f64(spec.read_frac);
    fp.write_f64(spec.async_write_frac);
    fp.write_f64(spec.seek_locality);
    fp.write_f64(spec.read_after_write);
    match spec.sync_daemon_interval {
        None => fp.write_u64(0),
        Some(d) => {
            fp.write_u64(1);
            fp.write_u64(d.as_nanos());
        }
    }
    fp.write_u64(spec.size_dist.len() as u64);
    for &(sectors, weight) in &spec.size_dist {
        fp.write_u64(sectors as u64);
        fp.write_f64(weight);
    }
    fp.write_f64(spec.local_step_sectors);
    fp.write_f64(spec.reuse_frac);
    fp.write_u64(spec.hot_blocks as u64);
    fp.write_f64(spec.reuse_theta);
    fp.write_u64(seed);
    fp.write_u64(n as u64);
}

/// Fingerprint of an open-loop job: resolved config + stream content.
pub fn trace_job(cfg: &EngineConfig, trace: &Trace) -> u64 {
    let mut fp = Fp::new();
    write_config(&mut fp, cfg);
    write_source(&mut fp, trace);
    fp.finish()
}

/// Fingerprint of a closed-loop job: resolved config + generator + loop.
pub fn closed_job(
    cfg: &EngineConfig,
    spec: &IometerSpec,
    outstanding: usize,
    completions: u64,
) -> u64 {
    let mut fp = Fp::new();
    write_config(&mut fp, cfg);
    write_closed(&mut fp, spec, outstanding, completions);
    fp.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimd_core::Shape;

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a test vectors.
        let mut fp = Fp::new();
        fp.write_bytes(b"");
        assert_eq!(fp.finish(), 0xcbf29ce484222325);
        let mut fp = Fp::new();
        fp.write_bytes(b"a");
        assert_eq!(fp.finish(), 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn config_fingerprint_is_field_sensitive() {
        let base = EngineConfig::new(Shape::sr_array(2, 3).unwrap());
        let digest = |cfg: &EngineConfig| {
            let mut fp = Fp::new();
            write_config(&mut fp, cfg);
            fp.finish()
        };
        let d0 = digest(&base);
        assert_eq!(d0, digest(&base.clone()), "same config, same digest");

        let mut seed = base.clone();
        seed.seed += 1;
        assert_ne!(d0, digest(&seed));
        let mut pol = base.clone();
        pol.policy = Policy::Fcfs;
        assert_ne!(d0, digest(&pol));
        let mut slack = base.clone();
        slack.slack = mimd_sim::SimDuration::from_micros(111);
        assert_ne!(d0, digest(&slack));
    }

    #[test]
    fn trace_fingerprint_sees_content() {
        use mimd_workload::SyntheticSpec;
        let cfg = EngineConfig::new(Shape::striping(2));
        let a = SyntheticSpec::cello_base().generate(1, 50);
        let b = SyntheticSpec::cello_base().generate(2, 50);
        assert_ne!(trace_job(&cfg, &a), trace_job(&cfg, &b));
        assert_eq!(trace_job(&cfg, &a), trace_job(&cfg, &a.clone()));
    }
}
