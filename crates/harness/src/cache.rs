//! The content-addressed run cache.
//!
//! Every grid job is identified by a structural fingerprint (see [`crate::fp`])
//! of its resolved config, its workload content, its seed, and the
//! workspace *code-version fingerprint* baked in at build time. Completed
//! jobs persist their [`RunReport`] under `MIMD_CACHE_DIR` (default
//! `target/run-cache/`); a re-run with an unchanged fingerprint decodes
//! the stored bytes instead of simulating — byte-identical by
//! construction, because the codec stores every float by raw bits and the
//! restored report answers every query (means, percentiles, demerits)
//! exactly as the original did.
//!
//! Safety properties:
//!
//! - **No stale hits.** The code fingerprint hashes every `.rs` file in
//!   the workspace, so any source edit anywhere invalidates every entry.
//! - **No torn reads.** Entries are written to a temp file and atomically
//!   renamed into place, and carry an FNV-1a checksum; a corrupted or
//!   truncated entry fails decode and falls back to a cold run (which
//!   rewrites it).
//! - **Opt-out.** `MIMD_NO_CACHE=1` disables the cache entirely; every
//!   run is cold and nothing is read or written.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Mutex};

use mimd_core::RunReport;
use mimd_sim::{OnlineStats, SampleSet, SimDuration};

use crate::fp::Fp;

/// The workspace code-version fingerprint baked in at build time.
pub fn code_fingerprint() -> u64 {
    u64::from_str_radix(env!("MIMD_CODE_FINGERPRINT"), 16).unwrap_or(0)
}

/// The run-cache directory: `MIMD_CACHE_DIR` if set, else
/// `target/run-cache` relative to the current directory.
pub fn cache_dir() -> PathBuf {
    match std::env::var_os("MIMD_CACHE_DIR") {
        Some(d) if !d.is_empty() => PathBuf::from(d),
        _ => PathBuf::from("target").join("run-cache"),
    }
}

/// Whether `MIMD_NO_CACHE=1` forces cold runs.
pub fn cache_disabled_by_env() -> bool {
    std::env::var_os("MIMD_NO_CACHE").is_some_and(|v| v == "1")
}

/// A content-addressed store of completed run reports.
pub struct RunCache {
    dir: Option<PathBuf>,
    code_fp: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    writer: Mutex<Option<Writer>>,
}

/// The background entry writer: persisting an entry means pushing tens
/// of megabytes of sample data through the filesystem, and doing that
/// inline would serialize disk time into the simulation wall-clock (on a
/// single-core host the store path *is* the cold-run overhead). Workers
/// encode in place and hand the bytes to this thread; [`RunCache::flush`]
/// joins it, so once a grid's summary prints every entry is durable.
struct Writer {
    tx: mpsc::Sender<(PathBuf, Vec<u8>)>,
    handle: std::thread::JoinHandle<()>,
}

impl RunCache {
    /// The environment-configured cache: rooted at [`cache_dir`], keyed by
    /// the build's [`code_fingerprint`], disabled by `MIMD_NO_CACHE=1`.
    pub fn from_env() -> RunCache {
        if cache_disabled_by_env() {
            return RunCache::disabled();
        }
        RunCache::at(cache_dir(), code_fingerprint())
    }

    /// A cache rooted at an explicit directory with an explicit code
    /// fingerprint (tests inject fingerprints to prove miss behavior).
    pub fn at(dir: impl Into<PathBuf>, code_fp: u64) -> RunCache {
        RunCache {
            dir: Some(dir.into()),
            code_fp,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writer: Mutex::new(None),
        }
    }

    /// A cache that never hits and never stores.
    pub fn disabled() -> RunCache {
        RunCache {
            dir: None,
            code_fp: 0,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writer: Mutex::new(None),
        }
    }

    /// Whether lookups and stores are active.
    pub fn enabled(&self) -> bool {
        self.dir.is_some()
    }

    /// Cache hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (cold runs) observed so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// The entry path for a job fingerprint (combined with the code
    /// fingerprint), when the cache is enabled.
    pub fn entry_path(&self, job_fp: u64) -> Option<PathBuf> {
        let dir = self.dir.as_ref()?;
        Some(dir.join(format!("{:016x}.rpt", self.entry_fp(job_fp))))
    }

    /// The full content address: code fingerprint mixed into the job's.
    fn entry_fp(&self, job_fp: u64) -> u64 {
        let mut fp = Fp::new();
        fp.write_u64(self.code_fp);
        fp.write_u64(job_fp);
        fp.finish()
    }

    /// Returns the cached report for `job_fp`, or runs `cold`, stores its
    /// result, and returns it. Decode failures (missing, corrupted, or
    /// truncated entries) fall back to the cold run.
    pub fn get_or_run(&self, job_fp: u64, cold: impl FnOnce() -> RunReport) -> RunReport {
        let Some(path) = self.entry_path(job_fp) else {
            return cold();
        };
        let fp = self.entry_fp(job_fp);
        if let Ok(bytes) = std::fs::read(&path) {
            if let Some(report) = decode_entry(&bytes, fp) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return report;
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let report = cold();
        self.store(&path, fp, &report);
        report
    }

    /// Queues one entry for persistence; failures are silent (the cache
    /// is best-effort). Encoding happens on the caller's thread (it is
    /// pure CPU); the filesystem work happens on the writer thread.
    fn store(&self, path: &std::path::Path, fp: u64, report: &RunReport) {
        let bytes = encode_entry(fp, report);
        let mut slot = self.writer.lock().expect("cache writer lock");
        let writer = slot.get_or_insert_with(|| {
            let (tx, rx) = mpsc::channel::<(PathBuf, Vec<u8>)>();
            let handle = std::thread::spawn(move || {
                for (path, bytes) in rx {
                    write_entry(&path, &bytes);
                }
            });
            Writer { tx, handle }
        });
        let _ = writer.tx.send((path.to_path_buf(), bytes));
    }

    /// Blocks until every queued entry is on disk. Called by
    /// [`report_summary`](Self::report_summary) and on drop; call it
    /// directly before handing the cache directory to another process.
    pub fn flush(&self) {
        let taken = self.writer.lock().expect("cache writer lock").take();
        if let Some(Writer { tx, handle }) = taken {
            drop(tx);
            let _ = handle.join();
        }
    }

    /// Prints the per-binary hit/miss summary when anything was looked
    /// up, after flushing queued writes (so every counted entry is real).
    pub fn report_summary(&self, label: &str) {
        self.flush();
        if !self.enabled() {
            return;
        }
        let (h, m) = (self.hits(), self.misses());
        if h + m == 0 {
            return;
        }
        let dir = self.dir.as_deref().map(|d| d.display().to_string());
        println!(
            "[cache] {label}: {h} hit{}, {m} miss{} ({})",
            if h == 1 { "" } else { "s" },
            if m == 1 { "" } else { "es" },
            dir.unwrap_or_default()
        );
    }
}

impl Drop for RunCache {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Writes one encoded entry: temp file + atomic rename, so concurrent
/// writers of the same entry both succeed and readers never see a torn
/// file. The temp name carries the pid and a process-wide sequence number
/// so two in-process caches can never interleave into one temp file.
fn write_entry(path: &Path, bytes: &[u8]) {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let Some(dir) = path.parent() else { return };
    // simlint: allow(cache-hygiene) — this IS the MIMD_CACHE_DIR root.
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let tmp = path.with_extension(format!(
        "tmp.{}.{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    // simlint: allow(cache-hygiene) — temp file under MIMD_CACHE_DIR.
    if std::fs::write(&tmp, bytes).is_ok() {
        // simlint: allow(cache-hygiene) — rename within MIMD_CACHE_DIR.
        let _ = std::fs::rename(&tmp, path);
    }
}

const MAGIC: &[u8; 8] = b"MIMDRPT1";

/// Entry checksum: FNV-1a folding 8 bytes per multiply instead of 1.
///
/// Entries are tens of megabytes (raw sample vectors), and the digest
/// runs on both the store and hit paths; the word-at-a-time variant cuts
/// the dependent-multiply chain 8x. It is not standard FNV-1a — it only
/// has to agree with itself, and the format magic pins the definition.
fn fnv_digest(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut words = bytes.chunks_exact(8);
    for w in &mut words {
        let w = u64::from_le_bytes(w.try_into().expect("8-byte chunk"));
        h = (h ^ w).wrapping_mul(PRIME);
    }
    for &b in words.remainder() {
        h = (h ^ u64::from(b)).wrapping_mul(PRIME);
    }
    h
}

/// Serializes a report into a checksummed entry blob.
///
/// Layout: magic, entry fingerprint (echoed so a mis-addressed file can
/// never satisfy a lookup), payload length, payload, FNV-1a(payload).
pub fn encode_entry(fp: u64, report: &RunReport) -> Vec<u8> {
    // The payload is encoded straight into the output buffer (no second
    // copy); the length slot is back-patched once the size is known. The
    // capacity hint covers the dominant term — the raw sample vectors.
    let hint = 32 + 30 * 8 + 8 * report.response_samples_ms.values().len();
    let mut out = Vec::with_capacity(hint);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&fp.to_le_bytes());
    out.extend_from_slice(&0u64.to_le_bytes());
    let payload_at = out.len();
    encode_report(report, &mut out);
    let payload_len = out.len() - payload_at;
    out[payload_at - 8..payload_at].copy_from_slice(&(payload_len as u64).to_le_bytes());
    let digest = fnv_digest(&out[payload_at..]);
    out.extend_from_slice(&digest.to_le_bytes());
    out
}

/// Decodes an entry blob, checking magic, fingerprint echo, length, and
/// checksum. Any mismatch returns `None` (→ cold-run fallback).
pub fn decode_entry(bytes: &[u8], fp: u64) -> Option<RunReport> {
    let rest = bytes.strip_prefix(MAGIC)?;
    let (fp_echo, rest) = take_u64(rest)?;
    if fp_echo != fp {
        return None;
    }
    let (len, rest) = take_u64(rest)?;
    let len = usize::try_from(len).ok()?;
    if rest.len() != len + 8 {
        return None;
    }
    let (payload, sum) = rest.split_at(len);
    let (checksum, _) = take_u64(sum)?;
    if checksum != fnv_digest(payload) {
        return None;
    }
    let mut r = Reader(payload);
    let report = decode_report(&mut r)?;
    // Trailing garbage means a format mismatch; refuse the entry.
    if !r.0.is_empty() {
        return None;
    }
    Some(report)
}

fn take_u64(bytes: &[u8]) -> Option<(u64, &[u8])> {
    let (head, rest) = bytes.split_at_checked(8)?;
    Some((u64::from_le_bytes(head.try_into().ok()?), rest))
}

struct Reader<'a>(&'a [u8]);

impl Reader<'_> {
    fn u64(&mut self) -> Option<u64> {
        let (x, rest) = take_u64(self.0)?;
        self.0 = rest;
        Some(x)
    }
    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }
    fn byte(&mut self) -> Option<u8> {
        let (&b, rest) = self.0.split_first()?;
        self.0 = rest;
        Some(b)
    }
    /// LEB128-decodes one varint; overlong or truncated input is a
    /// format error (→ cold-run fallback).
    fn varint(&mut self) -> Option<u64> {
        let mut x = 0u64;
        for shift in (0..64).step_by(7) {
            let b = self.byte()?;
            x |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Some(x);
            }
        }
        None
    }
}

fn put_u64(out: &mut Vec<u8>, x: u64) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, x: f64) {
    put_u64(out, x.to_bits());
}

fn put_stats(out: &mut Vec<u8>, s: &OnlineStats) {
    let (count, mean, m2, min, max) = s.state();
    put_u64(out, count);
    put_f64(out, mean);
    put_f64(out, m2);
    put_f64(out, min);
    put_f64(out, max);
}

fn get_stats(r: &mut Reader<'_>) -> Option<OnlineStats> {
    let count = r.u64()?;
    let mean = r.f64()?;
    let m2 = r.f64()?;
    let min = r.f64()?;
    let max = r.f64()?;
    Some(OnlineStats::from_state(count, mean, m2, min, max))
}

/// Sample-vector encodings. Samples are response times produced as
/// `nanos as f64 * 1e-6` (integer simulation time), so almost every
/// value is exactly recoverable from its nanosecond count — and
/// successive response times are close, so delta-zigzag varints of the
/// nanos average ~2–3 bytes against 8 for raw bits. Entries are tens of
/// megabytes of samples, and on a slow disk their size *is* the cold-run
/// overhead, so the compact form is worth the encode pass. Any vector
/// with even one non-recoverable value falls back to raw f64 bits.
const SAMPLES_RAW: u64 = 0;
const SAMPLES_DELTA_NANOS_MS: u64 = 1;
const SAMPLES_DELTA_NANOS_US: u64 = 2;

/// The unit scale a sample encoding mode divides nanoseconds by:
/// response times are recorded as `nanos * 1e-6` (milliseconds),
/// prediction times as `nanos * 1e-3` (microseconds).
fn mode_scale(mode: u64) -> Option<f64> {
    match mode {
        SAMPLES_DELTA_NANOS_MS => Some(1e-6),
        SAMPLES_DELTA_NANOS_US => Some(1e-3),
        _ => None,
    }
}

fn put_varint(out: &mut Vec<u8>, mut x: u64) {
    while x >= 0x80 {
        out.push((x as u8) | 0x80);
        x >>= 7;
    }
    out.push(x as u8);
}

fn zigzag(x: i64) -> u64 {
    ((x << 1) ^ (x >> 63)) as u64
}

fn unzigzag(x: u64) -> i64 {
    ((x >> 1) as i64) ^ -((x & 1) as i64)
}

/// The integer nanosecond counts behind `values`, if every element
/// round-trips bit-exactly through `n as f64 * scale`.
fn exact_nanos(values: &[f64], scale: f64) -> Option<Vec<u64>> {
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() || v < 0.0 {
                return None;
            }
            let n = (v / scale).round();
            // 2^53: beyond this, `as u64` and back is no longer exact.
            if !(0.0..=9.0e15).contains(&n) {
                return None;
            }
            let n = n as u64;
            ((n as f64 * scale).to_bits() == v.to_bits()).then_some(n)
        })
        .collect()
}

fn put_samples(out: &mut Vec<u8>, s: &SampleSet) {
    let values = s.values();
    put_u64(out, values.len() as u64);
    for mode in [SAMPLES_DELTA_NANOS_MS, SAMPLES_DELTA_NANOS_US] {
        let scale = mode_scale(mode).expect("scaled mode");
        if let Some(nanos) = exact_nanos(values, scale) {
            put_u64(out, mode);
            let mut prev = 0u64;
            for n in nanos {
                put_varint(out, zigzag(n.wrapping_sub(prev) as i64));
                prev = n;
            }
            return;
        }
    }
    put_u64(out, SAMPLES_RAW);
    for &v in values {
        put_f64(out, v);
    }
}

fn get_samples(r: &mut Reader<'_>) -> Option<SampleSet> {
    let n = usize::try_from(r.u64()?).ok()?;
    // A corrupt length cannot allocate more than the payload could hold
    // (every sample takes at least one byte in either encoding).
    if n > r.0.len() {
        return None;
    }
    let mut values = Vec::with_capacity(n);
    let mode = r.u64()?;
    if mode == SAMPLES_RAW {
        for _ in 0..n {
            values.push(r.f64()?);
        }
    } else {
        let scale = mode_scale(mode)?;
        let mut prev = 0u64;
        for _ in 0..n {
            prev = prev.wrapping_add(unzigzag(r.varint()?) as u64);
            values.push(prev as f64 * scale);
        }
    }
    Some(SampleSet::from_values(values))
}

/// Field-by-field exact serialization of a [`RunReport`]. Every float is
/// stored by raw bits, so the decoded report is value-identical — the
/// emitted JSON of a cache hit matches a cold run byte for byte.
fn encode_report(report: &RunReport, out: &mut Vec<u8>) {
    put_u64(out, report.completed);
    put_u64(out, report.sim_time.as_nanos());
    put_stats(out, &report.response_ms);
    put_samples(out, &report.response_samples_ms);
    put_stats(out, &report.read_ms);
    put_stats(out, &report.write_ms);
    put_u64(out, report.phys_requests);
    put_u64(out, report.delayed_propagated);
    put_u64(out, report.delayed_coalesced);
    put_u64(out, report.nvram_peak as u64);
    put_u64(out, report.cache_hits);
    put_u64(out, report.cache_misses);
    put_u64(out, report.failed_requests);
    put_u64(out, report.prediction.misses);
    put_u64(out, report.prediction.requests);
    put_stats(out, &report.prediction.error);
    put_samples(out, &report.prediction.predicted_us);
    put_samples(out, &report.prediction.actual_us);
    put_stats(out, &report.seek_ms);
    put_stats(out, &report.rotation_ms);
    put_stats(out, &report.transfer_ms);
    put_stats(out, &report.queue_wait_ms);
    let f = &report.faults;
    put_u64(out, f.active as u64);
    put_u64(out, f.retries);
    put_u64(out, f.redirects);
    put_u64(out, f.timeouts);
    put_u64(out, f.media_errors);
    put_u64(out, f.unrecoverable);
    put_u64(out, f.rebuild_chunks);
    put_u64(out, f.rebuilds_completed);
    put_u64(out, f.rebuild_duration.as_nanos());
    put_u64(out, f.degraded_reads);
    put_u64(out, f.rmw_updates);
    put_u64(out, f.reconstruction_chunks);
    put_samples(out, &f.healthy_ms);
    put_samples(out, &f.degraded_ms);
    put_samples(out, &f.rebuilding_ms);
    put_u64(out, report.witness);
}

fn decode_report(r: &mut Reader<'_>) -> Option<RunReport> {
    let mut report = RunReport {
        completed: r.u64()?,
        sim_time: SimDuration::from_nanos(r.u64()?),
        response_ms: get_stats(r)?,
        response_samples_ms: get_samples(r)?,
        read_ms: get_stats(r)?,
        write_ms: get_stats(r)?,
        phys_requests: r.u64()?,
        delayed_propagated: r.u64()?,
        delayed_coalesced: r.u64()?,
        nvram_peak: usize::try_from(r.u64()?).ok()?,
        cache_hits: r.u64()?,
        cache_misses: r.u64()?,
        failed_requests: r.u64()?,
        ..RunReport::default()
    };
    report.prediction.misses = r.u64()?;
    report.prediction.requests = r.u64()?;
    report.prediction.error = get_stats(r)?;
    report.prediction.predicted_us = get_samples(r)?;
    report.prediction.actual_us = get_samples(r)?;
    report.seek_ms = get_stats(r)?;
    report.rotation_ms = get_stats(r)?;
    report.transfer_ms = get_stats(r)?;
    report.queue_wait_ms = get_stats(r)?;
    report.faults.active = r.u64()? != 0;
    report.faults.retries = r.u64()?;
    report.faults.redirects = r.u64()?;
    report.faults.timeouts = r.u64()?;
    report.faults.media_errors = r.u64()?;
    report.faults.unrecoverable = r.u64()?;
    report.faults.rebuild_chunks = r.u64()?;
    report.faults.rebuilds_completed = r.u64()?;
    report.faults.rebuild_duration = SimDuration::from_nanos(r.u64()?);
    report.faults.degraded_reads = r.u64()?;
    report.faults.rmw_updates = r.u64()?;
    report.faults.reconstruction_chunks = r.u64()?;
    report.faults.healthy_ms = get_samples(r)?;
    report.faults.degraded_ms = get_samples(r)?;
    report.faults.rebuilding_ms = get_samples(r)?;
    report.witness = r.u64()?;
    Some(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimd_core::{ArraySim, EngineConfig, Shape};
    use mimd_workload::SyntheticSpec;

    fn sample_report() -> RunReport {
        let trace = SyntheticSpec::cello_base().generate(3, 300);
        let mut sim = ArraySim::new(
            EngineConfig::new(Shape::sr_array(2, 3).unwrap()),
            trace.data_sectors,
        )
        .unwrap();
        sim.run_trace(&trace)
    }

    fn assert_reports_identical(a: &mut RunReport, b: &mut RunReport) {
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.sim_time.as_nanos(), b.sim_time.as_nanos());
        assert_eq!(
            a.mean_response_ms().to_bits(),
            b.mean_response_ms().to_bits()
        );
        assert_eq!(
            a.response_ms.population_variance().to_bits(),
            b.response_ms.population_variance().to_bits()
        );
        for p in [0.5, 0.95, 0.99] {
            assert_eq!(
                a.response_percentile_ms(p).map(f64::to_bits),
                b.response_percentile_ms(p).map(f64::to_bits),
                "p{p}"
            );
        }
        assert_eq!(a.phys_requests, b.phys_requests);
        assert_eq!(a.nvram_peak, b.nvram_peak);
        assert_eq!(a.prediction.misses, b.prediction.misses);
        assert_eq!(
            a.prediction.demerit_us().to_bits(),
            b.prediction.demerit_us().to_bits()
        );
        assert_eq!(a.seek_ms.mean().to_bits(), b.seek_ms.mean().to_bits());
        assert_eq!(
            a.queue_wait_ms.max().to_bits(),
            b.queue_wait_ms.max().to_bits()
        );
    }

    #[test]
    fn entry_round_trip_is_value_exact() {
        let mut original = sample_report();
        let blob = encode_entry(0xDEAD_BEEF, &original);
        let mut decoded = decode_entry(&blob, 0xDEAD_BEEF).expect("decodes");
        assert_reports_identical(&mut original, &mut decoded);
    }

    #[test]
    fn wrong_fingerprint_refuses_entry() {
        let blob = encode_entry(1, &RunReport::default());
        assert!(decode_entry(&blob, 2).is_none());
    }

    #[test]
    fn corruption_and_truncation_detected() {
        let blob = encode_entry(7, &sample_report());
        assert!(decode_entry(&blob, 7).is_some());
        // Flip one payload byte.
        let mut corrupt = blob.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x40;
        assert!(decode_entry(&corrupt, 7).is_none(), "corruption undetected");
        // Truncate.
        for cut in [blob.len() - 1, blob.len() / 2, 7, 0] {
            assert!(decode_entry(&blob[..cut], 7).is_none(), "cut {cut}");
        }
        // Trailing garbage.
        let mut padded = blob.clone();
        padded.push(0);
        assert!(decode_entry(&padded, 7).is_none());
    }

    #[test]
    fn disabled_cache_always_runs_cold() {
        let cache = RunCache::disabled();
        let mut runs = 0;
        for _ in 0..2 {
            let _ = cache.get_or_run(99, || {
                runs += 1;
                RunReport::default()
            });
        }
        assert_eq!(runs, 2);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 0);
    }

    #[test]
    fn get_or_run_hits_after_store() {
        let dir = std::env::temp_dir().join(format!("mimd-cache-unit-{}", std::process::id()));
        let cache = RunCache::at(&dir, 0xC0DE);
        let mut cold_runs = 0;
        let mut run = || {
            cache.get_or_run(0x10B, || {
                cold_runs += 1;
                sample_report()
            })
        };
        let mut first = run();
        cache.flush();
        let mut second = run();
        assert_eq!(cold_runs, 1, "second call must hit");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_reports_identical(&mut first, &mut second);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sample_codec_handles_both_encodings() {
        // Simulation-produced samples (exact nanosecond multiples) take
        // the compact delta-varint form...
        let exact: Vec<f64> = [1_500_000u64, 1_499_999, 1, 25_000_000, 0, 1_500_000]
            .iter()
            .map(|&n| n as f64 * 1e-6)
            .collect();
        let mut compact = Vec::new();
        put_samples(&mut compact, &SampleSet::from_values(exact.clone()));
        // ...while arbitrary floats fall back to raw bits. Both
        // round-trip bit-exactly.
        let raw = vec![std::f64::consts::PI, 0.1 + 0.2, f64::NAN];
        let mut fallback = Vec::new();
        put_samples(&mut fallback, &SampleSet::from_values(raw.clone()));
        assert!(compact.len() < 16 + 8 * exact.len(), "not compacted");
        for (blob, want) in [(compact, exact), (fallback, raw)] {
            let got = get_samples(&mut Reader(&blob)).expect("decodes");
            assert_eq!(got.values().len(), want.len());
            for (a, b) in got.values().iter().zip(&want) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn code_fingerprint_is_baked_in() {
        assert_ne!(code_fingerprint(), 0);
    }
}
