//! The deterministic parallel experiment harness.
//!
//! Everything below this crate — `mimd-sim`, `mimd-disk`, `mimd-workload`,
//! `mimd-core` — is strictly single-threaded and deterministic (enforced by
//! simlint's `parallelism` rule). This crate is the one layer allowed to
//! spawn threads, and it does so without giving up determinism:
//!
//! - [`parallel_map`] fans independent jobs over scoped worker threads with
//!   a work-stealing cursor, then merges results back **in job order**, so
//!   output bytes never depend on thread count or OS scheduling.
//! - [`GridSpec`] declares an experiment as a shape × policy × workload ×
//!   seed grid; each cell runs one private [`mimd_core::ArraySim`].
//! - [`Json`] is a hand-rolled serializer (the workspace builds offline),
//!   and [`write_json`] drops experiment records under `MIMD_JSON_DIR`
//!   (default `target/experiments/`) for the perf trajectory.
//! - [`RunCache`] memoizes completed runs content-addressed by structural
//!   fingerprint ([`fp`]) under `MIMD_CACHE_DIR`; unchanged re-runs decode
//!   stored bytes instead of simulating (`MIMD_NO_CACHE=1` opts out).
//! - [`shared_trace`]/[`shared_arena`] generate each workload stream once
//!   per process and share it across grid jobs via `Arc`.

pub mod cache;
pub mod fp;
mod grid;
mod json;
mod pool;
mod workload;

pub use cache::{cache_dir, code_fingerprint, RunCache};
pub use grid::{report_json, Cell, CellResult, GridResult, GridSpec, Workload};
pub use json::Json;
pub use pool::{configured_threads, parallel_map, parallel_map_with, shard_budget};
pub use workload::{shared_arena, shared_trace};

use std::io::Write as _;
use std::path::PathBuf;

/// The directory experiment JSON lands in: `MIMD_JSON_DIR` if set, else
/// `target/experiments` relative to the current directory.
pub fn json_dir() -> PathBuf {
    match std::env::var_os("MIMD_JSON_DIR") {
        Some(d) if !d.is_empty() => PathBuf::from(d),
        _ => PathBuf::from("target").join("experiments"),
    }
}

/// Writes `value` to `<json_dir>/<stem>.json` (creating the directory),
/// returning the path written.
pub fn write_json(stem: &str, value: &Json) -> std::io::Result<PathBuf> {
    let dir = json_dir();
    // simlint: allow(cache-hygiene) — dir IS the MIMD_JSON_DIR root.
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{stem}.json"));
    // simlint: allow(cache-hygiene) — path is under MIMD_JSON_DIR.
    let mut f = std::fs::File::create(&path)?;
    f.write_all(value.to_json().as_bytes())?;
    f.write_all(b"\n")?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_dir_defaults_under_target() {
        // Cannot mutate the env in tests (other tests run concurrently);
        // just check the fallback shape when the var is absent or the
        // override when present.
        let d = json_dir();
        assert!(d.ends_with("experiments") || std::env::var("MIMD_JSON_DIR").is_ok());
    }

    #[test]
    fn write_json_round_trips_to_disk() {
        let dir = std::env::temp_dir().join("mimd-harness-test");
        // Write via an explicit directory rather than the env var to stay
        // race-free under the parallel test runner.
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("probe.json");
        let value = Json::object([("ok", Json::from(true))]);
        std::fs::write(&path, value.to_json()).unwrap();
        let got = std::fs::read_to_string(&path).unwrap();
        assert_eq!(got, r#"{"ok":true}"#);
    }
}
