//! Declarative experiment grids: shape × policy × workload × seed.
//!
//! A [`GridSpec`] names every cell of an experiment up front; [`GridSpec::run`]
//! fans the cells across the thread pool (one single-threaded [`ArraySim`]
//! per cell) and collects results back in grid order, so the emitted JSON is
//! byte-identical whether the grid ran on one thread or sixteen.

use std::sync::Arc;

use mimd_core::{ArraySim, EngineConfig, Policy, RunReport, Shape};
use mimd_workload::{IometerSpec, RequestSource, Trace, WorkloadArena};

use crate::cache::RunCache;
use crate::fp::{self, Fp};
use crate::json::Json;
use crate::pool::{configured_threads, parallel_map_with};

/// What one grid cell drives into the simulator.
#[derive(Clone)]
pub enum Workload {
    /// Open-loop replay of a shared trace.
    Trace(Arc<Trace>),
    /// Open-loop replay of a shared struct-of-arrays arena (see
    /// [`crate::shared_arena`]).
    Arena(Arc<WorkloadArena>),
    /// Iometer-style closed loop.
    Closed {
        /// Request generator.
        spec: IometerSpec,
        /// Logical data size in sectors (the layout's capacity input).
        data_sectors: u64,
        /// Requests kept in flight.
        outstanding: usize,
        /// Completions to measure.
        completions: u64,
    },
}

impl Workload {
    fn data_sectors(&self) -> u64 {
        match self {
            Workload::Trace(t) => t.data_sectors,
            Workload::Arena(a) => a.data_sectors(),
            Workload::Closed { data_sectors, .. } => *data_sectors,
        }
    }

    /// Structural fingerprint of the workload's content (computed once per
    /// workload per grid, then mixed into each cell's job fingerprint).
    fn fingerprint(&self) -> u64 {
        let mut fp = Fp::new();
        match self {
            Workload::Trace(t) => fp::write_source(&mut fp, t.as_ref()),
            Workload::Arena(a) => fp::write_source(&mut fp, a.as_ref()),
            Workload::Closed {
                spec,
                outstanding,
                completions,
                ..
            } => fp::write_closed(&mut fp, spec, *outstanding, *completions),
        }
        fp.finish()
    }
}

/// One cell of the grid, in grid order.
#[derive(Clone)]
pub struct Cell {
    /// Position in [`GridSpec::cells`] order.
    pub index: usize,
    /// Array shape.
    pub shape: Shape,
    /// Scheduling policy; `None` means the paper default for the shape.
    pub policy: Option<Policy>,
    /// Index into the spec's workload list.
    pub workload: usize,
    /// RNG seed.
    pub seed: u64,
}

/// A full experiment: the cartesian product of its axes.
pub struct GridSpec {
    /// Experiment name (becomes the JSON file stem).
    pub name: String,
    /// Array shapes (outermost axis).
    pub shapes: Vec<Shape>,
    /// Policies per shape; `None` = `Policy::default_for_dr`.
    pub policies: Vec<Option<Policy>>,
    /// Named workloads.
    pub workloads: Vec<(String, Workload)>,
    /// Seeds (innermost axis).
    pub seeds: Vec<u64>,
}

impl GridSpec {
    /// A single-policy, single-seed grid — the common figure shape.
    pub fn new(name: impl Into<String>) -> GridSpec {
        GridSpec {
            name: name.into(),
            shapes: Vec::new(),
            policies: vec![None],
            workloads: Vec::new(),
            seeds: vec![42],
        }
    }

    /// Enumerates every cell in fixed order: shape, then policy, then
    /// workload, then seed.
    pub fn cells(&self) -> Vec<Cell> {
        let mut out =
            Vec::with_capacity(self.shapes.len() * self.policies.len() * self.workloads.len());
        let mut index = 0;
        for &shape in &self.shapes {
            for &policy in &self.policies {
                for workload in 0..self.workloads.len() {
                    for &seed in &self.seeds {
                        out.push(Cell {
                            index,
                            shape,
                            policy,
                            workload,
                            seed,
                        });
                        index += 1;
                    }
                }
            }
        }
        out
    }

    /// Runs the whole grid on [`configured_threads`] workers.
    ///
    /// # Panics
    ///
    /// Panics if any cell's layout is infeasible — a grid is a statement of
    /// intent, and a shape that cannot hold the data set is a bug in the
    /// experiment, not a runtime condition.
    pub fn run(&self) -> GridResult {
        self.run_with(configured_threads(), |cfg| cfg)
    }

    /// Runs with an explicit worker count and a per-cell config customizer
    /// (write mode, cache, timing path, ...). The customizer must be
    /// deterministic: it sees the fully-formed base config for each cell.
    ///
    /// Cells are memoized through the environment-configured [`RunCache`]:
    /// a cell whose resolved config (post-customizer), workload content,
    /// seed, and workspace code fingerprint all match a stored entry
    /// returns the stored report without simulating. Set `MIMD_NO_CACHE=1`
    /// to force cold runs.
    pub fn run_with(
        &self,
        threads: usize,
        customize: impl Fn(EngineConfig) -> EngineConfig + Sync,
    ) -> GridResult {
        self.run_cached(threads, &RunCache::from_env(), customize)
    }

    /// [`GridSpec::run_with`] against an explicit cache (tests inject
    /// private directories and fake code fingerprints).
    pub fn run_cached(
        &self,
        threads: usize,
        cache: &RunCache,
        customize: impl Fn(EngineConfig) -> EngineConfig + Sync,
    ) -> GridResult {
        let cells = self.cells();
        // Hash each workload's content once, not once per cell: the grid
        // re-uses one trace across every shape × policy × seed.
        let workload_fps: Vec<u64> = self
            .workloads
            .iter()
            .map(|(_, w)| w.fingerprint())
            .collect();
        let reports = parallel_map_with(threads, cells, |cell| {
            let mut cfg = EngineConfig::new(cell.shape).with_seed(cell.seed);
            if let Some(p) = cell.policy {
                cfg = cfg.with_policy(p);
            }
            let cfg = customize(cfg);
            let (name, workload) = &self.workloads[cell.workload];
            let mut job_fp = Fp::new();
            fp::write_config(&mut job_fp, &cfg);
            job_fp.write_u64(workload_fps[cell.workload]);
            let report = cache.get_or_run(job_fp.finish(), || {
                let mut sim = ArraySim::new(cfg, workload.data_sectors()).unwrap_or_else(|e| {
                    panic!(
                        "grid '{}' cell {} ({} / {}): infeasible layout: {e:?}",
                        self.name, cell.index, cell.shape, name
                    )
                });
                match workload {
                    Workload::Trace(t) => sim.run_trace(t),
                    Workload::Arena(a) => sim.run_source(a.as_ref()),
                    Workload::Closed {
                        spec,
                        outstanding,
                        completions,
                        ..
                    } => sim.run_closed_loop(spec, *outstanding, *completions),
                }
            });
            CellResult {
                cell: cell.clone(),
                workload_name: name.clone(),
                report,
            }
        });
        cache.report_summary(&self.name);
        GridResult {
            name: self.name.clone(),
            cells: reports,
        }
    }
}

/// One cell's labels plus its run report.
pub struct CellResult {
    /// Which cell this was.
    pub cell: Cell,
    /// The workload's name from the spec.
    pub workload_name: String,
    /// The simulation's output.
    pub report: RunReport,
}

/// All cell results, in grid order.
pub struct GridResult {
    /// The spec's name.
    pub name: String,
    /// Results in [`GridSpec::cells`] order.
    pub cells: Vec<CellResult>,
}

impl GridResult {
    /// Serializes the grid to the harness's JSON schema.
    pub fn to_json(&mut self) -> Json {
        let cells: Vec<Json> = self.cells.iter_mut().map(cell_json).collect();
        Json::object([
            ("experiment", Json::from(self.name.as_str())),
            ("cells", Json::Arr(cells)),
        ])
    }
}

fn cell_json(r: &mut CellResult) -> Json {
    let mut j = Json::object([
        ("shape", Json::from(r.cell.shape.to_string())),
        (
            "policy",
            match r.cell.policy {
                Some(p) => Json::from(p.to_string()),
                None => Json::from(Policy::default_for_dr(r.cell.shape.dr).to_string()),
            },
        ),
        ("workload", Json::from(r.workload_name.as_str())),
        ("seed", Json::from(r.cell.seed)),
    ]);
    j.push_field("metrics", report_json(&mut r.report));
    j
}

/// The machine-readable core of a [`RunReport`].
///
/// The `faults` object only appears for runs driven by a non-empty
/// `FaultPlan` (`r.faults.active`): fault-free output stays byte-identical
/// to builds that predate the fault layer.
pub fn report_json(r: &mut RunReport) -> Json {
    let p95 = r.response_percentile_ms(0.95);
    let p99 = r.response_percentile_ms(0.99);
    let mut j = Json::object([
        ("completed", Json::from(r.completed)),
        ("sim_time_ms", Json::from(r.sim_time.as_millis_f64())),
        ("mean_response_ms", Json::from(r.mean_response_ms())),
        ("p95_response_ms", p95.map(Json::from).unwrap_or(Json::Null)),
        ("p99_response_ms", p99.map(Json::from).unwrap_or(Json::Null)),
        ("throughput_iops", Json::from(r.throughput_iops())),
        ("read_mean_ms", Json::from(r.read_ms.mean())),
        ("write_mean_ms", Json::from(r.write_ms.mean())),
        ("phys_requests", Json::from(r.phys_requests)),
        ("delayed_propagated", Json::from(r.delayed_propagated)),
        ("delayed_coalesced", Json::from(r.delayed_coalesced)),
        ("nvram_peak", Json::from(r.nvram_peak)),
        ("failed_requests", Json::from(r.failed_requests)),
        ("prediction_miss_rate", Json::from(r.prediction.miss_rate())),
        ("seek_mean_ms", Json::from(r.seek_ms.mean())),
        ("rotation_mean_ms", Json::from(r.rotation_ms.mean())),
        ("transfer_mean_ms", Json::from(r.transfer_ms.mean())),
        ("queue_wait_mean_ms", Json::from(r.queue_wait_ms.mean())),
    ]);
    if r.faults.active {
        let f = &mut r.faults;
        let window = |s: &mut mimd_sim::SampleSet| {
            Json::object([
                ("completed", Json::from(s.len() as u64)),
                ("mean_ms", Json::from(s.mean())),
                (
                    "p95_ms",
                    s.percentile(0.95).map(Json::from).unwrap_or(Json::Null),
                ),
                (
                    "p99_ms",
                    s.percentile(0.99).map(Json::from).unwrap_or(Json::Null),
                ),
            ])
        };
        let faults = Json::object([
            ("retries", Json::from(f.retries)),
            ("redirects", Json::from(f.redirects)),
            ("timeouts", Json::from(f.timeouts)),
            ("media_errors", Json::from(f.media_errors)),
            ("unrecoverable", Json::from(f.unrecoverable)),
            ("rebuild_chunks", Json::from(f.rebuild_chunks)),
            ("rebuilds_completed", Json::from(f.rebuilds_completed)),
            (
                "rebuild_duration_ms",
                Json::from(f.rebuild_duration.as_millis_f64()),
            ),
            ("healthy", window(&mut f.healthy_ms)),
            ("degraded", window(&mut f.degraded_ms)),
            ("rebuilding", window(&mut f.rebuilding_ms)),
        ]);
        j.push_field("faults", faults);
    }
    // Parity (RAID 4/5) counters appear only when a parity path actually
    // ran — healthy RMWs tally here even with an empty fault plan, and
    // non-parity output stays byte-identical to pre-parity builds.
    let pf = &r.faults;
    if pf.degraded_reads + pf.rmw_updates + pf.reconstruction_chunks > 0 {
        let parity = Json::object([
            ("degraded_reads", Json::from(pf.degraded_reads)),
            ("rmw_updates", Json::from(pf.rmw_updates)),
            (
                "reconstruction_chunks",
                Json::from(pf.reconstruction_chunks),
            ),
        ]);
        j.push_field("parity", parity);
    }
    // The determinism witness is opt-in (MIMD_WITNESS_JSON=1): the golden
    // md5 sums over figure JSON predate the field, so emitting it by
    // default would change every gated byte stream. The CI witness gate
    // sets the variable and diffs the values across thread counts.
    if std::env::var_os("MIMD_WITNESS_JSON").is_some_and(|v| v == "1") {
        j.push_field("witness", Json::from(format!("{:016x}", r.witness)));
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimd_workload::SyntheticSpec;

    fn small_grid() -> GridSpec {
        let trace = Arc::new(SyntheticSpec::cello_base().generate(7, 200));
        GridSpec {
            name: "unit".into(),
            shapes: vec![Shape::striping(2), Shape::new(1, 2, 1).unwrap()],
            policies: vec![None],
            workloads: vec![("cello".into(), Workload::Trace(trace))],
            seeds: vec![42, 43],
        }
    }

    #[test]
    fn cells_enumerate_in_fixed_order() {
        let g = small_grid();
        let cells = g.cells();
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0].shape, Shape::striping(2));
        assert_eq!(cells[0].seed, 42);
        assert_eq!(cells[1].seed, 43);
        assert_eq!(cells[2].shape, Shape::new(1, 2, 1).unwrap());
        assert!(cells.iter().enumerate().all(|(i, c)| c.index == i));
    }

    #[test]
    fn parallel_grid_json_matches_serial_bytes() {
        let g = small_grid();
        let serial = g.run_with(1, |c| c).to_json().to_json();
        for threads in [2, 4, 8] {
            let parallel = g.run_with(threads, |c| c).to_json().to_json();
            assert_eq!(parallel, serial, "threads = {threads}");
        }
        assert!(serial.contains(r#""experiment":"unit""#));
        assert!(serial.contains("mean_response_ms"));
    }

    #[test]
    fn closed_loop_cells_run() {
        let data = 4 * 1024 * 1024; // sectors
        let g = GridSpec {
            name: "closed".into(),
            shapes: vec![Shape::striping(2)],
            policies: vec![Some(Policy::Satf)],
            workloads: vec![(
                "rand-read".into(),
                Workload::Closed {
                    spec: IometerSpec::random_read_512(data),
                    data_sectors: data,
                    outstanding: 4,
                    completions: 100,
                },
            )],
            seeds: vec![1],
        };
        let mut out = g.run_with(2, |c| c);
        assert_eq!(out.cells.len(), 1);
        assert_eq!(out.cells[0].report.completed, 100);
        let js = out.to_json().to_json();
        assert!(js.contains(r#""policy":"SATF""#));
    }
}
