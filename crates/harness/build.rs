//! Bakes a workspace code-version fingerprint into the harness at build
//! time.
//!
//! The run cache keys every entry on this fingerprint (alongside the
//! resolved config and workload content), so a cache hit can only ever be
//! served to the *exact* code that produced it — editing any source file
//! in the workspace changes the fingerprint and silently invalidates the
//! whole cache. The hash is FNV-1a over every `.rs` file plus the lock
//! file, in sorted path order, so it is stable across machines and
//! filesystems.

use std::path::{Path, PathBuf};

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100000001b3);
    }
}

fn main() {
    let manifest = PathBuf::from(std::env::var("CARGO_MANIFEST_DIR").expect("cargo sets this"));
    let root = manifest
        .parent()
        .and_then(Path::parent)
        .expect("harness sits two levels below the workspace root")
        .to_path_buf();

    let mut files = Vec::new();
    for top in ["crates", "src"] {
        collect_rs_files(&root.join(top), &mut files);
    }
    files.push(root.join("Cargo.lock"));
    files.sort();

    let mut h: u64 = 0xcbf29ce484222325;
    for path in &files {
        let Ok(contents) = std::fs::read(path) else {
            continue;
        };
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        fnv1a(&mut h, rel.as_bytes());
        fnv1a(&mut h, &(contents.len() as u64).to_le_bytes());
        fnv1a(&mut h, &contents);
    }

    println!("cargo:rustc-env=MIMD_CODE_FINGERPRINT={h:016x}");
    // Directory watches are recursive: any source edit anywhere in the
    // workspace re-runs this script and rebuilds the fingerprint.
    println!("cargo:rerun-if-changed={}", root.join("crates").display());
    println!("cargo:rerun-if-changed={}", root.join("src").display());
    println!(
        "cargo:rerun-if-changed={}",
        root.join("Cargo.lock").display()
    );
}
