//@path crates/simcore/src/fx_collections.rs
pub struct Index {
    map: BTreeMap<u64, u64>,
}
