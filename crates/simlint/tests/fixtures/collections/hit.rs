//@path crates/simcore/src/fx_collections.rs
pub struct Index {
    map: HashMap<u64, u64>,
}
