//@path crates/simcore/src/fx_collections.rs
pub struct Index {
    // simlint: allow(collections) — fixture: keys are never iterated, only probed
    map: HashMap<u64, u64>,
}
