//@path crates/workloads/src/fx_rng.rs
pub fn anonymous(seed: u64) -> SimRng {
    // simlint: allow(rng-provenance) — fixture: seed is pre-mixed by the caller
    SimRng::seed_from(seed)
}

pub fn derived(parent: &mut SimRng) -> SimRng {
    // simlint: allow(rng-provenance) — fixture: fork order pinned by golden bytes
    parent.fork()
}
