//@path crates/workloads/src/fx_rng.rs
pub fn arrivals(seed: u64) -> SimRng {
    SimRng::named(seed, "workload-arrivals")
}
