//@path crates/workloads/src/fx_rng.rs
pub fn anonymous(seed: u64) -> SimRng {
    SimRng::seed_from(seed)
}

pub fn derived(parent: &mut SimRng) -> SimRng {
    parent.fork()
}

pub fn computed(seed: u64, name: &str) -> SimRng {
    SimRng::named(seed, name)
}
