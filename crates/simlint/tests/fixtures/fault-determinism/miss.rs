//@path crates/core/src/faults.rs
pub fn arm(seed: u64) -> SimRng {
    SimRng::named(seed, "faults")
}
