//@path crates/core/src/faults.rs
pub fn arm(seed: u64) -> SimRng {
    // simlint: allow(fault-determinism, rng-provenance) — fixture: one directive may cover several rules
    SimRng::seed_from(seed)
}
