//@path crates/diskmodel/src/fx_panic.rs
pub fn head(xs: &[u64]) -> u64 {
    // simlint: allow(panic) — fixture: caller guarantees non-empty by construction
    *xs.first().unwrap()
}
