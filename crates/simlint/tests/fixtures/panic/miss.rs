//@path crates/diskmodel/src/fx_panic.rs
pub fn head(xs: &[u64]) -> u64 {
    xs.first().copied().unwrap_or(0)
}
