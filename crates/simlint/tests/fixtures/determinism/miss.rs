//@path crates/core/src/fx_determinism.rs
// `Instant::now` in a comment (or "SystemTime" in a string) must not fire:
// the line rules run over the lexer's masked lines.
pub fn stamp(now: SimTime) -> u64 {
    let s = "calling Instant::now here would be a bug";
    now.as_nanos() + s.len() as u64
}
