//@path crates/core/src/fx_determinism.rs
pub fn stamp() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().subsec_nanos() as u64
}
