//@path crates/core/src/fx_determinism.rs
pub fn stamp() -> u64 {
    // simlint: allow(determinism) — fixture: wall-clock read quarantined to this probe
    let t = std::time::Instant::now();
    t.elapsed().subsec_nanos() as u64
}
