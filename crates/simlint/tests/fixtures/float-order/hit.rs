//@path crates/core/src/fx_float_order.rs
impl ArraySim {
    pub fn run_fx(&mut self, parts: Parts) -> f64 {
        total(parts) + merge(parts)
    }
}

fn total(parts: Parts) -> f64 {
    let mut acc = 0.0f64;
    for x in parts {
        acc += x as f64;
    }
    acc
}

fn merge(parts: Parts) -> f64 {
    parts.map(square).sum::<f64>()
}
