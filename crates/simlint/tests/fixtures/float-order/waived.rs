//@path crates/core/src/fx_float_order.rs
impl ArraySim {
    pub fn run_fx(&mut self, parts: Parts) -> f64 {
        total(parts)
    }
}

fn total(parts: Parts) -> f64 {
    let mut acc = 0.0f64;
    for x in parts {
        // simlint: allow(float-order) — fixture: source is pre-sorted upstream
        acc += x as f64;
    }
    acc
}
