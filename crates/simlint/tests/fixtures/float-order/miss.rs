//@path crates/core/src/fx_float_order.rs
impl ArraySim {
    pub fn run_fx(&mut self, parts: &[f64]) -> f64 {
        total(parts) + merge(parts)
    }
}

// Slice iteration is visibly ordered: no shard can permute it.
fn total(parts: &[f64]) -> f64 {
    let mut acc = 0.0f64;
    for x in parts.iter() {
        acc += *x;
    }
    acc
}

fn merge(parts: &[f64]) -> f64 {
    parts.iter().map(|v| v * v).sum::<f64>()
}

// Unordered accumulation, but nothing reaches it from a sim entry
// point, so the call-graph gate leaves it alone.
fn debug_total(parts: Parts) -> f64 {
    let mut acc = 0.0f64;
    for x in parts {
        acc += x as f64;
    }
    acc
}
