//@path crates/core/src/fx_shared_mut.rs
// Nothing here is reachable from a sim entry point (`ArraySim::run*`,
// `EventQueue` push/pop, `DriveQueue::pick*`), so the interior
// mutability below may stay unannotated: the call-graph gate skips it.
pub struct DebugProbe {
    hits: Cell<u64>,
}

pub fn probe_only() -> u64 {
    let p = DebugProbe { hits: Cell::new(0) };
    p.hits.get()
}
