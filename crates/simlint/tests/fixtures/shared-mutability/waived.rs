//@path crates/core/src/fx_shared_mut.rs
impl ArraySim {
    pub fn run_fx(&mut self) -> f64 {
        let m = Memo { slot: Cell::new(0.0) };
        m.slot.get()
    }
}

pub struct Memo {
    // simlint: shard-local(fixture: memo is owned by one queue, rebuilt per shard)
    pub slot: Cell<f64>,
}
