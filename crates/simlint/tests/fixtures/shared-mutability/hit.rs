//@path crates/core/src/fx_shared_mut.rs
pub static mut TICKS: u64 = 0;

impl ArraySim {
    pub fn run_fx(&mut self) -> f64 {
        let m = Memo { slot: Cell::new(0.0) };
        m.slot.get()
    }
}

pub struct Memo {
    pub slot: Cell<f64>,
}
