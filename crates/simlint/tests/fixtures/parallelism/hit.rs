//@path crates/core/src/fx_parallelism.rs
pub struct Shared {
    guard: Mutex<u64>,
}
