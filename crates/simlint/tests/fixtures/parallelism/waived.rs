//@path crates/core/src/fx_parallelism.rs
pub struct Shared {
    // simlint: allow(parallelism) — fixture: lock is init-once, never touched mid-run
    guard: Mutex<u64>,
}
