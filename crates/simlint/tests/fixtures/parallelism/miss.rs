//@path crates/core/src/fx_parallelism.rs
pub struct Owned {
    value: u64,
}
