//@path crates/harness/src/fx_cache.rs
pub fn dump(path: &str, body: &str) {
    // simlint: allow(cache-hygiene) — fixture: writes under the MIMD_JSON_DIR root only
    let _ = std::fs::write(path, body);
}
