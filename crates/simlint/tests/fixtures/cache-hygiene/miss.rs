//@path crates/harness/src/fx_cache.rs
pub fn dump(name: &str, j: &Json) {
    write_json(name, j);
}
