//@path crates/harness/src/fx_cache.rs
pub fn dump(path: &str, body: &str) {
    let _ = std::fs::write(path, body);
}
