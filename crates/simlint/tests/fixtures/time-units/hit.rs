//@path crates/core/src/fx_time_units.rs
pub fn to_ms(dur_ns: u64) -> f64 {
    dur_ns as f64 * 1e-6
}
