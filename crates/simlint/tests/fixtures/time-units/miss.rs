//@path crates/core/src/fx_time_units.rs
pub fn to_ms(d: SimDuration) -> f64 {
    d.as_millis_f64()
}
