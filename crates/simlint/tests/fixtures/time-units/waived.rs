//@path crates/core/src/fx_time_units.rs
pub fn to_ms(dur_ns: u64) -> f64 {
    // simlint: allow(time-units) — fixture: display-only conversion at the JSON edge
    dur_ns as f64 * 1e-6
}
