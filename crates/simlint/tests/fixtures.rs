//! Fixture-corpus driver: every rule ships a `hit` / `miss` / `waived`
//! triple under `tests/fixtures/<rule>/`, and this test holds each to
//! its contract:
//!
//! - `hit.rs` — the rule fires at least one **active** finding;
//! - `miss.rs` — the rule fires nothing (the nearest-miss idiom is clean);
//! - `waived.rs` — the rule fires, but every finding is waived by a
//!   reasoned directive (and carries that reason).
//!
//! Fixtures are plain `.rs` text, never compiled: their first line is a
//! `//@path crates/...` header giving the *virtual* workspace path the
//! scope rules should see. Their real path lives under `/tests/`, which
//! [`simlint::Scope::for_path`] exempts — so the corpus can contain
//! every forbidden construct without polluting workspace lint runs.

use simlint::{lint_files, Finding, Rule, SourceFile};
use std::path::{Path, PathBuf};

/// Every rule, by directory name. Compile-time exhaustiveness: adding a
/// `Rule` variant without a fixture triple fails `all_rules_have_fixture_
/// triples` below.
const RULES: [&str; 10] = [
    "determinism",
    "collections",
    "time-units",
    "panic",
    "parallelism",
    "cache-hygiene",
    "fault-determinism",
    "shared-mutability",
    "float-order",
    "rng-provenance",
];

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Loads a fixture, honoring its `//@path` virtual-path header.
fn load(rule: &str, which: &str) -> SourceFile {
    let path = fixture_root().join(rule).join(format!("{which}.rs"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
    let first = text.lines().next().unwrap_or("");
    let virt = first
        .strip_prefix("//@path ")
        .unwrap_or_else(|| {
            panic!(
                "{}: first line must be `//@path <virtual path>`",
                path.display()
            )
        })
        .trim()
        .to_string();
    assert!(
        !simlint::Scope::for_path(&virt).is_exempt(),
        "{}: virtual path {virt} is exempt — the fixture would test nothing",
        path.display()
    );
    SourceFile {
        path: virt,
        source: text,
    }
}

fn findings_of(rule: Rule, file: &SourceFile) -> Vec<Finding> {
    lint_files(std::slice::from_ref(file))
        .into_iter()
        .filter(|f| f.rule == rule)
        .collect()
}

#[test]
fn all_rules_have_fixture_triples() {
    for dir in RULES {
        assert!(
            Rule::from_name(dir).is_some(),
            "fixture dir {dir} names no rule"
        );
        for which in ["hit", "miss", "waived"] {
            let p = fixture_root().join(dir).join(format!("{which}.rs"));
            assert!(p.is_file(), "missing fixture {}", p.display());
        }
    }
}

#[test]
fn hit_fixtures_fire_active_findings() {
    for dir in RULES {
        let rule = Rule::from_name(dir).unwrap();
        let found = findings_of(rule, &load(dir, "hit"));
        assert!(
            found.iter().any(|f| !f.waived),
            "{dir}/hit.rs: expected an active `{dir}` finding, got {found:?}"
        );
    }
}

#[test]
fn miss_fixtures_stay_clean() {
    for dir in RULES {
        let rule = Rule::from_name(dir).unwrap();
        let found = findings_of(rule, &load(dir, "miss"));
        assert!(
            found.is_empty(),
            "{dir}/miss.rs: expected no `{dir}` findings, got {found:?}"
        );
    }
}

#[test]
fn waived_fixtures_fire_but_are_fully_waived_with_reasons() {
    for dir in RULES {
        let rule = Rule::from_name(dir).unwrap();
        let found = findings_of(rule, &load(dir, "waived"));
        assert!(
            !found.is_empty(),
            "{dir}/waived.rs: the waived fixture must still trigger the rule"
        );
        for f in &found {
            assert!(f.waived, "{dir}/waived.rs: unwaived finding {f}");
            assert!(
                f.waiver_reason.as_deref().is_some_and(|r| !r.is_empty()),
                "{dir}/waived.rs: waiver without a reason on {f}"
            );
        }
    }
}

#[test]
fn fixture_corpus_real_paths_are_exempt() {
    // The corpus's on-disk home must never be linted as workspace code:
    // a `lint_workspace` sweep that descended into it would drown in
    // intentional violations.
    let rel = "crates/simlint/tests/fixtures/panic/hit.rs";
    assert!(simlint::Scope::for_path(rel).is_exempt());
}
