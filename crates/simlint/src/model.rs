//! Item/scope model and conservative call graph.
//!
//! The second analyzer pass walks each file's token stream (from
//! [`crate::lexer`]) and builds a per-crate model of functions (with
//! impl-qualified names), struct/enum definitions, and the calls each
//! function body makes. On top of that sits a **conservative,
//! name-based call graph**: an edge exists from a function to every
//! workspace function a called name *could* resolve to. Resolution is
//! deliberately over-approximate —
//!
//! - `Type::method(..)` with a workspace-known `Type` resolves exactly
//!   to `Type::method`;
//! - every other call (bare `helper(..)`, method `.pick(..)`,
//!   `Self::..`, or a qualified call on an unknown/std type) resolves
//!   to **every** workspace function with that final name segment —
//!
//! so reachability errs toward "yes". That is the right direction for
//! shard-safety rules: an unreachable false positive costs one waiver
//! comment; a reachable false negative hides a determinism bug.
//!
//! Reachability starts from the simulation entry points (`ArraySim::run*`
//! / `::new`, `EventQueue::push`/`pop*`, `DriveQueue::pick*`) and closes
//! over the graph. The model also tracks a *reachable identifier* set
//! (every identifier that occurs in a reachable body, closed over struct
//! definitions those identifiers name), which rules use to decide
//! whether a struct's interior-mutable field is visible to sim code.

use crate::lexer::{Lexed, TokenKind};
use std::collections::{BTreeMap, BTreeSet};

/// A function item: `fn` keyword through closing body brace.
#[derive(Debug)]
pub struct FnItem {
    /// Qualified name: `Type::name` inside an `impl Type`, else `name`.
    pub name: String,
    /// Token index of the `fn` keyword (containment includes the
    /// signature, so a `Cell<..>` parameter belongs to the fn).
    pub sig: usize,
    /// Token indices of the body `{` and its matching `}`.
    pub body: (usize, usize),
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Whether the call graph reaches this fn from a sim entry point.
    pub reachable: bool,
}

/// A struct/enum/union definition with its brace span (if braced).
#[derive(Debug)]
pub struct StructItem {
    pub name: String,
    /// Token index of the introducing keyword.
    pub sig: usize,
    /// Token indices of the body braces; `None` for unit/tuple forms.
    pub body: Option<(usize, usize)>,
}

/// Items parsed out of one file.
#[derive(Debug, Default)]
pub struct FileAnalysis {
    pub fns: Vec<FnItem>,
    pub structs: Vec<StructItem>,
}

/// One call site inside a fn body.
#[derive(Debug)]
struct CallRef {
    /// `Some("Type")` for `Type::name(..)` paths.
    owner: Option<String>,
    name: String,
}

/// The workspace-wide model: per-file items plus global reachability.
pub struct Workspace {
    files: BTreeMap<String, FileAnalysis>,
    reachable_idents: BTreeSet<String>,
}

/// Whether a qualified fn name is a simulation entry point.
fn is_entry(name: &str) -> bool {
    name.starts_with("ArraySim::run")
        || name == "ArraySim::new"
        || name.starts_with("EventQueue::push")
        || name.starts_with("EventQueue::pop")
        || name.starts_with("DriveQueue::pick")
}

/// Keywords that look like `ident (` but are never calls.
const NON_CALL_KEYWORDS: [&str; 6] = ["if", "while", "for", "match", "return", "fn"];

impl Workspace {
    /// Builds the model from lexed files (path, tokens).
    pub fn build(inputs: &[(&str, &Lexed)]) -> Workspace {
        let mut files: BTreeMap<String, FileAnalysis> = BTreeMap::new();
        for (path, lx) in inputs {
            files.insert((*path).to_string(), parse_items(lx));
        }

        // Workspace-known type names: impl targets and struct names.
        let mut known_types: BTreeSet<String> = BTreeSet::new();
        for fa in files.values() {
            for s in &fa.structs {
                known_types.insert(s.name.clone());
            }
            for f in &fa.fns {
                if let Some((ty, _)) = f.name.split_once("::") {
                    known_types.insert(ty.to_string());
                }
            }
        }

        // Name indexes for call resolution.
        let mut by_last: BTreeMap<String, Vec<(String, usize)>> = BTreeMap::new();
        let mut by_full: BTreeMap<String, Vec<(String, usize)>> = BTreeMap::new();
        for (path, fa) in &files {
            for (idx, f) in fa.fns.iter().enumerate() {
                let last = f.name.rsplit("::").next().unwrap_or(&f.name);
                by_last
                    .entry(last.to_string())
                    .or_default()
                    .push((path.clone(), idx));
                by_full
                    .entry(f.name.clone())
                    .or_default()
                    .push((path.clone(), idx));
            }
        }

        // BFS from entry points over the name-resolved call graph.
        let lex_of: BTreeMap<&str, &Lexed> = inputs.iter().map(|(p, l)| (*p, *l)).collect();
        let mut work: Vec<(String, usize)> = Vec::new();
        let mut seen: BTreeSet<(String, usize)> = BTreeSet::new();
        for (path, fa) in &files {
            for (idx, f) in fa.fns.iter().enumerate() {
                if is_entry(&f.name) {
                    work.push((path.clone(), idx));
                    seen.insert((path.clone(), idx));
                }
            }
        }
        while let Some((path, idx)) = work.pop() {
            let span = files[&path].fns[idx].body;
            let Some(lx) = lex_of.get(path.as_str()) else {
                continue;
            };
            for call in calls_in(lx, span) {
                let targets: &[(String, usize)] = match &call.owner {
                    Some(ty) if ty != "Self" && known_types.contains(ty) => by_full
                        .get(&format!("{ty}::{}", call.name))
                        .map(Vec::as_slice)
                        .unwrap_or(&[]),
                    _ => by_last.get(&call.name).map(Vec::as_slice).unwrap_or(&[]),
                };
                for t in targets {
                    if seen.insert(t.clone()) {
                        work.push(t.clone());
                    }
                }
            }
        }
        for (path, idx) in &seen {
            if let Some(fa) = files.get_mut(path) {
                fa.fns[*idx].reachable = true;
            }
        }

        // Reachable identifiers: everything named in a reachable body,
        // closed over the struct definitions those identifiers name (so
        // a field type referenced only via a reachable struct counts).
        let mut reachable_idents: BTreeSet<String> = BTreeSet::new();
        for (path, fa) in &files {
            let Some(lx) = lex_of.get(path.as_str()) else {
                continue;
            };
            for f in fa.fns.iter().filter(|f| f.reachable) {
                for tok in &lx.tokens[f.sig..=f.body.1.min(lx.tokens.len() - 1)] {
                    if let TokenKind::Ident(name) = &tok.kind {
                        reachable_idents.insert(name.clone());
                    }
                }
            }
        }
        loop {
            let mut grew = false;
            for (path, fa) in &files {
                let Some(lx) = lex_of.get(path.as_str()) else {
                    continue;
                };
                for s in &fa.structs {
                    let Some((b0, b1)) = s.body else { continue };
                    if !reachable_idents.contains(&s.name) {
                        continue;
                    }
                    for tok in &lx.tokens[b0..=b1.min(lx.tokens.len() - 1)] {
                        if let TokenKind::Ident(name) = &tok.kind {
                            grew |= reachable_idents.insert(name.clone());
                        }
                    }
                }
            }
            if !grew {
                break;
            }
        }

        Workspace {
            files,
            reachable_idents,
        }
    }

    /// The innermost fn whose span (signature through body) contains the
    /// token index.
    pub fn fn_at(&self, path: &str, tok: usize) -> Option<&FnItem> {
        self.files.get(path)?.fns.iter().fold(None, |best, f| {
            if f.sig <= tok && tok <= f.body.1 {
                match best {
                    Some(b) if span_len(b) <= span_len(f) => Some(b),
                    _ => Some(f),
                }
            } else {
                best
            }
        })
    }

    /// The innermost struct whose span contains the token index.
    pub fn struct_at(&self, path: &str, tok: usize) -> Option<&StructItem> {
        self.files.get(path)?.structs.iter().fold(None, |best, s| {
            let Some((_, end)) = s.body else { return best };
            if s.sig <= tok && tok <= end {
                match best {
                    Some(b) if b.body.is_some_and(|(_, e)| e - b.sig <= end - s.sig) => Some(b),
                    _ => Some(s),
                }
            } else {
                best
            }
        })
    }

    /// Whether an identifier occurs anywhere in reachable sim code.
    pub fn ident_reachable(&self, name: &str) -> bool {
        self.reachable_idents.contains(name)
    }
}

fn span_len(f: &FnItem) -> usize {
    f.body.1 - f.sig
}

/// Parses fn/struct items out of one file's token stream.
fn parse_items(lx: &Lexed) -> FileAnalysis {
    let t = &lx.tokens;
    let mut out = FileAnalysis::default();
    // Stack of (brace depth at open, impl type name).
    let mut impl_stack: Vec<(i64, String)> = Vec::new();
    let mut depth: i64 = 0;
    let mut i = 0usize;
    while i < t.len() {
        match &t[i].kind {
            TokenKind::Punct('{') => {
                depth += 1;
                i += 1;
            }
            TokenKind::Punct('}') => {
                depth -= 1;
                if impl_stack.last().is_some_and(|(d, _)| *d == depth) {
                    impl_stack.pop();
                }
                i += 1;
            }
            TokenKind::Ident(kw) if kw == "impl" => {
                match parse_impl_header(lx, i + 1) {
                    Some((ty, open)) => {
                        impl_stack.push((depth, ty));
                        // Resume at the `{` so depth tracking sees it.
                        i = open;
                    }
                    None => i += 1,
                }
            }
            TokenKind::Ident(kw) if kw == "fn" => {
                // `fn(`: a fn-pointer type, not an item.
                let Some(name) = t.get(i + 1).and_then(|n| n.ident()) else {
                    i += 1;
                    continue;
                };
                let mut j = i + 2;
                while j < t.len() && !t[j].is_punct('{') && !t[j].is_punct(';') {
                    j += 1;
                }
                if j < t.len() && t[j].is_punct('{') {
                    let end = matching_brace(lx, j);
                    let qualified = match impl_stack.last() {
                        Some((_, ty)) => format!("{ty}::{name}"),
                        None => name.to_string(),
                    };
                    out.fns.push(FnItem {
                        name: qualified,
                        sig: i,
                        body: (j, end),
                        line: t[i].line,
                        reachable: false,
                    });
                    // Resume at the body `{` so nested items are found.
                    i = j;
                } else {
                    i = j; // trait method without body: `;`
                }
            }
            TokenKind::Ident(kw) if kw == "struct" || kw == "enum" || kw == "union" => {
                let Some(name) = t.get(i + 1).and_then(|n| n.ident()) else {
                    i += 1;
                    continue;
                };
                let mut j = i + 2;
                while j < t.len() && !t[j].is_punct('{') && !t[j].is_punct(';') {
                    j += 1;
                }
                let body = (j < t.len() && t[j].is_punct('{')).then(|| (j, matching_brace(lx, j)));
                out.structs.push(StructItem {
                    name: name.to_string(),
                    sig: i,
                    body,
                });
                i += 2;
            }
            _ => i += 1,
        }
    }
    out
}

/// Parses an impl header starting just past the `impl` keyword. Returns
/// the target type name (last identifier at angle-depth 0, reset by
/// `for`, stopped by `where`) and the token index of the body `{`.
fn parse_impl_header(lx: &Lexed, from: usize) -> Option<(String, usize)> {
    let t = &lx.tokens;
    let mut angle: i64 = 0;
    let mut ty: Option<String> = None;
    let mut in_where = false;
    let mut j = from;
    while j < t.len() {
        match &t[j].kind {
            TokenKind::Punct('{') if angle <= 0 => {
                return ty.map(|ty| (ty, j));
            }
            TokenKind::Punct(';') if angle <= 0 => return None,
            TokenKind::Punct('<') => angle += 1,
            TokenKind::Punct('-') if t.get(j + 1).is_some_and(|n| n.is_punct('>')) => {
                j += 1; // `->` in a generic bound: skip the `>` too
            }
            TokenKind::Punct('>') => angle -= 1,
            TokenKind::Ident(name) if angle == 0 => {
                if name == "where" {
                    in_where = true;
                } else if name == "for" {
                    ty = None;
                } else if !in_where {
                    ty = Some(name.clone());
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Token index of the `}` matching the `{` at `open`.
fn matching_brace(lx: &Lexed, open: usize) -> usize {
    let t = &lx.tokens;
    let mut depth = 0i64;
    for (j, tok) in t.iter().enumerate().skip(open) {
        match tok.kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    t.len().saturating_sub(1)
}

/// Skips a turbofish / generic argument list starting at the `<` at
/// `open`; returns the index just past the matching `>`.
fn skip_angles(lx: &Lexed, open: usize) -> usize {
    let t = &lx.tokens;
    let mut depth = 0i64;
    let mut j = open;
    while j < t.len() {
        match t[j].kind {
            TokenKind::Punct('<') => depth += 1,
            TokenKind::Punct('-') if t.get(j + 1).is_some_and(|n| n.is_punct('>')) => {
                j += 1;
            }
            TokenKind::Punct('>') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            // A `;` or `{` means this was a comparison, not generics.
            TokenKind::Punct(';') | TokenKind::Punct('{') => return open,
            _ => {}
        }
        j += 1;
    }
    open
}

/// Extracts call references (`name(`, `.name(`, `Type::name(`, with
/// turbofish tolerated) from a body token span.
fn calls_in(lx: &Lexed, span: (usize, usize)) -> Vec<CallRef> {
    let t = &lx.tokens;
    let mut out = Vec::new();
    let (s, e) = span;
    for j in s..=e.min(t.len().saturating_sub(1)) {
        let TokenKind::Ident(name) = &t[j].kind else {
            continue;
        };
        if NON_CALL_KEYWORDS.contains(&name.as_str()) {
            continue;
        }
        let mut k = j + 1;
        if k + 2 < t.len() && t[k].is_punct(':') && t[k + 1].is_punct(':') && t[k + 2].is_punct('<')
        {
            k = skip_angles(lx, k + 2);
        }
        if k < t.len() && t[k].is_punct('(') {
            let owner = if j >= 3 && t[j - 1].is_punct(':') && t[j - 2].is_punct(':') {
                t[j - 3].ident().map(str::to_string)
            } else {
                None
            };
            out.push(CallRef {
                owner,
                name: name.clone(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ws(files: &[(&str, &str)]) -> (Vec<Lexed>, Vec<(String, String)>) {
        let lexed: Vec<Lexed> = files.iter().map(|(_, s)| lex(s)).collect();
        let names = files
            .iter()
            .map(|(p, s)| ((*p).to_string(), (*s).to_string()))
            .collect();
        (lexed, names)
    }

    fn build<'a>(paths: &[&'a str], lexed: &'a [Lexed]) -> Workspace {
        let inputs: Vec<(&str, &Lexed)> = paths.iter().copied().zip(lexed.iter()).collect();
        Workspace::build(&inputs)
    }

    #[test]
    fn impl_qualified_names_and_entry_reachability() {
        let src = "\
struct ArraySim;\n\
impl ArraySim {\n    pub fn run_source(&self) { helper(); }\n}\n\
fn helper() { deep(); }\n\
fn deep() {}\n\
fn island() {}\n";
        let (lexed, _) = ws(&[("a.rs", src)]);
        let m = build(&["a.rs"], &lexed);
        let fa = &m.files["a.rs"];
        let by_name = |n: &str| fa.fns.iter().find(|f| f.name == n).unwrap();
        assert!(by_name("ArraySim::run_source").reachable);
        assert!(by_name("helper").reachable);
        assert!(by_name("deep").reachable);
        assert!(!by_name("island").reachable);
    }

    #[test]
    fn cross_file_reachability_via_method_calls() {
        let a = "struct ArraySim;\nimpl ArraySim {\n    fn run_closed(&self, q: &Q) { q.service(); }\n}\n";
        let b = "struct Q;\nimpl Q {\n    fn service(&self) {}\n    fn idle(&self) {}\n}\n";
        let (lexed, _) = ws(&[("a.rs", a), ("b.rs", b)]);
        let m = build(&["a.rs", "b.rs"], &lexed);
        let fb = &m.files["b.rs"];
        assert!(
            fb.fns
                .iter()
                .find(|f| f.name == "Q::service")
                .unwrap()
                .reachable
        );
        assert!(
            !fb.fns
                .iter()
                .find(|f| f.name == "Q::idle")
                .unwrap()
                .reachable
        );
    }

    #[test]
    fn known_type_qualified_calls_resolve_exactly() {
        let src = "\
struct ArraySim;\nstruct A;\nstruct B;\n\
impl ArraySim { fn run(&self) { A::go(); } }\n\
impl A { fn go() {} }\n\
impl B { fn go() {} }\n";
        let (lexed, _) = ws(&[("a.rs", src)]);
        let m = build(&["a.rs"], &lexed);
        let fa = &m.files["a.rs"];
        assert!(fa.fns.iter().find(|f| f.name == "A::go").unwrap().reachable);
        assert!(!fa.fns.iter().find(|f| f.name == "B::go").unwrap().reachable);
    }

    #[test]
    fn trait_impl_for_type_qualifies_by_target() {
        let src = "struct Q;\nimpl std::fmt::Display for Q {\n    fn fmt(&self) {}\n}\n";
        let (lexed, _) = ws(&[("a.rs", src)]);
        let m = build(&["a.rs"], &lexed);
        assert_eq!(m.files["a.rs"].fns[0].name, "Q::fmt");
    }

    #[test]
    fn generic_impl_headers_parse() {
        let src = "struct EventQueue<E>(Vec<E>);\nimpl<E: Clone> EventQueue<E> {\n    fn push(&mut self, e: E) { self.touch(); }\n    fn touch(&self) {}\n}\n";
        let (lexed, _) = ws(&[("a.rs", src)]);
        let m = build(&["a.rs"], &lexed);
        let fa = &m.files["a.rs"];
        assert_eq!(fa.fns[0].name, "EventQueue::push");
        assert!(fa.fns[1].reachable, "push is an entry; touch is called");
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let src = "struct S { cb: fn(u64) -> u64 }\nfn real() {}\n";
        let (lexed, _) = ws(&[("a.rs", src)]);
        let m = build(&["a.rs"], &lexed);
        assert_eq!(m.files["a.rs"].fns.len(), 1);
        assert_eq!(m.files["a.rs"].fns[0].name, "real");
    }

    #[test]
    fn containment_includes_signature() {
        let src = "fn f(c: &Cell<u64>) { body(); }\n";
        let (lexed, _) = ws(&[("a.rs", src)]);
        let m = build(&["a.rs"], &lexed);
        let cell_idx = lexed[0]
            .tokens
            .iter()
            .position(|t| t.is_ident("Cell"))
            .unwrap();
        assert_eq!(m.fn_at("a.rs", cell_idx).unwrap().name, "f");
    }

    #[test]
    fn struct_spans_and_reachable_idents() {
        let src = "\
struct ArraySim;\n\
struct BandEntry { phase: f64 }\n\
struct Unused { x: u64 }\n\
impl ArraySim { fn run(&self) { let _b: BandEntry; } }\n";
        let (lexed, _) = ws(&[("a.rs", src)]);
        let m = build(&["a.rs"], &lexed);
        assert!(m.ident_reachable("BandEntry"));
        assert!(!m.ident_reachable("Unused"));
        // Closure: field idents of reachable structs count too.
        assert!(m.ident_reachable("phase"));
        let band_idx = lexed[0]
            .tokens
            .iter()
            .position(|t| t.is_ident("phase"))
            .unwrap();
        assert_eq!(m.struct_at("a.rs", band_idx).unwrap().name, "BandEntry");
    }

    #[test]
    fn turbofish_calls_are_recognized() {
        let src = "struct ArraySim;\nimpl ArraySim { fn run(&self) { conv::<u64>(1); } }\nfn conv<T>(_x: T) {}\n";
        let (lexed, _) = ws(&[("a.rs", src)]);
        let m = build(&["a.rs"], &lexed);
        let fa = &m.files["a.rs"];
        assert!(fa.fns.iter().find(|f| f.name == "conv").unwrap().reachable);
    }
}
