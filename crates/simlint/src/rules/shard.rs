//! Shard-safety rules over the item/call-graph model.
//!
//! These three rules exist to make ROADMAP item 1 — the sharded
//! discrete-event engine — safe to attempt. Each flags a construct that
//! is harmless in today's single-threaded simulator but becomes a
//! determinism hazard the moment engine state is split across shards:
//!
//! - **shared-mutability** — `static mut`, `thread_local!`, and
//!   interior-mutable types (`Cell`/`RefCell`/`UnsafeCell`) visible to
//!   reachable sim code. Under sharding these are either cross-shard
//!   data races or silently shard-divergent caches. Each site must be
//!   annotated `// simlint: shard-local(reason)` asserting the state is
//!   confined to one shard.
//! - **float-order** — f64 accumulations (`.sum()`/`.fold()`/`+=`)
//!   whose iteration source is not visibly ordered (slice iteration,
//!   `BTree*` traversal, ranges). f64 addition is non-associative, so
//!   any merge whose order a shard scheduler could permute drifts.
//! - **rng-provenance** — every `SimRng` construction workspace-wide
//!   must flow from `SimRng::named(seed, "literal-stream-name")`.
//!   Anonymous seeds (`seed_from`) and stream forks (`.fork()`) tie a
//!   stream's identity to *construction order*, which sharding
//!   reorders; a named stream's identity is positional-order-free.
//!
//! `shared-mutability` and `float-order` are gated on the conservative
//! call graph (see [`crate::model`]): code the sim entry points cannot
//! reach may keep its local mutability. `rng-provenance` is
//! deliberately ungated — a `SimRng` has no purpose *except* to feed
//! sim code, wherever it is built.

use crate::lexer::{Lexed, TokenKind};
use crate::model::Workspace;
use crate::{Finding, Rule, Scope};

/// Interior-mutability type names the shared-mutability rule tracks.
const INTERIOR_MUT: [&str; 3] = ["Cell", "RefCell", "UnsafeCell"];

/// Iterator sources/adapters whose traversal order is deterministic:
/// slice/collection iteration, `BTree*` views, and explicit draining.
const ORDERED_SOURCES: [&str; 12] = [
    "iter",
    "iter_mut",
    "into_iter",
    "values",
    "keys",
    "chars",
    "bytes",
    "windows",
    "chunks",
    "chunks_exact",
    "drain",
    "enumerate",
];

/// Runs the model-based rules over one lexed file.
pub fn check(rel: &str, scope: &Scope, lx: &Lexed, ws: &Workspace, out: &mut Vec<Finding>) {
    if scope.shared_mutability {
        shared_mutability(rel, lx, ws, out);
    }
    if scope.float_order {
        float_order(rel, lx, ws, out);
    }
    if scope.rng_provenance {
        rng_provenance(rel, lx, out);
    }
}

/// Whether the token at `idx` sits in code the sim entry points reach:
/// its innermost fn is call-graph-reachable, its innermost struct is
/// named by reachable code, or it is module-level (always visible).
fn reachable_at(rel: &str, ws: &Workspace, idx: usize) -> bool {
    if let Some(f) = ws.fn_at(rel, idx) {
        return f.reachable;
    }
    if let Some(s) = ws.struct_at(rel, idx) {
        return ws.ident_reachable(&s.name);
    }
    true // module-level state is visible to everything
}

fn shared_mutability(rel: &str, lx: &Lexed, ws: &Workspace, out: &mut Vec<Finding>) {
    let t = &lx.tokens;
    for (j, tok) in t.iter().enumerate() {
        if lx.token_in_test(j) {
            continue;
        }
        let TokenKind::Ident(name) = &tok.kind else {
            continue;
        };
        let next_is = |c: char| t.get(j + 1).is_some_and(|n| n.is_punct(c));
        if name == "static" && t.get(j + 1).is_some_and(|n| n.is_ident("mut")) {
            out.push(Finding::new(
                rel,
                tok.line,
                Rule::SharedMutability,
                "`static mut` is process-global mutable state; under a sharded engine \
                 this is a data race. Annotate `// simlint: shard-local(reason)` only \
                 if provably confined, otherwise refactor"
                    .to_string(),
            ));
        } else if name == "thread_local" && next_is('!') {
            out.push(Finding::new(
                rel,
                tok.line,
                Rule::SharedMutability,
                "`thread_local!` state diverges per shard thread; annotate \
                 `// simlint: shard-local(reason)` if the cache is value-transparent \
                 (memoisation only), otherwise refactor"
                    .to_string(),
            ));
        } else if INTERIOR_MUT.contains(&name.as_str()) && next_is('<') {
            // Type-position use (`Cell<f64>`); constructions (`Cell::new`)
            // ride on the flagged declaration. `use` imports are skipped —
            // the declaration site is the one that needs the annotation.
            let line_code = lx
                .lines
                .get(tok.line - 1)
                .map(|l| l.code.trim_start())
                .unwrap_or("");
            if line_code.starts_with("use ") || line_code.starts_with("pub use ") {
                continue;
            }
            if !reachable_at(rel, ws, j) {
                continue;
            }
            out.push(Finding::new(
                rel,
                tok.line,
                Rule::SharedMutability,
                format!(
                    "interior mutability (`{name}<..>`) reachable from sim code; a \
                     sharded engine must not observe it across shards. Annotate \
                     `// simlint: shard-local(reason)` or refactor to plain `&mut`"
                ),
            ));
        }
    }
}

/// Whether a token window contains evidence of floating-point math:
/// an `f64`/`f32` type mention, a float literal, or a float turbofish.
fn floatish(toks: &[crate::lexer::Token]) -> bool {
    toks.iter().any(|t| match &t.kind {
        TokenKind::Ident(i) => i == "f64" || i == "f32",
        TokenKind::Num(n) => {
            n.contains('.')
                || n.ends_with("f64")
                || n.ends_with("f32")
                || (!n.starts_with("0x") && n.contains(['e', 'E']) && !n.contains('_'))
        }
        _ => false,
    })
}

/// Whether a token window names an ordered iteration source.
fn ordered(toks: &[crate::lexer::Token]) -> bool {
    for (j, t) in toks.iter().enumerate() {
        match &t.kind {
            // Range expressions (`0..n`) iterate in order.
            TokenKind::Punct('.') if toks.get(j + 1).is_some_and(|n| n.is_punct('.')) => {
                return true;
            }
            // Borrowed-container headers (`for d in &self.disks`).
            TokenKind::Punct('&') => return true,
            TokenKind::Ident(i)
                if ORDERED_SOURCES.contains(&i.as_str())
                    && toks.get(j + 1).is_some_and(|n| n.is_punct('(')) =>
            {
                return true;
            }
            _ => {}
        }
    }
    false
}

fn float_order(rel: &str, lx: &Lexed, ws: &Workspace, out: &mut Vec<Finding>) {
    let t = &lx.tokens;
    // Stack of (brace depth at loop open, header is ordered).
    let mut depth: i64 = 0;
    let mut fors: Vec<(i64, bool)> = Vec::new();
    let mut pending_for: Option<bool> = None;
    let mut j = 0usize;
    while j < t.len() {
        match &t[j].kind {
            TokenKind::Punct('{') => {
                depth += 1;
                if let Some(o) = pending_for.take() {
                    fors.push((depth - 1, o));
                }
                j += 1;
            }
            TokenKind::Punct('}') => {
                depth -= 1;
                if fors.last().is_some_and(|(d, _)| *d == depth) {
                    fors.pop();
                }
                j += 1;
            }
            TokenKind::Ident(kw) if kw == "for" => {
                // Skip HRTBs (`for<'a>`); real loop headers end at `{`.
                if t.get(j + 1).is_some_and(|n| n.is_punct('<')) {
                    j += 1;
                    continue;
                }
                let mut k = j + 1;
                while k < t.len() && !t[k].is_punct('{') && !t[k].is_punct(';') {
                    k += 1;
                }
                pending_for = Some(ordered(&t[j + 1..k.min(t.len())]));
                j = k;
            }
            // `+=` on a float inside an unordered loop.
            TokenKind::Punct('+')
                if t.get(j + 1).is_some_and(|n| n.is_punct('='))
                    && fors.last().is_some_and(|(_, o)| !o) =>
            {
                let line = t[j].line;
                let same_line: Vec<_> = t.iter().filter(|x| x.line == line).cloned().collect();
                if floatish(&same_line)
                    && !lx.token_in_test(j)
                    && ws.fn_at(rel, j).is_some_and(|f| f.reachable)
                {
                    out.push(Finding::new(
                        rel,
                        line,
                        Rule::FloatOrder,
                        "float `+=` accumulation inside a loop whose iteration source \
                         is not visibly ordered (slice/BTree/range); f64 addition is \
                         non-associative, so shard-order drift changes the result"
                            .to_string(),
                    ));
                }
                j += 2;
            }
            // `.sum::<f64>()` / `.fold(..)` / `.product()` reductions.
            TokenKind::Ident(m)
                if (m == "sum" || m == "fold" || m == "product")
                    && j >= 1
                    && t[j - 1].is_punct('.') =>
            {
                let stmt = statement_window(lx, j);
                if floatish(stmt)
                    && !ordered(stmt)
                    && !lx.token_in_test(j)
                    && ws.fn_at(rel, j).is_some_and(|f| f.reachable)
                {
                    out.push(Finding::new(
                        rel,
                        t[j].line,
                        Rule::FloatOrder,
                        format!(
                            "float `.{m}(..)` over an iterator with no visibly ordered \
                             source (`.iter()`, `BTree*` view, range); under sharding \
                             the merge order — and the f64 result — is unstable"
                        ),
                    ));
                }
                j += 1;
            }
            _ => j += 1,
        }
    }
}

/// The statement-ish token window around index `j`: from the previous
/// `;`/`{`/`}` through the next `;` (bounded), so multi-line iterator
/// chains are judged whole.
fn statement_window(lx: &Lexed, j: usize) -> &[crate::lexer::Token] {
    let t = &lx.tokens;
    let stop = |k: usize| t[k].is_punct(';') || t[k].is_punct('{') || t[k].is_punct('}');
    let mut s = j;
    while s > 0 && !stop(s - 1) && j - s < 200 {
        s -= 1;
    }
    let mut e = j;
    while e + 1 < t.len() && !stop(e) && e - j < 200 {
        e += 1;
    }
    &t[s..=e]
}

fn rng_provenance(rel: &str, lx: &Lexed, out: &mut Vec<Finding>) {
    let t = &lx.tokens;
    for (j, tok) in t.iter().enumerate() {
        if lx.token_in_test(j) {
            continue;
        }
        let TokenKind::Ident(name) = &tok.kind else {
            continue;
        };
        let qualified_simrng = j >= 3
            && t[j - 1].is_punct(':')
            && t[j - 2].is_punct(':')
            && t[j - 3].is_ident("SimRng");
        let called = t.get(j + 1).is_some_and(|n| n.is_punct('('));
        if name == "seed_from" && qualified_simrng && called {
            out.push(Finding::new(
                rel,
                tok.line,
                Rule::RngProvenance,
                "`SimRng::seed_from` creates an anonymous stream; construct via \
                 `SimRng::named(seed, \"stream-name\")` so the stream's identity \
                 survives shard reordering"
                    .to_string(),
            ));
        } else if name == "fork" && called && j >= 1 && t[j - 1].is_punct('.') {
            out.push(Finding::new(
                rel,
                tok.line,
                Rule::RngProvenance,
                "`.fork()` derives a stream from construction order, which a sharded \
                 engine reorders; use `SimRng::named(seed, \"stream-name\")` instead"
                    .to_string(),
            ));
        } else if name == "named"
            && qualified_simrng
            && called
            && !second_arg_is_str_literal(lx, j + 1)
        {
            out.push(Finding::new(
                rel,
                tok.line,
                Rule::RngProvenance,
                "`SimRng::named` stream name must be a string literal so every \
                 stream is grep-able and collision-checked; computed names hide \
                 provenance"
                    .to_string(),
            ));
        }
    }
}

/// Whether the call whose `(` is at `open` has a string literal as its
/// second top-level argument.
fn second_arg_is_str_literal(lx: &Lexed, open: usize) -> bool {
    let t = &lx.tokens;
    let mut depth = 0i64;
    for j in open..t.len().min(open + 200) {
        match t[j].kind {
            TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return false; // call closed before a second argument
                }
            }
            TokenKind::Punct(',') if depth == 1 => {
                return t.get(j + 1).is_some_and(|n| n.kind == TokenKind::Str);
            }
            _ => {}
        }
    }
    false
}
