//! Rule passes.
//!
//! [`line`] holds the original pattern rules, now running over the
//! lexer's masked lines; [`shard`] holds the model-based shard-safety
//! rules (`shared-mutability`, `float-order`, `rng-provenance`).

pub mod line;
pub mod shard;
