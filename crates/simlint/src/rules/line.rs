//! The line-pattern rules, ported from the original per-line scanner.
//!
//! These run over the lexer's masked lines ([`crate::lexer::Line`]):
//! string, char, and comment content is already blanked, so a pattern
//! can never fire inside text. Waivers are applied centrally in
//! [`crate::lint_files`], not here — each check pushes an (unwaived)
//! [`Finding`] and lets the directive pass sort it out.

use crate::lexer::Lexed;
use crate::{Finding, Rule, Scope};

/// Whether `code` contains `needle` starting at a token boundary.
///
/// Boundary checks only apply on sides where the needle itself is
/// identifier-like: `.unwrap()` matches after `x`, but `SystemTime`
/// does not match inside `MySystemTimer`.
pub(crate) fn has_token(code: &str, needle: &str) -> bool {
    let ident = |c: char| c.is_ascii_alphanumeric() || c == '_';
    let needle_starts_ident = needle.chars().next().is_some_and(ident);
    let needle_ends_ident = needle.chars().next_back().is_some_and(ident);
    let mut from = 0;
    while let Some(pos) = code[from..].find(needle) {
        let at = from + pos;
        let before = code[..at].chars().next_back().unwrap_or(' ');
        let after = code[at + needle.len()..].chars().next().unwrap_or(' ');
        if (!needle_starts_ident || !ident(before)) && (!needle_ends_ident || !ident(after)) {
            return true;
        }
        from = at + needle.len();
    }
    false
}

/// Splits a code line into identifier tokens.
fn idents(code: &str) -> impl Iterator<Item = &str> {
    code.split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .filter(|t| !t.is_empty() && !t.chars().next().is_some_and(|c| c.is_ascii_digit()))
}

/// Whether an identifier names a floating-point time quantity.
fn is_time_ident(t: &str) -> bool {
    t.ends_with("_ns")
        || t.ends_with("_us")
        || t.ends_with("_ms")
        || t.ends_with("_secs")
        || t.contains("nanos")
        || t.contains("micros")
        || t.contains("millis")
        || t.contains("seconds")
}

/// Unit-conversion literals that signal raw time math.
const CONVERSION_LITERALS: [&str; 12] = [
    "1e3",
    "1e-3",
    "1e6",
    "1e-6",
    "1e9",
    "1e-9",
    "1_000.0",
    "1_000_000.0",
    "1_000_000_000.0",
    "1000.0",
    "1000000.0",
    "0.001",
];

/// Numeric-literal token-boundary check (identifier rules, plus `.`/digit
/// adjacency so `11e9` or `1e-31` never match `1e9`/`1e-3`).
fn has_literal(code: &str, lit: &str) -> bool {
    let numy = |c: char| c.is_ascii_alphanumeric() || c == '_' || c == '.';
    let mut from = 0;
    while let Some(pos) = code[from..].find(lit) {
        let at = from + pos;
        let before_ok = at == 0 || !numy(code[..at].chars().next_back().unwrap_or(' '));
        let after_ok = !numy(code[at + lit.len()..].chars().next().unwrap_or(' '));
        if before_ok && after_ok {
            return true;
        }
        from = at + lit.len();
    }
    false
}

/// Forbidden sources of nondeterminism, with diagnostics.
const NONDETERMINISM: [(&str, &str); 6] = [
    (
        "thread_rng",
        "ambient RNG; use a seeded `mimd_sim::SimRng` stream instead",
    ),
    (
        "Instant::now",
        "wall-clock read in simulation code; use `SimTime` from the event loop",
    ),
    (
        "std::time::Instant",
        "wall-clock type in simulation code; use `SimTime`",
    ),
    (
        "SystemTime",
        "wall-clock type in simulation code; use `SimTime`",
    ),
    (
        "rand::random",
        "ambient RNG; use a seeded `mimd_sim::SimRng` stream instead",
    ),
    (
        "RandomState",
        "per-process-seeded hasher; iteration order will differ across runs",
    ),
];

/// Panicking constructs banned from hot paths.
const PANICKY: [(&str, &str); 6] = [
    (
        ".unwrap()",
        "convert to `Result`/`Option` handling (or `// simlint: allow(panic)` with a why)",
    ),
    (
        ".expect(",
        "convert to `Result`/`Option` handling (or `// simlint: allow(panic)` with a why)",
    ),
    (
        "panic!",
        "return an error instead of aborting the simulation",
    ),
    (
        "unreachable!",
        "return an error instead of aborting the simulation",
    ),
    ("todo!", "unfinished code must not ship in the engine"),
    (
        "unimplemented!",
        "unfinished code must not ship in the engine",
    ),
];

/// Threading and synchronization constructs banned below the harness.
///
/// The simulator's determinism story is "independent shard engines,
/// joined only at the conductor's deterministic merge, fanned out by
/// `mimd_harness::parallel_map` across cells" — any *other* thread, lock,
/// channel, or atomic underneath it either breaks reproducibility or
/// silently depends on it being unused. The engine's one sanctioned
/// thread seam (`ArraySim`'s structured shard run) carries an explicit
/// waiver; new seams must justify themselves the same way. `Arc` is
/// deliberately absent: sharing immutable data is order-free.
const PARALLELISM: [(&str, &str); 8] = [
    (
        "std::thread",
        "threads below the harness are banned outside the engine's waived conductor seam; \
         fan out via `mimd_harness::parallel_map` or merge like the sharded engine",
    ),
    (
        "thread::spawn",
        "threads below the harness are banned outside the engine's waived conductor seam; \
         fan out via `mimd_harness::parallel_map` or merge like the sharded engine",
    ),
    (
        "thread::scope",
        "threads below the harness are banned outside the engine's waived conductor seam; \
         fan out via `mimd_harness::parallel_map` or merge like the sharded engine",
    ),
    (
        "Mutex",
        "no shared mutable state below the harness; pass data by value or `Arc` of immutable data",
    ),
    (
        "RwLock",
        "no shared mutable state below the harness; pass data by value or `Arc` of immutable data",
    ),
    (
        "Condvar",
        "no blocking synchronization in simulation code; the event queue is the only scheduler",
    ),
    (
        "mpsc",
        "no channels in simulation code; return results from the harness's ordered map",
    ),
    (
        "sync::atomic",
        "atomics imply cross-thread mutation; simulation state is single-threaded by contract",
    ),
];

/// Filesystem-write entry points covered by the cache-hygiene rule.
///
/// Bench and harness code may only write under the `MIMD_JSON_DIR` and
/// `MIMD_CACHE_DIR` roots; the sanctioned helpers (`write_json`, the run
/// cache's store path) carry explicit waivers at each call site, so any
/// *new* write call is flagged until it is either routed through them or
/// justified.
const FS_WRITES: [&str; 7] = [
    "fs::write",
    "File::create",
    "create_dir_all",
    "OpenOptions",
    "fs::rename",
    "fs::remove_file",
    "fs::copy",
];

/// RNG constructions banned from the fault module.
///
/// Fault draws must come from the one named stream created in
/// `FaultCtx::new` (`SimRng::named(seed, "faults")`). An anonymous seed
/// or a fork of an engine stream would consume draws the fault-free run
/// doesn't, breaking the empty-plan byte-identity guarantee.
const FAULT_RNG: [(&str, &str); 2] = [
    (
        "seed_from",
        "fault code must draw from the dedicated `SimRng::named(seed, \"faults\")` stream",
    ),
    (
        ".fork(",
        "forking entangles fault draws with the parent stream; use the dedicated \
         `SimRng::named(seed, \"faults\")` stream",
    ),
];

/// Runs every in-scope line rule over a lexed file.
pub fn check(rel: &str, scope: &Scope, lx: &Lexed, out: &mut Vec<Finding>) {
    for (idx, line) in lx.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let lineno = idx + 1;
        let code = line.code.as_str();
        let mut push = |rule: Rule, message: String| {
            out.push(Finding::new(rel, lineno, rule, message));
        };

        if scope.determinism {
            for (needle, why) in NONDETERMINISM {
                if has_token(code, needle) {
                    push(Rule::Determinism, format!("`{needle}`: {why}"));
                }
            }
        }
        if scope.collections {
            for ty in ["HashMap", "HashSet"] {
                if has_token(code, ty) {
                    push(
                        Rule::Collections,
                        format!(
                            "`{ty}` has per-process iteration order; use `BTree{}` for \
                             reproducible runs",
                            &ty[4..]
                        ),
                    );
                }
            }
        }
        if scope.time_units {
            let has_time_ident = idents(code).any(is_time_ident);
            if has_time_ident {
                for lit in CONVERSION_LITERALS {
                    if has_literal(code, lit) {
                        push(
                            Rule::TimeUnits,
                            format!(
                                "raw time-unit conversion `{lit}` next to a time quantity; \
                                 route through `SimTime`/`SimDuration` or `mimd_sim::time` \
                                 constants"
                            ),
                        );
                        break;
                    }
                }
            }
        }
        if scope.panic {
            for (needle, why) in PANICKY {
                if has_token(code, needle) {
                    push(Rule::Panic, format!("`{needle}` in a no-panic zone; {why}"));
                }
            }
        }
        if scope.parallelism {
            for (needle, why) in PARALLELISM {
                if has_token(code, needle) {
                    push(Rule::Parallelism, format!("`{needle}`: {why}"));
                }
            }
        }
        if scope.fault_determinism {
            for (needle, why) in FAULT_RNG {
                if has_token(code, needle) {
                    push(Rule::FaultDeterminism, format!("`{needle}`: {why}"));
                }
            }
        }
        if scope.cache_hygiene {
            for needle in FS_WRITES {
                if has_token(code, needle) {
                    push(
                        Rule::CacheHygiene,
                        format!(
                            "`{needle}` writes the filesystem outside the sanctioned \
                             `MIMD_JSON_DIR`/`MIMD_CACHE_DIR` helpers; route through \
                             `mimd_harness::write_json` / the run cache, or waive with \
                             a why"
                        ),
                    );
                }
            }
        }
    }
}
