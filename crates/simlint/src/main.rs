//! CLI entry point: lint the workspace and report findings.
//!
//! Run from anywhere inside the workspace:
//!
//! ```text
//! cargo run -p simlint [-- --json[=FILE]] [--github]
//! ```
//!
//! - `--json` prints the machine-readable findings document (all
//!   findings, waived included) to stdout; `--json=FILE` writes it to
//!   FILE instead.
//! - `--github` prints one GitHub Actions workflow annotation
//!   (`::error file=..,line=..::..`) per active finding to stdout.
//!
//! Human diagnostics (`file:line: [rule] message`, active findings
//! only) always go to stderr. Exit codes are stable for CI: `0` clean,
//! `1` active findings, `2` I/O or usage failure.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Finds the workspace root: the nearest ancestor of the current
/// directory (or of this crate's manifest when run via cargo) that
/// contains a `Cargo.toml` with a `[workspace]` table.
fn workspace_root() -> Option<PathBuf> {
    let start = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .or_else(|| std::env::current_dir().ok())?;
    let mut dir: &Path = &start;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir.to_path_buf());
            }
        }
        dir = dir.parent()?;
    }
}

fn main() -> ExitCode {
    let mut json_to: Option<Option<PathBuf>> = None; // Some(None) = stdout
    let mut github = false;
    for arg in std::env::args().skip(1) {
        if arg == "--json" {
            json_to = Some(None);
        } else if let Some(path) = arg.strip_prefix("--json=") {
            json_to = Some(Some(PathBuf::from(path)));
        } else if arg == "--github" {
            github = true;
        } else {
            eprintln!(
                "simlint: unknown argument `{arg}` (usage: simlint [--json[=FILE]] [--github])"
            );
            return ExitCode::from(2);
        }
    }

    let Some(root) = workspace_root() else {
        eprintln!("simlint: no workspace Cargo.toml found above the current directory");
        return ExitCode::from(2);
    };
    let findings = match simlint::lint_workspace(&root) {
        Ok(findings) => findings,
        Err(err) => {
            eprintln!("simlint: I/O error: {err}");
            return ExitCode::from(2);
        }
    };

    if let Some(dest) = &json_to {
        let doc = simlint::findings_json(&findings);
        match dest {
            None => print!("{doc}"),
            Some(path) => {
                if let Err(err) = std::fs::write(path, &doc) {
                    eprintln!("simlint: cannot write {}: {err}", path.display());
                    return ExitCode::from(2);
                }
            }
        }
    }

    let active: Vec<&simlint::Finding> = findings.iter().filter(|f| !f.waived).collect();
    if github {
        for f in &active {
            println!("{}", f.github_annotation());
        }
    }
    for f in &active {
        eprintln!("{f}");
    }
    if active.is_empty() {
        let waived = findings.len();
        eprintln!(
            "simlint: workspace clean ({waived} waived finding{} on file)",
            if waived == 1 { "" } else { "s" }
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "simlint: {} active finding{}",
            active.len(),
            if active.len() == 1 { "" } else { "s" }
        );
        ExitCode::from(1)
    }
}
