//! CLI entry point: lint the workspace and report violations.
//!
//! Run from anywhere inside the workspace:
//!
//! ```text
//! cargo run -p simlint
//! ```
//!
//! Exit codes: `0` clean, `1` violations found, `2` I/O failure.
//! Diagnostics are `file:line: [rule] message`, one per line on stderr.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Finds the workspace root: the nearest ancestor of the current
/// directory (or of this crate's manifest when run via cargo) that
/// contains a `Cargo.toml` with a `[workspace]` table.
fn workspace_root() -> Option<PathBuf> {
    let start = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .or_else(|| std::env::current_dir().ok())?;
    let mut dir: &Path = &start;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir.to_path_buf());
            }
        }
        dir = dir.parent()?;
    }
}

fn main() -> ExitCode {
    let Some(root) = workspace_root() else {
        eprintln!("simlint: no workspace Cargo.toml found above the current directory");
        return ExitCode::from(2);
    };
    match simlint::lint_workspace(&root) {
        Ok(violations) if violations.is_empty() => {
            eprintln!("simlint: workspace clean");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                eprintln!("{v}");
            }
            eprintln!(
                "simlint: {} violation{} found",
                violations.len(),
                if violations.len() == 1 { "" } else { "s" }
            );
            ExitCode::from(1)
        }
        Err(err) => {
            eprintln!("simlint: I/O error: {err}");
            ExitCode::from(2)
        }
    }
}
