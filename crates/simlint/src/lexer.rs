//! A hand-rolled Rust lexer for the analyzer.
//!
//! One character-level pass over a source file produces everything the
//! later passes need, with string/comment content never leaking into any
//! of them:
//!
//! - a **token stream** ([`Token`]) with kinds (identifiers, literals,
//!   lifetimes, punctuation) and 1-based line numbers, for the item/model
//!   pass and the token-pattern rules;
//! - **masked line text** ([`Line::code`]): the source line with string,
//!   char, and comment content replaced by spaces, so substring rules
//!   (`has_token`-style) can never fire inside text;
//! - **waiver directives** ([`Directive`]), parsed **only** from plain
//!   `//` line comments — never from doc comments (`///`, `//!`), block
//!   comments, or string literals, so a quoted or commented-out
//!   `simlint: allow(...)` can neither suppress nor (as text) trigger a
//!   rule;
//! - `#[cfg(test)]` **regions**, tracked by brace depth, so test modules
//!   stay exempt.
//!
//! The lexer understands nested block comments, raw strings (`r"…"`,
//! `r#"…"#`, any hash depth), byte strings (`b"…"`, `br#"…"#`), char
//! literals vs lifetimes (`'a'` vs `'a`), raw identifiers (`r#match`),
//! and numeric literals including float exponents — `0..n` lexes as
//! `0`, `..`, `n`, never as a malformed float.

use crate::Rule;

/// What a token is. Literal *content* is deliberately not stored for
/// strings (rules must never match inside text); identifier text is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `SimRng`, `r#match` → `match`).
    Ident(String),
    /// A lifetime (`'a`), including the quote-less name.
    Lifetime(String),
    /// A string literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// A char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A numeric literal, verbatim (`1_000.0`, `0xFF`, `1e-9`).
    Num(String),
    /// One punctuation character (`::` is two `:` tokens).
    Punct(char),
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub line: usize,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }

    /// Whether this token is the given identifier.
    pub fn is_ident(&self, s: &str) -> bool {
        self.ident() == Some(s)
    }
}

/// A waiver directive parsed from a plain `//` comment.
#[derive(Debug, Clone)]
pub struct Directive {
    /// 1-based line the directive's comment sits on.
    pub line: usize,
    /// `true` when the directive's line holds no code, in which case it
    /// covers the next line instead (the conventional "waiver above").
    pub own_line: bool,
    /// The directive's payload.
    pub kind: DirectiveKind,
}

/// The two directive vocabularies.
#[derive(Debug, Clone)]
pub enum DirectiveKind {
    /// `// simlint: allow(rule, …) — reason`: waives the named rules.
    /// `reason` is the text after the closing paren, trimmed of leading
    /// separators; an empty reason makes the waiver invalid (reported,
    /// not honored).
    Allow { rules: Vec<Rule>, reason: String },
    /// `// simlint: shard-local(reason)`: asserts the interior-mutable
    /// state on this line is confined to one shard (one simulator, one
    /// drive queue, one thread) and waives `shared-mutability` for it.
    ShardLocal { reason: String },
}

/// One source line's masked text and test-region membership.
#[derive(Debug)]
pub struct Line {
    /// Line content with string/char literals and comments replaced by
    /// spaces. Identical in length to the source line.
    pub code: String,
    /// Whether the line is inside a `#[cfg(test)]` item.
    pub in_test: bool,
}

/// The complete result of lexing one file.
#[derive(Debug)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub lines: Vec<Line>,
    pub directives: Vec<Directive>,
}

impl Lexed {
    /// Whether the token at `idx` lies inside a `#[cfg(test)]` region.
    pub fn token_in_test(&self, idx: usize) -> bool {
        self.tokens
            .get(idx)
            .and_then(|t| self.lines.get(t.line - 1))
            .is_some_and(|l| l.in_test)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    tokens: Vec<Token>,
    lines: Vec<Line>,
    directives: Vec<Directive>,
    /// Masked text of the line currently being built.
    cur: String,
    /// Whether any code (non-comment, non-whitespace) appeared on the
    /// current line before the directive comment under construction.
    cur_has_code: bool,
    depth: i64,
    pending_test_attr: bool,
    test_until_depth: Option<i64>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            tokens: Vec::new(),
            lines: Vec::new(),
            directives: Vec::new(),
            cur: String::new(),
            cur_has_code: false,
            depth: 0,
            pending_test_attr: false,
            test_until_depth: None,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, k: usize) -> Option<u8> {
        self.src.get(self.pos + k).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.finish_line();
        }
        Some(b)
    }

    fn finish_line(&mut self) {
        self.lines.push(Line {
            code: std::mem::take(&mut self.cur),
            in_test: self.test_until_depth.is_some(),
        });
        self.cur_has_code = false;
        self.line += 1;
    }

    fn mask(&mut self, b: u8) {
        // Replace literal/comment content by spaces, keeping line length.
        if b != b'\n' {
            self.cur.push(' ');
        }
    }

    fn emit(&mut self, b: u8) {
        if b != b'\n' {
            self.cur.push(b as char);
            if !(b as char).is_whitespace() {
                self.cur_has_code = true;
            }
        }
    }

    fn push_token(&mut self, kind: TokenKind) {
        self.tokens.push(Token {
            kind,
            line: self.line,
        });
    }

    fn run(mut self) -> Lexed {
        while let Some(b) = self.peek() {
            match b {
                b'/' if self.peek_at(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek_at(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(0, false),
                b'r' | b'b' => {
                    if !self.raw_or_byte_prefix() {
                        self.ident_or_keyword();
                    }
                }
                b'\'' => self.char_or_lifetime(),
                _ if is_ident_start(b as char) => self.ident_or_keyword(),
                _ if (b as char).is_ascii_digit() => self.number(),
                b'\n' => {
                    self.bump();
                }
                _ => self.punct(),
            }
        }
        if !self.cur.is_empty() || self.cur_has_code {
            self.finish_line();
        }
        Lexed {
            tokens: self.tokens,
            lines: self.lines,
            directives: self.directives,
        }
    }

    /// Consumes `//…` to end of line. Plain `//` comments (not `///` or
    /// `//!` docs) are scanned for directives.
    fn line_comment(&mut self) {
        let doc = matches!(self.peek_at(2), Some(b'/') | Some(b'!'))
            // `////…` is a plain comment again (rustdoc's rule).
            && !(self.peek_at(2) == Some(b'/') && self.peek_at(3) == Some(b'/'));
        let had_code = self.cur_has_code;
        let start_line = self.line;
        let mut bytes = Vec::new();
        while let Some(b) = self.peek() {
            if b == b'\n' {
                break;
            }
            bytes.push(b);
            self.mask(b);
            self.pos += 1;
        }
        if !doc {
            let text = String::from_utf8_lossy(&bytes).into_owned();
            self.parse_directives(&text, start_line, !had_code);
        }
    }

    /// Consumes a (nested) `/* … */` block comment. Its text is discarded:
    /// block comments can neither trigger rules nor carry waivers.
    fn block_comment(&mut self) {
        self.mask(b'/');
        self.mask(b'*');
        self.pos += 2;
        let mut depth = 1u32;
        while depth > 0 {
            match self.peek() {
                None => break,
                Some(b'*') if self.peek_at(1) == Some(b'/') => {
                    depth -= 1;
                    self.mask(b'*');
                    self.mask(b'/');
                    self.pos += 2;
                }
                Some(b'/') if self.peek_at(1) == Some(b'*') => {
                    depth += 1;
                    self.mask(b'/');
                    self.mask(b'*');
                    self.pos += 2;
                }
                Some(b) => {
                    self.mask(b);
                    self.pos += 1;
                    if b == b'\n' {
                        self.finish_line();
                    }
                }
            }
        }
    }

    /// Handles `r"…"`, `r#"…"#`, `r#ident`, `b"…"`, `b'…'`, `br#"…"#`.
    /// Returns false if the `r`/`b` starts an ordinary identifier.
    fn raw_or_byte_prefix(&mut self) -> bool {
        let b0 = self.peek().expect("caller saw a byte");
        let mut k = 1;
        if b0 == b'b' && self.peek_at(k) == Some(b'r') {
            k += 1;
        }
        let mut hashes = 0usize;
        while self.peek_at(k + hashes) == Some(b'#') {
            hashes += 1;
        }
        match self.peek_at(k + hashes) {
            Some(b'"') => {
                let raw = b0 == b'r' || k == 2; // r"…", r#"…"#, br#"…"#
                if raw {
                    for _ in 0..k + hashes + 1 {
                        let c = self.peek().expect("prefix bytes exist");
                        self.mask(c);
                        self.pos += 1;
                    }
                    self.raw_string_body(hashes);
                } else {
                    // b"…": escape-aware, not raw.
                    self.mask(b'b');
                    self.pos += 1;
                    self.string(0, true);
                }
                true
            }
            Some(c) if b0 == b'r' && hashes == 1 && is_ident_start(c as char) => {
                // Raw identifier r#name: token is the bare name.
                self.mask(b'r');
                self.mask(b'#');
                self.pos += 2;
                self.ident_or_keyword();
                true
            }
            Some(b'\'') if b0 == b'b' && hashes == 0 => {
                self.mask(b'b');
                self.pos += 1;
                self.char_literal_body();
                true
            }
            _ => false,
        }
    }

    /// Consumes a non-raw string body after the opening quote was seen at
    /// `pos` (for `string(0, …)` the quote itself is still pending).
    fn string(&mut self, _hashes: usize, _byte: bool) {
        self.mask(b'"');
        self.pos += 1;
        while let Some(b) = self.peek() {
            match b {
                b'\\' => {
                    self.mask(b);
                    self.pos += 1;
                    if let Some(e) = self.peek() {
                        self.mask(e);
                        self.pos += 1;
                        if e == b'\n' {
                            self.finish_line();
                        }
                    }
                }
                b'"' => {
                    self.mask(b);
                    self.pos += 1;
                    break;
                }
                b'\n' => {
                    self.pos += 1;
                    self.finish_line();
                }
                _ => {
                    self.mask(b);
                    self.pos += 1;
                }
            }
        }
        self.push_token(TokenKind::Str);
    }

    /// Consumes a raw-string body after the opening quote; closes on `"`
    /// followed by `hashes` hash marks.
    fn raw_string_body(&mut self, hashes: usize) {
        loop {
            match self.peek() {
                None => break,
                Some(b'"') => {
                    let mut seen = 0;
                    while seen < hashes && self.peek_at(1 + seen) == Some(b'#') {
                        seen += 1;
                    }
                    if seen == hashes {
                        for _ in 0..=hashes {
                            let c = self.peek().expect("closer bytes exist");
                            self.mask(c);
                            self.pos += 1;
                        }
                        break;
                    }
                    self.mask(b'"');
                    self.pos += 1;
                }
                Some(b'\n') => {
                    self.pos += 1;
                    self.finish_line();
                }
                Some(b) => {
                    self.mask(b);
                    self.pos += 1;
                }
            }
        }
        self.push_token(TokenKind::Str);
    }

    /// Disambiguates `'a'` (char literal) from `'a` (lifetime).
    fn char_or_lifetime(&mut self) {
        // Lifetime: quote, ident start, and the char after the ident run
        // is NOT a closing quote.
        if let Some(c1) = self.peek_at(1) {
            if is_ident_start(c1 as char) && c1 != b'\\' {
                let mut k = 2;
                while self
                    .peek_at(k)
                    .is_some_and(|c| is_ident_continue(c as char))
                {
                    k += 1;
                }
                if self.peek_at(k) != Some(b'\'') {
                    // Lifetime.
                    self.emit(b'\'');
                    self.pos += 1;
                    let mut name = String::new();
                    while let Some(c) = self.peek() {
                        if is_ident_continue(c as char) {
                            name.push(c as char);
                            self.emit(c);
                            self.pos += 1;
                        } else {
                            break;
                        }
                    }
                    self.push_token(TokenKind::Lifetime(name));
                    return;
                }
            }
        }
        self.char_literal_body();
    }

    fn char_literal_body(&mut self) {
        self.mask(b'\'');
        self.pos += 1;
        match self.peek() {
            Some(b'\\') => {
                self.mask(b'\\');
                self.pos += 1;
                // The escaped character itself (may be a quote), then
                // everything through the real closing quote.
                if let Some(e) = self.peek() {
                    self.mask(e);
                    self.pos += 1;
                }
                while let Some(b) = self.peek() {
                    self.mask(b);
                    self.pos += 1;
                    if b == b'\'' {
                        break;
                    }
                }
            }
            Some(_) => {
                // Possibly multi-byte UTF-8; consume until closing quote.
                while let Some(b) = self.peek() {
                    self.mask(b);
                    self.pos += 1;
                    if b == b'\'' {
                        break;
                    }
                }
            }
            None => {}
        }
        self.push_token(TokenKind::Char);
    }

    fn ident_or_keyword(&mut self) {
        let mut name = String::new();
        while let Some(b) = self.peek() {
            if is_ident_continue(b as char) {
                name.push(b as char);
                self.emit(b);
                self.pos += 1;
            } else {
                break;
            }
        }
        self.push_token(TokenKind::Ident(name));
    }

    /// Lexes a numeric literal. Stops before `..` so ranges never merge
    /// into a float (`0..n`), and takes an exponent only when it is
    /// well-formed (`1e9`, `1e-9` — but `11e9` is still one literal; the
    /// *rules* decide what counts as a conversion).
    fn number(&mut self) {
        let mut text = String::new();
        let take = |this: &mut Self, pred: fn(u8) -> bool, text: &mut String| {
            while let Some(b) = this.peek() {
                if pred(b) {
                    text.push(b as char);
                    this.emit(b);
                    this.pos += 1;
                } else {
                    break;
                }
            }
        };
        let digitish = |b: u8| (b as char).is_ascii_alphanumeric() || b == b'_';
        take(self, digitish, &mut text);
        // Fraction: a dot followed by a digit (not `..`, not `.method()`).
        if self.peek() == Some(b'.')
            && self
                .peek_at(1)
                .is_some_and(|c| (c as char).is_ascii_digit())
        {
            text.push('.');
            self.emit(b'.');
            self.pos += 1;
            take(self, digitish, &mut text);
        } else if self.peek() == Some(b'.')
            && self.peek_at(1) != Some(b'.')
            && !self.peek_at(1).is_some_and(|c| is_ident_start(c as char))
        {
            // Trailing-dot float (`1.`).
            text.push('.');
            self.emit(b'.');
            self.pos += 1;
        }
        // Exponent sign (`1e-9`): the alnum run above already ate `e9`,
        // but a sign needs explicit stitching.
        if (text.ends_with('e') || text.ends_with('E'))
            && matches!(self.peek(), Some(b'+') | Some(b'-'))
            && self
                .peek_at(1)
                .is_some_and(|c| (c as char).is_ascii_digit())
        {
            let sign = self.peek().expect("sign byte");
            text.push(sign as char);
            self.emit(sign);
            self.pos += 1;
            take(self, digitish, &mut text);
        }
        self.push_token(TokenKind::Num(text));
    }

    fn punct(&mut self) {
        let b = self.peek().expect("caller saw a byte");
        self.emit(b);
        self.pos += 1;
        if !(b as char).is_whitespace() {
            self.push_token(TokenKind::Punct(b as char));
        }
        match b {
            b'{' => {
                self.depth += 1;
                if self.pending_test_attr {
                    self.pending_test_attr = false;
                    self.test_until_depth = Some(self.depth - 1);
                }
            }
            b'}' => {
                self.depth -= 1;
                if self.test_until_depth == Some(self.depth) {
                    self.test_until_depth = None;
                }
            }
            // Closed an attribute? Check for a trailing #[cfg(test)].
            b']' if self.test_until_depth.is_none() && self.cfg_test_just_closed() => {
                self.pending_test_attr = true;
            }
            _ => {}
        }
    }

    /// Whether the token stream now ends in `# [ cfg ( test ) ]`.
    fn cfg_test_just_closed(&self) -> bool {
        let n = self.tokens.len();
        if n < 7 {
            return false;
        }
        let t = &self.tokens[n - 7..];
        t[0].is_punct('#')
            && t[1].is_punct('[')
            && t[2].is_ident("cfg")
            && t[3].is_punct('(')
            && t[4].is_ident("test")
            && t[5].is_punct(')')
            && t[6].is_punct(']')
    }

    /// Parses `simlint: allow(…)` and `simlint: shard-local(…)` out of a
    /// plain line comment's text.
    fn parse_directives(&mut self, text: &str, line: usize, own_line: bool) {
        let mut rest = text;
        while let Some(pos) = rest.find("simlint:") {
            let after = rest[pos + "simlint:".len()..].trim_start();
            if let Some(args) = after.strip_prefix("allow(") {
                if let Some(close) = args.find(')') {
                    let rules: Vec<Rule> = args[..close]
                        .split(',')
                        .filter_map(|n| Rule::from_name(n.trim()))
                        .collect();
                    let reason = trim_reason(&args[close + 1..]);
                    self.directives.push(Directive {
                        line,
                        own_line,
                        kind: DirectiveKind::Allow { rules, reason },
                    });
                    rest = &args[close..];
                    continue;
                }
            } else if let Some(args) = after.strip_prefix("shard-local(") {
                if let Some(close) = args.rfind(')') {
                    let reason = args[..close].trim().to_string();
                    self.directives.push(Directive {
                        line,
                        own_line,
                        kind: DirectiveKind::ShardLocal { reason },
                    });
                    rest = &args[close..];
                    continue;
                }
            }
            rest = &rest[pos + "simlint:".len()..];
        }
    }
}

/// Strips the conventional separators off a waiver's trailing reason.
fn trim_reason(s: &str) -> String {
    s.trim_start_matches([' ', '\t', '—', '-', ':', ';'])
        .trim()
        .to_string()
}

/// Lexes one file.
pub fn lex(source: &str) -> Lexed {
    Lexer::new(source).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(l: &Lexed) -> Vec<&str> {
        l.tokens.iter().filter_map(|t| t.ident()).collect()
    }

    #[test]
    fn masks_strings_and_comments() {
        let l = lex("let s = \"x.unwrap()\"; // trailing\n/* HashMap */ let t = 1;\n");
        assert!(!l.lines[0].code.contains("unwrap"));
        assert!(!l.lines[0].code.contains("trailing"));
        assert!(!l.lines[1].code.contains("HashMap"));
        assert!(l.lines[1].code.contains("let t = 1;"));
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        let l = lex("let a = r\"un\\wrap\"; let b = r##\"x \"# y\"##; let c = a;\n");
        assert!(!l.lines[0].code.contains("wrap"));
        assert!(l.lines[0].code.contains("let c = a;"));
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokenKind::Str).count(),
            2
        );
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let l = lex("let a = b\"bytes\"; let c = b'x'; let r = br#\"raw\"#;\n");
        assert!(!l.lines[0].code.contains("bytes"));
        assert!(!l.lines[0].code.contains("raw"));
        let kinds: Vec<_> = l.tokens.iter().map(|t| &t.kind).collect();
        assert!(kinds.contains(&&TokenKind::Str));
        assert!(kinds.contains(&&TokenKind::Char));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) -> char { let c = 'x'; let q = '\\''; c }\n");
        assert!(l
            .tokens
            .iter()
            .any(|t| matches!(&t.kind, TokenKind::Lifetime(n) if n == "a")));
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Char)
                .count(),
            2
        );
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let l = lex("let r = 0..n; let f = 1.5e-3; let m = 4.max(2); let t = 1_000.0;\n");
        let nums: Vec<&str> = l
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Num(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(nums, vec!["0", "1.5e-3", "4", "2", "1_000.0"]);
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let l = lex("/* a /* b */ c */ let x = 1;\n");
        assert!(l.lines[0].code.contains("let x = 1;"));
        assert!(!l.lines[0].code.contains('a'));
    }

    #[test]
    fn directives_only_from_plain_line_comments() {
        let src = "\
let a = 1; // simlint: allow(panic) — fine here\n\
/// simlint: allow(panic) — doc text, not a directive\n\
//! simlint: allow(panic) — module doc, not a directive\n\
/* simlint: allow(panic) — block comment, not a directive */\n\
let s = \"simlint: allow(panic) — string, not a directive\";\n";
        let l = lex(src);
        assert_eq!(l.directives.len(), 1, "{:?}", l.directives);
        assert_eq!(l.directives[0].line, 1);
        assert!(!l.directives[0].own_line);
    }

    #[test]
    fn own_line_directive_flagged_as_such() {
        let l = lex("    // simlint: allow(panic) — next line\n    x.unwrap();\n");
        assert_eq!(l.directives.len(), 1);
        assert!(l.directives[0].own_line);
    }

    #[test]
    fn shard_local_directive_parses_reason() {
        let l = lex("phase: Cell<f64>, // simlint: shard-local(per-queue memo, one drive)\n");
        match &l.directives[0].kind {
            DirectiveKind::ShardLocal { reason } => {
                assert_eq!(reason, "per-queue memo, one drive");
            }
            other => panic!("wrong directive: {other:?}"),
        }
    }

    #[test]
    fn allow_reason_extracted_after_close_paren() {
        let l = lex("x.unwrap() // simlint: allow(panic, time-units) — checked above\n");
        match &l.directives[0].kind {
            DirectiveKind::Allow { rules, reason } => {
                assert_eq!(rules.len(), 2);
                assert_eq!(reason, "checked above");
            }
            other => panic!("wrong directive: {other:?}"),
        }
    }

    #[test]
    fn allow_without_reason_is_empty_string() {
        let l = lex("x.unwrap() // simlint: allow(panic)\n");
        match &l.directives[0].kind {
            DirectiveKind::Allow { reason, .. } => assert!(reason.is_empty()),
            other => panic!("wrong directive: {other:?}"),
        }
    }

    #[test]
    fn cfg_test_regions_cover_braced_items() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn live2() {}\n";
        let l = lex(src);
        assert!(!l.lines[0].in_test);
        assert!(l.lines[3].in_test);
        assert!(!l.lines[5].in_test);
    }

    #[test]
    fn raw_identifiers_lex_as_bare_names() {
        let l = lex("let r#match = 1; let x = r#match;\n");
        assert_eq!(idents(&l).iter().filter(|i| **i == "match").count(), 2);
    }

    #[test]
    fn multiline_strings_mask_every_line() {
        let l = lex("let s = \"line one\nunwrap() inside\";\nlet x = 1;\n");
        assert!(!l.lines[1].code.contains("unwrap"));
        assert!(l.lines[2].code.contains("let x = 1;"));
    }
}
