//! Project-specific static analysis for the MimdRAID workspace.
//!
//! The paper's headline validation (Figure 5: two independently built
//! timing paths agreeing to within a few percent) only means something if
//! the simulator is bit-for-bit deterministic and unit-correct — and
//! ROADMAP item 1 (the sharded engine) will multiply the ways that can
//! silently break. `simlint` enforces the coding rules that protect the
//! determinism bar, as a multi-pass analyzer with **no dependencies** so
//! it runs offline and in CI:
//!
//! 1. a hand-rolled lexer ([`lexer`]) — comments, raw strings,
//!    lifetimes, and `#[cfg(test)]` regions, so no rule ever fires
//!    inside (or is waived by) a string or comment;
//! 2. an item/scope pass ([`model`]) — fns with impl-qualified names,
//!    structs, and a conservative name-based call graph reachable from
//!    the sim entry points (`ArraySim::run*`/`::new`,
//!    `EventQueue::push`/`pop*`, `DriveQueue::pick*`);
//! 3. the rules ([`rules`]) — seven line-pattern rules carried over
//!    from the original scanner, plus three model-based shard-safety
//!    rules ([`Rule::SharedMutability`], [`Rule::FloatOrder`],
//!    [`Rule::RngProvenance`]).
//!
//! A finding can be waived with a justification comment on the same
//! line or the line above; **the reason is mandatory** — a bare
//! directive leaves the finding active:
//!
//! ```text
//! let ppm = frac * 1e6; // simlint: allow(time-units) — ppm, not a time unit
//! phase: Cell<f64>,     // simlint: shard-local(per-queue memo, one owner)
//! ```
//!
//! Test modules (`#[cfg(test)]`), doc comments, strings, and the
//! `tests/`, `benches/`, and `examples/` trees are exempt.

use std::fmt;
use std::path::Path;

pub mod lexer;
pub mod model;
pub mod rules;

use lexer::{Directive, DirectiveKind};

/// The lint rules, named as they appear in `// simlint: allow(...)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Wall-clock time or ambient randomness in simulation code.
    Determinism,
    /// Randomised-iteration-order collections in deterministic crates.
    Collections,
    /// Raw floating-point time-unit arithmetic outside `simcore::time`.
    TimeUnits,
    /// Panicking calls in the engine / disk-model hot paths.
    Panic,
    /// Threading/synchronization primitives below the harness layer.
    Parallelism,
    /// Filesystem writes outside the sanctioned env-var roots in bench /
    /// harness code.
    CacheHygiene,
    /// RNG construction outside the dedicated named stream in fault code.
    FaultDeterminism,
    /// Interior-mutable state reachable from sim code without a
    /// `shard-local` annotation.
    SharedMutability,
    /// f64 accumulation whose iteration order a sharded engine could
    /// permute.
    FloatOrder,
    /// `SimRng` construction that does not flow from `SimRng::named`
    /// with a string-literal stream name.
    RngProvenance,
}

impl Rule {
    /// The rule's name in diagnostics and `allow(...)` directives.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Determinism => "determinism",
            Rule::Collections => "collections",
            Rule::TimeUnits => "time-units",
            Rule::Panic => "panic",
            Rule::Parallelism => "parallelism",
            Rule::CacheHygiene => "cache-hygiene",
            Rule::FaultDeterminism => "fault-determinism",
            Rule::SharedMutability => "shared-mutability",
            Rule::FloatOrder => "float-order",
            Rule::RngProvenance => "rng-provenance",
        }
    }

    /// Parses a rule name as written in an `allow(...)` directive.
    pub fn from_name(name: &str) -> Option<Rule> {
        match name {
            "determinism" => Some(Rule::Determinism),
            "collections" => Some(Rule::Collections),
            "time-units" => Some(Rule::TimeUnits),
            "panic" => Some(Rule::Panic),
            "parallelism" => Some(Rule::Parallelism),
            "cache-hygiene" => Some(Rule::CacheHygiene),
            "fault-determinism" => Some(Rule::FaultDeterminism),
            "shared-mutability" => Some(Rule::SharedMutability),
            "float-order" => Some(Rule::FloatOrder),
            "rng-provenance" => Some(Rule::RngProvenance),
            _ => None,
        }
    }

    /// Diagnostic severity. Every current rule is an error: the
    /// workspace ships clean or annotated, never "warned".
    pub fn severity(self) -> Severity {
        Severity::Error
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Finding severity, reported in `--json` output and CI annotations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    Error,
    Warning,
}

impl Severity {
    pub fn name(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// One rule finding at a source location, waived or active.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path of the file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable description of what was matched.
    pub message: String,
    /// Whether a reasoned waiver directive covers this finding.
    pub waived: bool,
    /// The waiver's justification text, when waived.
    pub waiver_reason: Option<String>,
}

impl Finding {
    fn new(file: &str, line: usize, rule: Rule, message: String) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            rule,
            message,
            waived: false,
            waiver_reason: None,
        }
    }

    /// A GitHub Actions workflow annotation for this finding.
    pub fn github_annotation(&self) -> String {
        format!(
            "::{} file={},line={}::[{}] {}",
            self.rule.severity().name(),
            self.file,
            self.line,
            self.rule,
            self.message
        )
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Which rule set applies to a file, derived from its workspace path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scope {
    pub(crate) determinism: bool,
    pub(crate) collections: bool,
    pub(crate) time_units: bool,
    pub(crate) panic: bool,
    pub(crate) parallelism: bool,
    pub(crate) cache_hygiene: bool,
    pub(crate) fault_determinism: bool,
    pub(crate) shared_mutability: bool,
    pub(crate) float_order: bool,
    pub(crate) rng_provenance: bool,
}

impl Scope {
    /// No rules — the file is not linted.
    pub const EXEMPT: Scope = Scope {
        determinism: false,
        collections: false,
        time_units: false,
        panic: false,
        parallelism: false,
        cache_hygiene: false,
        fault_determinism: false,
        shared_mutability: false,
        float_order: false,
        rng_provenance: false,
    };

    /// Derives the applicable rules from a workspace-relative path
    /// (forward slashes).
    ///
    /// Integration tests, benches, examples, and the analyzer's fixture
    /// corpus are exempt wholesale: they may time wall-clock runs or use
    /// panicking asserts freely.
    pub fn for_path(rel: &str) -> Scope {
        let rel = rel.replace('\\', "/");
        if rel.contains("/tests/") || rel.contains("/benches/") || rel.starts_with("examples/") {
            return Scope::EXEMPT;
        }
        let in_src_of = |krate: &str| rel.starts_with(&format!("crates/{krate}/src/"));
        let sim_crate = in_src_of("simcore")
            || in_src_of("core")
            || in_src_of("diskmodel")
            || in_src_of("workloads")
            || rel.starts_with("src/");
        let any_src =
            (rel.starts_with("crates/") && rel.contains("/src/")) || rel.starts_with("src/");
        Scope {
            determinism: sim_crate,
            collections: in_src_of("simcore") || in_src_of("core") || in_src_of("diskmodel"),
            time_units: sim_crate && rel != "crates/simcore/src/time.rs",
            panic: rel.starts_with("crates/core/src/engine/") || in_src_of("diskmodel"),
            parallelism: sim_crate,
            cache_hygiene: in_src_of("bench") || in_src_of("harness"),
            // The fault layer plus the parity modules: degraded reads,
            // RMW planning, and reconstruction must draw no RNG of their
            // own — all fault randomness comes from the one named stream
            // in faults.rs.
            fault_determinism: rel == "crates/core/src/faults.rs"
                || rel == "crates/core/src/layout/parity.rs"
                || rel == "crates/core/src/engine/shard/parity.rs",
            shared_mutability: sim_crate,
            float_order: sim_crate,
            // Workspace-wide: a SimRng exists only to feed sim code. The
            // constructor's own home and the analyzer are the exceptions.
            rng_provenance: any_src && rel != "crates/simcore/src/rng.rs" && !in_src_of("simlint"),
        }
    }

    /// Whether no rule applies.
    pub fn is_exempt(&self) -> bool {
        *self == Scope::EXEMPT
    }

    /// Whether this file participates in the item/call-graph model.
    fn in_model(&self) -> bool {
        self.shared_mutability
    }
}

/// One in-memory source file: the pure input to [`lint_files`].
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path (drives [`Scope::for_path`]).
    pub path: String,
    pub source: String,
}

/// Lints a set of files as one workspace: builds the cross-file model,
/// runs every in-scope rule, and applies waiver directives. Returns all
/// findings — waived ones included, marked — sorted by file and line.
///
/// This is the pure core that the fixture corpus drives;
/// [`lint_workspace`] wires it to the filesystem.
pub fn lint_files(files: &[SourceFile]) -> Vec<Finding> {
    let lexed: Vec<(String, Scope, lexer::Lexed)> = files
        .iter()
        .map(|f| {
            let rel = f.path.replace('\\', "/");
            let scope = Scope::for_path(&rel);
            (rel, scope, lexer::lex(&f.source))
        })
        .collect();
    let model_inputs: Vec<(&str, &lexer::Lexed)> = lexed
        .iter()
        .filter(|(_, s, _)| s.in_model())
        .map(|(p, _, l)| (p.as_str(), l))
        .collect();
    let ws = model::Workspace::build(&model_inputs);

    let mut out = Vec::new();
    for (rel, scope, lx) in &lexed {
        if scope.is_exempt() {
            continue;
        }
        let mut found = Vec::new();
        rules::line::check(rel, scope, lx, &mut found);
        rules::shard::check(rel, scope, lx, &ws, &mut found);
        apply_waivers(&mut found, &lx.directives);
        out.extend(found);
    }
    out.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });
    out.dedup();
    out
}

/// Lints one file's source text (scope derived from its path).
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Finding> {
    lint_files(&[SourceFile {
        path: rel_path.to_string(),
        source: source.to_string(),
    }])
}

/// Marks findings covered by a reasoned directive as waived. A
/// directive with no reason does **not** waive — the finding stays
/// active with an explanatory note, so every waiver in the tree carries
/// its why.
fn apply_waivers(findings: &mut [Finding], directives: &[Directive]) {
    for f in findings.iter_mut() {
        for d in directives {
            let covers = d.line == f.line || (d.own_line && d.line + 1 == f.line);
            if !covers {
                continue;
            }
            let (matches, reason) = match &d.kind {
                DirectiveKind::Allow { rules, reason } => (rules.contains(&f.rule), reason),
                DirectiveKind::ShardLocal { reason } => (f.rule == Rule::SharedMutability, reason),
            };
            if !matches {
                continue;
            }
            if reason.is_empty() {
                f.message.push_str(
                    " (waiver present but missing a reason — add one after the directive)",
                );
            } else {
                f.waived = true;
                f.waiver_reason = Some(reason.clone());
            }
            break;
        }
    }
}

/// Recursively lints every `.rs` file under `root` (a workspace
/// checkout). Returns all findings (waived included) sorted by file and
/// line; filter on [`Finding::waived`] for the active set.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut paths = Vec::new();
    for top in ["crates", "src"] {
        collect_rs_files(&root.join(top), &mut paths)?;
    }
    paths.sort();
    let mut files = Vec::new();
    for path in paths {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if Scope::for_path(&rel).is_exempt() {
            continue;
        }
        files.push(SourceFile {
            path: rel,
            source: std::fs::read_to_string(&path)?,
        });
    }
    Ok(lint_files(&files))
}

fn collect_rs_files(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            // `target/` never appears under crates/*/src, but guard anyway.
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as the stable machine-readable document consumed by
/// CI: `{"version":1,"counts":{..},"findings":[..]}`.
pub fn findings_json(findings: &[Finding]) -> String {
    let active = findings.iter().filter(|f| !f.waived).count();
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"version\":1,\"counts\":{{\"total\":{},\"active\":{},\"waived\":{}}},\"findings\":[",
        findings.len(),
        active,
        findings.len() - active
    ));
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"severity\":\"{}\",\
             \"message\":\"{}\",\"waived\":{},\"waiver_reason\":{}}}",
            json_escape(&f.file),
            f.line,
            f.rule,
            f.rule.severity().name(),
            json_escape(&f.message),
            f.waived,
            match &f.waiver_reason {
                Some(r) => format!("\"{}\"", json_escape(r)),
                None => "null".to_string(),
            }
        ));
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const ENGINE: &str = "crates/core/src/engine/mod.rs";
    const SIM: &str = "crates/simcore/src/event.rs";

    fn active(v: &[Finding]) -> Vec<(usize, Rule)> {
        v.iter()
            .filter(|x| !x.waived)
            .map(|x| (x.line, x.rule))
            .collect()
    }

    #[test]
    fn scope_map_matches_workspace_layout() {
        assert!(Scope::for_path("crates/core/src/engine/cache.rs").panic);
        assert!(!Scope::for_path("crates/core/src/sched.rs").panic);
        assert!(Scope::for_path("crates/diskmodel/src/disk.rs").panic);
        assert!(Scope::for_path("crates/workloads/src/synth.rs").determinism);
        assert!(!Scope::for_path("crates/workloads/src/synth.rs").collections);
        assert!(!Scope::for_path("crates/simcore/src/time.rs").time_units);
        assert!(Scope::for_path("crates/core/tests/model_properties.rs").is_exempt());
        assert!(Scope::for_path("examples/quickstart.rs").is_exempt());
        assert!(Scope::for_path("crates/simlint/src/lib.rs").is_exempt());
        assert!(Scope::for_path("crates/simlint/tests/fixtures/panic/hit.rs").is_exempt());
        let bench_bin = Scope::for_path("crates/bench/src/bin/fig05_validation.rs");
        assert!(bench_bin.cache_hygiene && !bench_bin.is_exempt());
        assert!(!(bench_bin.parallelism || bench_bin.determinism || bench_bin.panic));
        let pool = Scope::for_path("crates/harness/src/pool.rs");
        assert!(pool.cache_hygiene && !pool.is_exempt());
        assert!(!(pool.parallelism || pool.determinism || pool.time_units));
        assert!(Scope::for_path("crates/harness/tests/cache_properties.rs").is_exempt());
        assert!(Scope::for_path("crates/bench/benches/hot_paths.rs").is_exempt());
        assert!(!Scope::for_path("crates/core/src/engine/mod.rs").cache_hygiene);
        let faults = Scope::for_path("crates/core/src/faults.rs");
        assert!(faults.fault_determinism && faults.determinism && faults.collections);
        assert!(!Scope::for_path("crates/core/src/engine/mod.rs").fault_determinism);
        assert!(!Scope::for_path("crates/simcore/src/rng.rs").fault_determinism);
        // The parity modules carry the same no-local-RNG obligation.
        assert!(Scope::for_path("crates/core/src/layout/parity.rs").fault_determinism);
        assert!(Scope::for_path("crates/core/src/engine/shard/parity.rs").fault_determinism);
    }

    #[test]
    fn shard_rules_scope() {
        // The three shard-safety rules cover the sim crates; rng
        // provenance reaches every crate's src (bench bins construct the
        // RNGs the sim consumes) except the constructor's own home.
        for p in [
            "crates/simcore/src/event.rs",
            "crates/core/src/dqueue.rs",
            "crates/diskmodel/src/seek.rs",
            "crates/workloads/src/synth.rs",
        ] {
            let s = Scope::for_path(p);
            assert!(
                s.shared_mutability && s.float_order && s.rng_provenance,
                "{p}"
            );
        }
        assert!(Scope::for_path("crates/bench/src/bin/fig06_cello_latency.rs").rng_provenance);
        assert!(Scope::for_path("crates/harness/src/grid.rs").rng_provenance);
        assert!(!Scope::for_path("crates/harness/src/grid.rs").shared_mutability);
        assert!(!Scope::for_path("crates/simcore/src/rng.rs").rng_provenance);
        assert!(Scope::for_path("crates/simcore/src/rng.rs").shared_mutability);
        assert!(!Scope::for_path("crates/simlint/src/rules/shard.rs").rng_provenance);
    }

    #[test]
    fn flags_panicky_calls_with_line_numbers() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    let y = x.unwrap();\n    y\n}\n\
                   fn g() {\n    panic!(\"boom\");\n}\n";
        let v = lint_source(ENGINE, src);
        assert_eq!(active(&v), vec![(2, Rule::Panic), (6, Rule::Panic)]);
    }

    #[test]
    fn allow_directive_with_reason_waives_same_line() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // simlint: allow(panic) — checked above\n}\n";
        let v = lint_source(ENGINE, src);
        assert!(active(&v).is_empty(), "{v:?}");
        assert_eq!(v.len(), 1);
        assert!(v[0].waived);
        assert_eq!(v[0].waiver_reason.as_deref(), Some("checked above"));
    }

    #[test]
    fn allow_directive_waives_next_line() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    // simlint: allow(panic) — checked above\n    x.unwrap()\n}\n";
        let v = lint_source(ENGINE, src);
        assert!(active(&v).is_empty(), "{v:?}");
    }

    #[test]
    fn waiver_without_reason_does_not_suppress() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // simlint: allow(panic)\n}\n";
        let v = lint_source(ENGINE, src);
        assert_eq!(active(&v), vec![(2, Rule::Panic)]);
        assert!(
            v[0].message.contains("missing a reason"),
            "{}",
            v[0].message
        );
    }

    #[test]
    fn allow_directive_is_rule_specific() {
        let src =
            "fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // simlint: allow(time-units) — n/a\n}\n";
        let v = lint_source(ENGINE, src);
        assert_eq!(active(&v), vec![(2, Rule::Panic)]);
    }

    #[test]
    fn strings_and_comments_do_not_fire() {
        let src = "fn f() {\n    let s = \"call .unwrap() and panic!\";\n    // panic! here is fine\n    /* HashMap in a block comment */\n    let _ = s;\n}\n";
        let v = lint_source(ENGINE, src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn waivers_inside_block_comments_do_not_suppress() {
        // The directive sits inside a block comment: it is commentary,
        // not a waiver, so the violation on the next line stays active.
        let src = "fn f(x: Option<u32>) -> u32 {\n    /* simlint: allow(panic) — not a real directive */\n    x.unwrap()\n}\n";
        let v = lint_source(ENGINE, src);
        assert_eq!(active(&v), vec![(3, Rule::Panic)]);
    }

    #[test]
    fn waivers_inside_strings_do_not_suppress() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    let _d = \"simlint: allow(panic) — in a string\";\n    x.unwrap()\n}\n";
        let v = lint_source(ENGINE, src);
        assert_eq!(active(&v), vec![(3, Rule::Panic)]);
    }

    #[test]
    fn cfg_test_modules_are_exempt() {
        let src = "fn f() -> u32 { 1 }\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        Some(1).unwrap();\n        panic!(\"fine in tests\");\n    }\n}\n";
        let v = lint_source(ENGINE, src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn code_after_test_module_is_linted_again() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { Some(1).unwrap(); }\n}\nfn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        let v = lint_source(ENGINE, src);
        assert_eq!(active(&v), vec![(6, Rule::Panic)]);
    }

    #[test]
    fn hash_collections_flagged_in_sim_crates_only() {
        let src = "use std::collections::HashMap;\nstruct S { m: HashMap<u64, u64> }\n";
        let v = lint_source(SIM, src);
        assert_eq!(
            active(&v),
            vec![(1, Rule::Collections), (2, Rule::Collections)]
        );
        let w = lint_source("crates/workloads/src/stats.rs", src);
        assert!(w.iter().all(|x| x.rule != Rule::Collections), "{w:?}");
    }

    #[test]
    fn wall_clock_and_ambient_rng_flagged() {
        let src = "fn f() {\n    let t = std::time::Instant::now();\n    let r = rand::thread_rng();\n    let _ = (t, r);\n}\n";
        let v = lint_source(SIM, src);
        assert!(v.iter().any(|x| x.line == 2 && x.rule == Rule::Determinism));
        assert!(v.iter().any(|x| x.line == 3 && x.rule == Rule::Determinism));
    }

    #[test]
    fn threads_locks_and_atomics_flagged_in_sim_crates() {
        let src = "use std::sync::atomic::AtomicUsize;\n\
                   use std::sync::{Mutex, RwLock};\n\
                   fn f() {\n    std::thread::spawn(|| {});\n    let (tx, rx) = mpsc::channel();\n}\n";
        let v = lint_source(SIM, src);
        assert!(v.iter().all(|x| x.rule == Rule::Parallelism), "{v:?}");
        let lines: Vec<usize> = v.iter().map(|x| x.line).collect();
        assert!(lines.contains(&1), "atomics import: {v:?}");
        assert!(lines.contains(&2), "Mutex/RwLock import: {v:?}");
        assert!(lines.contains(&4), "thread spawn: {v:?}");
        assert!(lines.contains(&5), "mpsc channel: {v:?}");
    }

    #[test]
    fn time_unit_conversions_flagged_near_time_idents() {
        let src = "fn f(service_ms: f64) -> f64 {\n    service_ms / 1_000.0\n}\n";
        let v = lint_source(SIM, src);
        assert_eq!(active(&v), vec![(2, Rule::TimeUnits)]);
    }

    #[test]
    fn conversion_literals_without_time_idents_pass() {
        let src = "fn f(x: f64) -> bool {\n    (x - 2.0).abs() < 1e-9\n}\nfn gb(bytes: u64) -> f64 {\n    bytes as f64 / 1e9\n}\n";
        let v = lint_source(SIM, src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unnamed_rng_construction_flagged_in_fault_module() {
        let rel = "crates/core/src/faults.rs";
        let src = "fn f(seed: u64, parent: &mut SimRng) {\n    \
                   let a = SimRng::seed_from(seed);\n    \
                   let b = parent.fork();\n    let _ = (a, b);\n}\n";
        let v = lint_source(rel, src);
        // Both the fault-determinism rule and the workspace-wide
        // rng-provenance rule flag these constructions.
        assert!(v
            .iter()
            .any(|x| x.line == 2 && x.rule == Rule::FaultDeterminism));
        assert!(v
            .iter()
            .any(|x| x.line == 3 && x.rule == Rule::FaultDeterminism));
        assert!(v
            .iter()
            .any(|x| x.line == 2 && x.rule == Rule::RngProvenance));
        assert!(v
            .iter()
            .any(|x| x.line == 3 && x.rule == Rule::RngProvenance));
        let ok = "fn f(seed: u64) -> SimRng {\n    SimRng::named(seed, \"faults\")\n}\n";
        let v = lint_source(rel, ok);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn fs_writes_flagged_in_bench_and_harness() {
        let src = "fn save() {\n    std::fs::write(\"out.json\", b\"x\").ok();\n    \
                   let f = std::fs::File::create(\"log.txt\");\n    \
                   std::fs::create_dir_all(\"scratch\").ok();\n    let _ = f;\n}\n";
        for rel in [
            "crates/bench/src/bin/fig06_cello_latency.rs",
            "crates/harness/src/cache.rs",
        ] {
            let v = lint_source(rel, src);
            assert_eq!(
                active(&v),
                vec![
                    (2, Rule::CacheHygiene),
                    (3, Rule::CacheHygiene),
                    (4, Rule::CacheHygiene)
                ],
                "{rel}"
            );
        }
    }

    #[test]
    fn time_rs_itself_is_exempt_from_time_units() {
        let src = "pub fn as_millis_f64(ns: u64) -> f64 {\n    ns as f64 * 1e-6\n}\n";
        let v = lint_source("crates/simcore/src/time.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn raw_strings_are_blanked() {
        let src = "fn f() -> &'static str {\n    r#\"contains .unwrap() and HashMap\"#\n}\n";
        let v = lint_source(ENGINE, src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn finding_display_is_file_line_rule() {
        let f = Finding::new("crates/x/src/lib.rs", 7, Rule::Panic, "msg".into());
        assert_eq!(format!("{f}"), "crates/x/src/lib.rs:7: [panic] msg");
        assert_eq!(
            f.github_annotation(),
            "::error file=crates/x/src/lib.rs,line=7::[panic] msg"
        );
    }

    #[test]
    fn findings_json_shape() {
        let mut f = Finding::new("a.rs", 3, Rule::FloatOrder, "m \"q\"".into());
        f.waived = true;
        f.waiver_reason = Some("why".into());
        let doc = findings_json(&[f]);
        assert!(
            doc.starts_with("{\"version\":1,\"counts\":{\"total\":1,\"active\":0,\"waived\":1}")
        );
        assert!(doc.contains("\"rule\":\"float-order\""));
        assert!(doc.contains("\"message\":\"m \\\"q\\\"\""));
        assert!(doc.contains("\"waiver_reason\":\"why\""));
        let empty = findings_json(&[]);
        assert!(empty.contains("\"findings\":[]"));
    }

    /// The acceptance check: the workspace this linter ships in must be
    /// clean, so `cargo test` enforces what CI's `cargo run -p simlint`
    /// enforces — and every waiver must carry a reason.
    #[test]
    fn shipped_workspace_is_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root");
        let findings = lint_workspace(root).expect("workspace readable");
        let bad: Vec<&Finding> = findings.iter().filter(|f| !f.waived).collect();
        assert!(
            bad.is_empty(),
            "workspace has lint violations:\n{}",
            bad.iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        for f in findings.iter().filter(|f| f.waived) {
            assert!(
                f.waiver_reason.as_deref().is_some_and(|r| !r.is_empty()),
                "waiver without reason: {f}"
            );
        }
    }
}
