//! Project-specific static analysis for the MimdRAID workspace.
//!
//! The paper's headline validation (Figure 5: two independently built
//! timing paths agreeing to within a few percent) only means something if
//! the simulator is bit-for-bit deterministic and unit-correct. `simlint`
//! enforces the coding rules that protect that property, as a plain
//! source scan with **no dependencies** so it runs offline and in CI:
//!
//! - [`Rule::Determinism`] — no wall-clock or ambient randomness
//!   (`std::time::Instant`, `SystemTime`, `thread_rng`, …) in simulation
//!   crates. All randomness flows through the seeded `mimd_sim::SimRng`.
//! - [`Rule::Collections`] — no `HashMap`/`HashSet` in `simcore`, `core`,
//!   or `diskmodel`: their iteration order is seeded per-process by
//!   `RandomState`, which silently breaks run-to-run reproducibility.
//!   Use `BTreeMap`/`BTreeSet` (or index-keyed `Vec`s) instead.
//! - [`Rule::TimeUnits`] — no raw `f64` second/milli/micro/nano
//!   conversions outside `simcore::time`. A line that multiplies or
//!   divides a time-suffixed quantity (`…_ns`, `…_ms`, `…millis…`, …) by
//!   a unit-conversion literal (`1e6`, `1_000.0`, …) is flagged; route
//!   the math through `SimTime`/`SimDuration` or the named constants in
//!   `mimd_sim::time` instead.
//! - [`Rule::Panic`] — no `unwrap()`/`expect()`/`panic!`-family macros in
//!   `crates/core/src/engine` and `crates/diskmodel/src` non-test code.
//!   Hot-path failures must surface as `Result`/`Option`, not aborts.
//! - [`Rule::Parallelism`] — no threads, locks, channels, or atomics in
//!   the simulation crates (`simcore`, `core`, `diskmodel`, `workloads`).
//!   Every simulator instance is strictly single-threaded; `mimd-harness`
//!   is the one layer allowed to spawn threads, and it keeps determinism
//!   by running one private simulator per job and merging results in job
//!   order. (`Arc` is fine — shared *immutable* data has no ordering.)
//! - [`Rule::CacheHygiene`] — no stray filesystem writes in the bench and
//!   harness crates. Experiment artifacts belong under the `MIMD_JSON_DIR`
//!   root and cache entries under `MIMD_CACHE_DIR`; any `std::fs` write
//!   call elsewhere is flagged so binaries can't scatter state that the
//!   run cache's correctness story doesn't cover. Writes through the
//!   sanctioned roots carry a waiver at the call site.
//! - [`Rule::FaultDeterminism`] — fault-injection code draws randomness
//!   **only** from the dedicated named stream `SimRng::named(seed,
//!   "faults")`. Constructing an RNG any other way (`SimRng::seed_from`,
//!   `.fork()`) inside the fault module is flagged: an anonymous or
//!   forked stream would entangle fault draws with workload/engine draws,
//!   so adding a fault would perturb the fault-free request sequence and
//!   break the empty-plan byte-identity guarantee.
//!
//! Test modules (`#[cfg(test)]`), doc comments, strings, and the
//! `tests/`, `benches/`, and `examples/` trees are exempt. A violation
//! can be explicitly waived with a justification comment on the same line
//! or the line above:
//!
//! ```text
//! let ppm = frac * 1e6; // simlint: allow(time-units) — ppm, not a time unit
//! ```

use std::fmt;
use std::path::Path;

/// The lint rules, named as they appear in `// simlint: allow(...)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Wall-clock time or ambient randomness in simulation code.
    Determinism,
    /// Randomised-iteration-order collections in deterministic crates.
    Collections,
    /// Raw floating-point time-unit arithmetic outside `simcore::time`.
    TimeUnits,
    /// Panicking calls in the engine / disk-model hot paths.
    Panic,
    /// Threading/synchronization primitives below the harness layer.
    Parallelism,
    /// Filesystem writes outside the sanctioned env-var roots in bench /
    /// harness code.
    CacheHygiene,
    /// RNG construction outside the dedicated named stream in fault code.
    FaultDeterminism,
}

impl Rule {
    /// The rule's name in diagnostics and `allow(...)` directives.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Determinism => "determinism",
            Rule::Collections => "collections",
            Rule::TimeUnits => "time-units",
            Rule::Panic => "panic",
            Rule::Parallelism => "parallelism",
            Rule::CacheHygiene => "cache-hygiene",
            Rule::FaultDeterminism => "fault-determinism",
        }
    }

    fn from_name(name: &str) -> Option<Rule> {
        match name {
            "determinism" => Some(Rule::Determinism),
            "collections" => Some(Rule::Collections),
            "time-units" => Some(Rule::TimeUnits),
            "panic" => Some(Rule::Panic),
            "parallelism" => Some(Rule::Parallelism),
            "cache-hygiene" => Some(Rule::CacheHygiene),
            "fault-determinism" => Some(Rule::FaultDeterminism),
            _ => None,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable description of what was matched.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Which rule set applies to a file, derived from its workspace path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scope {
    determinism: bool,
    collections: bool,
    time_units: bool,
    panic: bool,
    parallelism: bool,
    cache_hygiene: bool,
    fault_determinism: bool,
}

impl Scope {
    /// No rules — the file is not linted.
    pub const EXEMPT: Scope = Scope {
        determinism: false,
        collections: false,
        time_units: false,
        panic: false,
        parallelism: false,
        cache_hygiene: false,
        fault_determinism: false,
    };

    /// Derives the applicable rules from a workspace-relative path
    /// (forward slashes).
    ///
    /// Integration tests, benches, and examples are exempt wholesale:
    /// they may time wall-clock runs or use panicking asserts freely.
    pub fn for_path(rel: &str) -> Scope {
        let rel = rel.replace('\\', "/");
        if rel.contains("/tests/") || rel.contains("/benches/") || rel.starts_with("examples/") {
            return Scope::EXEMPT;
        }
        let in_src_of = |krate: &str| rel.starts_with(&format!("crates/{krate}/src/"));
        let sim_crate = in_src_of("simcore")
            || in_src_of("core")
            || in_src_of("diskmodel")
            || in_src_of("workloads")
            || rel.starts_with("src/");
        Scope {
            determinism: sim_crate,
            collections: in_src_of("simcore") || in_src_of("core") || in_src_of("diskmodel"),
            time_units: sim_crate && rel != "crates/simcore/src/time.rs",
            panic: rel.starts_with("crates/core/src/engine/") || in_src_of("diskmodel"),
            parallelism: sim_crate,
            cache_hygiene: in_src_of("bench") || in_src_of("harness"),
            fault_determinism: rel == "crates/core/src/faults.rs",
        }
    }

    /// Whether no rule applies.
    pub fn is_exempt(&self) -> bool {
        !(self.determinism
            || self.collections
            || self.time_units
            || self.panic
            || self.parallelism
            || self.cache_hygiene
            || self.fault_determinism)
    }
}

/// A source line with comments/strings blanked and directives extracted.
struct CodeLine {
    /// Line content with string/char literals and comments replaced by
    /// spaces, so pattern checks never fire inside text.
    code: String,
    /// Rules waived on this line via `// simlint: allow(...)` (here or on
    /// the directive-only line above).
    allows: Vec<Rule>,
    /// Whether the line is inside a `#[cfg(test)]` item.
    in_test: bool,
}

/// Strips comments, strings, and char literals from `source`, keeping
/// line structure, and records `simlint: allow` directives and
/// `#[cfg(test)]` regions.
fn scan(source: &str) -> Vec<CodeLine> {
    #[derive(PartialEq)]
    enum Mode {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
    }

    let mut lines: Vec<CodeLine> = Vec::new();
    let mut code = String::new();
    let mut comment = String::new(); // comment text on the current line
    let mut mode = Mode::Code;
    let mut chars = source.chars().peekable();

    // #[cfg(test)] tracking: after seeing the attribute, the next `{`
    // opens a region skipped until its matching close brace.
    let mut depth: i64 = 0;
    let mut pending_test_attr = false;
    let mut test_until_depth: Option<i64> = None;

    let finish_line =
        |code: &mut String, comment: &mut String, in_test: bool, lines: &mut Vec<CodeLine>| {
            let allows = parse_allows(comment);
            // A directive on an otherwise empty line covers the next line.
            let directive_only = !allows.is_empty() && code.trim().is_empty();
            lines.push(CodeLine {
                code: std::mem::take(code),
                allows,
                in_test,
            });
            comment.clear();
            directive_only
        };

    let mut carry_allow_from: Option<usize> = None;

    while let Some(c) = chars.next() {
        if c == '\n' {
            let in_test = test_until_depth.is_some();
            if matches!(mode, Mode::LineComment) {
                mode = Mode::Code;
            }
            let directive_only = finish_line(&mut code, &mut comment, in_test, &mut lines);
            if directive_only {
                carry_allow_from = Some(lines.len() - 1);
            } else if let Some(src) = carry_allow_from.take() {
                let carried = lines[src].allows.clone();
                let idx = lines.len() - 1;
                lines[idx].allows.extend(carried);
            }
            continue;
        }
        match mode {
            Mode::Code => match c {
                '/' if chars.peek() == Some(&'/') => {
                    chars.next();
                    mode = Mode::LineComment;
                    code.push_str("  ");
                }
                '/' if chars.peek() == Some(&'*') => {
                    chars.next();
                    mode = Mode::BlockComment(1);
                    code.push_str("  ");
                }
                '"' => {
                    mode = Mode::Str;
                    code.push(' ');
                }
                'r' if chars.peek() == Some(&'"') || chars.peek() == Some(&'#') => {
                    // Possible raw string r"..." or r#"..."#; look ahead.
                    let mut hashes = 0u32;
                    let mut look = chars.clone();
                    while look.peek() == Some(&'#') {
                        look.next();
                        hashes += 1;
                    }
                    if look.peek() == Some(&'"') {
                        for _ in 0..=hashes {
                            chars.next();
                        }
                        mode = Mode::RawStr(hashes);
                        code.push(' ');
                    } else {
                        code.push(c);
                    }
                }
                '\'' => {
                    // Char literal vs lifetime. A char literal closes with
                    // a quote one or two chars ahead (escapes aside).
                    let mut look = chars.clone();
                    match look.next() {
                        Some('\\') => {
                            // Escaped char literal: skip the escape head,
                            // then consume through the closing quote.
                            code.push(' ');
                            chars.next(); // the backslash
                            chars.next(); // the escaped character
                            for e in chars.by_ref() {
                                if e == '\'' {
                                    break;
                                }
                            }
                        }
                        Some(_) if look.next() == Some('\'') => {
                            code.push(' ');
                            chars.next();
                            chars.next();
                        }
                        _ => code.push(c), // lifetime: keep as code
                    }
                }
                '{' => {
                    depth += 1;
                    if pending_test_attr {
                        pending_test_attr = false;
                        test_until_depth = Some(depth - 1);
                    }
                    code.push(c);
                }
                '}' => {
                    depth -= 1;
                    if test_until_depth == Some(depth) {
                        test_until_depth = None;
                    }
                    code.push(c);
                }
                _ => code.push(c),
            },
            Mode::LineComment => comment.push(c),
            Mode::BlockComment(n) => {
                if c == '*' && chars.peek() == Some(&'/') {
                    chars.next();
                    if n == 1 {
                        mode = Mode::Code;
                    } else {
                        mode = Mode::BlockComment(n - 1);
                    }
                } else if c == '/' && chars.peek() == Some(&'*') {
                    chars.next();
                    mode = Mode::BlockComment(n + 1);
                }
            }
            Mode::Str => {
                if c == '\\' {
                    chars.next();
                } else if c == '"' {
                    mode = Mode::Code;
                }
            }
            Mode::RawStr(hashes) => {
                if c == '"' {
                    let mut look = chars.clone();
                    let mut seen = 0u32;
                    while seen < hashes && look.peek() == Some(&'#') {
                        look.next();
                        seen += 1;
                    }
                    if seen == hashes {
                        for _ in 0..hashes {
                            chars.next();
                        }
                        mode = Mode::Code;
                    }
                }
            }
        }
        // Detect `#[cfg(test)]` on the fly once the line's code contains it.
        if !pending_test_attr && test_until_depth.is_none() && code.ends_with("#[cfg(test)]") {
            pending_test_attr = true;
        }
    }
    if !code.is_empty() || !comment.is_empty() {
        let in_test = test_until_depth.is_some();
        finish_line(&mut code, &mut comment, in_test, &mut lines);
    }
    lines
}

/// Parses `simlint: allow(rule, rule2)` out of a comment's text.
fn parse_allows(comment: &str) -> Vec<Rule> {
    let mut allows = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find("simlint: allow(") {
        let after = &rest[pos + "simlint: allow(".len()..];
        if let Some(close) = after.find(')') {
            for name in after[..close].split(',') {
                if let Some(rule) = Rule::from_name(name.trim()) {
                    allows.push(rule);
                }
            }
            rest = &after[close..];
        } else {
            break;
        }
    }
    allows
}

/// Whether `code` contains `needle` starting at a token boundary.
///
/// Boundary checks only apply on sides where the needle itself is
/// identifier-like: `.unwrap()` matches after `x`, but `SystemTime`
/// does not match inside `MySystemTimer`.
fn has_token(code: &str, needle: &str) -> bool {
    let ident = |c: char| c.is_ascii_alphanumeric() || c == '_';
    let needle_starts_ident = needle.chars().next().is_some_and(ident);
    let needle_ends_ident = needle.chars().next_back().is_some_and(ident);
    let mut from = 0;
    while let Some(pos) = code[from..].find(needle) {
        let at = from + pos;
        let before = code[..at].chars().next_back().unwrap_or(' ');
        let after = code[at + needle.len()..].chars().next().unwrap_or(' ');
        if (!needle_starts_ident || !ident(before)) && (!needle_ends_ident || !ident(after)) {
            return true;
        }
        from = at + needle.len();
    }
    false
}

/// Splits a code line into identifier tokens.
fn idents(code: &str) -> impl Iterator<Item = &str> {
    code.split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .filter(|t| !t.is_empty() && !t.chars().next().is_some_and(|c| c.is_ascii_digit()))
}

/// Whether an identifier names a floating-point time quantity.
fn is_time_ident(t: &str) -> bool {
    t.ends_with("_ns")
        || t.ends_with("_us")
        || t.ends_with("_ms")
        || t.ends_with("_secs")
        || t.contains("nanos")
        || t.contains("micros")
        || t.contains("millis")
        || t.contains("seconds")
}

/// Unit-conversion literals that signal raw time math.
const CONVERSION_LITERALS: [&str; 12] = [
    "1e3",
    "1e-3",
    "1e6",
    "1e-6",
    "1e9",
    "1e-9",
    "1_000.0",
    "1_000_000.0",
    "1_000_000_000.0",
    "1000.0",
    "1000000.0",
    "0.001",
];

/// Numeric-literal token-boundary check (identifier rules, plus `.`/digit
/// adjacency so `11e9` or `1e-31` never match `1e9`/`1e-3`).
fn has_literal(code: &str, lit: &str) -> bool {
    let numy = |c: char| c.is_ascii_alphanumeric() || c == '_' || c == '.';
    let mut from = 0;
    while let Some(pos) = code[from..].find(lit) {
        let at = from + pos;
        let before_ok = at == 0 || !numy(code[..at].chars().next_back().unwrap_or(' '));
        let after_ok = !numy(code[at + lit.len()..].chars().next().unwrap_or(' '));
        if before_ok && after_ok {
            return true;
        }
        from = at + lit.len();
    }
    false
}

/// Forbidden sources of nondeterminism, with diagnostics.
const NONDETERMINISM: [(&str, &str); 6] = [
    (
        "thread_rng",
        "ambient RNG; use a seeded `mimd_sim::SimRng` stream instead",
    ),
    (
        "Instant::now",
        "wall-clock read in simulation code; use `SimTime` from the event loop",
    ),
    (
        "std::time::Instant",
        "wall-clock type in simulation code; use `SimTime`",
    ),
    (
        "SystemTime",
        "wall-clock type in simulation code; use `SimTime`",
    ),
    (
        "rand::random",
        "ambient RNG; use a seeded `mimd_sim::SimRng` stream instead",
    ),
    (
        "RandomState",
        "per-process-seeded hasher; iteration order will differ across runs",
    ),
];

/// Panicking constructs banned from hot paths.
const PANICKY: [(&str, &str); 6] = [
    (
        ".unwrap()",
        "convert to `Result`/`Option` handling (or `// simlint: allow(panic)` with a why)",
    ),
    (
        ".expect(",
        "convert to `Result`/`Option` handling (or `// simlint: allow(panic)` with a why)",
    ),
    (
        "panic!",
        "return an error instead of aborting the simulation",
    ),
    (
        "unreachable!",
        "return an error instead of aborting the simulation",
    ),
    ("todo!", "unfinished code must not ship in the engine"),
    (
        "unimplemented!",
        "unfinished code must not ship in the engine",
    ),
];

/// Threading and synchronization constructs banned below the harness.
///
/// The simulator's determinism story is "one single-threaded simulator
/// per experiment cell, fanned out only by `mimd-harness`" — any thread,
/// lock, channel, or atomic underneath it either breaks reproducibility
/// or silently depends on it being unused. `Arc` is deliberately absent:
/// sharing immutable data is order-free.
const PARALLELISM: [(&str, &str); 8] = [
    (
        "std::thread",
        "simulation crates are single-threaded; fan out via `mimd_harness::parallel_map`",
    ),
    (
        "thread::spawn",
        "simulation crates are single-threaded; fan out via `mimd_harness::parallel_map`",
    ),
    (
        "thread::scope",
        "simulation crates are single-threaded; fan out via `mimd_harness::parallel_map`",
    ),
    (
        "Mutex",
        "no shared mutable state below the harness; pass data by value or `Arc` of immutable data",
    ),
    (
        "RwLock",
        "no shared mutable state below the harness; pass data by value or `Arc` of immutable data",
    ),
    (
        "Condvar",
        "no blocking synchronization in simulation code; the event queue is the only scheduler",
    ),
    (
        "mpsc",
        "no channels in simulation code; return results from the harness's ordered map",
    ),
    (
        "sync::atomic",
        "atomics imply cross-thread mutation; simulation state is single-threaded by contract",
    ),
];

/// Filesystem-write entry points covered by the cache-hygiene rule.
///
/// Bench and harness code may only write under the `MIMD_JSON_DIR` and
/// `MIMD_CACHE_DIR` roots; the sanctioned helpers (`write_json`, the run
/// cache's store path) carry explicit waivers at each call site, so any
/// *new* write call is flagged until it is either routed through them or
/// justified.
const FS_WRITES: [&str; 7] = [
    "fs::write",
    "File::create",
    "create_dir_all",
    "OpenOptions",
    "fs::rename",
    "fs::remove_file",
    "fs::copy",
];

/// RNG constructions banned from the fault module.
///
/// Fault draws must come from the one named stream created in
/// `FaultCtx::new` (`SimRng::named(seed, "faults")`). An anonymous seed
/// or a fork of an engine stream would consume draws the fault-free run
/// doesn't, breaking the empty-plan byte-identity guarantee.
const FAULT_RNG: [(&str, &str); 2] = [
    (
        "seed_from",
        "fault code must draw from the dedicated `SimRng::named(seed, \"faults\")` stream",
    ),
    (
        ".fork(",
        "forking entangles fault draws with the parent stream; use the dedicated \
         `SimRng::named(seed, \"faults\")` stream",
    ),
];

/// Lints one file's source text under the given scope.
///
/// `rel_path` is used only for diagnostics. This is the pure core the
/// fixture tests drive; [`lint_workspace`] wires it to the filesystem.
pub fn lint_source(rel_path: &str, scope: Scope, source: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    if scope.is_exempt() {
        return out;
    }
    for (idx, line) in scan(source).iter().enumerate() {
        if line.in_test {
            continue;
        }
        let lineno = idx + 1;
        let code = line.code.as_str();
        let allowed = |rule: Rule| line.allows.contains(&rule);
        let mut push = |rule: Rule, message: String| {
            out.push(Violation {
                file: rel_path.to_string(),
                line: lineno,
                rule,
                message,
            });
        };

        if scope.determinism && !allowed(Rule::Determinism) {
            for (needle, why) in NONDETERMINISM {
                if has_token(code, needle) {
                    push(Rule::Determinism, format!("`{needle}`: {why}"));
                }
            }
        }
        if scope.collections && !allowed(Rule::Collections) {
            for ty in ["HashMap", "HashSet"] {
                if has_token(code, ty) {
                    push(
                        Rule::Collections,
                        format!(
                            "`{ty}` has per-process iteration order; use `BTree{}` for \
                             reproducible runs",
                            &ty[4..]
                        ),
                    );
                }
            }
        }
        if scope.time_units && !allowed(Rule::TimeUnits) {
            let has_time_ident = idents(code).any(is_time_ident);
            if has_time_ident {
                for lit in CONVERSION_LITERALS {
                    if has_literal(code, lit) {
                        push(
                            Rule::TimeUnits,
                            format!(
                                "raw time-unit conversion `{lit}` next to a time quantity; \
                                 route through `SimTime`/`SimDuration` or `mimd_sim::time` \
                                 constants"
                            ),
                        );
                        break;
                    }
                }
            }
        }
        if scope.panic && !allowed(Rule::Panic) {
            for (needle, why) in PANICKY {
                if has_token(code, needle) {
                    push(Rule::Panic, format!("`{needle}` in a no-panic zone; {why}"));
                }
            }
        }
        if scope.parallelism && !allowed(Rule::Parallelism) {
            for (needle, why) in PARALLELISM {
                if has_token(code, needle) {
                    push(Rule::Parallelism, format!("`{needle}`: {why}"));
                }
            }
        }
        if scope.fault_determinism && !allowed(Rule::FaultDeterminism) {
            for (needle, why) in FAULT_RNG {
                if has_token(code, needle) {
                    push(Rule::FaultDeterminism, format!("`{needle}`: {why}"));
                }
            }
        }
        if scope.cache_hygiene && !allowed(Rule::CacheHygiene) {
            for needle in FS_WRITES {
                if has_token(code, needle) {
                    push(
                        Rule::CacheHygiene,
                        format!(
                            "`{needle}` writes the filesystem outside the sanctioned \
                             `MIMD_JSON_DIR`/`MIMD_CACHE_DIR` helpers; route through \
                             `mimd_harness::write_json` / the run cache, or waive with \
                             a why"
                        ),
                    );
                }
            }
        }
    }
    out
}

/// Recursively lints every `.rs` file under `root` (a workspace checkout)
/// that the scope map covers. Returns violations sorted by file and line.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    for top in ["crates", "src"] {
        collect_rs_files(&root.join(top), &mut files)?;
    }
    files.sort();
    let mut out = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let scope = Scope::for_path(&rel);
        if scope.is_exempt() {
            continue;
        }
        let source = std::fs::read_to_string(&path)?;
        out.extend(lint_source(&rel, scope, &source));
    }
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(out)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            // `target/` never appears under crates/*/src, but guard anyway.
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const ENGINE: &str = "crates/core/src/engine/mod.rs";
    const SIM: &str = "crates/simcore/src/event.rs";

    fn rules(v: &[Violation]) -> Vec<(usize, Rule)> {
        v.iter().map(|x| (x.line, x.rule)).collect()
    }

    #[test]
    fn scope_map_matches_workspace_layout() {
        assert!(Scope::for_path("crates/core/src/engine/cache.rs").panic);
        assert!(!Scope::for_path("crates/core/src/sched.rs").panic);
        assert!(Scope::for_path("crates/diskmodel/src/disk.rs").panic);
        assert!(Scope::for_path("crates/workloads/src/synth.rs").determinism);
        assert!(!Scope::for_path("crates/workloads/src/synth.rs").collections);
        assert!(!Scope::for_path("crates/simcore/src/time.rs").time_units);
        assert!(Scope::for_path("crates/simcore/src/rng.rs").time_units);
        assert!(Scope::for_path("crates/core/tests/model_properties.rs").is_exempt());
        assert!(Scope::for_path("examples/quickstart.rs").is_exempt());
        assert!(Scope::for_path("crates/simlint/src/lib.rs").is_exempt());
        // Bench and harness sources carry ONLY the cache-hygiene rule:
        // they may thread and time freely (they sit above the simulation
        // layer) but may not write the filesystem outside the sanctioned
        // env-var roots.
        let bench_bin = Scope::for_path("crates/bench/src/bin/fig05_validation.rs");
        assert!(bench_bin.cache_hygiene && !bench_bin.is_exempt());
        assert!(!(bench_bin.parallelism || bench_bin.determinism || bench_bin.panic));
        let pool = Scope::for_path("crates/harness/src/pool.rs");
        assert!(pool.cache_hygiene && !pool.is_exempt());
        assert!(!(pool.parallelism || pool.determinism || pool.time_units));
        // Their tests/ and benches/ trees stay wholly exempt (they write
        // scratch files under temp dirs).
        assert!(Scope::for_path("crates/harness/tests/cache_properties.rs").is_exempt());
        assert!(Scope::for_path("crates/bench/benches/hot_paths.rs").is_exempt());
        // Simulation crates never get the cache-hygiene rule; they have no
        // business touching the filesystem at all (determinism covers it).
        assert!(!Scope::for_path("crates/core/src/engine/mod.rs").cache_hygiene);
        assert!(Scope::for_path("crates/simcore/src/event.rs").parallelism);
        assert!(Scope::for_path("crates/core/src/engine/mod.rs").parallelism);
        assert!(Scope::for_path("crates/diskmodel/src/disk.rs").parallelism);
        assert!(Scope::for_path("crates/workloads/src/synth.rs").parallelism);
        // The PR-3 queue structures sit squarely in simulation scope: the
        // calendar event queue inside simcore, the indexed drive queue
        // inside core. Both must stay under the determinism, collection,
        // time-unit, and parallelism rules (drive-queue picks feed the
        // byte-identical experiment goldens), while the panic rule keeps
        // its engine/diskmodel footprint.
        let event = Scope::for_path("crates/simcore/src/event.rs");
        assert!(event.determinism && event.collections && event.time_units);
        let dqueue = Scope::for_path("crates/core/src/dqueue.rs");
        assert!(dqueue.determinism && dqueue.collections && dqueue.time_units);
        assert!(dqueue.parallelism && !dqueue.panic);
        assert!(!Scope::for_path("crates/core/src/dqueue.rs").is_exempt());
        // The seek-profile memo (`thread_local!` + `RefCell`) is lock-free
        // single-thread state, which the parallelism rule permits.
        let seek = Scope::for_path("crates/diskmodel/src/seek.rs");
        assert!(seek.parallelism && seek.panic);
        // The fault module alone carries the fault-determinism rule (on
        // top of the usual simulation-crate set); the engine and the RNG's
        // own home do not — `seed_from`/`fork` are legitimate there.
        let faults = Scope::for_path("crates/core/src/faults.rs");
        assert!(faults.fault_determinism && faults.determinism && faults.collections);
        assert!(!Scope::for_path("crates/core/src/engine/mod.rs").fault_determinism);
        assert!(!Scope::for_path("crates/simcore/src/rng.rs").fault_determinism);
    }

    #[test]
    fn flags_panicky_calls_with_line_numbers() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    let y = x.unwrap();\n    y\n}\n\
                   fn g() {\n    panic!(\"boom\");\n}\n";
        let v = lint_source(ENGINE, Scope::for_path(ENGINE), src);
        assert_eq!(rules(&v), vec![(2, Rule::Panic), (6, Rule::Panic)]);
    }

    #[test]
    fn expect_and_macros_are_flagged() {
        let src = "fn f() {\n    let a = s.expect(\"x\");\n    unreachable!();\n    todo!()\n}\n";
        let v = lint_source(ENGINE, Scope::for_path(ENGINE), src);
        assert_eq!(
            rules(&v),
            vec![(2, Rule::Panic), (3, Rule::Panic), (4, Rule::Panic)]
        );
    }

    #[test]
    fn allow_directive_waives_same_line() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // simlint: allow(panic) — checked above\n}\n";
        let v = lint_source(ENGINE, Scope::for_path(ENGINE), src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn allow_directive_waives_next_line() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    // simlint: allow(panic) — checked above\n    x.unwrap()\n}\n";
        let v = lint_source(ENGINE, Scope::for_path(ENGINE), src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn allow_directive_is_rule_specific() {
        let src =
            "fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // simlint: allow(time-units)\n}\n";
        let v = lint_source(ENGINE, Scope::for_path(ENGINE), src);
        assert_eq!(rules(&v), vec![(2, Rule::Panic)]);
    }

    #[test]
    fn strings_and_comments_do_not_fire() {
        let src = "fn f() {\n    let s = \"call .unwrap() and panic!\";\n    // panic! here is fine\n    /* HashMap in a block comment */\n    let _ = s;\n}\n";
        let v = lint_source(ENGINE, Scope::for_path(ENGINE), src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn cfg_test_modules_are_exempt() {
        let src = "fn f() -> u32 { 1 }\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        Some(1).unwrap();\n        panic!(\"fine in tests\");\n    }\n}\n";
        let v = lint_source(ENGINE, Scope::for_path(ENGINE), src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn code_after_test_module_is_linted_again() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { Some(1).unwrap(); }\n}\nfn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        let v = lint_source(ENGINE, Scope::for_path(ENGINE), src);
        assert_eq!(rules(&v), vec![(6, Rule::Panic)]);
    }

    #[test]
    fn hash_collections_flagged_in_sim_crates_only() {
        let src = "use std::collections::HashMap;\nstruct S { m: HashMap<u64, u64> }\n";
        let v = lint_source(SIM, Scope::for_path(SIM), src);
        assert_eq!(
            rules(&v),
            vec![(1, Rule::Collections), (2, Rule::Collections)]
        );
        let w = lint_source(
            "crates/workloads/src/stats.rs",
            Scope::for_path("crates/workloads/src/stats.rs"),
            src,
        );
        assert!(w.is_empty(), "{w:?}");
    }

    #[test]
    fn wall_clock_and_ambient_rng_flagged() {
        let src = "fn f() {\n    let t = std::time::Instant::now();\n    let r = rand::thread_rng();\n    let _ = (t, r);\n}\n";
        let v = lint_source(SIM, Scope::for_path(SIM), src);
        assert!(v.iter().any(|x| x.line == 2 && x.rule == Rule::Determinism));
        assert!(v.iter().any(|x| x.line == 3 && x.rule == Rule::Determinism));
    }

    #[test]
    fn threads_locks_and_atomics_flagged_in_sim_crates() {
        let src = "use std::sync::atomic::AtomicUsize;\n\
                   use std::sync::{Mutex, RwLock};\n\
                   fn f() {\n    std::thread::spawn(|| {});\n    let (tx, rx) = mpsc::channel();\n}\n";
        let v = lint_source(SIM, Scope::for_path(SIM), src);
        assert!(v.iter().all(|x| x.rule == Rule::Parallelism), "{v:?}");
        let lines: Vec<usize> = v.iter().map(|x| x.line).collect();
        assert!(lines.contains(&1), "atomics import: {v:?}");
        assert!(lines.contains(&2), "Mutex/RwLock import: {v:?}");
        assert!(lines.contains(&4), "thread spawn: {v:?}");
        assert!(lines.contains(&5), "mpsc channel: {v:?}");
    }

    #[test]
    fn arc_of_immutable_data_is_not_flagged() {
        let src = "use std::sync::Arc;\nstruct S { zones: Arc<[u16]> }\n";
        let v = lint_source(SIM, Scope::for_path(SIM), src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn parallelism_allow_directive_waives() {
        let src = "fn f() {\n    // simlint: allow(parallelism) — doc example, never compiled in\n    let m = Mutex::new(());\n    let _ = m;\n}\n";
        let v = lint_source(SIM, Scope::for_path(SIM), src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn harness_pool_is_exempt_from_parallelism() {
        let src = "use std::sync::atomic::AtomicUsize;\nfn go() { std::thread::scope(|_| {}); }\n";
        let rel = "crates/harness/src/pool.rs";
        let v = lint_source(rel, Scope::for_path(rel), src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unnamed_rng_construction_flagged_in_fault_module() {
        let rel = "crates/core/src/faults.rs";
        let src = "fn f(seed: u64, parent: &mut SimRng) {\n    \
                   let a = SimRng::seed_from(seed);\n    \
                   let b = parent.fork();\n    let _ = (a, b);\n}\n";
        let v = lint_source(rel, Scope::for_path(rel), src);
        assert_eq!(
            rules(&v),
            vec![(2, Rule::FaultDeterminism), (3, Rule::FaultDeterminism)]
        );
        // The sanctioned constructor passes, and the rule stays confined
        // to the fault module: the same source elsewhere is clean.
        let ok = "fn f(seed: u64) -> SimRng {\n    SimRng::named(seed, \"faults\")\n}\n";
        let v = lint_source(rel, Scope::for_path(rel), ok);
        assert!(v.is_empty(), "{v:?}");
        let elsewhere = "crates/core/src/engine/mod.rs";
        let v = lint_source(elsewhere, Scope::for_path(elsewhere), src);
        assert!(v.iter().all(|x| x.rule != Rule::FaultDeterminism), "{v:?}");
    }

    #[test]
    fn fault_determinism_waivable_with_directive() {
        let rel = "crates/core/src/faults.rs";
        let src = "fn f(seed: u64) -> SimRng {\n    \
                   // simlint: allow(fault-determinism) — migration shim, removed next PR\n    \
                   SimRng::seed_from(seed)\n}\n";
        let v = lint_source(rel, Scope::for_path(rel), src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn fs_writes_flagged_in_bench_and_harness() {
        let src = "fn save() {\n    std::fs::write(\"out.json\", b\"x\").unwrap();\n    \
                   let f = std::fs::File::create(\"log.txt\");\n    \
                   std::fs::create_dir_all(\"scratch\").ok();\n    let _ = f;\n}\n";
        for rel in [
            "crates/bench/src/bin/fig06_cello_latency.rs",
            "crates/harness/src/cache.rs",
        ] {
            let v = lint_source(rel, Scope::for_path(rel), src);
            assert_eq!(
                rules(&v),
                vec![
                    (2, Rule::CacheHygiene),
                    (3, Rule::CacheHygiene),
                    (4, Rule::CacheHygiene)
                ],
                "{rel}"
            );
        }
    }

    #[test]
    fn fs_writes_waivable_and_out_of_scope_elsewhere() {
        let waived = "fn save(dir: &std::path::Path) {\n    \
                      // simlint: allow(cache-hygiene) — entry under MIMD_CACHE_DIR\n    \
                      let _ = std::fs::write(dir.join(\"x\"), b\"x\");\n}\n";
        let rel = "crates/harness/src/cache.rs";
        let v = lint_source(rel, Scope::for_path(rel), waived);
        assert!(v.is_empty(), "{v:?}");
        // Rename/remove/copy/OpenOptions are covered too.
        let more = "fn f() {\n    std::fs::rename(\"a\", \"b\").ok();\n    \
                    std::fs::remove_file(\"a\").ok();\n    \
                    std::fs::copy(\"a\", \"b\").ok();\n    \
                    let o = std::fs::OpenOptions::new();\n    let _ = o;\n}\n";
        let v = lint_source(rel, Scope::for_path(rel), more);
        assert_eq!(v.len(), 4, "{v:?}");
        assert!(v.iter().all(|x| x.rule == Rule::CacheHygiene));
        // simlint's own sources (and sim crates) are out of scope for this
        // rule: a write there is someone else's problem, not hygiene's.
        let sim = lint_source(SIM, Scope::for_path(SIM), more);
        assert!(sim.iter().all(|x| x.rule != Rule::CacheHygiene), "{sim:?}");
        // Reads are not writes: never flagged.
        let reads = "fn f() {\n    let _ = std::fs::read(\"a\");\n    \
                     let _ = std::fs::read_to_string(\"b\");\n}\n";
        let v = lint_source(rel, Scope::for_path(rel), reads);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn time_unit_conversions_flagged_near_time_idents() {
        let src = "fn f(service_ms: f64) -> f64 {\n    service_ms / 1_000.0\n}\n";
        let v = lint_source(SIM, Scope::for_path(SIM), src);
        assert_eq!(rules(&v), vec![(2, Rule::TimeUnits)]);
    }

    #[test]
    fn conversion_literals_without_time_idents_pass() {
        // Epsilons and non-time unit conversions are not time math.
        let src = "fn f(x: f64) -> bool {\n    (x - 2.0).abs() < 1e-9\n}\nfn gb(bytes: u64) -> f64 {\n    bytes as f64 / 1e9\n}\n";
        let v = lint_source(SIM, Scope::for_path(SIM), src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn literal_matching_respects_token_boundaries() {
        let src = "fn f(mean_us: f64) -> f64 {\n    mean_us * 11e9 + 21e-31\n}\n";
        let v = lint_source(SIM, Scope::for_path(SIM), src);
        assert!(v.is_empty(), "11e9/21e-31 are not unit conversions: {v:?}");
    }

    #[test]
    fn time_rs_itself_is_exempt_from_time_units() {
        let src = "pub fn as_millis_f64(ns: u64) -> f64 {\n    ns as f64 * 1e-6\n}\n";
        let rel = "crates/simcore/src/time.rs";
        let v = lint_source(rel, Scope::for_path(rel), src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn raw_strings_are_blanked() {
        let src = "fn f() -> &'static str {\n    r#\"contains .unwrap() and HashMap\"#\n}\n";
        let v = lint_source(ENGINE, Scope::for_path(ENGINE), src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn char_literals_and_lifetimes_survive() {
        let src = "fn f<'a>(x: &'a str) -> char {\n    let c = '\"';\n    let _ = x;\n    c\n}\nfn g(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let v = lint_source(ENGINE, Scope::for_path(ENGINE), src);
        assert_eq!(rules(&v), vec![(6, Rule::Panic)]);
    }

    #[test]
    fn violation_display_is_file_line_rule() {
        let v = Violation {
            file: "crates/x/src/lib.rs".into(),
            line: 7,
            rule: Rule::Panic,
            message: "msg".into(),
        };
        assert_eq!(format!("{v}"), "crates/x/src/lib.rs:7: [panic] msg");
    }

    /// The acceptance check: the workspace this linter ships in must be
    /// clean, so `cargo test` enforces what CI's `cargo run -p simlint`
    /// enforces.
    #[test]
    fn shipped_workspace_is_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root");
        let violations = lint_workspace(root).expect("workspace readable");
        assert!(
            violations.is_empty(),
            "workspace has lint violations:\n{}",
            violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
