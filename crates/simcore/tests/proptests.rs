//! Property tests for the simulation kernel.

use proptest::prelude::*;

use mimd_sim::{demerit, EventQueue, Histogram, OnlineStats, SampleSet, SimDuration, SimTime};

proptest! {
    #[test]
    fn event_queue_pops_sorted_and_stable(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_micros(t), i);
        }
        let mut popped = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t, i));
        }
        prop_assert_eq!(popped.len(), times.len());
        // Sorted by time, FIFO within equal timestamps.
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1);
            }
        }
    }

    #[test]
    fn online_stats_match_naive(data in prop::collection::vec(-1e6f64..1e6, 1..300)) {
        let mut s = OnlineStats::new();
        for &x in &data {
            s.push(x);
        }
        let n = data.len() as f64;
        let mean = data.iter().sum::<f64>() / n;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.population_variance() - var).abs() < 1e-4 * (1.0 + var));
        prop_assert_eq!(s.count(), data.len() as u64);
        let min = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(s.min(), min);
        prop_assert_eq!(s.max(), max);
    }

    #[test]
    fn merge_equals_sequential(
        a in prop::collection::vec(-1e3f64..1e3, 1..100),
        b in prop::collection::vec(-1e3f64..1e3, 1..100),
    ) {
        let mut whole = OnlineStats::new();
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &a {
            whole.push(x);
            left.push(x);
        }
        for &x in &b {
            whole.push(x);
            right.push(x);
        }
        left.merge(&right);
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-9);
        prop_assert!((left.population_variance() - whole.population_variance()).abs() < 1e-6);
    }

    #[test]
    fn percentiles_agree_with_sorted_rank(data in prop::collection::vec(0f64..1e4, 1..200), p in 0.0f64..1.0) {
        let mut s = SampleSet::new();
        for &x in &data {
            s.push(x);
        }
        let got = s.percentile(p).unwrap();
        let mut sorted = data.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((p * sorted.len() as f64).ceil() as usize).max(1) - 1;
        prop_assert_eq!(got, sorted[rank.min(sorted.len() - 1)]);
        // Monotone in p.
        let lo = s.percentile(p * 0.5).unwrap();
        prop_assert!(lo <= got);
    }

    #[test]
    fn demerit_is_symmetric_and_detects_shift(
        data in prop::collection::vec(0f64..1e4, 10..200),
        shift in 0f64..100.0,
    ) {
        let mut a = SampleSet::new();
        let mut b = SampleSet::new();
        for &x in &data {
            a.push(x);
            b.push(x + shift);
        }
        let mut a2 = a.clone();
        let mut b2 = b.clone();
        let d1 = demerit(&mut a, &mut b);
        let d2 = demerit(&mut b2, &mut a2);
        prop_assert!((d1 - d2).abs() < 1e-9);
        prop_assert!((d1 - shift).abs() < 1e-6 + shift * 1e-9, "d1 {d1} shift {shift}");
    }

    #[test]
    fn histogram_conserves_counts(data in prop::collection::vec(-50f64..150.0, 0..300)) {
        let mut h = Histogram::new(0.0, 100.0, 10).unwrap();
        for &x in &data {
            h.record(x);
        }
        prop_assert_eq!(h.total(), data.len() as u64);
        let binned: u64 = (0..h.num_bins()).map(|i| h.bin_count(i)).sum();
        prop_assert_eq!(binned + h.underflow() + h.overflow(), data.len() as u64);
    }

    #[test]
    fn time_arithmetic_is_consistent(a in 0u64..1u64 << 40, b in 0u64..1u64 << 40) {
        let t = SimTime::from_nanos(a);
        let d = SimDuration::from_nanos(b);
        prop_assert_eq!((t + d) - t, d);
        prop_assert_eq!((t + d) - d, t);
        prop_assert_eq!(t.saturating_since(t + d), SimDuration::ZERO);
        prop_assert_eq!((t + d).saturating_since(t), d);
    }

    #[test]
    fn duration_scaling_round_trips(ms in 1u64..1_000_000, rate in 1.0f64..128.0) {
        let d = SimDuration::from_millis(ms);
        let scaled = d.mul_f64(1.0 / rate);
        let back = scaled.mul_f64(rate);
        // Round trip within rounding error of the two conversions.
        let err = back.as_nanos().abs_diff(d.as_nanos());
        prop_assert!(err <= rate.ceil() as u64 + 1, "err {err}");
    }
}
