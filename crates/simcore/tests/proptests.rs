//! Property tests for the simulation kernel, driven by the deterministic
//! in-repo harness (`mimd_sim::check`).

use mimd_sim::check::{check_cases, f64_in};
use mimd_sim::{demerit, EventQueue, Histogram, OnlineStats, SampleSet, SimDuration, SimTime};

#[test]
fn event_queue_pops_sorted_and_stable() {
    check_cases("event queue pops sorted and stable", 256, |_, rng| {
        let n = rng.range(1, 200) as usize;
        let times: Vec<u64> = (0..n).map(|_| rng.below(1_000)).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_micros(t), i);
        }
        let mut popped = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t, i));
        }
        assert_eq!(popped.len(), times.len());
        // Sorted by time, FIFO within equal timestamps.
        for w in popped.windows(2) {
            assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1);
            }
        }
    });
}

#[test]
fn event_queue_pop_times_are_monotone_under_interleaving() {
    // The runtime invariant layer checks the same property inside
    // `EventQueue::pop`; this test drives it from outside with interleaved
    // pushes at or after the current pop frontier, the way the engine
    // schedules work.
    check_cases("event queue pop-order monotonicity", 256, |_, rng| {
        let mut q = EventQueue::new();
        let mut last = SimTime::ZERO;
        for _ in 0..rng.range(1, 64) {
            q.push(SimTime::from_micros(rng.below(10_000)), 0u32);
        }
        let mut steps = 0u32;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last, "pop went backwards: {t} after {last}");
            last = t;
            steps += 1;
            if steps > 10_000 {
                break;
            }
            // Schedule follow-on events no earlier than "now", like the
            // engine's completion → dispatch chains.
            if rng.chance(0.5) {
                let delay = rng.below(5_000);
                q.push(last + SimDuration::from_micros(delay), 1u32);
            }
        }
    });
}

#[test]
fn event_queue_fifo_survives_bucket_wrap_and_far_migration() {
    // The calendar queue buckets events by 2^16 ns slots on a 256-bucket
    // wheel (~16.8 ms horizon) with an overflow list beyond it. Equal-time
    // FIFO must hold even when the equal instants sit exactly on bucket
    // edges, when the wheel wraps, and when events migrate from the
    // overflow list mid-run — so times here are drawn from bucket-edge
    // multiples (±1 ns) with strides that repeatedly cross the horizon.
    // (If the internal geometry changes the test stays valid, just less
    // pointed.)
    const BUCKET_NS: u64 = 1 << 16;
    const HORIZON_NS: u64 = 256 * BUCKET_NS;
    check_cases("fifo across wrap and migration", 128, |_, rng| {
        let mut q = EventQueue::new();
        let mut now = 0u64;
        let mut id = 0u64;
        let mut popped: Vec<(SimTime, u64)> = Vec::new();
        for _ in 0..200 {
            for _ in 0..rng.below(4) {
                let stride = match rng.below(4) {
                    0 => rng.below(4) * BUCKET_NS,              // on-edge, near
                    1 => rng.below(4) * BUCKET_NS + 1,          // just past edge
                    2 => HORIZON_NS + rng.below(3) * BUCKET_NS, // beyond horizon
                    _ => rng.below(2 * HORIZON_NS),             // anywhere
                };
                let at = SimTime::from_nanos(now + stride);
                // A burst of same-instant pushes is what FIFO must order.
                for _ in 0..1 + rng.below(3) {
                    q.push(at, id);
                    id += 1;
                }
            }
            if rng.chance(0.6) {
                if let Some((t, i)) = q.pop() {
                    now = t.as_nanos();
                    popped.push((t, i));
                }
            }
        }
        while let Some(p) = q.pop() {
            popped.push(p);
        }
        assert_eq!(popped.len(), id as usize);
        for w in popped.windows(2) {
            assert!(w[0].0 <= w[1].0, "time went backwards: {w:?}");
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "FIFO violated at {w:?}");
            }
        }
    });
}

#[test]
fn online_stats_match_naive() {
    check_cases("online stats match naive", 256, |_, rng| {
        let n = rng.range(1, 300) as usize;
        let data: Vec<f64> = (0..n).map(|_| f64_in(rng, -1e6, 1e6)).collect();
        let mut s = OnlineStats::new();
        for &x in &data {
            s.push(x);
        }
        let n = data.len() as f64;
        let mean = data.iter().sum::<f64>() / n;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        assert!((s.population_variance() - var).abs() < 1e-4 * (1.0 + var));
        assert_eq!(s.count(), data.len() as u64);
        let min = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(s.min(), min);
        assert_eq!(s.max(), max);
    });
}

#[test]
fn merge_equals_sequential() {
    check_cases("merge equals sequential", 256, |_, rng| {
        let a: Vec<f64> = (0..rng.range(1, 100))
            .map(|_| f64_in(rng, -1e3, 1e3))
            .collect();
        let b: Vec<f64> = (0..rng.range(1, 100))
            .map(|_| f64_in(rng, -1e3, 1e3))
            .collect();
        let mut whole = OnlineStats::new();
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &a {
            whole.push(x);
            left.push(x);
        }
        for &x in &b {
            whole.push(x);
            right.push(x);
        }
        left.merge(&right);
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.population_variance() - whole.population_variance()).abs() < 1e-6);
    });
}

#[test]
fn percentiles_agree_with_sorted_rank() {
    check_cases("percentiles agree with sorted rank", 256, |_, rng| {
        let n = rng.range(1, 200) as usize;
        let data: Vec<f64> = (0..n).map(|_| f64_in(rng, 0.0, 1e4)).collect();
        let p = rng.unit();
        let mut s = SampleSet::new();
        for &x in &data {
            s.push(x);
        }
        let got = s.percentile(p).expect("non-empty");
        let mut sorted = data.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = ((p * sorted.len() as f64).ceil() as usize).max(1) - 1;
        assert_eq!(got, sorted[rank.min(sorted.len() - 1)]);
        // Monotone in p.
        let lo = s.percentile(p * 0.5).expect("non-empty");
        assert!(lo <= got);
    });
}

#[test]
fn demerit_is_symmetric_and_detects_shift() {
    check_cases("demerit is symmetric and detects shift", 256, |_, rng| {
        let n = rng.range(10, 200) as usize;
        let data: Vec<f64> = (0..n).map(|_| f64_in(rng, 0.0, 1e4)).collect();
        let shift = f64_in(rng, 0.0, 100.0);
        let mut a = SampleSet::new();
        let mut b = SampleSet::new();
        for &x in &data {
            a.push(x);
            b.push(x + shift);
        }
        let mut a2 = a.clone();
        let mut b2 = b.clone();
        let d1 = demerit(&mut a, &mut b);
        let d2 = demerit(&mut b2, &mut a2);
        assert!((d1 - d2).abs() < 1e-9);
        assert!(
            (d1 - shift).abs() < 1e-6 + shift * 1e-9,
            "d1 {d1} shift {shift}"
        );
    });
}

#[test]
fn histogram_conserves_counts() {
    check_cases("histogram conserves counts", 256, |_, rng| {
        let n = rng.below(300) as usize;
        let data: Vec<f64> = (0..n).map(|_| f64_in(rng, -50.0, 150.0)).collect();
        let mut h = Histogram::new(0.0, 100.0, 10).expect("valid bins");
        for &x in &data {
            h.record(x);
        }
        assert_eq!(h.total(), data.len() as u64);
        let binned: u64 = (0..h.num_bins()).map(|i| h.bin_count(i)).sum();
        assert_eq!(binned + h.underflow() + h.overflow(), data.len() as u64);
    });
}

#[test]
fn time_arithmetic_is_consistent() {
    check_cases("time arithmetic is consistent", 512, |_, rng| {
        let a = rng.below(1 << 40);
        let b = rng.below(1 << 40);
        let t = SimTime::from_nanos(a);
        let d = SimDuration::from_nanos(b);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
        assert_eq!(t.saturating_since(t + d), SimDuration::ZERO);
        assert_eq!((t + d).saturating_since(t), d);
    });
}

#[test]
fn duration_scaling_round_trips() {
    check_cases("duration scaling round trips", 512, |_, rng| {
        let ms = rng.range(1, 1_000_000);
        let rate = f64_in(rng, 1.0, 128.0);
        let d = SimDuration::from_millis(ms);
        let scaled = d.mul_f64(1.0 / rate);
        let back = scaled.mul_f64(rate);
        // Round trip within rounding error of the two conversions.
        let err = back.as_nanos().abs_diff(d.as_nanos());
        assert!(err <= rate.ceil() as u64 + 1, "err {err}");
    });
}
