//! Discrete-event simulation kernel for the MimdRAID reproduction.
//!
//! This crate provides the substrate shared by every other crate in the
//! workspace:
//!
//! - [`time`]: a nanosecond-resolution simulated clock ([`SimTime`],
//!   [`SimDuration`]) with total ordering and saturating arithmetic.
//! - [`event`]: a deterministic event queue ([`EventQueue`]) with FIFO
//!   tie-breaking for simultaneous events, so runs are exactly reproducible.
//! - [`rng`]: a seedable random-number source ([`SimRng`], xoshiro256++)
//!   plus the handful of distributions the workload generators need
//!   (exponential, Zipf, truncated normal), implemented locally so the
//!   kernel has **no external dependencies** and its streams never shift
//!   under a dependency upgrade.
//! - [`check`]: a deterministic property-testing harness
//!   ([`check::check_cases`]) the workspace's property suites run on.
//! - [`invariant`]: debug-build runtime invariants ([`sim_invariant!`])
//!   guarding dynamic properties — event-time monotonicity, geometry
//!   bijectivity, replica spacing — that the static `simlint` pass cannot
//!   see.
//! - [`stats`]: streaming statistics ([`OnlineStats`]), exact percentile
//!   summaries ([`SampleSet`]), latency histograms ([`Histogram`]), and the
//!   Ruemmler–Wilkes *demerit figure* used by the paper's Table 2.
//! - [`witness`]: an order-sensitive digest ([`witness::DetWitness`]) of
//!   the event pops a run makes, so CI can assert serial and threaded
//!   runs processed events in the identical order.
//!
//! # Examples
//!
//! ```
//! use mimd_sim::{EventQueue, SimTime};
//!
//! let mut q: EventQueue<&str> = EventQueue::new();
//! q.push(SimTime::from_micros(20), "second");
//! q.push(SimTime::from_micros(10), "first");
//! let (t, e) = q.pop().unwrap();
//! assert_eq!((t, e), (SimTime::from_micros(10), "first"));
//! ```

pub mod check;
pub mod event;
pub mod invariant;
pub mod rng;
pub mod stats;
pub mod time;
pub mod witness;

pub use event::EventQueue;
pub use rng::SimRng;
pub use stats::{demerit, Histogram, OnlineStats, SampleSet};
pub use time::{SimDuration, SimTime};
pub use witness::DetWitness;
