//! Streaming and batch statistics for experiment reporting.
//!
//! Three tools cover everything the paper's tables and figures need:
//!
//! - [`OnlineStats`]: Welford-style single-pass mean/variance/extremes, used
//!   for response-time aggregation during long trace replays.
//! - [`SampleSet`]: retains raw samples for exact percentiles and for the
//!   [`demerit`] figure of Table 2.
//! - [`Histogram`]: fixed-width binning for distribution sketches in the
//!   experiment printouts.

/// Single-pass mean / variance / min / max accumulator (Welford's method).
///
/// # Examples
///
/// ```
/// use mimd_sim::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_std_dev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divides by N); zero when empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample variance (divides by N-1); zero with fewer than two samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation; `+inf` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `-inf` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// The raw accumulator state `(count, mean, m2, min, max)`.
    ///
    /// For exact externalisation (e.g. the harness run cache): the tuple
    /// round-trips bit-exactly through [`Self::from_state`], so a restored
    /// accumulator reports the same mean/variance/extremes to the last bit.
    pub fn state(&self) -> (u64, f64, f64, f64, f64) {
        (self.count, self.mean, self.m2, self.min, self.max)
    }

    /// Rebuilds an accumulator from a [`Self::state`] tuple.
    pub fn from_state(count: u64, mean: f64, m2: f64, min: f64, max: f64) -> Self {
        OnlineStats {
            count,
            mean,
            m2,
            min,
            max,
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64) * (other.count as f64) / total as f64;
        self.mean += delta * other.count as f64 / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A bag of raw samples supporting exact percentile queries.
///
/// Stores every pushed value; the experiment harnesses use this for
/// response-time percentiles and for the demerit figure, where the entire
/// distribution is needed.
#[derive(Debug, Clone, Default)]
pub struct SampleSet {
    values: Vec<f64>,
    sorted: bool,
}

impl SampleSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        SampleSet {
            values: Vec::new(),
            sorted: true,
        }
    }

    /// Creates an empty set with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        SampleSet {
            values: Vec::with_capacity(cap),
            sorted: true,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.values.push(x);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean; zero when empty.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.values
                .sort_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
            self.sorted = true;
        }
    }

    /// Exact p-th percentile (`0.0 ..= 1.0`) by nearest-rank; `None` when
    /// empty.
    ///
    /// Uses O(n) partial selection rather than a full sort when the set is
    /// unsorted — a run that only reports p95/p99 never pays O(n log n).
    /// Selection partially reorders `values` but leaves `sorted` false, so
    /// a later [`Self::sorted_values`] still sorts correctly.
    pub fn percentile(&mut self, p: f64) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        let p = p.clamp(0.0, 1.0);
        let rank = ((p * self.values.len() as f64).ceil() as usize).max(1) - 1;
        let rank = rank.min(self.values.len() - 1);
        if self.sorted {
            return Some(self.values[rank]);
        }
        let (_, nth, _) = self
            .values
            .select_nth_unstable_by(rank, |a, b| a.partial_cmp(b).expect("samples are finite"));
        Some(*nth)
    }

    /// Median; `None` when empty.
    pub fn median(&mut self) -> Option<f64> {
        self.percentile(0.5)
    }

    /// The sorted samples (sorting lazily on first access).
    pub fn sorted_values(&mut self) -> &[f64] {
        self.ensure_sorted();
        &self.values
    }

    /// The raw samples in their current storage order.
    ///
    /// Storage order is incidental (percentile queries may partially
    /// reorder it) but the *multiset* of values fully determines every
    /// query result, so this suffices for exact externalisation.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Rebuilds a set from raw samples (e.g. from [`Self::values`]).
    pub fn from_values(values: Vec<f64>) -> Self {
        SampleSet {
            values,
            sorted: false,
        }
    }
}

/// The Ruemmler–Wilkes demerit figure between two distributions.
///
/// Defined as the root-mean-square *horizontal* distance between the two
/// empirical CDFs — i.e. the RMS difference between same-quantile samples.
/// The paper's Table 2 reports this between predicted and measured access
/// times. Distributions of unequal size are compared at the quantiles of
/// the larger one.
///
/// Returns `0.0` if either set is empty.
///
/// # Examples
///
/// ```
/// use mimd_sim::{demerit, SampleSet};
///
/// let mut a = SampleSet::new();
/// let mut b = SampleSet::new();
/// for x in [1.0, 2.0, 3.0] {
///     a.push(x);
///     b.push(x + 0.5);
/// }
/// assert!((demerit(&mut a, &mut b) - 0.5).abs() < 1e-12);
/// ```
pub fn demerit(a: &mut SampleSet, b: &mut SampleSet) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let (n, m) = (a.len(), b.len());
    let probes = n.max(m);
    let av = a.sorted_values().to_vec();
    let bv = b.sorted_values();
    let mut acc = 0.0;
    for i in 0..probes {
        let q = (i as f64 + 0.5) / probes as f64;
        let xa = av[((q * n as f64) as usize).min(n - 1)];
        let xb = bv[((q * m as f64) as usize).min(m - 1)];
        acc += (xa - xb) * (xa - xb);
    }
    (acc / probes as f64).sqrt()
}

/// A fixed-width histogram over `[lo, hi)` with overflow/underflow bins.
///
/// # Examples
///
/// ```
/// use mimd_sim::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
/// h.record(3.5);
/// h.record(3.9);
/// assert_eq!(h.bin_count(3), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins spanning `[lo, hi)`.
    ///
    /// Returns `None` if `lo >= hi`, `bins == 0`, or the bounds are not
    /// finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Option<Self> {
        if !(lo.is_finite() && hi.is_finite()) || lo >= hi || bins == 0 {
            return None;
        }
        Some(Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        })
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = (((x - self.lo) / w) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Samples below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total recorded samples including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.underflow + self.overflow + self.bins.iter().sum::<u64>()
    }

    /// Lower edge of bin `i`.
    pub fn bin_lo(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + w * i as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basics() {
        let mut s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        s.push(1.0);
        s.push(3.0);
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean(), 2.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 3.0);
        assert_eq!(s.sum(), 4.0);
        assert_eq!(s.population_variance(), 1.0);
        assert_eq!(s.sample_variance(), 2.0);
    }

    #[test]
    fn online_stats_single_sample_variance_zero() {
        let mut s = OnlineStats::new();
        s.push(5.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
    }

    #[test]
    fn online_stats_merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &data[..37] {
            left.push(x);
        }
        for &x in &data[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.population_variance() - whole.population_variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = OnlineStats::new();
        s.push(2.0);
        let before = s.mean();
        s.merge(&OnlineStats::new());
        assert_eq!(s.mean(), before);
        let mut empty = OnlineStats::new();
        let mut full = OnlineStats::new();
        full.push(4.0);
        empty.merge(&full);
        assert_eq!(empty.mean(), 4.0);
    }

    #[test]
    fn percentiles_are_exact() {
        let mut s = SampleSet::new();
        for x in [5.0, 1.0, 3.0, 2.0, 4.0] {
            s.push(x);
        }
        assert_eq!(s.percentile(0.0), Some(1.0));
        assert_eq!(s.median(), Some(3.0));
        assert_eq!(s.percentile(1.0), Some(5.0));
        assert_eq!(s.percentile(0.8), Some(4.0));
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn percentile_of_empty_is_none() {
        let mut s = SampleSet::new();
        assert_eq!(s.percentile(0.5), None);
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn demerit_of_identical_distributions_is_zero() {
        let mut a = SampleSet::new();
        let mut b = SampleSet::new();
        for i in 0..100 {
            a.push(i as f64);
            b.push(i as f64);
        }
        assert!(demerit(&mut a, &mut b) < 1e-12);
    }

    #[test]
    fn demerit_detects_constant_shift() {
        let mut a = SampleSet::new();
        let mut b = SampleSet::new();
        for i in 0..1000 {
            a.push(i as f64);
            b.push(i as f64 + 2.0);
        }
        let d = demerit(&mut a, &mut b);
        assert!((d - 2.0).abs() < 1e-9, "demerit {d}");
    }

    #[test]
    fn demerit_handles_unequal_sizes() {
        let mut a = SampleSet::new();
        let mut b = SampleSet::new();
        for i in 0..1000 {
            a.push(i as f64 / 1000.0);
        }
        for i in 0..100 {
            b.push(i as f64 / 100.0);
        }
        // Same underlying uniform distribution, different resolutions.
        assert!(demerit(&mut a, &mut b) < 0.02);
    }

    #[test]
    fn histogram_bins_and_edges() {
        let mut h = Histogram::new(0.0, 100.0, 10).unwrap();
        h.record(-1.0);
        h.record(0.0);
        h.record(99.999);
        h.record(100.0);
        h.record(55.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.bin_count(0), 1);
        assert_eq!(h.bin_count(9), 1);
        assert_eq!(h.bin_count(5), 1);
        assert_eq!(h.total(), 5);
        assert_eq!(h.bin_lo(5), 50.0);
        assert_eq!(h.num_bins(), 10);
    }

    #[test]
    fn histogram_rejects_bad_bounds() {
        assert!(Histogram::new(1.0, 1.0, 4).is_none());
        assert!(Histogram::new(2.0, 1.0, 4).is_none());
        assert!(Histogram::new(0.0, 1.0, 0).is_none());
        assert!(Histogram::new(f64::NAN, 1.0, 4).is_none());
    }
}
