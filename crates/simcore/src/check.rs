//! A tiny deterministic property-testing harness.
//!
//! The workspace builds offline with zero external dependencies, so the
//! property suites that a crate like `proptest` would normally drive are
//! run by this module instead: each case gets its own [`SimRng`] derived
//! from the case index, every run of the suite explores the same cases,
//! and a failure names the case index and seed so it can be replayed in
//! isolation.
//!
//! # Examples
//!
//! ```
//! use mimd_sim::check::check_cases;
//!
//! check_cases("addition commutes", 64, |_case, rng| {
//!     let a = rng.below(1000);
//!     let b = rng.below(1000);
//!     assert_eq!(a + b, b + a);
//! });
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::rng::SimRng;

/// Derives the per-case seed used by [`check_cases`].
///
/// Exposed so a failing case can be replayed standalone:
/// `SimRng::seed_from(case_seed(case))`.
pub fn case_seed(case: u64) -> u64 {
    // SplitMix64-style mixing keeps neighbouring cases uncorrelated.
    let mut z = case.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5EED_5EED_5EED_5EED;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

/// Runs `prop` for `cases` deterministic cases.
///
/// Each case receives its index and a freshly seeded [`SimRng`]; the
/// property signals failure by panicking (usually via `assert!`). On
/// failure the harness re-panics with the property label, the case index,
/// and the case seed prepended, so the case can be reproduced.
pub fn check_cases<F>(label: &str, cases: u64, mut prop: F)
where
    F: FnMut(u64, &mut SimRng),
{
    for case in 0..cases {
        let seed = case_seed(case);
        let mut rng = SimRng::named(seed, "check-case");
        let outcome = catch_unwind(AssertUnwindSafe(|| prop(case, &mut rng)));
        if let Err(payload) = outcome {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic payload>");
            panic!("property '{label}' failed at case {case}/{cases} (seed {seed:#018x}): {msg}");
        }
    }
}

/// Uniform `f64` in `[lo, hi)`, the float-range generator the suites use.
pub fn f64_in(rng: &mut SimRng, lo: f64, hi: f64) -> f64 {
    debug_assert!(lo < hi && lo.is_finite() && hi.is_finite());
    lo + rng.unit() * (hi - lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic() {
        let mut first = Vec::new();
        check_cases("collect", 16, |_, rng| first.push(rng.below(1_000_000)));
        let mut second = Vec::new();
        check_cases("collect", 16, |_, rng| second.push(rng.below(1_000_000)));
        assert_eq!(first, second);
    }

    #[test]
    fn failure_reports_case_and_seed() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            check_cases("always fails", 4, |case, _| {
                assert!(case < 2, "boom at case {case}");
            });
        }));
        let payload = caught.expect_err("property must fail");
        let msg = payload
            .downcast_ref::<String>()
            .expect("harness panics with String");
        assert!(msg.contains("'always fails'"), "msg: {msg}");
        assert!(msg.contains("case 2/4"), "msg: {msg}");
        assert!(msg.contains("seed 0x"), "msg: {msg}");
    }

    #[test]
    fn f64_in_respects_bounds() {
        let mut rng = SimRng::seed_from(5);
        for _ in 0..10_000 {
            let x = f64_in(&mut rng, -3.0, 7.0);
            assert!((-3.0..7.0).contains(&x), "x {x}");
        }
    }
}
