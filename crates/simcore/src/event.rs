//! A deterministic discrete-event queue.
//!
//! Events are ordered by firing time; events scheduled for the same instant
//! fire in insertion (FIFO) order. This determinism matters: the array
//! simulator frequently schedules a disk-completion and a request-arrival at
//! the same nanosecond, and reproducible experiment output requires a stable
//! tie-break.
//!
//! # Implementation
//!
//! The queue is a calendar (timing-wheel) queue rather than a binary heap:
//! a ring of `NBUCKETS` buckets, each spanning `2^shift` nanoseconds, plus
//! an unsorted *far list* for events beyond the wheel's horizon
//! (`NBUCKETS << shift` ns past the cursor). Simulated disk events cluster
//! within a few rotation periods of "now", so nearly every push lands in the
//! wheel, nearly every bucket holds zero or one events, and both `push` and
//! `pop` are O(1) amortised instead of the heap's O(log n) — with no
//! steady-state allocation (buckets reuse their capacity).
//!
//! Exactness: within the wheel's window each bucket corresponds to exactly
//! one absolute slot, so visiting buckets in circular order from the cursor
//! is exact slot order; within a bucket, `pop` selects the minimum
//! `(time, seq)` entry, which reproduces the heap's (time, FIFO) order
//! bit-for-bit. Far-list events all lie beyond every wheel event, and are
//! migrated into the wheel whenever the cursor advances far enough that the
//! window could reach them, so they can never be popped late. The test suite
//! checks the pop sequence against a reference binary heap under randomized
//! interleaved push/pop workloads.

use crate::time::SimTime;

/// Number of wheel buckets. A power of two so slot→bucket is a mask.
const NBUCKETS: usize = 256;
/// Default bucket width exponent: 2^16 ns = 65.5 µs per bucket, giving a
/// ~16.8 ms horizon — a few disk rotation periods.
const DEFAULT_SHIFT: u32 = 16;

/// A time-ordered event queue with FIFO tie-breaking.
///
/// # Examples
///
/// ```
/// use mimd_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_millis(2), 'b');
/// q.push(SimTime::from_millis(1), 'a');
/// q.push(SimTime::from_millis(2), 'c');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Ring of buckets; bucket `s & (NBUCKETS-1)` holds the events of
    /// absolute slot `s` once `s` is inside the window
    /// `[cur_slot, cur_slot + NBUCKETS)`.
    wheel: Vec<Vec<Entry<E>>>,
    /// One bit per bucket: set iff the bucket is non-empty.
    occupied: [u64; NBUCKETS / 64],
    /// Events with slots at or beyond the window; unsorted.
    far: Vec<Entry<E>>,
    /// Minimum slot present in `far` (`u64::MAX` when `far` is empty).
    far_min_slot: u64,
    /// Bucket width is `2^shift` nanoseconds.
    shift: u32,
    /// Slot containing the frontier; the wheel window starts here.
    cur_slot: u64,
    len: usize,
    seq: u64,
    /// Time of the most recent pop; pushes and pops must not precede it.
    frontier: SimTime,
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the default event horizon.
    pub fn new() -> Self {
        Self::with_shift(DEFAULT_SHIFT)
    }

    /// Creates an empty queue with pre-allocated far-list capacity.
    ///
    /// Wheel buckets grow on first use regardless; `cap` only pre-sizes the
    /// overflow list, so this matters for workloads that schedule far ahead.
    pub fn with_capacity(cap: usize) -> Self {
        let mut q = Self::with_shift(DEFAULT_SHIFT);
        q.far.reserve(cap);
        q
    }

    /// Creates an empty queue whose wheel spans at least `horizon_ns`
    /// nanoseconds, so events within that horizon of the cursor avoid the
    /// overflow list. Callers size this to the disk-event horizon (a few
    /// rotation periods).
    pub fn with_horizon_ns(horizon_ns: u64) -> Self {
        let mut shift = 10;
        while ((NBUCKETS as u64) << shift) < horizon_ns && shift < 40 {
            shift += 1;
        }
        Self::with_shift(shift)
    }

    fn with_shift(shift: u32) -> Self {
        EventQueue {
            wheel: (0..NBUCKETS).map(|_| Vec::new()).collect(),
            occupied: [0; NBUCKETS / 64],
            far: Vec::new(),
            far_min_slot: u64::MAX,
            shift,
            cur_slot: 0,
            len: 0,
            seq: 0,
            frontier: SimTime::ZERO,
        }
    }

    #[inline]
    fn slot_of(&self, at: SimTime) -> u64 {
        at.as_nanos() >> self.shift
    }

    /// Schedules `event` to fire at instant `at`.
    ///
    /// Scheduling before the last popped instant would make simulated time
    /// run backwards; debug builds reject it.
    pub fn push(&mut self, at: SimTime, event: E) {
        crate::sim_invariant!(
            at >= self.frontier,
            "event scheduled in the past: {at} precedes frontier {}",
            self.frontier
        );
        let seq = self.seq;
        self.seq += 1;
        // Release builds tolerate a past push by clamping into the current
        // slot; min-(at, seq) selection within the bucket still pops it first.
        let s = self.slot_of(at).max(self.cur_slot);
        let entry = Entry { at, seq, event };
        if s < self.cur_slot + NBUCKETS as u64 {
            let b = (s as usize) & (NBUCKETS - 1);
            self.wheel[b].push(entry);
            self.occupied[b / 64] |= 1 << (b % 64);
        } else {
            self.far.push(entry);
            self.far_min_slot = self.far_min_slot.min(s);
        }
        self.len += 1;
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_entry().map(|(at, _, event)| (at, event))
    }

    /// Like [`pop`](Self::pop), but also returns the event's insertion
    /// sequence number — the FIFO tie-break among same-instant events.
    /// The engine folds it into the determinism witness so two pops at
    /// the same nanosecond remain distinguishable in the digest.
    pub fn pop_entry(&mut self) -> Option<(SimTime, u64, E)> {
        if self.len == 0 {
            return None;
        }
        if self.len == self.far.len() {
            // Wheel is empty: jump the cursor to the far list's first slot.
            self.advance_to(self.far_min_slot);
        }
        // `len > far.len()` guarantees an occupied bucket exists; the `?`
        // keeps this branch panic-free regardless.
        let b = self.next_occupied_from(self.cur_slot)?;
        // The absolute slot this bucket holds within the current window.
        let offset = (b as u64).wrapping_sub(self.cur_slot) & (NBUCKETS as u64 - 1);
        let ws = self.cur_slot + offset;
        if ws > self.cur_slot {
            self.advance_to(ws);
        }
        let bucket = &mut self.wheel[b];
        let mut best = 0;
        for i in 1..bucket.len() {
            let (e, c) = (&bucket[i], &bucket[best]);
            if (e.at, e.seq) < (c.at, c.seq) {
                best = i;
            }
        }
        let e = bucket.swap_remove(best);
        if bucket.is_empty() {
            self.occupied[b / 64] &= !(1 << (b % 64));
        }
        self.len -= 1;
        crate::sim_invariant!(
            e.at >= self.frontier,
            "event queue popped {} after frontier {}",
            e.at,
            self.frontier
        );
        self.frontier = e.at;
        Some((e.at, e.seq, e.event))
    }

    /// Moves the cursor forward to `new_cur` and pulls far-list events whose
    /// slots entered the window into the wheel.
    fn advance_to(&mut self, new_cur: u64) {
        self.cur_slot = new_cur;
        if self.far_min_slot >= new_cur + NBUCKETS as u64 {
            return;
        }
        let mut min_slot = u64::MAX;
        let mut i = 0;
        while i < self.far.len() {
            let s = self.slot_of(self.far[i].at);
            if s < new_cur + NBUCKETS as u64 {
                let entry = self.far.swap_remove(i);
                let b = (s as usize) & (NBUCKETS - 1);
                self.wheel[b].push(entry);
                self.occupied[b / 64] |= 1 << (b % 64);
            } else {
                min_slot = min_slot.min(s);
                i += 1;
            }
        }
        self.far_min_slot = min_slot;
    }

    /// First non-empty bucket at or circularly after `from_slot`'s bucket.
    fn next_occupied_from(&self, from_slot: u64) -> Option<usize> {
        let start = (from_slot as usize) & (NBUCKETS - 1);
        let (w0, bit0) = (start / 64, start % 64);
        let words = NBUCKETS / 64;
        // First word: mask off bits before the start position.
        let masked = self.occupied[w0] & (!0u64 << bit0);
        if masked != 0 {
            return Some(w0 * 64 + masked.trailing_zeros() as usize);
        }
        for k in 1..=words {
            let w = (w0 + k) % words;
            let bits = if w == w0 {
                // Wrapped all the way: bits before the start position.
                self.occupied[w0] & !(!0u64 << bit0)
            } else {
                self.occupied[w]
            };
            if bits != 0 {
                return Some(w * 64 + bits.trailing_zeros() as usize);
            }
        }
        None
    }

    /// The firing time of the earliest pending event, if any.
    ///
    /// ```
    /// use mimd_sim::{EventQueue, SimTime};
    ///
    /// let mut q = EventQueue::new();
    /// assert_eq!(q.peek_time(), None);
    /// q.push(SimTime::from_micros(9), "later");
    /// q.push(SimTime::from_micros(4), "sooner");
    /// assert_eq!(q.peek_time(), Some(SimTime::from_micros(4)));
    /// ```
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        if self.len == self.far.len() {
            return self.far.iter().map(|e| e.at).min();
        }
        let b = self.next_occupied_from(self.cur_slot)?;
        self.wheel[b].iter().map(|e| e.at).min()
    }

    /// Number of pending events.
    ///
    /// ```
    /// use mimd_sim::{EventQueue, SimTime};
    ///
    /// let mut q = EventQueue::new();
    /// q.push(SimTime::from_micros(1), ());
    /// q.push(SimTime::from_micros(2), ());
    /// assert_eq!(q.len(), 2);
    /// ```
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    ///
    /// ```
    /// use mimd_sim::{EventQueue, SimTime};
    ///
    /// let mut q = EventQueue::new();
    /// assert!(q.is_empty());
    /// q.push(SimTime::ZERO, ());
    /// assert!(!q.is_empty());
    /// ```
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes all pending events and resets the monotonicity frontier
    /// (the queue may then be reused for a fresh run from t = 0).
    pub fn clear(&mut self) {
        for bucket in &mut self.wheel {
            bucket.clear();
        }
        self.occupied = [0; NBUCKETS / 64];
        self.far.clear();
        self.far_min_slot = u64::MAX;
        self.cur_slot = 0;
        self.len = 0;
        self.frontier = SimTime::ZERO;
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// The PR 2 implementation, kept as the test oracle: a binary heap over
/// `(time, seq)` with inverted ordering.
#[cfg(test)]
#[derive(Debug, Default)]
pub(crate) struct HeapQueue<E> {
    heap: std::collections::BinaryHeap<HeapEntry<E>>,
    seq: u64,
}

#[cfg(test)]
#[derive(Debug)]
struct HeapEntry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

#[cfg(test)]
impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

#[cfg(test)]
impl<E> Eq for HeapEntry<E> {}

#[cfg(test)]
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

#[cfg(test)]
impl<E> HeapQueue<E> {
    pub(crate) fn push(&mut self, at: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(HeapEntry { at, seq, event });
    }

    pub(crate) fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(30), 3);
        q.push(SimTime::from_millis(10), 1);
        q.push(SimTime::from_millis(20), 2);
        assert_eq!(q.pop(), Some((SimTime::from_millis(10), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_millis(20), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_millis(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(7), "x");
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(5), 5);
        q.push(SimTime::from_millis(1), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(SimTime::from_millis(3), 3);
        q.push(SimTime::from_millis(2), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 5);
    }

    #[test]
    fn far_events_beyond_horizon_pop_in_order() {
        // Events far past the wheel window must round-trip through the
        // overflow list without disturbing the order.
        let mut q = EventQueue::new();
        let horizon_ns = (NBUCKETS as u64) << DEFAULT_SHIFT;
        q.push(SimTime::from_nanos(3 * horizon_ns), 'c');
        q.push(SimTime::from_nanos(10), 'a');
        q.push(SimTime::from_nanos(2 * horizon_ns), 'b');
        q.push(SimTime::from_nanos(5 * horizon_ns), 'd');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c', 'd']);
    }

    #[test]
    fn matches_reference_heap_under_interleaved_ops() {
        // The load-bearing equivalence test: under randomized interleaved
        // push/pop the calendar queue's pop sequence must match the binary
        // heap's exactly — same times, same FIFO tie-break. Times cluster
        // near the frontier with occasional far outliers so buckets wrap
        // and the overflow list migrates mid-run.
        crate::check::check_cases("calendar_matches_heap", 60, |case, rng| {
            let mut cal: EventQueue<u64> = EventQueue::new();
            let mut heap: HeapQueue<u64> = HeapQueue::default();
            let mut now = 0u64;
            let mut id = 0u64;
            for _ in 0..400 {
                let pushes = rng.below(4);
                for _ in 0..pushes {
                    // Mostly near-future; ~1/8 far beyond the horizon.
                    let delta = if rng.below(8) == 0 {
                        rng.below(200_000_000)
                    } else {
                        rng.below(2_000_000)
                    };
                    // A burst of same-instant events exercises the FIFO rule.
                    let reps = 1 + rng.below(3);
                    for _ in 0..reps {
                        let at = SimTime::from_nanos(now + delta);
                        cal.push(at, id);
                        heap.push(at, id);
                        id += 1;
                    }
                }
                if rng.below(3) > 0 {
                    let got = cal.pop();
                    let want = heap.pop();
                    assert_eq!(got, want, "case {case}: pop diverged");
                    if let Some((t, _)) = got {
                        now = t.as_nanos();
                    }
                }
            }
            loop {
                let got = cal.pop();
                let want = heap.pop();
                assert_eq!(got, want, "case {case}: drain diverged");
                if got.is_none() {
                    break;
                }
            }
        });
    }

    #[test]
    fn with_horizon_covers_requested_span() {
        let q: EventQueue<()> = EventQueue::with_horizon_ns(50_000_000);
        assert!((NBUCKETS as u64) << q.shift >= 50_000_000);
    }
}
