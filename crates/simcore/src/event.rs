//! A deterministic discrete-event queue.
//!
//! Events are ordered by firing time; events scheduled for the same instant
//! fire in insertion (FIFO) order. This determinism matters: the array
//! simulator frequently schedules a disk-completion and a request-arrival at
//! the same nanosecond, and reproducible experiment output requires a stable
//! tie-break.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A time-ordered event queue with FIFO tie-breaking.
///
/// # Examples
///
/// ```
/// use mimd_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_millis(2), 'b');
/// q.push(SimTime::from_millis(1), 'a');
/// q.push(SimTime::from_millis(2), 'c');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    /// Time of the most recent pop; pushes and pops must not precede it.
    frontier: SimTime,
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (and, within a
        // tie, the first-inserted) entry is popped first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            frontier: SimTime::ZERO,
        }
    }

    /// Creates an empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            seq: 0,
            frontier: SimTime::ZERO,
        }
    }

    /// Schedules `event` to fire at instant `at`.
    ///
    /// Scheduling before the last popped instant would make simulated time
    /// run backwards; debug builds reject it.
    pub fn push(&mut self, at: SimTime, event: E) {
        crate::sim_invariant!(
            at >= self.frontier,
            "event scheduled in the past: {at} precedes frontier {}",
            self.frontier
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| {
            crate::sim_invariant!(
                e.at >= self.frontier,
                "event queue popped {} after frontier {}",
                e.at,
                self.frontier
            );
            self.frontier = e.at;
            (e.at, e.event)
        })
    }

    /// The firing time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events and resets the monotonicity frontier
    /// (the queue may then be reused for a fresh run from t = 0).
    pub fn clear(&mut self) {
        self.heap.clear();
        self.frontier = SimTime::ZERO;
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(30), 3);
        q.push(SimTime::from_millis(10), 1);
        q.push(SimTime::from_millis(20), 2);
        assert_eq!(q.pop(), Some((SimTime::from_millis(10), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_millis(20), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_millis(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(7), "x");
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(5), 5);
        q.push(SimTime::from_millis(1), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(SimTime::from_millis(3), 3);
        q.push(SimTime::from_millis(2), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 5);
    }
}
