//! Debug-build runtime invariants for the simulator.
//!
//! The static pass (`cargo run -p simlint`) keeps nondeterminism and raw
//! unit math out of the source; this layer guards the *dynamic* properties
//! that no source scan can see. All checks compile to nothing in release
//! builds, so the measured hot paths stay untouched, while every debug
//! test run doubles as a model-consistency audit.
//!
//! Invariants wired through [`sim_invariant!`]:
//!
//! - **Event-queue monotonicity** (`mimd_sim::event`): simulated time
//!   never runs backwards — an event may be neither scheduled nor popped
//!   before the last popped instant.
//! - **Geometry bijectivity** (`mimd_disk::geometry`): `lbn_to_chs`
//!   followed by `chs_to_lbn` is the identity for every in-range block, so
//!   the layout and the disk model always talk about the same sector.
//! - **Replica spacing** (`mimd_core::layout`): with even placement, the
//!   `Dr` rotational replicas of a block sit exactly `1/Dr` of a
//!   revolution apart — the geometric fact behind the paper's
//!   `R/Dr`-expected-rotational-delay model (Equation 2).

/// Asserts a simulation invariant in debug builds; compiles to nothing in
/// release builds.
///
/// The condition is not evaluated in release builds, so checks may be
/// arbitrarily expensive. Failure messages carry a uniform
/// `simulation invariant violated:` prefix for greppability.
///
/// # Examples
///
/// ```
/// use mimd_sim::sim_invariant;
///
/// let last = 5u64;
/// let next = 7u64;
/// sim_invariant!(next >= last, "time ran backwards: {next} < {last}");
/// ```
#[macro_export]
macro_rules! sim_invariant {
    ($cond:expr, $($arg:tt)+) => {
        if cfg!(debug_assertions) && !$cond {
            panic!(
                "simulation invariant violated: {}",
                format_args!($($arg)+)
            );
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn passing_invariant_is_silent() {
        sim_invariant!(1 + 1 == 2, "arithmetic broke");
    }

    #[test]
    #[cfg(debug_assertions)]
    fn failing_invariant_panics_with_prefix() {
        let err = std::panic::catch_unwind(|| {
            sim_invariant!(false, "broken: {}", 42);
        })
        .expect_err("must panic in debug builds");
        // The payload is a `String` in general, but rustc may const-fold
        // an all-literal format into a `&'static str`.
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            msg.starts_with("simulation invariant violated: broken: 42"),
            "unexpected message: {msg}"
        );
    }
}
