//! Deterministic random numbers and the distributions the workloads need.
//!
//! Everything is seeded explicitly: an experiment binary that is run twice
//! with the same seed produces identical traces, identical schedules, and
//! identical output tables. The generator itself (xoshiro256++ seeded via
//! SplitMix64) and the distributions (exponential inter-arrivals, Zipf
//! block popularity, truncated Gaussian timing jitter) are implemented
//! here rather than pulled from `rand`/`rand_distr`, so the simulation
//! kernel has **zero external dependencies** and its streams are stable
//! across toolchain and dependency upgrades — a prerequisite for the
//! bit-for-bit reproducibility the Figure 5 validation relies on.

/// Advances a SplitMix64 state and returns the next output.
///
/// Used only to expand a 64-bit seed into the generator's 256-bit state,
/// as recommended by the xoshiro authors.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seedable deterministic random source.
///
/// Implemented as xoshiro256++ (Blackman & Vigna, public domain), exposing
/// exactly the sampling operations the simulator uses, so that call sites
/// read as workload vocabulary rather than raw `gen_range` calls.
///
/// # Examples
///
/// ```
/// use mimd_sim::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.below(1000), b.below(1000));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut s = seed;
        SimRng {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
        }
    }

    /// The next raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform float in `(0, 1)` — open at both ends, for logarithms.
    fn unit_open(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64 + 0.5) * (1.0 / (1u64 << 53) as f64)
    }

    /// Creates a generator for an explicitly named stream.
    ///
    /// The stream name is hashed (FNV-1a) and mixed into the seed through
    /// one SplitMix64 round, so `named(s, "faults")` and `named(s, "x")`
    /// are statistically independent while each remains a pure function of
    /// `(seed, name)`. Subsystems that must not perturb existing streams —
    /// fault injection is the canonical case, enforced by the
    /// `fault-determinism` simlint rule — draw from a named stream instead
    /// of forking a shared one: the workload and per-disk streams see
    /// exactly the same values whether or not the named stream exists.
    ///
    /// # Examples
    ///
    /// ```
    /// use mimd_sim::SimRng;
    ///
    /// let mut a = SimRng::named(42, "faults");
    /// let mut b = SimRng::named(42, "faults");
    /// let mut c = SimRng::named(42, "other");
    /// assert_eq!(a.below(1000), b.below(1000));
    /// let _ = c; // distinct stream, same determinism
    /// ```
    pub fn named(seed: u64, stream: &str) -> SimRng {
        let mut h = 0xCBF2_9CE4_8422_2325u64; // FNV-1a offset basis
        for &b in stream.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut mix = seed ^ h;
        SimRng::seed_from(splitmix64(&mut mix))
    }

    /// Creates the `index`-th member of a named stream *family*, e.g. one
    /// stream per simulated disk or per engine shard.
    ///
    /// Like [`SimRng::named`], the result is a pure function of
    /// `(seed, stream, index)` — construction order is irrelevant, which
    /// is what lets the sharded engine build per-shard streams in any
    /// order (or in parallel) and still draw identical values. The
    /// `rng-provenance` simlint rule requires the stream name to be a
    /// string literal here too.
    ///
    /// # Examples
    ///
    /// ```
    /// use mimd_sim::SimRng;
    ///
    /// let mut d0 = SimRng::named_indexed(42, "disk", 0);
    /// let mut d1 = SimRng::named_indexed(42, "disk", 1);
    /// assert_ne!(d0.below(1 << 40), d1.below(1 << 40));
    /// ```
    pub fn named_indexed(seed: u64, stream: &str, index: u64) -> SimRng {
        // One SplitMix64 round over the index decorrelates adjacent
        // members; the +1 keeps index 0 distinct from the plain named
        // stream of the same name.
        let mut ix = index.wrapping_add(1);
        SimRng::named(seed ^ splitmix64(&mut ix), stream)
    }

    /// Forks an independent child stream, e.g. one per simulated disk.
    ///
    /// The child is derived from the parent's stream, so distinct calls
    /// yield statistically independent children while remaining fully
    /// deterministic.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from(self.next_u64())
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "SimRng::below called with zero bound");
        // Lemire's multiply-shift: maps the 64-bit output onto [0, bound)
        // with bias below 2^-64 per draw — negligible for simulation use
        // and, crucially, branch-free and deterministic.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "SimRng::range requires lo < hi");
        lo + self.below(hi - lo)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Exponential variate with the given mean (> 0).
    ///
    /// Used for Poisson inter-arrival times in the open-loop trace
    /// generators.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0, "exponential mean must be positive");
        -mean * self.unit_open().ln()
    }

    /// Standard-normal variate via Box–Muller.
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = self.unit_open();
        let u2 = self.unit();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal variate with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Normal variate truncated below at `floor` (resampled via clamping).
    ///
    /// Models OS/SCSI overhead jitter, which has a hard lower bound (the
    /// code path minimum) and a Gaussian-ish body.
    pub fn normal_at_least(&mut self, mean: f64, std_dev: f64, floor: f64) -> f64 {
        self.normal(mean, std_dev).max(floor)
    }

    /// Pareto variate with scale `x_min` and shape `alpha`.
    ///
    /// Used for heavy-tailed idle-period lengths in the Cello-like
    /// generator.
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        debug_assert!(x_min > 0.0 && alpha > 0.0);
        x_min / self.unit_open().powf(1.0 / alpha)
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

/// A Zipf(θ) sampler over ranks `0..n`.
///
/// Rank `r` is drawn with probability proportional to `1 / (r + 1)^theta`.
/// Sampling is `O(log n)` by binary search over the precomputed CDF; the
/// table costs `O(n)` to build, which the trace generators amortise over
/// millions of draws.
///
/// # Examples
///
/// ```
/// use mimd_sim::{rng::Zipf, SimRng};
///
/// let mut rng = SimRng::seed_from(1);
/// let zipf = Zipf::new(100, 0.9).unwrap();
/// let r = zipf.sample(&mut rng);
/// assert!(r < 100);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with skew `theta >= 0`.
    ///
    /// `theta = 0` degenerates to the uniform distribution. Returns `None`
    /// if `n` is zero or `theta` is negative/non-finite.
    pub fn new(n: usize, theta: f64) -> Option<Self> {
        if n == 0 || !theta.is_finite() || theta < 0.0 {
            return None;
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Some(Zipf { cdf })
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler has zero ranks (never true for a constructed one).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank in `[0, n)`.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.unit();
        // The CDF entries are finite by construction, so total order holds.
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).unwrap_or(std::cmp::Ordering::Less))
        {
            Ok(i) => (i + 1).min(self.cdf.len() - 1),
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.below(1 << 40), b.below(1 << 40));
        }
    }

    #[test]
    fn named_streams_are_deterministic_and_distinct() {
        let mut a = SimRng::named(42, "faults");
        let mut b = SimRng::named(42, "faults");
        let mut c = SimRng::named(42, "workload");
        let mut d = SimRng::named(43, "faults");
        let mut base = SimRng::seed_from(42);
        let sa: Vec<u64> = (0..16).map(|_| a.below(u64::MAX)).collect();
        let sb: Vec<u64> = (0..16).map(|_| b.below(u64::MAX)).collect();
        let sc: Vec<u64> = (0..16).map(|_| c.below(u64::MAX)).collect();
        let sd: Vec<u64> = (0..16).map(|_| d.below(u64::MAX)).collect();
        let s0: Vec<u64> = (0..16).map(|_| base.below(u64::MAX)).collect();
        assert_eq!(sa, sb, "same (seed, name) must agree");
        assert_ne!(sa, sc, "different names must differ");
        assert_ne!(sa, sd, "different seeds must differ");
        assert_ne!(sa, s0, "named stream must not alias the bare seed");
    }

    #[test]
    fn forked_streams_differ() {
        let mut parent = SimRng::seed_from(7);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        let s1: Vec<u64> = (0..16).map(|_| c1.below(u64::MAX)).collect();
        let s2: Vec<u64> = (0..16).map(|_| c2.below(u64::MAX)).collect();
        assert_ne!(s1, s2);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SimRng::seed_from(3);
        for _ in 0..1000 {
            assert!(rng.below(17) < 17);
        }
    }

    #[test]
    fn below_covers_small_ranges_uniformly() {
        let mut rng = SimRng::seed_from(41);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.below(8) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "counts {counts:?}");
        }
    }

    #[test]
    fn unit_stays_in_half_open_interval() {
        let mut rng = SimRng::seed_from(43);
        for _ in 0..100_000 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u), "u {u}");
        }
    }

    #[test]
    fn exponential_mean_converges() {
        let mut rng = SimRng::seed_from(11);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(4.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 4.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn normal_moments_converge() {
        let mut rng = SimRng::seed_from(13);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn normal_at_least_enforces_floor() {
        let mut rng = SimRng::seed_from(17);
        for _ in 0..10_000 {
            assert!(rng.normal_at_least(0.0, 5.0, 1.0) >= 1.0);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(19);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn zipf_uniform_when_theta_zero() {
        let mut rng = SimRng::seed_from(23);
        let zipf = Zipf::new(10, 0.0).unwrap();
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "counts {counts:?}");
        }
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let mut rng = SimRng::seed_from(29);
        let zipf = Zipf::new(1000, 1.0).unwrap();
        let mut head = 0u32;
        let n = 100_000;
        for _ in 0..n {
            if zipf.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // Under Zipf(1) over 1000 ranks, ranks 0..10 carry ~39% of the mass.
        let frac = head as f64 / n as f64;
        assert!(frac > 0.3, "head fraction {frac}");
    }

    #[test]
    fn zipf_rejects_bad_inputs() {
        assert!(Zipf::new(0, 1.0).is_none());
        assert!(Zipf::new(10, -1.0).is_none());
        assert!(Zipf::new(10, f64::NAN).is_none());
    }

    #[test]
    fn pareto_respects_scale() {
        let mut rng = SimRng::seed_from(31);
        for _ in 0..10_000 {
            assert!(rng.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::seed_from(37);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }
}
