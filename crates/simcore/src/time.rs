//! Simulated time: nanosecond-resolution instants and durations.
//!
//! The whole simulator works in integer nanoseconds so that event ordering
//! is exact and runs are bit-for-bit reproducible. Floating-point
//! milliseconds appear only at the model/reporting boundary, via the
//! `as_millis_f64`-style accessors.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Nanoseconds per microsecond, for `f64` boundary conversions.
///
/// Raw unit-conversion literals are banned outside this module (the
/// `time-units` simlint rule); model code converting floating-point
/// quantities at the reporting boundary must name the ratio it means.
pub const NANOS_PER_MICRO: f64 = 1e3;
/// Nanoseconds per millisecond, for `f64` boundary conversions.
pub const NANOS_PER_MILLI: f64 = 1e6;
/// Nanoseconds per second, for `f64` boundary conversions.
pub const NANOS_PER_SEC: f64 = 1e9;
/// Microseconds per millisecond, for `f64` boundary conversions.
pub const MICROS_PER_MILLI: f64 = 1e3;
/// Milliseconds per second, for `f64` boundary conversions.
pub const MILLIS_PER_SEC: f64 = 1e3;

/// An instant on the simulated clock, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Creates an instant from fractional seconds, rounding to nanoseconds.
    ///
    /// Negative inputs clamp to [`SimTime::ZERO`].
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime((s * 1e9).round() as u64)
    }

    /// Creates an instant from fractional milliseconds (clamping negatives).
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms * 1e-3)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 * 1e-3
    }

    /// This instant expressed in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 * 1e-6
    }

    /// This instant expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Time elapsed from `earlier` to `self`, saturating to zero if
    /// `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max_of(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds (clamping negatives).
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// Creates a duration from fractional milliseconds (clamping negatives).
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms * 1e-3)
    }

    /// Creates a duration from fractional microseconds (clamping negatives).
    pub fn from_micros_f64(us: f64) -> Self {
        Self::from_secs_f64(us * 1e-6)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This duration in fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 * 1e-3
    }

    /// This duration in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 * 1e-6
    }

    /// This duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Duration scaled by a non-negative factor, rounding to nanoseconds.
    ///
    /// Used for trace rate-scaling, where inter-arrival times are divided by
    /// the scale rate.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        debug_assert!(factor >= 0.0, "negative duration scale");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Remainder of this duration modulo `period`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn rem_of(self, period: SimDuration) -> SimDuration {
        SimDuration(self.0 % period.0)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert!((SimTime::from_millis(7).as_millis_f64() - 7.0).abs() < 1e-12);
        assert!((SimDuration::from_micros(11).as_micros_f64() - 11.0).abs() < 1e-12);
    }

    #[test]
    fn fractional_constructors_round() {
        assert_eq!(SimTime::from_secs_f64(1.5e-9).as_nanos(), 2);
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_millis_f64(0.001).as_nanos(), 1_000);
        assert_eq!(SimDuration::from_micros_f64(2.5).as_nanos(), 2_500);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_millis(10);
        let d = SimDuration::from_millis(4);
        assert_eq!(t + d, SimTime::from_millis(14));
        assert_eq!(t - d, SimTime::from_millis(6));
        assert_eq!((t + d) - t, d);
        assert_eq!(d * 3, SimDuration::from_millis(12));
        assert_eq!(d / 2, SimDuration::from_millis(2));
    }

    #[test]
    fn saturating_ops_clamp() {
        let early = SimTime::from_millis(1);
        let late = SimTime::from_millis(9);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_millis(8));
        assert_eq!(
            SimDuration::from_millis(1).saturating_sub(SimDuration::from_millis(2)),
            SimDuration::ZERO
        );
        assert_eq!(SimTime::MAX + SimDuration::from_nanos(1), SimTime::MAX);
    }

    #[test]
    fn duration_modulo() {
        let d = SimDuration::from_micros(6_400);
        let r = SimDuration::from_micros(6_000);
        assert_eq!(d.rem_of(r), SimDuration::from_micros(400));
    }

    #[test]
    fn mul_f64_scales_for_rate_scaling() {
        let inter = SimDuration::from_millis(10);
        // Scale rate 2 halves inter-arrival times.
        assert_eq!(inter.mul_f64(0.5), SimDuration::from_millis(5));
        assert_eq!(inter.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![
            SimTime::from_millis(5),
            SimTime::ZERO,
            SimTime::from_micros(1),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                SimTime::ZERO,
                SimTime::from_micros(1),
                SimTime::from_millis(5)
            ]
        );
    }

    #[test]
    fn display_formats_millis() {
        assert_eq!(format!("{}", SimTime::from_micros(1500)), "1.500ms");
        assert_eq!(format!("{}", SimDuration::from_millis(2)), "2.000ms");
    }
}
