//! A determinism witness: an order-sensitive digest of the event pops a
//! run makes.
//!
//! The byte-identity gate (golden md5 sums over experiment JSON) catches
//! nondeterminism only when it reaches the *aggregated* output; two runs
//! can process events in different orders and still round to the same
//! summary statistics. [`DetWitness`] closes that gap: the engine folds
//! every popped event — time, insertion sequence number, disk index, and
//! event kind — into a running FNV-1a hash, and CI asserts the final
//! value is identical across thread counts. Any divergence in event
//! *order*, not just in event *effect*, changes the hash.
//!
//! FNV-1a is not order-insensitive (unlike a sum or xor of per-event
//! hashes), which is the point: the witness certifies the serial pop
//! sequence itself, the property the sharded-engine refactor
//! (ROADMAP item 1) must preserve.
//!
//! # Examples
//!
//! ```
//! use mimd_sim::witness::DetWitness;
//!
//! let mut a = DetWitness::new();
//! a.fold(10, 0, 3, 1);
//! a.fold(10, 1, 5, 0);
//! let mut b = DetWitness::new();
//! b.fold(10, 1, 5, 0);
//! b.fold(10, 0, 3, 1);
//! assert_ne!(a.value(), b.value(), "order must matter");
//! ```

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An order-sensitive FNV-1a digest over `(time, seq, disk, kind)`
/// event records. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetWitness {
    state: u64,
}

impl DetWitness {
    /// A fresh witness at the FNV-1a offset basis.
    pub fn new() -> Self {
        DetWitness { state: FNV_OFFSET }
    }

    /// Folds one popped event into the digest.
    ///
    /// `time_ns` is the firing instant, `seq` the queue's insertion
    /// sequence number (the FIFO tie-break, so two same-instant pops in
    /// swapped order still diverge), `disk` the disk the event concerns
    /// (`u32::MAX` conventionally for array-wide events), and `kind` a
    /// stable small integer per event variant.
    #[inline]
    pub fn fold(&mut self, time_ns: u64, seq: u64, disk: u32, kind: u8) {
        self.fold_bytes(&time_ns.to_le_bytes());
        self.fold_bytes(&seq.to_le_bytes());
        self.fold_bytes(&disk.to_le_bytes());
        self.fold_bytes(&[kind]);
    }

    #[inline]
    fn fold_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Whether nothing has been folded yet (the state is still the
    /// FNV-1a offset basis).
    pub fn is_empty(&self) -> bool {
        self.state == FNV_OFFSET
    }

    /// Folds another witness's digest into this one as one labelled
    /// sub-stream, for the sharded engine's canonical combination.
    ///
    /// Each shard folds its own pops locally; the conductor then absorbs
    /// the per-shard digests **in shard order** under each shard's stable
    /// `entity` index. An *empty* sub-stream is skipped entirely, so a run
    /// that popped no events at all still reports the offset basis — the
    /// same value a never-touched witness has — and shards that stayed
    /// idle do not perturb the combination.
    pub fn absorb(&mut self, entity: u32, sub: &DetWitness) {
        if sub.is_empty() {
            return;
        }
        self.fold_bytes(&entity.to_le_bytes());
        self.fold_bytes(&sub.state.to_le_bytes());
    }

    /// The current digest value.
    pub fn value(&self) -> u64 {
        self.state
    }
}

impl Default for DetWitness {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_witness_is_offset_basis() {
        assert_eq!(DetWitness::new().value(), FNV_OFFSET);
    }

    #[test]
    fn identical_sequences_agree() {
        let records = [(5u64, 0u64, 1u32, 0u8), (5, 1, 2, 1), (9, 2, 1, 1)];
        let mut a = DetWitness::new();
        let mut b = DetWitness::new();
        for &(t, s, d, k) in &records {
            a.fold(t, s, d, k);
        }
        for &(t, s, d, k) in &records {
            b.fold(t, s, d, k);
        }
        assert_eq!(a.value(), b.value());
    }

    #[test]
    fn swapped_same_instant_pops_diverge() {
        // Two events at the same nanosecond, distinguished only by seq:
        // the exact case the FIFO tie-break exists for.
        let mut a = DetWitness::new();
        a.fold(100, 7, 0, 1);
        a.fold(100, 8, 1, 1);
        let mut b = DetWitness::new();
        b.fold(100, 8, 1, 1);
        b.fold(100, 7, 0, 1);
        assert_ne!(a.value(), b.value());
    }

    #[test]
    fn every_field_is_load_bearing() {
        let base = {
            let mut w = DetWitness::new();
            w.fold(1, 2, 3, 4);
            w.value()
        };
        for (t, s, d, k) in [(9, 2, 3, 4), (1, 9, 3, 4), (1, 2, 9, 4), (1, 2, 3, 9)] {
            let mut w = DetWitness::new();
            w.fold(t, s, d, k);
            assert_ne!(w.value(), base, "({t},{s},{d},{k}) must change the hash");
        }
    }
}
