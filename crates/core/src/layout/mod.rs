//! Array data layout: logical blocks to physical replica sets.
//!
//! The general `Ds × Dr × Dm` organisation (§2.5) is realised as a grid:
//! the logical space is striped into `Ds` columns (64 KiB units, §3.1);
//! each column's units round-robin over `Dr` rows; and the `(column, row)`
//! chunk lives, with `Dr` rotational replicas, on each of `Dm` mirror
//! disks. Every disk then stores `1/(Ds·Dr)` of the data expanded `Dr`-fold
//! — i.e. `1/Ds` of its cylinders carry data, which is exactly how the
//! SR-Array trades capacity for bounded seek *and* rotational delay
//! (Figure 3).

pub mod mapper;
pub mod parity;

pub use mapper::{DataMapper, TrackLoc};
pub use parity::{ParityConfig, ParityLoc, RaidLevel};

use mimd_disk::{Chs, Geometry, Target};

use crate::config::Shape;

/// Default striping unit: 64 KiB of 512-byte sectors (§3.1).
pub const DEFAULT_STRIPE_UNIT: u32 = 128;

/// How rotational replicas are placed around the track (§2.2).
///
/// Evenly spaced replicas give an expected read rotational delay of
/// `R / (2 Dr)` (Equation 2); randomly placed ones only reach
/// `R / (Dr + 1)`, which is why the design rejects them — kept here as an
/// ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaPlacement {
    /// Evenly spaced, `1/Dr` of a revolution apart, each copy on its own
    /// track of the cylinder (the design of §2.2, Figure 2(c)).
    Even,
    /// Pseudo-random angles (ablation baseline).
    Random,
    /// All `Dr` copies interleaved on a *single* track (Ng's scheme,
    /// Figure 2(b)): rotational delay matches even spacing but the
    /// effective track length shrinks `Dr`-fold, so large transfers slow
    /// down — the §2.2 bandwidth objection, kept as an ablation.
    IntraTrack,
}

/// Errors constructing a layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    /// `Dr` exceeds the drive's surface count.
    ReplicationExceedsSurfaces {
        /// Requested rotational replication.
        dr: u32,
        /// Surfaces available.
        surfaces: u32,
    },
    /// The data set does not fit the array at this shape.
    CapacityExceeded {
        /// Sectors each disk must hold.
        needed: u64,
        /// Sectors each disk can hold at this `Dr`.
        available: u64,
    },
    /// Zero-sized data set or stripe unit.
    Degenerate,
    /// The drive parameters the layout targets are not realisable.
    InvalidDiskParams(String),
    /// A parity organization that the shape cannot carry.
    InvalidParity(String),
    /// A fault plan inconsistent with the array it targets.
    InvalidFaultPlan(String),
}

impl std::fmt::Display for LayoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LayoutError::ReplicationExceedsSurfaces { dr, surfaces } => {
                write!(f, "Dr={dr} exceeds {surfaces} surfaces")
            }
            LayoutError::CapacityExceeded { needed, available } => {
                write!(
                    f,
                    "per-disk data {needed} sectors exceeds capacity {available}"
                )
            }
            LayoutError::Degenerate => write!(f, "zero-sized data set or stripe unit"),
            LayoutError::InvalidDiskParams(why) => {
                write!(f, "invalid disk parameters: {why}")
            }
            LayoutError::InvalidParity(why) => write!(f, "invalid parity organization: {why}"),
            LayoutError::InvalidFaultPlan(why) => write!(f, "invalid fault plan: {why}"),
        }
    }
}

impl std::error::Error for LayoutError {}

/// One physical placement choice for (a fragment of) a request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Replica {
    /// Disk index within the array.
    pub disk: usize,
    /// Physical target on that disk.
    pub target: Target,
    /// Rotational-replica index (`0..Dr`).
    pub replica: u8,
    /// Mirror index (`0..Dm`).
    pub mirror: u8,
}

/// A logical request fragment confined to one stripe unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fragment {
    /// First logical block of the fragment.
    pub lbn: u64,
    /// Fragment length in sectors.
    pub sectors: u32,
}

/// The array's data layout.
#[derive(Debug, Clone)]
pub struct Layout {
    shape: Shape,
    stripe_unit: u32,
    data_sectors: u64,
    mapper: DataMapper,
    geometry: Geometry,
    /// Stagger mirror copies rotationally (the §2.5 "striped mirror").
    mirror_stagger: bool,
    placement: ReplicaPlacement,
    /// XOR-parity organization over the striped space (RAID 4/5), if any.
    parity: Option<ParityConfig>,
}

impl Layout {
    /// Plans a layout for `data_sectors` of logical data on `shape` over
    /// disks with the given geometry.
    ///
    /// # Examples
    ///
    /// ```
    /// use mimd_core::{Layout, Shape};
    /// use mimd_disk::{DiskParams, Geometry};
    ///
    /// let g = Geometry::new(&DiskParams::st39133lwv());
    /// let layout = Layout::new(Shape::sr_array(2, 3).unwrap(), &g, 16_400_000, 128, false)
    ///     .unwrap();
    /// assert_eq!(layout.disks(), 6);
    /// ```
    pub fn new(
        shape: Shape,
        geometry: &Geometry,
        data_sectors: u64,
        stripe_unit: u32,
        mirror_stagger: bool,
    ) -> Result<Layout, LayoutError> {
        if data_sectors == 0 || stripe_unit == 0 {
            return Err(LayoutError::Degenerate);
        }
        let mapper =
            DataMapper::new(geometry, shape.dr).ok_or(LayoutError::ReplicationExceedsSurfaces {
                dr: shape.dr,
                surfaces: geometry.surfaces(),
            })?;
        let layout = Layout {
            shape,
            stripe_unit,
            data_sectors,
            mapper,
            geometry: geometry.clone(),
            mirror_stagger,
            placement: ReplicaPlacement::Even,
            parity: None,
        };
        let needed = layout.per_disk_data_sectors();
        if needed > layout.mapper.capacity() {
            return Err(LayoutError::CapacityExceeded {
                needed,
                available: layout.mapper.capacity(),
            });
        }
        Ok(layout)
    }

    /// Returns the layout with the given replica-placement strategy.
    pub fn with_placement(mut self, placement: ReplicaPlacement) -> Layout {
        self.placement = placement;
        self
    }

    /// Overlays an XOR-parity organization (RAID 4/5) on the layout.
    ///
    /// Parity composes with plain striping only (`Dr = Dm = 1`): the
    /// redundancy comes from the parity unit, not from replicas. The
    /// group width must be at least 3 (one parity plus two data members —
    /// a 2-wide group is just an expensive mirror) and must divide `Ds`
    /// so groups tile the array. Capacity is re-checked because each disk
    /// now carries `1/(G−1)` overhead of parity units.
    pub fn with_parity(mut self, parity: ParityConfig) -> Result<Layout, LayoutError> {
        if self.shape.dr != 1 || self.shape.dm != 1 {
            return Err(LayoutError::InvalidParity(format!(
                "parity organizations require plain striping (Dr=Dm=1), got Dr={} Dm={}",
                self.shape.dr, self.shape.dm
            )));
        }
        if parity.group < 3 {
            return Err(LayoutError::InvalidParity(format!(
                "parity group must span at least 3 disks, got {}",
                parity.group
            )));
        }
        if !self.shape.ds.is_multiple_of(parity.group) {
            return Err(LayoutError::InvalidParity(format!(
                "Ds={} is not a multiple of the parity group width {}",
                self.shape.ds, parity.group
            )));
        }
        self.parity = Some(parity);
        let needed = self.per_disk_data_sectors();
        if needed > self.mapper.capacity() {
            return Err(LayoutError::CapacityExceeded {
                needed,
                available: self.mapper.capacity(),
            });
        }
        Ok(self)
    }

    /// The parity organization, if one is configured.
    pub fn parity(&self) -> Option<ParityConfig> {
        self.parity
    }

    /// The array shape.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Total disks.
    pub fn disks(&self) -> usize {
        self.shape.disks() as usize
    }

    /// Stripe-unit size in sectors.
    pub fn stripe_unit(&self) -> u32 {
        self.stripe_unit
    }

    /// Logical data-set size in sectors.
    pub fn data_sectors(&self) -> u64 {
        self.data_sectors
    }

    /// Unique data sectors each disk holds. With a parity organization
    /// the denominator is the *data* units per stripe row — `G−1` of the
    /// `G` members — so per-disk footprint includes the parity overhead.
    pub fn per_disk_data_sectors(&self) -> u64 {
        let u = self.stripe_unit as u64;
        let total_units = self.data_sectors.div_ceil(u);
        let chunk = match self.parity {
            Some(p) => self.groups() as u64 * (p.group as u64 - 1),
            None => self.shape.ds as u64 * self.shape.dr as u64,
        };
        total_units.div_ceil(chunk) * u
    }

    /// The number of cylinders each disk's data occupies (the seek span).
    pub fn span_cylinders(&self) -> u32 {
        self.mapper.span_cylinders(self.per_disk_data_sectors())
    }

    fn grid_of(&self, unit: u64) -> (u32, u32, u64) {
        let ds = self.shape.ds as u64;
        let dr = self.shape.dr as u64;
        let column = (unit % ds) as u32;
        let row = ((unit / ds) % dr) as u32;
        let local_unit = unit / (ds * dr);
        (column, row, local_unit)
    }

    /// Disk index of `(column, row, mirror)` in the grid.
    pub fn disk_index(&self, column: u32, row: u32, mirror: u32) -> usize {
        ((column * self.shape.dr + row) * self.shape.dm + mirror) as usize
    }

    /// The number of groups in the array — the engine's shard unit. A
    /// group is the closure of all physical traffic for the units it
    /// owns. Without parity these are the `Ds × Dr` mirror groups of
    /// `Dm` disks each (rotational replicas share a disk and mirror
    /// copies stay inside the group); with parity they are the `Ds / G`
    /// parity groups of `G` disks each (RMW, reconstruction, and rebuild
    /// traffic all stay inside the group).
    pub fn groups(&self) -> usize {
        match self.parity {
            Some(p) => (self.shape.ds / p.group) as usize,
            None => (self.shape.ds * self.shape.dr) as usize,
        }
    }

    /// Disks per group: `Dm` for mirror groups, `G` for parity groups.
    /// Group `g` owns exactly disks `[g · w, (g + 1) · w)`.
    pub fn disks_per_group(&self) -> usize {
        match self.parity {
            Some(p) => p.group as usize,
            None => self.shape.dm as usize,
        }
    }

    /// The group that owns a fragment. Every replica, duplicate, retry,
    /// parity update, reconstruction read, and rebuild of the fragment
    /// stays on that group's disks.
    pub fn group_of(&self, frag: Fragment) -> usize {
        if self.parity.is_some() {
            return self.parity_group_of(frag);
        }
        let (column, row, _) = self.grid_of(frag.lbn / self.stripe_unit as u64);
        (column * self.shape.dr + row) as usize
    }

    /// Splits a logical request at stripe-unit boundaries.
    pub fn fragments(&self, lbn: u64, sectors: u32) -> Vec<Fragment> {
        let mut out = Vec::new();
        self.fragments_into(lbn, sectors, &mut out);
        out
    }

    /// Appends the fragments of `[lbn, lbn+sectors)` to `out`, reusing the
    /// caller's buffer (the allocation-free twin of [`Layout::fragments`]).
    pub fn fragments_into(&self, lbn: u64, sectors: u32, out: &mut Vec<Fragment>) {
        let u = self.stripe_unit as u64;
        let mut cur = lbn;
        let end = lbn + sectors as u64;
        while cur < end {
            let unit_end = (cur / u + 1) * u;
            let len = unit_end.min(end) - cur;
            out.push(Fragment {
                lbn: cur,
                sectors: len as u32,
            });
            cur += len;
        }
    }

    /// Plans a logical request into routed `(fragment, full_stripe)`
    /// submissions. For parity-organization writes this is
    /// [`Layout::parity_write_plan`] (aligned full-stripe runs collapse
    /// into one flagged fragment); everywhere else it is exactly
    /// [`Layout::fragments_into`] with the flag pinned `false`, so the
    /// non-parity fragment stream is untouched.
    pub fn plan_request(
        &self,
        write: bool,
        lbn: u64,
        sectors: u32,
        out: &mut Vec<(Fragment, bool)>,
    ) {
        if write && self.parity.is_some() {
            self.parity_write_plan(lbn, sectors, out);
            return;
        }
        let u = self.stripe_unit as u64;
        let mut cur = lbn;
        let end = lbn + sectors as u64;
        while cur < end {
            let unit_end = (cur / u + 1) * u;
            let len = unit_end.min(end) - cur;
            out.push((
                Fragment {
                    lbn: cur,
                    sectors: len as u32,
                },
                false,
            ));
            cur += len;
        }
    }

    /// The disks that hold copies of a fragment (one per mirror).
    pub fn owner_disks(&self, frag: Fragment) -> Vec<usize> {
        let (column, row, _) = self.grid_of(frag.lbn / self.stripe_unit as u64);
        (0..self.shape.dm)
            .map(|m| self.disk_index(column, row, m))
            .collect()
    }

    fn base_placement(&self, frag: Fragment) -> Option<(u32, u32, TrackLoc)> {
        let u = self.stripe_unit as u64;
        let unit = frag.lbn / u;
        let offset_in_unit = frag.lbn % u;
        let (column, row, local_unit) = self.grid_of(unit);
        let data_sector = local_unit * u + offset_in_unit;
        let loc = self.mapper.locate(data_sector)?;
        Some((column, row, loc))
    }

    fn replica_target(&self, loc: TrackLoc, k: u32, m: u32, sectors: u32) -> Target {
        let base_surface = loc.group * self.shape.dr;
        let base_angle = self
            .geometry
            .angle_of(Chs {
                cylinder: loc.cylinder,
                surface: base_surface,
                sector: loc.sector,
            })
            .unwrap_or(0.0);
        // Evenly spaced copies: step 1/Dr across rotational replicas; if
        // mirror copies are staggered too, the Dr x Dm copies share a
        // single 1/(Dr*Dm) lattice (the §2.5 striped mirror). The Random
        // ablation scatters secondary copies by a per-copy hash instead.
        let stagger = match self.placement {
            ReplicaPlacement::Even => {
                if self.mirror_stagger {
                    (k * self.shape.dm + m) as f64 / (self.shape.dr * self.shape.dm) as f64
                } else {
                    k as f64 / self.shape.dr as f64
                }
            }
            ReplicaPlacement::Random => {
                if k == 0 && m == 0 {
                    0.0
                } else {
                    let h = (loc.cylinder as u64)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(loc.sector as u64)
                        .wrapping_mul(0xBF58_476D_1CE4_E5B9)
                        .wrapping_add((k * self.shape.dm + m) as u64)
                        .wrapping_mul(0x94D0_49BB_1331_11EB);
                    (h >> 11) as f64 / (1u64 << 53) as f64
                }
            }
            ReplicaPlacement::IntraTrack => k as f64 / self.shape.dr as f64,
        };
        // Intra-track interleaving keeps every copy on the base track and
        // stretches transfers Dr-fold (the copies of *other* data pass
        // under the head between this block's sectors).
        let (surface, sectors) = match self.placement {
            ReplicaPlacement::IntraTrack => (base_surface, sectors * self.shape.dr),
            _ => (base_surface + k, sectors),
        };
        Target {
            cylinder: loc.cylinder,
            surface,
            angle: (base_angle + stagger).rem_euclid(1.0),
            sectors,
        }
    }

    /// All read candidates for a fragment: `Dr × Dm` replicas across the
    /// `Dm` owning disks. Returns an empty vector for out-of-range blocks.
    pub fn read_candidates(&self, frag: Fragment) -> Vec<Replica> {
        let Some((column, row, loc)) = self.base_placement(frag) else {
            return Vec::new();
        };
        let mut out = Vec::with_capacity((self.shape.dr * self.shape.dm) as usize);
        for m in 0..self.shape.dm {
            let disk = self.disk_index(column, row, m);
            for k in 0..self.shape.dr {
                out.push(Replica {
                    disk,
                    target: self.replica_target(loc, k, m, frag.sectors),
                    replica: k as u8,
                    mirror: m as u8,
                });
            }
        }
        #[cfg(debug_assertions)]
        self.check_replica_spacing(&out);
        out
    }

    /// Debug invariant: with deterministic placement, consecutive
    /// rotational replicas of one mirror copy sit exactly `1/Dr` of a
    /// revolution apart — the geometric premise of the paper's `R/Dr`
    /// expected-rotational-delay model (Equation 2).
    #[cfg(debug_assertions)]
    fn check_replica_spacing(&self, replicas: &[Replica]) {
        if matches!(self.placement, ReplicaPlacement::Random) {
            return;
        }
        let step = 1.0 / self.shape.dr as f64;
        for pair in replicas.windows(2) {
            if pair[0].mirror != pair[1].mirror {
                continue;
            }
            let gap = (pair[1].target.angle - pair[0].target.angle).rem_euclid(1.0);
            mimd_sim::sim_invariant!(
                (gap - step).abs() < 1e-9,
                "rotational replicas {} and {} of mirror {} sit {gap} apart, expected {step}",
                pair[0].replica,
                pair[1].replica,
                pair[0].mirror
            );
        }
    }

    /// Write placements grouped per mirror disk: `Dm` groups of `Dr`
    /// rotational replicas each.
    pub fn write_groups(&self, frag: Fragment) -> Vec<(usize, Vec<Replica>)> {
        let mut flat = Vec::new();
        self.write_groups_into(frag, &mut flat);
        flat.chunks_exact(self.shape.dr as usize)
            .map(|group| (group[0].disk, group.to_vec()))
            .collect()
    }

    /// Appends the `Dm × Dr` write placements of a fragment to `out` as
    /// `Dm` contiguous runs of `Dr` replicas each (a run shares one disk).
    /// Appends nothing for out-of-range blocks. This is the
    /// allocation-free twin of [`Layout::write_groups`]: the hot dispatch
    /// path slices the flat buffer by `chunks_exact(dr)` instead of
    /// materialising nested vectors.
    pub fn write_groups_into(&self, frag: Fragment, out: &mut Vec<Replica>) {
        let Some((column, row, loc)) = self.base_placement(frag) else {
            return;
        };
        for m in 0..self.shape.dm {
            let disk = self.disk_index(column, row, m);
            let start = out.len();
            for k in 0..self.shape.dr {
                out.push(Replica {
                    disk,
                    target: self.replica_target(loc, k, m, frag.sectors),
                    replica: k as u8,
                    mirror: m as u8,
                });
            }
            #[cfg(debug_assertions)]
            self.check_replica_spacing(&out[start..]);
            #[cfg(not(debug_assertions))]
            let _ = start;
        }
    }

    /// The physical extent holding a disk's data sectors `[offset, …)` for
    /// rotational replica `k` of mirror `m` — the copy unit of hot-spare
    /// rebuild. The span is clamped to the end of the replica track (the
    /// natural copy granule), to the disk's remaining data, and to
    /// `max_sectors`; returns `None` past the end of the data or for a
    /// zero budget.
    ///
    /// Every disk in one mirror column stores the same per-disk data
    /// image, so a rebuild reads extent `offset` from any surviving mirror
    /// and writes the same `offset` (once per replica) on the spare.
    pub fn rebuild_extent(
        &self,
        offset: u64,
        k: u32,
        m: u32,
        max_sectors: u32,
    ) -> Option<(Target, u32)> {
        let per_disk = self.per_disk_data_sectors();
        if max_sectors == 0 || offset >= per_disk {
            return None;
        }
        let loc = self.mapper.locate(offset)?;
        let to_track_end = loc.spt.saturating_sub(loc.sector).max(1);
        let span = u64::from(to_track_end.min(max_sectors)).min(per_disk - offset) as u32;
        Some((self.replica_target(loc, k, m, span), span))
    }

    /// Debug-only: asserts a rebuilt disk's rotational replicas regained
    /// their `1/Dr` spacing. The rebuild writes extents produced by the
    /// same placement arithmetic as the original layout; this pins that
    /// equivalence where the engine flips the disk back to live.
    #[cfg(debug_assertions)]
    pub fn check_rebuilt_disk(&self, disk: usize) {
        let m = (disk % self.shape.dm as usize) as u32;
        let mut replicas = Vec::with_capacity(self.shape.dr as usize);
        for k in 0..self.shape.dr {
            if let Some((target, _)) = self.rebuild_extent(0, k, m, 1) {
                replicas.push(Replica {
                    disk,
                    target,
                    replica: k as u8,
                    mirror: m as u8,
                });
            }
        }
        self.check_replica_spacing(&replicas);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimd_disk::DiskParams;

    fn geom() -> Geometry {
        Geometry::new(&DiskParams::st39133lwv())
    }

    fn layout(shape: Shape) -> Layout {
        Layout::new(shape, &geom(), 16_400_000, DEFAULT_STRIPE_UNIT, false).unwrap()
    }

    #[test]
    fn capacity_validation() {
        let g = geom();
        // More than a disk's worth of data on a single disk cannot fit.
        let err =
            Layout::new(Shape::new(1, 1, 1).unwrap(), &g, 18_000_000, 128, false).unwrap_err();
        assert!(matches!(err, LayoutError::CapacityExceeded { .. }));
        // 1x2 replication doubles the footprint: a full disk of data needs
        // two disks' media, which one column of two disks provides exactly.
        assert!(Layout::new(Shape::new(1, 2, 1).unwrap(), &g, 16_400_000, 128, false).is_ok());
        let err =
            Layout::new(Shape::new(1, 2, 1).unwrap(), &g, 17_900_000, 128, false).unwrap_err();
        assert!(matches!(err, LayoutError::CapacityExceeded { .. }));
        // Dr beyond surfaces rejected.
        let err = Layout::new(Shape::new(1, 13, 1).unwrap(), &g, 1_000, 128, false).unwrap_err();
        assert!(matches!(
            err,
            LayoutError::ReplicationExceedsSurfaces { .. }
        ));
        assert!(matches!(
            Layout::new(Shape::striping(2), &g, 0, 128, false).unwrap_err(),
            LayoutError::Degenerate
        ));
    }

    #[test]
    fn sr_array_span_shrinks_with_ds() {
        let l_stripe6 = layout(Shape::striping(6));
        let l_sr = layout(Shape::sr_array(2, 3).unwrap());
        let l_sr32 = layout(Shape::sr_array(3, 2).unwrap());
        // 2x3 and 3x2 both hold 1/2 resp. 1/3 of data per disk, expanded by
        // replicas to 1/2 resp 1/3 span... per-disk span: data/(ds).
        let full = DataMapper::new(&geom(), 1)
            .unwrap()
            .span_cylinders(16_400_000);
        assert!(
            l_sr.span_cylinders() > full / 3,
            "2x3 span {}",
            l_sr.span_cylinders()
        );
        assert!(l_sr.span_cylinders() < full * 6 / 10);
        assert!(l_sr32.span_cylinders() < l_sr.span_cylinders());
        assert!(l_stripe6.span_cylinders() < l_sr32.span_cylinders());
    }

    #[test]
    fn fragments_split_at_unit_boundaries() {
        let l = layout(Shape::striping(4));
        assert_eq!(l.fragments(0, 8), vec![Fragment { lbn: 0, sectors: 8 }]);
        assert_eq!(
            l.fragments(120, 16),
            vec![
                Fragment {
                    lbn: 120,
                    sectors: 8
                },
                Fragment {
                    lbn: 128,
                    sectors: 8
                },
            ]
        );
        // [100,400) crosses three unit boundaries: 28 + 128 + 128 + 16.
        let four = l.fragments(100, 300);
        assert_eq!(four.len(), 4);
        assert_eq!(four.iter().map(|f| f.sectors).sum::<u32>(), 300);
        assert_eq!(four[0].sectors, 28);
        assert_eq!(four[3].sectors, 16);
    }

    #[test]
    fn striping_spreads_units_round_robin() {
        let l = layout(Shape::striping(4));
        let disks: Vec<usize> = (0..8)
            .map(|i| {
                l.owner_disks(Fragment {
                    lbn: i * 128,
                    sectors: 8,
                })[0]
            })
            .collect();
        assert_eq!(disks, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn sr_array_grid_addressing() {
        let l = layout(Shape::sr_array(2, 3).unwrap());
        // Unit u: column = u % 2, row = (u/2) % 3, disk = column*3 + row.
        let expect: Vec<usize> = vec![0, 3, 1, 4, 2, 5, 0, 3];
        let got: Vec<usize> = (0..8)
            .map(|i| {
                l.owner_disks(Fragment {
                    lbn: i * 128,
                    sectors: 8,
                })[0]
            })
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn read_candidates_have_dr_times_dm_entries() {
        let l = Layout::new(Shape::new(2, 3, 2).unwrap(), &geom(), 8_000_000, 128, false).unwrap();
        let c = l.read_candidates(Fragment {
            lbn: 1_000,
            sectors: 8,
        });
        assert_eq!(c.len(), 6);
        // Two distinct disks, adjacent indices (mirror pairs).
        let mut disks: Vec<usize> = c.iter().map(|r| r.disk).collect();
        disks.sort_unstable();
        disks.dedup();
        assert_eq!(disks.len(), 2);
        // Replicas on one disk sit on consecutive surfaces of one cylinder.
        let on_first: Vec<&Replica> = c.iter().filter(|r| r.disk == disks[0]).collect();
        assert_eq!(on_first.len(), 3);
        let cyl = on_first[0].target.cylinder;
        assert!(on_first.iter().all(|r| r.target.cylinder == cyl));
        let mut surfaces: Vec<u32> = on_first.iter().map(|r| r.target.surface).collect();
        surfaces.sort_unstable();
        assert_eq!(surfaces[1], surfaces[0] + 1);
        assert_eq!(surfaces[2], surfaces[0] + 2);
    }

    #[test]
    fn rotational_replicas_are_evenly_staggered() {
        let l = layout(Shape::sr_array(2, 3).unwrap());
        let c = l.read_candidates(Fragment { lbn: 0, sectors: 8 });
        assert_eq!(c.len(), 3);
        let mut angles: Vec<f64> = c.iter().map(|r| r.target.angle).collect();
        angles.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let gap1 = angles[1] - angles[0];
        let gap2 = angles[2] - angles[1];
        assert!((gap1 - 1.0 / 3.0).abs() < 1e-9, "gap1 {gap1}");
        assert!((gap2 - 1.0 / 3.0).abs() < 1e-9, "gap2 {gap2}");
    }

    #[test]
    fn striped_mirror_staggers_across_disks() {
        let l = Layout::new(Shape::new(3, 1, 2).unwrap(), &geom(), 8_000_000, 128, true).unwrap();
        let c = l.read_candidates(Fragment { lbn: 0, sectors: 8 });
        assert_eq!(c.len(), 2);
        assert_ne!(c[0].disk, c[1].disk);
        let gap = (c[0].target.angle - c[1].target.angle).rem_euclid(1.0);
        assert!((gap - 0.5).abs() < 1e-9, "gap {gap}");
    }

    #[test]
    fn unstaggered_mirror_copies_share_angles() {
        let l = Layout::new(Shape::new(3, 1, 2).unwrap(), &geom(), 8_000_000, 128, false).unwrap();
        let c = l.read_candidates(Fragment {
            lbn: 256,
            sectors: 8,
        });
        assert_eq!(c.len(), 2);
        assert!((c[0].target.angle - c[1].target.angle).abs() < 1e-12);
    }

    #[test]
    fn write_groups_cover_every_copy() {
        let l = Layout::new(Shape::new(2, 2, 2).unwrap(), &geom(), 4_000_000, 128, false).unwrap();
        let g = l.write_groups(Fragment {
            lbn: 777,
            sectors: 8,
        });
        assert_eq!(g.len(), 2);
        for (disk, replicas) in &g {
            assert_eq!(replicas.len(), 2);
            assert!(replicas.iter().all(|r| r.disk == *disk));
        }
        assert_ne!(g[0].0, g[1].0);
    }

    #[test]
    fn d_way_mirror_owns_every_disk() {
        let l = Layout::new(Shape::mirror(4), &geom(), 8_000_000, 128, false).unwrap();
        let owners = l.owner_disks(Fragment { lbn: 0, sectors: 8 });
        assert_eq!(owners, vec![0, 1, 2, 3]);
    }

    #[test]
    fn per_disk_data_accounts_for_grid() {
        let l = layout(Shape::sr_array(2, 3).unwrap());
        let per = l.per_disk_data_sectors();
        // 16.4M sectors over ds*dr = 6 chunks, unit-rounded.
        assert!(per >= 16_400_000 / 6);
        assert!(per < 16_400_000 / 6 + 256);
    }

    #[test]
    fn out_of_range_fragment_yields_no_candidates() {
        let l = layout(Shape::striping(2));
        let frag = Fragment {
            lbn: 40_000_000_000,
            sectors: 8,
        };
        assert!(l.read_candidates(frag).is_empty());
        assert!(l.write_groups(frag).is_empty());
    }
}
