//! Per-disk data placement with rotational replication.
//!
//! On each disk, surfaces are grouped in runs of `Dr`: group `g` spans
//! surfaces `g·Dr .. g·Dr + Dr`, and the `Dr` tracks of a group hold `Dr`
//! *copies* of the same track's worth of data, staggered `1/Dr` of a
//! revolution apart. Replicas therefore live "on different tracks ...
//! within a cylinder of a single disk" (§2.2, Figure 2(c)), so large
//! transfers never shorten the effective track, and a foreground write can
//! walk the copies with track switches (§4.1's 900 µs switch budget).
//!
//! Data fills cylinders from the outer edge; a data set occupying `1/Ds`
//! of a disk therefore spans the outermost `1/Ds` of its cylinders, which
//! is what bounds the seek distance in an SR-Array.

use mimd_disk::Geometry;

/// Location of a data sector on a disk, in replica-group terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrackLoc {
    /// Cylinder holding the group.
    pub cylinder: u32,
    /// Replica-group index within the cylinder.
    pub group: u32,
    /// Sector offset within the group's track.
    pub sector: u32,
    /// Sectors per track at this cylinder.
    pub spt: u32,
}

#[derive(Debug, Clone)]
struct MapZone {
    first_data_sector: u64,
    first_cylinder: u32,
    cylinders: u32,
    spt: u32,
}

/// Maps a disk's linear data space onto replica groups.
#[derive(Debug, Clone)]
pub struct DataMapper {
    zones: Vec<MapZone>,
    groups_per_cylinder: u32,
    dr: u32,
    capacity: u64,
}

impl DataMapper {
    /// Builds a mapper for `dr`-way rotational replication on a disk with
    /// the given geometry.
    ///
    /// Returns `None` if `dr` is zero or exceeds the surface count.
    ///
    /// # Examples
    ///
    /// ```
    /// use mimd_core::layout::DataMapper;
    /// use mimd_disk::{DiskParams, Geometry};
    ///
    /// let g = Geometry::new(&DiskParams::st39133lwv());
    /// let m = DataMapper::new(&g, 3).unwrap();
    /// // Three replicas divide the drive's data capacity by at least 3.
    /// assert!(m.capacity() <= g.total_sectors() / 3);
    /// ```
    pub fn new(geometry: &Geometry, dr: u32) -> Option<Self> {
        if dr == 0 || dr > geometry.surfaces() {
            return None;
        }
        let groups = geometry.surfaces() / dr;
        let mut zones = Vec::new();
        let mut acc = 0u64;
        for z in geometry.zone_table() {
            zones.push(MapZone {
                first_data_sector: acc,
                first_cylinder: z.first_cylinder,
                cylinders: z.cylinders,
                spt: z.sectors_per_track,
            });
            acc += z.cylinders as u64 * groups as u64 * z.sectors_per_track as u64;
        }
        Some(DataMapper {
            zones,
            groups_per_cylinder: groups,
            dr,
            capacity: acc,
        })
    }

    /// Replication degree.
    pub fn dr(&self) -> u32 {
        self.dr
    }

    /// Replica groups per cylinder.
    pub fn groups_per_cylinder(&self) -> u32 {
        self.groups_per_cylinder
    }

    /// Unique data sectors this disk can hold at this replication degree.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Locates a data sector; `None` beyond capacity.
    pub fn locate(&self, data_sector: u64) -> Option<TrackLoc> {
        if data_sector >= self.capacity {
            return None;
        }
        let idx = self
            .zones
            .partition_point(|z| {
                z.first_data_sector
                    + z.cylinders as u64 * self.groups_per_cylinder as u64 * z.spt as u64
                    <= data_sector
            })
            .min(self.zones.len() - 1);
        let z = &self.zones[idx];
        let rel = data_sector - z.first_data_sector;
        let per_cyl = self.groups_per_cylinder as u64 * z.spt as u64;
        let cyl_rel = (rel / per_cyl) as u32;
        let in_cyl = rel % per_cyl;
        let loc = TrackLoc {
            cylinder: z.first_cylinder + cyl_rel,
            group: (in_cyl / z.spt as u64) as u32,
            sector: (in_cyl % z.spt as u64) as u32,
            spt: z.spt,
        };
        mimd_sim::sim_invariant!(
            self.index_of(loc) == Some(data_sector),
            "data-sector<->track bijectivity broke: {data_sector} locates to {loc:?} \
             which maps back to {:?}",
            self.index_of(loc)
        );
        Some(loc)
    }

    /// Inverse of [`DataMapper::locate`]: the linear data index of a track
    /// location, or `None` for a location this mapper never produces.
    pub fn index_of(&self, loc: TrackLoc) -> Option<u64> {
        if loc.group >= self.groups_per_cylinder {
            return None;
        }
        let idx = self
            .zones
            .partition_point(|z| z.first_cylinder + z.cylinders <= loc.cylinder);
        let z = self.zones.get(idx)?;
        if loc.cylinder < z.first_cylinder || loc.spt != z.spt || loc.sector >= z.spt {
            return None;
        }
        let per_cyl = self.groups_per_cylinder as u64 * z.spt as u64;
        Some(
            z.first_data_sector
                + (loc.cylinder - z.first_cylinder) as u64 * per_cyl
                + loc.group as u64 * z.spt as u64
                + loc.sector as u64,
        )
    }

    /// Number of cylinders a contiguous prefix of `data_sectors` occupies
    /// (the seek span of the layout).
    pub fn span_cylinders(&self, data_sectors: u64) -> u32 {
        if data_sectors == 0 {
            return 0;
        }
        match self.locate(data_sectors - 1) {
            Some(loc) => loc.cylinder + 1,
            None => self
                .zones
                .last()
                .map(|z| z.first_cylinder + z.cylinders)
                .unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimd_disk::DiskParams;

    fn geom() -> Geometry {
        Geometry::new(&DiskParams::st39133lwv())
    }

    #[test]
    fn rejects_bad_replication_degrees() {
        let g = geom();
        assert!(DataMapper::new(&g, 0).is_none());
        assert!(DataMapper::new(&g, 13).is_none());
        assert!(DataMapper::new(&g, 12).is_some());
    }

    #[test]
    fn capacity_scales_inversely_with_dr() {
        let g = geom();
        let c1 = DataMapper::new(&g, 1).unwrap().capacity();
        let c2 = DataMapper::new(&g, 2).unwrap().capacity();
        let c3 = DataMapper::new(&g, 3).unwrap().capacity();
        assert_eq!(c1, g.total_sectors());
        assert_eq!(c2, c1 / 2);
        assert_eq!(c3, c1 / 3);
        // Dr = 5 wastes 2 of 12 surfaces: only 2 groups fit per cylinder,
        // so capacity is c1/6, strictly worse than the c1/5 a divisor of
        // the surface count would give.
        let c5 = DataMapper::new(&g, 5).unwrap().capacity();
        assert!(c5 < c1 / 5);
        assert_eq!(c5, c1 / 6);
    }

    #[test]
    fn locate_walks_groups_then_cylinders() {
        let g = geom();
        let m = DataMapper::new(&g, 3).unwrap();
        let spt = 248; // Outermost zone.
        let a = m.locate(0).unwrap();
        assert_eq!((a.cylinder, a.group, a.sector), (0, 0, 0));
        let b = m.locate(spt as u64 - 1).unwrap();
        assert_eq!((b.cylinder, b.group, b.sector), (0, 0, spt - 1));
        let c = m.locate(spt as u64).unwrap();
        assert_eq!((c.cylinder, c.group, c.sector), (0, 1, 0));
        // 4 groups of 3 surfaces each; the 5th track starts cylinder 1.
        let d = m.locate(4 * spt as u64).unwrap();
        assert_eq!((d.cylinder, d.group, d.sector), (1, 0, 0));
    }

    #[test]
    fn locate_handles_zone_boundaries() {
        let g = geom();
        let m = DataMapper::new(&g, 2).unwrap();
        // End of zone 0 data space: 633 cylinders x 6 groups x 248 spt.
        let z0 = 633u64 * 6 * 248;
        let last = m.locate(z0 - 1).unwrap();
        assert_eq!(last.cylinder, 632);
        assert_eq!(last.spt, 248);
        let first = m.locate(z0).unwrap();
        assert_eq!(first.cylinder, 633);
        assert_eq!(first.spt, 241);
        assert_eq!((first.group, first.sector), (0, 0));
    }

    #[test]
    fn index_of_rejects_foreign_locations() {
        let g = geom();
        let m = DataMapper::new(&g, 3).unwrap();
        let loc = m.locate(12_345).unwrap();
        assert_eq!(m.index_of(loc), Some(12_345));
        assert_eq!(m.index_of(TrackLoc { group: 99, ..loc }), None);
        assert_eq!(
            m.index_of(TrackLoc {
                spt: loc.spt + 1,
                ..loc
            }),
            None
        );
        assert_eq!(
            m.index_of(TrackLoc {
                sector: loc.spt,
                ..loc
            }),
            None
        );
        assert_eq!(
            m.index_of(TrackLoc {
                cylinder: g.total_cylinders(),
                ..loc
            }),
            None
        );
    }

    #[test]
    fn locate_rejects_beyond_capacity() {
        let g = geom();
        let m = DataMapper::new(&g, 6).unwrap();
        assert!(m.locate(m.capacity()).is_none());
        assert!(m.locate(m.capacity() - 1).is_some());
    }

    #[test]
    fn span_grows_with_data_and_dr() {
        let g = geom();
        let m1 = DataMapper::new(&g, 1).unwrap();
        let m3 = DataMapper::new(&g, 3).unwrap();
        let data = 1_000_000u64;
        // Triple replication spreads the same data over ~3x the cylinders.
        let s1 = m1.span_cylinders(data);
        let s3 = m3.span_cylinders(data);
        assert!(s3 > s1 * 2 && s3 < s1 * 4, "spans {s1} vs {s3}");
        assert_eq!(m1.span_cylinders(0), 0);
    }

    #[test]
    fn full_capacity_spans_all_cylinders() {
        let g = geom();
        let m = DataMapper::new(&g, 4).unwrap();
        assert_eq!(m.span_cylinders(m.capacity()), g.total_cylinders());
    }
}
