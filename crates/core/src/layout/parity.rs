//! XOR-parity organizations (RAID 4/5) over the striped array space.
//!
//! A parity configuration partitions the `Ds` disks of a plain striped
//! shape (`Dr = Dm = 1`) into groups of `G` disks each. Every stripe row
//! of a group holds `G−1` data units plus one parity unit — the XOR of
//! the row's data — so the group survives any single member failure:
//! a lost block is the XOR of the `G−1` survivors' blocks in its row.
//!
//! - **RAID 4**: the parity unit of every row lives on the group's last
//!   disk (a fixed parity disk, the small-write bottleneck).
//! - **RAID 5**: left-symmetric rotation — the parity unit of row `r`
//!   lives on local disk `(G−1) − (r mod G)` and the row's data units
//!   follow it cyclically, so parity (and data) traffic spread evenly
//!   over all `G` members.
//!
//! Like mirror groups, a parity group is closed under every physical
//! consequence of its fragments — RMW reads/writes, degraded
//! reconstruction reads, rebuild traffic all touch only the group's `G`
//! disks — which is what lets the engine keep one shard per parity group
//! and preserve its determinism-witness guarantees unchanged.
//!
//! Physically, stripe row `r` occupies per-disk data sectors
//! `[r·U, (r+1)·U)` at the *same* location on every member (the `Dr = 1`
//! mapper), so one [`Target`] addresses a row extent on any member disk
//! and the mirror rebuild's extent arithmetic carries over verbatim.

use std::ops::Range;

use mimd_disk::Target;

use super::{Fragment, Layout};

/// Which parity organization a [`ParityConfig`] selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaidLevel {
    /// Fixed parity disk per group (the last member).
    Raid4,
    /// Left-symmetric rotated parity.
    Raid5,
}

/// An XOR-parity organization over a plain striped shape.
///
/// # Examples
///
/// ```
/// use mimd_core::ParityConfig;
///
/// let p = ParityConfig::raid5(4);
/// assert_eq!(p.group, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParityConfig {
    /// RAID 4 (fixed parity disk) or RAID 5 (rotated parity).
    pub level: RaidLevel,
    /// Disks per parity group `G` (`G−1` data + 1 parity); at least 3,
    /// and `Ds` must be a multiple of it.
    pub group: u32,
}

impl ParityConfig {
    /// A RAID 4 organization with `group` disks per parity group.
    pub fn raid4(group: u32) -> ParityConfig {
        ParityConfig {
            level: RaidLevel::Raid4,
            group,
        }
    }

    /// A RAID 5 (left-symmetric) organization with `group` disks per
    /// parity group.
    pub fn raid5(group: u32) -> ParityConfig {
        ParityConfig {
            level: RaidLevel::Raid5,
            group,
        }
    }
}

/// Where one data fragment lives in a parity organization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParityLoc {
    /// Parity group index.
    pub group: usize,
    /// Stripe row within the group.
    pub row: u64,
    /// Global disk holding the data block.
    pub data_disk: usize,
    /// Global disk holding the row's parity unit.
    pub parity_disk: usize,
    /// Physical extent of the fragment — identical on every member disk
    /// (data, parity, and reconstruction reads all address this target).
    pub target: Target,
}

impl Layout {
    /// Data units per global stripe row: `ngroups × (G−1)`.
    fn parity_slots(&self) -> u64 {
        let p = self.parity.expect("parity layout");
        self.groups() as u64 * (p.group as u64 - 1)
    }

    /// The global disks of one parity group: `[g·G, (g+1)·G)`.
    pub fn parity_members(&self, group: usize) -> Range<usize> {
        let g = self.parity.expect("parity layout").group as usize;
        group * g..(group + 1) * g
    }

    /// The parity group that owns a fragment (the parity twin of the
    /// mirror-group routing in [`Layout::group_of`]).
    pub(crate) fn parity_group_of(&self, frag: Fragment) -> usize {
        let p = self.parity.expect("parity layout");
        let unit = frag.lbn / self.stripe_unit as u64;
        ((unit % self.parity_slots()) / (p.group as u64 - 1)) as usize
    }

    /// The physical extent of `sectors` at offset `off` into stripe row
    /// `row` — the same location on every member disk of the row's group.
    fn parity_row_target(&self, row: u64, off: u64, sectors: u32) -> Option<Target> {
        let u = self.stripe_unit as u64;
        let loc = self.mapper.locate(row * u + off)?;
        Some(self.replica_target(loc, 0, 0, sectors))
    }

    /// Resolves a (unit-confined) fragment to its data disk, parity disk,
    /// and physical target. Returns `None` for out-of-range blocks.
    pub fn parity_locate(&self, frag: Fragment) -> Option<ParityLoc> {
        let p = self.parity?;
        let u = self.stripe_unit as u64;
        let unit = frag.lbn / u;
        let off = frag.lbn % u;
        let slots = self.parity_slots();
        let row = unit / slots;
        let q = unit % slots;
        let gm1 = p.group as u64 - 1;
        let grp = (q / gm1) as usize;
        let dpos = q % gm1;
        let g = p.group as u64;
        // RAID 5 left-symmetric: parity walks backwards one disk per row
        // and the row's data units follow it cyclically; RAID 4 pins
        // parity to the last member.
        let p_local = match p.level {
            RaidLevel::Raid4 => g - 1,
            RaidLevel::Raid5 => (g - 1) - row % g,
        };
        let d_local = match p.level {
            RaidLevel::Raid4 => dpos,
            RaidLevel::Raid5 => (p_local + 1 + dpos) % g,
        };
        let target = self.parity_row_target(row, off, frag.sectors)?;
        let base = grp * p.group as usize;
        Some(ParityLoc {
            group: grp,
            row,
            data_disk: base + d_local as usize,
            parity_disk: base + p_local as usize,
            target,
        })
    }

    /// Resolves a full-stripe write fragment (one group's `G−1` data
    /// units of one row, produced by [`Layout::parity_write_plan`]) to
    /// `(group, row, unit_target)`: each member disk — data and parity
    /// alike — writes exactly the row's unit extent.
    pub fn parity_stripe(&self, frag: Fragment) -> Option<(usize, u64, Target)> {
        let p = self.parity?;
        let unit = frag.lbn / self.stripe_unit as u64;
        let slots = self.parity_slots();
        let row = unit / slots;
        let grp = ((unit % slots) / (p.group as u64 - 1)) as usize;
        let target = self.parity_row_target(row, 0, self.stripe_unit)?;
        Some((grp, row, target))
    }

    /// Splits a parity-organization write into submissions: an aligned
    /// run covering all `G−1` data units of one group's row collapses
    /// into a single stripe-write fragment (flagged `true` — parity is
    /// computed from the new data, no old-value reads needed); everything
    /// else stays a unit fragment headed for the read–modify–write path.
    pub fn parity_write_plan(&self, lbn: u64, sectors: u32, out: &mut Vec<(Fragment, bool)>) {
        let p = self.parity.expect("parity layout");
        let u = self.stripe_unit as u64;
        let gm1 = p.group as u64 - 1;
        let mut cur = lbn;
        let end = lbn + sectors as u64;
        while cur < end {
            let unit = cur / u;
            let dpos = (unit % self.parity_slots()) % gm1;
            if cur.is_multiple_of(u) && dpos == 0 && end - cur >= gm1 * u {
                out.push((
                    Fragment {
                        lbn: cur,
                        sectors: (gm1 * u) as u32,
                    },
                    true,
                ));
                cur += gm1 * u;
                continue;
            }
            let unit_end = (unit + 1) * u;
            let len = unit_end.min(end) - cur;
            out.push((
                Fragment {
                    lbn: cur,
                    sectors: len as u32,
                },
                false,
            ));
            cur += len;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{LayoutError, Shape, DEFAULT_STRIPE_UNIT};
    use super::*;
    use mimd_disk::{DiskParams, Geometry};

    fn geom() -> Geometry {
        Geometry::new(&DiskParams::st39133lwv())
    }

    fn parity_layout(ds: u32, p: ParityConfig) -> Layout {
        Layout::new(
            Shape::striping(ds),
            &geom(),
            8_000_000,
            DEFAULT_STRIPE_UNIT,
            false,
        )
        .unwrap()
        .with_parity(p)
        .unwrap()
    }

    #[test]
    fn parity_requires_plain_striping_and_divisible_groups() {
        let g = geom();
        let mk = |shape: Shape, p: ParityConfig| {
            Layout::new(shape, &g, 1_000_000, DEFAULT_STRIPE_UNIT, false)
                .unwrap()
                .with_parity(p)
        };
        assert!(matches!(
            mk(Shape::new(4, 2, 1).unwrap(), ParityConfig::raid5(4)),
            Err(LayoutError::InvalidParity(_))
        ));
        assert!(matches!(
            mk(Shape::raid10(4).unwrap(), ParityConfig::raid5(2)),
            Err(LayoutError::InvalidParity(_))
        ));
        assert!(matches!(
            mk(Shape::striping(6), ParityConfig::raid5(2)),
            Err(LayoutError::InvalidParity(_))
        ));
        assert!(matches!(
            mk(Shape::striping(6), ParityConfig::raid5(4)),
            Err(LayoutError::InvalidParity(_))
        ));
        assert!(mk(Shape::striping(6), ParityConfig::raid5(3)).is_ok());
        assert!(mk(Shape::striping(6), ParityConfig::raid4(6)).is_ok());
    }

    #[test]
    fn parity_capacity_accounts_for_the_parity_unit() {
        // 4 disks, G=4: 3 data units per row, so per-disk data is a third
        // of the total (unit-rounded) — not a quarter.
        let l = parity_layout(4, ParityConfig::raid5(4));
        let per = l.per_disk_data_sectors();
        assert!(per >= 8_000_000 / 3, "per-disk {per}");
        assert!(per < 8_000_000 / 3 + 256, "per-disk {per}");
        // And a data set needing more than capacity×(G−1)/G is rejected.
        let err = Layout::new(
            Shape::striping(4),
            &geom(),
            17_900_000 * 3,
            DEFAULT_STRIPE_UNIT,
            false,
        )
        .unwrap()
        .with_parity(ParityConfig::raid5(4))
        .unwrap_err();
        assert!(matches!(err, LayoutError::CapacityExceeded { .. }));
    }

    #[test]
    fn raid4_pins_parity_to_the_last_member() {
        let l = parity_layout(4, ParityConfig::raid4(4));
        let u = DEFAULT_STRIPE_UNIT as u64;
        for unit in 0..12u64 {
            let loc = l
                .parity_locate(Fragment {
                    lbn: unit * u,
                    sectors: 8,
                })
                .unwrap();
            assert_eq!(loc.parity_disk, 3, "unit {unit}");
            assert_eq!(loc.data_disk, (unit % 3) as usize, "unit {unit}");
            assert_eq!(loc.row, unit / 3, "unit {unit}");
        }
    }

    #[test]
    fn raid5_rotates_parity_left_symmetrically() {
        let l = parity_layout(4, ParityConfig::raid5(4));
        let u = DEFAULT_STRIPE_UNIT as u64;
        // Row r parity on local disk (G−1) − (r mod G); data follows it.
        let parity_of = |row: u64| {
            l.parity_locate(Fragment {
                lbn: row * 3 * u,
                sectors: 8,
            })
            .unwrap()
            .parity_disk
        };
        assert_eq!(parity_of(0), 3);
        assert_eq!(parity_of(1), 2);
        assert_eq!(parity_of(2), 1);
        assert_eq!(parity_of(3), 0);
        assert_eq!(parity_of(4), 3);
        // Within a row, the G−1 data units land on the G−1 non-parity
        // members, each exactly once.
        for row in 0..5u64 {
            let mut disks: Vec<usize> = (0..3)
                .map(|d| {
                    let loc = l
                        .parity_locate(Fragment {
                            lbn: (row * 3 + d) * u,
                            sectors: 8,
                        })
                        .unwrap();
                    assert_eq!(loc.row, row);
                    assert_ne!(loc.data_disk, loc.parity_disk);
                    loc.data_disk
                })
                .collect();
            disks.sort_unstable();
            disks.dedup();
            assert_eq!(disks.len(), 3, "row {row}");
        }
    }

    #[test]
    fn multiple_groups_route_like_shards() {
        // 8 disks, G=4: two parity groups of four disks each.
        let l = parity_layout(8, ParityConfig::raid5(4));
        assert_eq!(l.groups(), 2);
        assert_eq!(l.disks_per_group(), 4);
        assert_eq!(l.parity_members(0), 0..4);
        assert_eq!(l.parity_members(1), 4..8);
        let u = DEFAULT_STRIPE_UNIT as u64;
        // Units 0..3 fill group 0's row 0, units 3..6 fill group 1's.
        for q in 0..6u64 {
            let frag = Fragment {
                lbn: q * u,
                sectors: 8,
            };
            let expect = (q / 3) as usize;
            assert_eq!(l.group_of(frag), expect, "unit {q}");
            let loc = l.parity_locate(frag).unwrap();
            assert_eq!(loc.group, expect);
            assert!(l.parity_members(expect).contains(&loc.data_disk));
            assert!(l.parity_members(expect).contains(&loc.parity_disk));
        }
    }

    #[test]
    fn members_share_one_physical_extent_per_row() {
        let l = parity_layout(4, ParityConfig::raid5(4));
        let u = DEFAULT_STRIPE_UNIT as u64;
        // All data units of one row, and the stripe target, address the
        // same cylinder/surface/angle — the rebuild-extent premise.
        let row3: Vec<ParityLoc> = (0..3)
            .map(|d| {
                l.parity_locate(Fragment {
                    lbn: (3 * 3 + d) * u,
                    sectors: DEFAULT_STRIPE_UNIT,
                })
                .unwrap()
            })
            .collect();
        let t0 = row3[0].target;
        for loc in &row3 {
            assert_eq!(loc.target.cylinder, t0.cylinder);
            assert_eq!(loc.target.surface, t0.surface);
            assert!((loc.target.angle - t0.angle).abs() < 1e-12);
        }
        let (_, row, st) = l
            .parity_stripe(Fragment {
                lbn: 3 * 3 * u,
                sectors: 3 * DEFAULT_STRIPE_UNIT,
            })
            .unwrap();
        assert_eq!(row, 3);
        assert_eq!(st.cylinder, t0.cylinder);
        assert_eq!(st.surface, t0.surface);
    }

    #[test]
    fn write_plan_collapses_aligned_full_stripes() {
        let l = parity_layout(4, ParityConfig::raid5(4));
        let u = DEFAULT_STRIPE_UNIT;
        let plan = |lbn: u64, sectors: u32| {
            let mut out = Vec::new();
            l.parity_write_plan(lbn, sectors, &mut out);
            out
        };
        // A full aligned row (3 units) is one stripe write.
        let p = plan(0, 3 * u);
        assert_eq!(p.len(), 1);
        assert!(p[0].1);
        assert_eq!(p[0].0.sectors, 3 * u);
        // Misaligned or partial runs fall back to unit RMW fragments.
        let p = plan(u as u64, 3 * u);
        assert!(p.iter().all(|&(_, stripe)| !stripe));
        assert_eq!(p.len(), 3);
        let p = plan(8, 2 * u);
        assert!(p.iter().all(|&(_, stripe)| !stripe));
        // Two rows plus a leading unit: one RMW then... the tail after
        // the stripe merge re-aligns, so expect stripe merges inside.
        let p = plan(0, 7 * u);
        let total: u32 = p.iter().map(|&(f, _)| f.sectors).sum();
        assert_eq!(total, 7 * u);
        assert_eq!(p.iter().filter(|&&(_, s)| s).count(), 2);
        // Sub-unit write: exactly one RMW fragment.
        let p = plan(100, 8);
        assert_eq!(p.len(), 1);
        assert!(!p[0].1);
    }

    #[test]
    fn plan_request_matches_fragments_without_parity() {
        let l = Layout::new(
            Shape::striping(4),
            &geom(),
            8_000_000,
            DEFAULT_STRIPE_UNIT,
            false,
        )
        .unwrap();
        let mut planned = Vec::new();
        l.plan_request(true, 100, 300, &mut planned);
        let frags = l.fragments(100, 300);
        assert_eq!(planned.len(), frags.len());
        for (&(pf, stripe), &f) in planned.iter().zip(frags.iter()) {
            assert_eq!(pf, f);
            assert!(!stripe);
        }
    }
}
