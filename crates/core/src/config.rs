//! Array shapes: the `Ds × Dr × Dm` configuration space.
//!
//! Section 2.5 defines the most general configuration, the *SR-Mirror*: data
//! is striped `Ds` ways (using only `1/Ds` of each disk's cylinders), each
//! block has `Dr` rotational replicas on the same disk, and `Dm` copies on
//! different disks. Familiar organisations are corners of this space:
//!
//! - `D × 1 × 1` — D-way striping
//! - `1 × 1 × D` — D-way mirror
//! - `Ds × 1 × 2` — the common RAID-10
//! - `Ds × Dr × 1` — an SR-Array

use std::fmt;

/// An array configuration `Ds × Dr × Dm`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape {
    /// Striping degree: only `1/Ds` of each disk's cylinders carry data.
    pub ds: u32,
    /// Rotational replicas per block, all on the same disk.
    pub dr: u32,
    /// Mirror copies on distinct disks.
    pub dm: u32,
}

impl Shape {
    /// Creates a shape; all factors must be positive.
    ///
    /// # Examples
    ///
    /// ```
    /// use mimd_core::Shape;
    ///
    /// let s = Shape::new(2, 3, 1).unwrap();
    /// assert_eq!(s.disks(), 6);
    /// assert_eq!(s.to_string(), "2x3x1");
    /// ```
    pub fn new(ds: u32, dr: u32, dm: u32) -> Option<Shape> {
        if ds == 0 || dr == 0 || dm == 0 {
            return None;
        }
        Some(Shape { ds, dr, dm })
    }

    /// Pure striping over `d` disks.
    pub fn striping(d: u32) -> Shape {
        Shape {
            ds: d,
            dr: 1,
            dm: 1,
        }
    }

    /// A `d`-way mirror.
    pub fn mirror(d: u32) -> Shape {
        Shape {
            ds: 1,
            dr: 1,
            dm: d,
        }
    }

    /// RAID-10 over `d` disks (two-way mirrored stripes).
    ///
    /// Returns `None` for odd `d`.
    pub fn raid10(d: u32) -> Option<Shape> {
        if d == 0 || !d.is_multiple_of(2) {
            return None;
        }
        Some(Shape {
            ds: d / 2,
            dr: 1,
            dm: 2,
        })
    }

    /// An SR-Array `ds × dr`.
    pub fn sr_array(ds: u32, dr: u32) -> Option<Shape> {
        Shape::new(ds, dr, 1)
    }

    /// Total number of disks.
    pub fn disks(&self) -> u32 {
        self.ds * self.dr * self.dm
    }

    /// Total copies of each block (`Dr × Dm`, §3.4).
    pub fn copies(&self) -> u32 {
        self.dr * self.dm
    }

    /// Whether this shape survives any single-disk failure (every block
    /// exists on at least two distinct disks).
    pub fn is_fault_tolerant(&self) -> bool {
        self.dm >= 2
    }

    /// A conventional name for this corner of the configuration space.
    pub fn kind(&self) -> ShapeKind {
        match (self.ds, self.dr, self.dm) {
            (_, 1, 1) => ShapeKind::Striping,
            (1, 1, _) => ShapeKind::Mirror,
            (_, 1, 2) => ShapeKind::Raid10,
            (_, _, 1) => ShapeKind::SrArray,
            _ => ShapeKind::SrMirror,
        }
    }

    /// All shapes with exactly `d` disks, optionally capping the rotational
    /// degree (the paper's prototype caps `Dr` at 6 because track switches
    /// make more replicas unpropagatable within one revolution).
    pub fn enumerate(d: u32, max_dr: u32) -> Vec<Shape> {
        let mut out = Vec::new();
        if d == 0 {
            return out;
        }
        for ds in 1..=d {
            if !d.is_multiple_of(ds) {
                continue;
            }
            let rest = d / ds;
            for dr in 1..=rest {
                if !rest.is_multiple_of(dr) || dr > max_dr {
                    continue;
                }
                out.push(Shape {
                    ds,
                    dr,
                    dm: rest / dr,
                });
            }
        }
        out
    }

    /// All SR-Array shapes (`dm = 1`) with exactly `d` disks.
    pub fn enumerate_sr(d: u32, max_dr: u32) -> Vec<Shape> {
        Self::enumerate(d, max_dr)
            .into_iter()
            .filter(|s| s.dm == 1)
            .collect()
    }
}

/// The conventional families of §2.5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShapeKind {
    /// `D × 1 × 1`.
    Striping,
    /// `1 × 1 × D`.
    Mirror,
    /// `Ds × 1 × 2`.
    Raid10,
    /// `Ds × Dr × 1`.
    SrArray,
    /// Anything with both `Dr > 1` and `Dm > 1`.
    SrMirror,
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.ds, self.dr, self.dm)
    }
}

impl fmt::Display for ShapeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ShapeKind::Striping => "striping",
            ShapeKind::Mirror => "mirror",
            ShapeKind::Raid10 => "RAID-10",
            ShapeKind::SrArray => "SR-Array",
            ShapeKind::SrMirror => "SR-Mirror",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_counts() {
        assert_eq!(Shape::striping(6).disks(), 6);
        assert_eq!(Shape::mirror(4).disks(), 4);
        assert_eq!(
            Shape::raid10(6).unwrap(),
            Shape {
                ds: 3,
                dr: 1,
                dm: 2
            }
        );
        assert_eq!(Shape::raid10(5), None);
        assert_eq!(Shape::new(2, 3, 1).unwrap().copies(), 3);
        assert_eq!(Shape::new(2, 3, 2).unwrap().copies(), 6);
        assert_eq!(Shape::new(0, 1, 1), None);
    }

    #[test]
    fn kinds_match_section_2_5() {
        assert_eq!(Shape::striping(6).kind(), ShapeKind::Striping);
        assert_eq!(Shape::mirror(6).kind(), ShapeKind::Mirror);
        assert_eq!(Shape::raid10(6).unwrap().kind(), ShapeKind::Raid10);
        assert_eq!(Shape::sr_array(2, 3).unwrap().kind(), ShapeKind::SrArray);
        assert_eq!(Shape::new(3, 2, 2).unwrap().kind(), ShapeKind::SrMirror);
        // A single disk is "striping" degree 1.
        assert_eq!(Shape::striping(1).kind(), ShapeKind::Striping);
    }

    #[test]
    fn fault_tolerance_requires_mirroring() {
        assert!(!Shape::sr_array(2, 3).unwrap().is_fault_tolerant());
        assert!(Shape::raid10(6).unwrap().is_fault_tolerant());
        assert!(Shape::mirror(2).is_fault_tolerant());
        assert!(!Shape::striping(8).is_fault_tolerant());
    }

    #[test]
    fn enumerate_covers_all_factorizations() {
        let shapes = Shape::enumerate(6, 6);
        // 6 = ds*dr*dm: (1,1,6),(1,2,3),(1,3,2),(1,6,1),(2,1,3),(2,3,1),
        // (3,1,2),(3,2,1),(6,1,1),(2,... let the count assert it.
        assert!(shapes.iter().all(|s| s.disks() == 6));
        assert!(shapes.contains(&Shape {
            ds: 2,
            dr: 3,
            dm: 1
        }));
        assert!(shapes.contains(&Shape {
            ds: 3,
            dr: 1,
            dm: 2
        }));
        assert!(shapes.contains(&Shape {
            ds: 1,
            dr: 1,
            dm: 6
        }));
        assert_eq!(shapes.len(), 9);
        // No duplicates.
        let mut dedup = shapes.clone();
        dedup.sort_by_key(|s| (s.ds, s.dr, s.dm));
        dedup.dedup();
        assert_eq!(dedup.len(), shapes.len());
    }

    #[test]
    fn enumerate_respects_dr_cap() {
        let shapes = Shape::enumerate(12, 6);
        assert!(shapes.iter().all(|s| s.dr <= 6));
        assert!(!shapes.iter().any(|s| s.dr == 12));
        let sr = Shape::enumerate_sr(12, 6);
        assert!(sr.iter().all(|s| s.dm == 1 && s.disks() == 12));
        // 12 = ds*dr with dr<=6: (12,1),(6,2),(4,3),(3,4),(2,6).
        assert_eq!(sr.len(), 5);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Shape::new(9, 4, 1).unwrap().to_string(), "9x4x1");
        assert_eq!(ShapeKind::SrArray.to_string(), "SR-Array");
        assert_eq!(ShapeKind::Raid10.to_string(), "RAID-10");
    }

    #[test]
    fn enumerate_zero_disks_is_empty() {
        assert!(Shape::enumerate(0, 6).is_empty());
    }
}
