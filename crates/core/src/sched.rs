//! Local disk scheduling policies (§2.4, §3.3).
//!
//! Each disk owns a *drive queue*; when it falls idle, the configured
//! policy picks the next request and — for replica-aware policies — which
//! rotational replica to use:
//!
//! - [`Policy::Fcfs`] — arrival order (baseline).
//! - [`Policy::Look`] — the elevator: bi-directional cylinder sweep.
//! - [`Policy::Satf`] — shortest access time first over the primary copy.
//! - [`Policy::Rlook`] — LOOK's sweep, but "chooses the replica that is
//!   rotationally closest among all the replicas during the scan".
//! - [`Policy::Rsatf`] — SATF over *all* rotational replicas.
//!
//! Positioning estimates come from [`SimDisk::estimate`], which is exactly
//! the head-position-prediction machinery of §3.2 (its residual error is
//! injected at service time, not here).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use mimd_disk::{SimDisk, Target};
use mimd_sim::{SimDuration, SimTime};

/// A disk-scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// First come, first served.
    Fcfs,
    /// Elevator sweep without rotational knowledge.
    Look,
    /// Shortest access time first (primary replica only).
    Satf,
    /// Elevator sweep choosing the rotationally closest replica.
    Rlook,
    /// Shortest access time first over all replicas.
    Rsatf,
}

impl Policy {
    /// Whether the policy chooses among rotational replicas.
    pub fn replica_aware(self) -> bool {
        matches!(self, Policy::Rlook | Policy::Rsatf)
    }

    /// The paper's default pairing (§4.1): RSATF for SR-Arrays, SATF for
    /// everything else.
    pub fn default_for_dr(dr: u32) -> Policy {
        if dr > 1 {
            Policy::Rsatf
        } else {
            Policy::Satf
        }
    }
}

impl std::fmt::Display for Policy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Policy::Fcfs => "FCFS",
            Policy::Look => "LOOK",
            Policy::Satf => "SATF",
            Policy::Rlook => "RLOOK",
            Policy::Rsatf => "RSATF",
        };
        f.write_str(s)
    }
}

/// A schedulable entry in a drive queue, as the policies see it.
pub trait Schedulable {
    /// The replica targets available on this disk (never empty).
    fn candidates(&self) -> &[Target];
    /// Whether the first media operation is a write.
    fn is_write(&self) -> bool;
    /// Arrival time in the queue (FCFS order).
    fn enqueued(&self) -> SimTime;
}

impl<S: Schedulable> Schedulable for &S {
    fn candidates(&self) -> &[Target] {
        (**self).candidates()
    }
    fn is_write(&self) -> bool {
        (**self).is_write()
    }
    fn enqueued(&self) -> SimTime {
        (**self).enqueued()
    }
}

/// Per-disk scheduler state: the elevator sweep direction plus a scratch
/// heap the SATF scan reuses across calls (no steady-state allocation).
#[derive(Debug, Clone, Default)]
pub struct LookState {
    /// Whether the sweep currently moves toward higher cylinders.
    pub upward: bool,
    /// Reusable scratch for the SATF/RSATF bound-ordered scan:
    /// `(seek lower bound, queue index, candidate index)` entries. Filled
    /// linearly then heapified in one `BinaryHeap::from` pass (O(n), vs
    /// O(n log n) for element-wise pushes); the allocation shuttles
    /// between the `Vec` and the heap without ever being dropped.
    scan: Vec<Reverse<(u64, u32, u32)>>,
}

/// The scheduling decision: queue index and candidate (replica) index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pick {
    /// Index into the queue slice handed to [`pick`].
    pub queue_index: usize,
    /// Index into that entry's candidate list.
    pub candidate: usize,
}

/// Chooses the next entry (and replica) for an idle disk, or `None` if the
/// queue is empty.
///
/// # Examples
///
/// ```
/// use mimd_core::sched::{pick, LookState, Policy, Schedulable};
/// use mimd_disk::{DiskParams, PositionKnowledge, SimDisk, Target, TimingPath};
/// use mimd_sim::SimTime;
///
/// struct Entry(Vec<Target>);
/// impl Schedulable for Entry {
///     fn candidates(&self) -> &[Target] { &self.0 }
///     fn is_write(&self) -> bool { false }
///     fn enqueued(&self) -> SimTime { SimTime::ZERO }
/// }
///
/// let disk = SimDisk::new(&DiskParams::st39133lwv(), TimingPath::Analytic,
///                         PositionKnowledge::Perfect, 0).unwrap();
/// let q = vec![Entry(vec![Target { cylinder: 9, surface: 0, angle: 0.1, sectors: 8 }])];
/// let mut look = LookState::default();
/// let p = pick(Policy::Satf, &disk, SimTime::ZERO, &q, &mut look,
///              mimd_sim::SimDuration::ZERO).unwrap();
/// assert_eq!((p.queue_index, p.candidate), (0, 0));
/// ```
pub fn pick<S: Schedulable>(
    policy: Policy,
    disk: &SimDisk,
    now: SimTime,
    queue: &[S],
    look: &mut LookState,
    slack: SimDuration,
) -> Option<Pick> {
    if queue.is_empty() {
        return None;
    }
    match policy {
        Policy::Fcfs => {
            let (i, entry) = queue.iter().enumerate().min_by_key(|(_, e)| e.enqueued())?;
            // FCFS still gets to use the nearest replica: replica choice is
            // free and does not reorder requests.
            let candidate = best_candidate(disk, now, entry, true, slack);
            Some(Pick {
                queue_index: i,
                candidate,
            })
        }
        Policy::Satf | Policy::Rsatf => {
            let aware = policy.replica_aware();
            // The seek alone lower-bounds a candidate's cost, so candidates
            // are visited in ascending-bound order (a min-heap over the
            // reusable scratch buffer): the first full estimates come from
            // the most promising candidates, and the whole scan stops as
            // soon as the next bound exceeds the incumbent's cost — no
            // later candidate can beat it. Winner selection compares
            // (cost, queue index, candidate index) lexicographically, which
            // is exactly the first-minimal-in-queue-order rule of a linear
            // scan, so the pick is identical to the exhaustive one.
            let scratch = &mut look.scan;
            // An earlier scan's early break may have left entries behind;
            // clearing keeps the allocation and discards the stale contents.
            scratch.clear();
            for (i, entry) in queue.iter().enumerate() {
                let limit = if aware { entry.candidates().len() } else { 1 };
                let write = entry.is_write();
                for (c, target) in entry.candidates().iter().take(limit).enumerate() {
                    scratch.push(Reverse((
                        disk.positioning_lower_bound_ns(target, write),
                        i as u32,
                        c as u32,
                    )));
                }
            }
            let mut heap = BinaryHeap::from(std::mem::take(scratch));
            let mut best: Option<(u64, u32, u32)> = None;
            while let Some(Reverse((bound, i, c))) = heap.pop() {
                if let Some((bcost, bi, bc)) = best {
                    if bound > bcost {
                        break; // Every remaining bound is at least this one.
                    }
                    // bound == bcost can at most tie; only an earlier queue
                    // position would displace the incumbent.
                    if bound == bcost && (i, c) >= (bi, bc) {
                        continue;
                    }
                }
                let entry = &queue[i as usize];
                let target = &entry.candidates()[c as usize];
                let cost = candidate_cost(disk, now, target, entry.is_write(), slack);
                let wins = match best {
                    None => true,
                    Some((bcost, bi, bc)) => cost < bcost || (cost == bcost && (i, c) < (bi, bc)),
                };
                if wins {
                    best = Some((cost, i, c));
                }
            }
            // Hand the buffer back for the next call (contents are stale
            // and discarded by the clear() above).
            *scratch = heap.into_vec();
            best.map(|(_, i, c)| Pick {
                queue_index: i as usize,
                candidate: c as usize,
            })
        }
        Policy::Look | Policy::Rlook => {
            let head = disk.arm_cylinder();
            // One flip allowed: if nothing lies in the sweep direction,
            // reverse (that is LOOK's end-of-stroke turn).
            for _ in 0..2 {
                let in_dir = queue.iter().enumerate().filter(|(_, e)| {
                    let cyl = e.candidates()[0].cylinder;
                    if look.upward {
                        cyl >= head
                    } else {
                        cyl <= head
                    }
                });
                let next = in_dir.min_by_key(|(i, e)| {
                    let cyl = e.candidates()[0].cylinder;
                    let dist = cyl.abs_diff(head);
                    // Nearest cylinder in the sweep; FIFO inside a cylinder.
                    (dist, e.enqueued(), *i)
                });
                if let Some((i, entry)) = next {
                    let candidate = best_candidate(disk, now, entry, policy.replica_aware(), slack);
                    return Some(Pick {
                        queue_index: i,
                        candidate,
                    });
                }
                look.upward = !look.upward;
            }
            None
        }
    }
}

/// The ranking cost of one candidate: predicted positioning time, plus a
/// full-revolution penalty when the predicted rotational wait falls inside
/// the slack window — within it the head-position prediction cannot be
/// trusted and "the scheduler conservatively chooses the next rotational
/// replica after the target" (§3.2).
pub(crate) fn candidate_cost(
    disk: &SimDisk,
    now: SimTime,
    target: &Target,
    write: bool,
    slack: SimDuration,
) -> u64 {
    let (positioning_ns, rotation_ns) = disk.sched_cost_ns(now, target, write);
    let mut cost = positioning_ns;
    if rotation_ns < slack.as_nanos() {
        cost += disk.rotation_ns();
    }
    cost
}

/// Picks the cheapest replica of one entry (or the primary when the policy
/// is not replica-aware). First-minimal tie-break, with the same
/// seek-lower-bound pruning as the SATF scan.
pub(crate) fn best_candidate<S: Schedulable>(
    disk: &SimDisk,
    now: SimTime,
    entry: &S,
    aware: bool,
    slack: SimDuration,
) -> usize {
    if !aware || entry.candidates().len() == 1 {
        return 0;
    }
    let write = entry.is_write();
    let mut best: Option<(usize, u64)> = None;
    for (i, t) in entry.candidates().iter().enumerate() {
        if let Some((_, b)) = best {
            if disk.positioning_lower_bound_ns(t, write) >= b {
                continue;
            }
        }
        let cost = candidate_cost(disk, now, t, write, slack);
        if best.map(|(_, b)| cost < b).unwrap_or(true) {
            best = Some((i, cost));
        }
    }
    best.map(|(i, _)| i).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimd_disk::{DiskParams, PositionKnowledge, TimingPath};

    struct Entry {
        candidates: Vec<Target>,
        write: bool,
        at: SimTime,
    }

    impl Schedulable for Entry {
        fn candidates(&self) -> &[Target] {
            &self.candidates
        }
        fn is_write(&self) -> bool {
            self.write
        }
        fn enqueued(&self) -> SimTime {
            self.at
        }
    }

    fn disk() -> SimDisk {
        SimDisk::new(
            &DiskParams::st39133lwv(),
            TimingPath::Analytic,
            PositionKnowledge::Perfect,
            1,
        )
        .unwrap()
    }

    fn entry_at(cylinder: u32, angle: f64, at_us: u64) -> Entry {
        Entry {
            candidates: vec![Target {
                cylinder,
                surface: 0,
                angle,
                sectors: 8,
            }],
            write: false,
            at: SimTime::from_micros(at_us),
        }
    }

    fn entry_with_replicas(cylinder: u32, dr: u32) -> Entry {
        Entry {
            candidates: (0..dr)
                .map(|k| Target {
                    cylinder,
                    surface: k,
                    angle: k as f64 / dr as f64,
                    sectors: 8,
                })
                .collect(),
            write: false,
            at: SimTime::ZERO,
        }
    }

    #[test]
    fn empty_queue_picks_nothing() {
        let d = disk();
        let q: Vec<Entry> = vec![];
        let mut look = LookState::default();
        for p in [
            Policy::Fcfs,
            Policy::Look,
            Policy::Satf,
            Policy::Rlook,
            Policy::Rsatf,
        ] {
            assert!(pick(p, &d, SimTime::ZERO, &q, &mut look, SimDuration::ZERO).is_none());
        }
    }

    #[test]
    fn fcfs_takes_oldest() {
        let d = disk();
        let q = vec![entry_at(5000, 0.5, 100), entry_at(10, 0.1, 50)];
        let mut look = LookState::default();
        let p = pick(
            Policy::Fcfs,
            &d,
            SimTime::ZERO,
            &q,
            &mut look,
            SimDuration::ZERO,
        )
        .unwrap();
        assert_eq!(p.queue_index, 1);
    }

    #[test]
    fn satf_takes_cheapest_access() {
        let d = disk(); // Head at cylinder 0.
        let q = vec![entry_at(6000, 0.2, 0), entry_at(50, 0.2, 1)];
        let mut look = LookState::default();
        let p = pick(
            Policy::Satf,
            &d,
            SimTime::ZERO,
            &q,
            &mut look,
            SimDuration::ZERO,
        )
        .unwrap();
        assert_eq!(p.queue_index, 1);
    }

    #[test]
    fn satf_weighs_rotation_not_just_seek() {
        let mut d = disk();
        // Park the head at cylinder 1000.
        let _ = d.begin(
            SimTime::ZERO,
            &Target {
                cylinder: 1000,
                surface: 0,
                angle: 0.0,
                sectors: 1,
            },
            false,
        );
        let now = d.busy_until();
        // Same-cylinder target whose angle just passed (near-full rotation)
        // vs. a short seek whose angle lands shortly after the arm arrives:
        // SATF prefers the seek.
        let just_missed = mimd_disk::mod1(d.angle_at(now) - 0.02);
        let probe = Target {
            cylinder: 1030,
            surface: 0,
            angle: 0.0,
            sectors: 8,
        };
        let est = d.estimate(now, &probe, false);
        let arrive_angle = d.angle_at(now + est.overhead + est.seek);
        let q = vec![
            entry_at(1000, just_missed, 0),
            entry_at(1030, mimd_disk::mod1(arrive_angle + 0.1), 1),
        ];
        let mut look = LookState::default();
        let p = pick(Policy::Satf, &d, now, &q, &mut look, SimDuration::ZERO).unwrap();
        assert_eq!(p.queue_index, 1);
    }

    #[test]
    fn rsatf_picks_best_replica_but_satf_ignores_them() {
        let mut d = disk();
        let _ = d.begin(
            SimTime::ZERO,
            &Target {
                cylinder: 0,
                surface: 0,
                angle: 0.0,
                sectors: 1,
            },
            false,
        );
        let now = d.busy_until();
        let q = vec![entry_with_replicas(0, 3)];
        let mut look = LookState::default();
        let satf = pick(Policy::Satf, &d, now, &q, &mut look, SimDuration::ZERO).unwrap();
        assert_eq!(satf.candidate, 0);
        let rsatf = pick(Policy::Rsatf, &d, now, &q, &mut look, SimDuration::ZERO).unwrap();
        // The chosen replica is the rotationally nearest of the three.
        let costs: Vec<u64> = q[0]
            .candidates
            .iter()
            .map(|t| d.estimate(now, t, false).positioning().as_nanos())
            .collect();
        let best = costs.iter().enumerate().min_by_key(|(_, c)| **c).unwrap().0;
        assert_eq!(rsatf.candidate, best);
    }

    #[test]
    fn look_sweeps_upward_then_reverses() {
        let mut d = disk();
        let _ = d.begin(
            SimTime::ZERO,
            &Target {
                cylinder: 3000,
                surface: 0,
                angle: 0.0,
                sectors: 1,
            },
            false,
        );
        let now = d.busy_until();
        let q = vec![
            entry_at(2000, 0.0, 0),
            entry_at(3500, 0.0, 1),
            entry_at(5000, 0.0, 2),
        ];
        let mut look = LookState {
            upward: true,
            ..LookState::default()
        };
        // Upward: nearest above 3000 is 3500.
        let p = pick(Policy::Look, &d, now, &q, &mut look, SimDuration::ZERO).unwrap();
        assert_eq!(p.queue_index, 1);
        assert!(look.upward);
        // With only a lower cylinder left, the sweep reverses.
        let q2 = vec![entry_at(2000, 0.0, 0)];
        let p2 = pick(Policy::Look, &d, now, &q2, &mut look, SimDuration::ZERO).unwrap();
        assert_eq!(p2.queue_index, 0);
        assert!(!look.upward);
    }

    #[test]
    fn rlook_chooses_rotationally_closest_replica_on_scan() {
        let d = disk();
        let q = vec![entry_with_replicas(0, 6)];
        let mut look = LookState {
            upward: true,
            ..LookState::default()
        };
        let p = pick(
            Policy::Rlook,
            &d,
            SimTime::from_micros(777),
            &q,
            &mut look,
            SimDuration::ZERO,
        )
        .unwrap();
        let costs: Vec<u64> = q[0]
            .candidates
            .iter()
            .map(|t| {
                d.estimate(SimTime::from_micros(777), t, false)
                    .positioning()
                    .as_nanos()
            })
            .collect();
        let best = costs.iter().enumerate().min_by_key(|(_, c)| **c).unwrap().0;
        assert_eq!(p.candidate, best);
        // Plain LOOK would have taken the primary.
        let p_look = pick(
            Policy::Look,
            &d,
            SimTime::from_micros(777),
            &q,
            &mut look,
            SimDuration::ZERO,
        )
        .unwrap();
        assert_eq!(p_look.candidate, 0);
    }

    /// The bound-ordered heap scan must agree with a naive exhaustive
    /// queue-order scan on every random queue — same entry AND same
    /// replica, including first-minimal tie-breaks.
    #[test]
    fn satf_heap_scan_matches_exhaustive_scan() {
        let mut d = disk();
        let _ = d.begin(
            SimTime::ZERO,
            &Target {
                cylinder: 4321,
                surface: 0,
                angle: 0.0,
                sectors: 1,
            },
            false,
        );
        let now = d.busy_until();
        let mut rng = mimd_sim::SimRng::seed_from(0xD15C);
        for case in 0..200 {
            let depth = 1 + (rng.below(24) as usize);
            let dr = 1 + rng.below(4) as u32;
            let slack = if case % 3 == 0 {
                SimDuration::from_micros(rng.below(2_000))
            } else {
                SimDuration::ZERO
            };
            let q: Vec<Entry> = (0..depth)
                .map(|_| Entry {
                    candidates: (0..dr)
                        .map(|k| Target {
                            cylinder: rng.below(9_000) as u32,
                            surface: k,
                            angle: rng.unit(),
                            sectors: 8,
                        })
                        .collect(),
                    write: rng.below(4) == 0,
                    at: SimTime::ZERO,
                })
                .collect();
            for policy in [Policy::Satf, Policy::Rsatf] {
                let aware = policy.replica_aware();
                // Naive reference: first minimal cost in queue order.
                let mut want: Option<(usize, usize, u64)> = None;
                for (i, e) in q.iter().enumerate() {
                    let limit = if aware { e.candidates.len() } else { 1 };
                    for (c, t) in e.candidates.iter().take(limit).enumerate() {
                        let cost = candidate_cost(&d, now, t, e.write, slack);
                        if want.map(|(_, _, b)| cost < b).unwrap_or(true) {
                            want = Some((i, c, cost));
                        }
                    }
                }
                let (wi, wc, _) = want.unwrap();
                let mut look = LookState::default();
                let got = pick(policy, &d, now, &q, &mut look, slack).unwrap();
                assert_eq!(
                    (got.queue_index, got.candidate),
                    (wi, wc),
                    "case {case}, {policy}, depth {depth}, dr {dr}"
                );
            }
        }
    }

    #[test]
    fn policy_metadata() {
        assert!(Policy::Rsatf.replica_aware());
        assert!(Policy::Rlook.replica_aware());
        assert!(!Policy::Satf.replica_aware());
        assert!(!Policy::Look.replica_aware());
        assert_eq!(Policy::default_for_dr(3), Policy::Rsatf);
        assert_eq!(Policy::default_for_dr(1), Policy::Satf);
        assert_eq!(Policy::Rlook.to_string(), "RLOOK");
    }
}
