//! Deterministic fault-injection plans and the engine's fault context.
//!
//! A [`FaultPlan`] is a declarative description of everything that goes
//! wrong during one run: scheduled fail-stop (optionally with a hot
//! spare), windowed fail-slow (service-time inflation inside the drive
//! model), transient media errors, and the recovery policies — retry with
//! capped exponential backoff, read redirection away from sick disks, and
//! the hot-spare rebuild throttle.
//!
//! Two properties are load-bearing:
//!
//! - **Value-neutrality.** An empty plan (`FaultPlan::default()`) makes
//!   the engine skip the fault layer entirely — no extra RNG draws, no
//!   extra events, byte-identical reports. Every figure regenerated with
//!   faults off therefore matches builds that predate this module.
//! - **Stream isolation.** All fault randomness comes from one dedicated,
//!   named stream ([`SimRng::named`]`(seed, "faults")`), never from the
//!   workload or per-disk streams. Injecting faults cannot perturb the
//!   workload a healthy run would have seen; the `fault-determinism`
//!   simlint rule pins this file to that discipline.

use mimd_sim::{SimDuration, SimRng, SimTime};

use crate::engine::report::FaultReport;
use crate::layout::Replica;

/// A scheduled fail-stop: the disk stops servicing at `at`.
#[derive(Debug, Clone, PartialEq)]
pub struct FailStop {
    /// Index of the disk that fails.
    pub disk: usize,
    /// Failure instant.
    pub at: SimTime,
    /// Whether a hot spare takes over: after
    /// [`RebuildConfig::spare_delay`], surviving mirrors copy the disk's
    /// data onto the spare and the slot returns to service.
    pub spare: bool,
}

/// A fail-slow window: between `from` and `until`, every operation the
/// disk services takes `factor`× its healthy time.
#[derive(Debug, Clone, PartialEq)]
pub struct FailSlow {
    /// Index of the slow disk.
    pub disk: usize,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
    /// Service-time multiplier (must be finite and positive; `1.0` is a
    /// no-op window useful for neutrality tests).
    pub factor: f64,
}

/// Per-operation transient media-error probabilities.
///
/// Drawn once per completing foreground physical operation from the
/// dedicated fault stream; an erroring operation is retried under the
/// [`RetryPolicy`] attempt budget.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MediaErrors {
    /// Probability a read completes with a transient error.
    pub read_rate: f64,
    /// Probability a write completes with a transient error.
    pub write_rate: f64,
}

impl MediaErrors {
    /// Whether any error probability is non-zero.
    pub fn enabled(&self) -> bool {
        self.read_rate > 0.0 || self.write_rate > 0.0
    }
}

/// Timeout-and-retry policy for foreground reads, in simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Base timeout armed when a read is enqueued; `ZERO` disables
    /// timeouts entirely.
    pub timeout: SimDuration,
    /// Retry attempts after the first try (both timeout- and
    /// media-error-triggered retries draw from this budget).
    pub max_retries: u8,
    /// Upper bound on the exponentially backed-off timeout.
    pub backoff_cap: SimDuration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            timeout: SimDuration::ZERO,
            max_retries: 2,
            backoff_cap: SimDuration::from_secs(2),
        }
    }
}

impl RetryPolicy {
    /// Whether timeouts are armed at all.
    pub fn enabled(&self) -> bool {
        self.timeout > SimDuration::ZERO
    }

    /// The timeout for a given attempt number: `timeout · 2^attempt`,
    /// capped at `backoff_cap` (never below the base timeout).
    pub fn timeout_for(&self, attempt: u8) -> SimDuration {
        let base = self.timeout.as_nanos();
        let shift = u32::from(attempt).min(20);
        let grown = base.saturating_mul(1u64 << shift);
        SimDuration::from_nanos(grown.min(self.backoff_cap.as_nanos().max(base)))
    }
}

/// Hot-spare rebuild parameters.
///
/// Rebuild copy traffic is throttled against foreground work by riding
/// the per-disk *delayed* [`crate::DriveQueue`]: chunk reads on the
/// surviving mirror only dispatch when its foreground queue is empty,
/// exactly like §3.4's delayed replica propagation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebuildConfig {
    /// Delay between the failure and the spare starting to fill.
    pub spare_delay: SimDuration,
    /// Upper bound on sectors copied per chunk (each chunk is further
    /// clamped to one replica track, the rebuild's natural copy unit).
    pub chunk_sectors: u32,
}

impl Default for RebuildConfig {
    fn default() -> RebuildConfig {
        RebuildConfig {
            spare_delay: SimDuration::from_secs(1),
            chunk_sectors: 1024,
        }
    }
}

/// A full fault-injection plan for one run.
///
/// The default plan is empty: [`FaultPlan::is_empty`] is what gates the
/// whole fault layer in the engine.
///
/// # Examples
///
/// ```
/// use mimd_core::faults::FaultPlan;
/// use mimd_sim::{SimDuration, SimTime};
///
/// let plan = FaultPlan::new()
///     .fail_stop_with_spare(0, SimTime::from_secs(30))
///     .media_errors(1e-3, 0.0)
///     .retry(SimDuration::from_millis(100), 3, SimDuration::from_secs(1));
/// assert!(!plan.is_empty());
/// assert!(FaultPlan::default().is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Scheduled fail-stop events.
    pub fail_stop: Vec<FailStop>,
    /// Fail-slow windows.
    pub fail_slow: Vec<FailSlow>,
    /// Transient media-error rates.
    pub media: MediaErrors,
    /// Timeout/retry policy for reads.
    pub retry: RetryPolicy,
    /// Steer reads away from disks inside a fail-slow window when a
    /// healthy mirror copy exists.
    pub redirect: bool,
    /// Hot-spare rebuild parameters (used by spared fail-stops).
    pub rebuild: RebuildConfig,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Whether the plan can have any effect on a run. Empty plans make
    /// the engine skip the fault layer entirely (value-neutrality).
    pub fn is_empty(&self) -> bool {
        self.fail_stop.is_empty()
            && self.fail_slow.is_empty()
            && !self.media.enabled()
            && !self.retry.enabled()
    }

    /// Adds a fail-stop without a spare: the disk stays dead.
    pub fn fail_stop(mut self, disk: usize, at: SimTime) -> FaultPlan {
        self.fail_stop.push(FailStop {
            disk,
            at,
            spare: false,
        });
        self
    }

    /// Adds a fail-stop with a hot spare: after
    /// [`RebuildConfig::spare_delay`], surviving mirrors rebuild the disk
    /// and it returns to service.
    pub fn fail_stop_with_spare(mut self, disk: usize, at: SimTime) -> FaultPlan {
        self.fail_stop.push(FailStop {
            disk,
            at,
            spare: true,
        });
        self
    }

    /// Adds a fail-slow window. Non-finite or non-positive factors are
    /// ignored (a plan is data, not a place to crash).
    pub fn fail_slow(
        mut self,
        disk: usize,
        from: SimTime,
        until: SimTime,
        factor: f64,
    ) -> FaultPlan {
        if factor.is_finite() && factor > 0.0 && until > from {
            self.fail_slow.push(FailSlow {
                disk,
                from,
                until,
                factor,
            });
        }
        self
    }

    /// Sets transient media-error rates (clamped to `[0, 1]`).
    pub fn media_errors(mut self, read_rate: f64, write_rate: f64) -> FaultPlan {
        self.media = MediaErrors {
            read_rate: read_rate.clamp(0.0, 1.0),
            write_rate: write_rate.clamp(0.0, 1.0),
        };
        self
    }

    /// Enables read timeouts with capped exponential backoff.
    pub fn retry(
        mut self,
        timeout: SimDuration,
        max_retries: u8,
        backoff_cap: SimDuration,
    ) -> FaultPlan {
        self.retry = RetryPolicy {
            timeout,
            max_retries,
            backoff_cap: backoff_cap.max(timeout),
        };
        self
    }

    /// Sets the retry attempt budget without arming timeouts (media-error
    /// retries use the same budget).
    pub fn retry_budget(mut self, max_retries: u8) -> FaultPlan {
        self.retry.max_retries = max_retries;
        self
    }

    /// Steers reads away from fail-slow disks when a healthy copy exists.
    pub fn redirect_slow_reads(mut self) -> FaultPlan {
        self.redirect = true;
        self
    }

    /// Sets hot-spare rebuild parameters.
    pub fn rebuild(mut self, spare_delay: SimDuration, chunk_sectors: u32) -> FaultPlan {
        self.rebuild = RebuildConfig {
            spare_delay,
            chunk_sectors: chunk_sectors.max(1),
        };
        self
    }

    /// Validates the plan against an array of `disks` disks: every
    /// targeted disk index must be in range, and no disk may carry two
    /// scheduled fail-stops (a disk fails at most once per run; the
    /// second event would fire against an already-dead or rebuilt slot
    /// whose meaning is undefined). Called by the engine at build time so
    /// a bad plan is a config error, not a mid-run debug assert.
    pub fn validate(&self, disks: usize) -> Result<(), String> {
        for f in &self.fail_stop {
            if f.disk >= disks {
                return Err(format!(
                    "fail-stop targets disk {} but the array has {disks} disks",
                    f.disk
                ));
            }
        }
        for w in &self.fail_slow {
            if w.disk >= disks {
                return Err(format!(
                    "fail-slow targets disk {} but the array has {disks} disks",
                    w.disk
                ));
            }
        }
        let mut failed: Vec<usize> = self.fail_stop.iter().map(|f| f.disk).collect();
        failed.sort_unstable();
        for pair in failed.windows(2) {
            if pair[0] == pair[1] {
                return Err(format!(
                    "disk {} has two scheduled fail-stops; a disk fails at most once per run",
                    pair[0]
                ));
            }
        }
        Ok(())
    }
}

/// Hot-spare rebuild progress: `failed → rebuilding → restored`.
#[derive(Debug, Clone)]
pub(crate) struct RebuildState {
    /// The failed disk being rebuilt in place.
    pub(crate) disk: usize,
    /// Failure instant (rebuild duration is measured from here).
    pub(crate) started: SimTime,
    /// Next per-disk data sector to copy.
    pub(crate) next: u64,
    /// Per-disk data sectors to restore in total.
    pub(crate) total: u64,
    /// Sectors covered by the chunk currently in flight.
    pub(crate) pending: u64,
    /// Surviving mirror currently serving as the copy source.
    pub(crate) source: usize,
    /// Whether copying has begun (false while waiting for the spare).
    pub(crate) copying: bool,
    /// Whether the in-flight chunk is past its source read and writing to
    /// the spare (a source failure no longer invalidates it).
    pub(crate) writing: bool,
    /// Parity rebuild only: survivor chunk reads still outstanding. A
    /// mirror chunk has one source read; a parity chunk XORs all `G−1`
    /// survivors, so the spare write waits for this to reach zero.
    pub(crate) reads_left: u32,
}

/// Per-run fault state owned by the engine; exists only for non-empty
/// plans, so the empty-plan path never touches it.
#[derive(Debug)]
pub(crate) struct FaultCtx {
    /// The resolved plan.
    pub(crate) plan: FaultPlan,
    /// The dedicated fault stream — the only randomness the fault layer
    /// may consume (`fault-determinism` simlint rule).
    pub(crate) rng: SimRng,
    /// Per-disk count of open fail-slow windows.
    pub(crate) slow_now: Vec<u32>,
    /// Active rebuild, if any (one at a time).
    pub(crate) rebuild: Option<RebuildState>,
    /// Counters and window samples, merged into the run report at the end.
    pub(crate) report: FaultReport,
    /// Monotone stamp distinguishing timeout generations of a task slot.
    pub(crate) next_track: u64,
    /// Whether plan events have been pushed onto the event queue.
    pub(crate) armed: bool,
    /// Scratch buffer for redirect filtering (kept here so the healthy
    /// dispatch path allocates nothing new).
    pub(crate) redirect_scratch: Vec<Replica>,
}

impl FaultCtx {
    /// Builds the context for a non-empty plan.
    ///
    /// `shard` indexes the owning engine shard: each shard draws media
    /// errors from its own member of the `"faults"` stream family, so the
    /// draw sequence is a pure function of `(seed, shard)` and never
    /// depends on how work interleaves across shards.
    pub(crate) fn new(plan: &FaultPlan, seed: u64, disks: usize, shard: u64) -> FaultCtx {
        FaultCtx {
            plan: plan.clone(),
            rng: SimRng::named_indexed(seed, "faults", shard),
            slow_now: vec![0; disks],
            rebuild: None,
            report: FaultReport {
                active: true,
                ..FaultReport::default()
            },
            next_track: 0,
            armed: false,
            redirect_scratch: Vec::new(),
        }
    }

    /// Whether any disk is currently inside a fail-slow window.
    pub(crate) fn any_slow(&self) -> bool {
        self.slow_now.iter().any(|&c| c > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_empty_and_builders_arent() {
        assert!(FaultPlan::default().is_empty());
        assert!(FaultPlan::new().redirect_slow_reads().is_empty());
        assert!(!FaultPlan::new()
            .fail_stop(0, SimTime::from_secs(1))
            .is_empty());
        assert!(!FaultPlan::new()
            .fail_slow(1, SimTime::ZERO, SimTime::from_secs(5), 3.0)
            .is_empty());
        assert!(!FaultPlan::new().media_errors(0.01, 0.0).is_empty());
        assert!(!FaultPlan::new()
            .retry(
                SimDuration::from_millis(50),
                2,
                SimDuration::from_millis(400)
            )
            .is_empty());
    }

    #[test]
    fn degenerate_fail_slow_windows_are_dropped() {
        let p = FaultPlan::new()
            .fail_slow(0, SimTime::from_secs(2), SimTime::from_secs(1), 2.0)
            .fail_slow(0, SimTime::ZERO, SimTime::from_secs(1), f64::NAN)
            .fail_slow(0, SimTime::ZERO, SimTime::from_secs(1), 0.0);
        assert!(p.is_empty(), "all three windows are invalid");
    }

    #[test]
    fn media_rates_clamp_to_probabilities() {
        let p = FaultPlan::new().media_errors(2.0, -0.5);
        assert_eq!(p.media.read_rate, 1.0);
        assert_eq!(p.media.write_rate, 0.0);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let r = RetryPolicy {
            timeout: SimDuration::from_millis(100),
            max_retries: 5,
            backoff_cap: SimDuration::from_millis(350),
        };
        assert_eq!(r.timeout_for(0), SimDuration::from_millis(100));
        assert_eq!(r.timeout_for(1), SimDuration::from_millis(200));
        assert_eq!(r.timeout_for(2), SimDuration::from_millis(350));
        assert_eq!(r.timeout_for(200), SimDuration::from_millis(350));
    }

    #[test]
    fn backoff_cap_never_undercuts_base() {
        let r = RetryPolicy {
            timeout: SimDuration::from_millis(100),
            max_retries: 1,
            backoff_cap: SimDuration::from_millis(10),
        };
        assert_eq!(r.timeout_for(0), SimDuration::from_millis(100));
        assert_eq!(r.timeout_for(3), SimDuration::from_millis(100));
    }

    #[test]
    fn validate_rejects_out_of_range_and_double_fail_stops() {
        let t = SimTime::from_secs(1);
        assert!(FaultPlan::new().validate(4).is_ok());
        assert!(FaultPlan::new().fail_stop(3, t).validate(4).is_ok());
        assert!(FaultPlan::new().fail_stop(4, t).validate(4).is_err());
        assert!(FaultPlan::new()
            .fail_slow(7, SimTime::ZERO, t, 2.0)
            .validate(4)
            .is_err());
        // Two fail-stops on one disk are rejected even at distinct times.
        let twice = FaultPlan::new()
            .fail_stop_with_spare(1, t)
            .fail_stop(1, SimTime::from_secs(9));
        assert!(twice.validate(4).is_err());
        let distinct = FaultPlan::new()
            .fail_stop(0, t)
            .fail_stop(2, SimTime::from_secs(9));
        assert!(distinct.validate(4).is_ok());
    }

    #[test]
    fn fault_ctx_uses_the_named_stream() {
        let plan = FaultPlan::new().media_errors(0.5, 0.5);
        let mut a = FaultCtx::new(&plan, 7, 4, 0);
        let mut b = SimRng::named_indexed(7, "faults", 0);
        assert_eq!(a.rng.below(1 << 30), b.below(1 << 30));
        // Shards draw from distinct members of the stream family.
        let mut c = FaultCtx::new(&plan, 7, 4, 1);
        assert_ne!(a.rng.below(1 << 30), c.rng.below(1 << 30));
        assert!(a.report.active);
        assert!(!a.any_slow());
        a.slow_now[2] = 1;
        assert!(a.any_slow());
    }
}
