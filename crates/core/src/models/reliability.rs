//! Analytic MTTDL (mean time to data loss) across array organizations.
//!
//! The standard Markov approximations for independent, exponentially
//! distributed disk lifetimes (MTTF per disk) and repair times (MTTR),
//! with MTTR ≪ MTTF:
//!
//! - **Unprotected** (striping, SR-Array without mirrors): any failure
//!   among the `N` disks loses data, `MTTDL = MTTF / N`.
//! - **Mirrored** (`Dm = 2`, RAID 1/10): data is lost when a disk's
//!   mirror partner dies during its repair window,
//!   `MTTDL = MTTF² / (N · MTTR)`.
//! - **Parity group** (RAID 4/5, group size `G`): a group dies when a
//!   second member fails during the first member's repair,
//!   `MTTDL_group = MTTF² / (G·(G−1)·MTTR)`; an array of `n` independent
//!   groups divides that by `n`.
//!
//! These are the classical formulas from the RAID literature (see e.g.
//! the surveys at arXiv:1510.04868 and arXiv:1801.08873); they quantify
//! the capacity/performance/reliability triangle the `fig_raid` sweep
//! measures the performance corner of.

/// Mean time to data loss of an unprotected `n`-disk array (hours), given
/// a per-disk MTTF in hours.
pub fn mttdl_unprotected(mttf_h: f64, n: u32) -> f64 {
    if n == 0 {
        return f64::INFINITY;
    }
    mttf_h / n as f64
}

/// Mean time to data loss of a mirrored array: `n` total disks in `n/2`
/// mirror pairs, each repairing in `mttr_h` hours.
pub fn mttdl_mirrored(mttf_h: f64, mttr_h: f64, n: u32) -> f64 {
    if n == 0 || mttr_h <= 0.0 {
        return f64::INFINITY;
    }
    mttf_h * mttf_h / (n as f64 * mttr_h)
}

/// Mean time to data loss of one RAID 4/5 parity group of `g` disks.
pub fn mttdl_parity_group(mttf_h: f64, mttr_h: f64, g: u32) -> f64 {
    if g < 2 || mttr_h <= 0.0 {
        return f64::INFINITY;
    }
    mttf_h * mttf_h / (g as f64 * (g as f64 - 1.0) * mttr_h)
}

/// Mean time to data loss of a RAID 4/5 array of `groups` independent
/// parity groups, `g` disks each.
pub fn mttdl_parity_array(mttf_h: f64, mttr_h: f64, g: u32, groups: u32) -> f64 {
    if groups == 0 {
        return f64::INFINITY;
    }
    mttdl_parity_group(mttf_h, mttr_h, g) / groups as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    const MTTF: f64 = 500_000.0; // a typical spec-sheet disk MTTF (hours)
    const MTTR: f64 = 24.0;

    #[test]
    fn unprotected_divides_by_population() {
        assert!((mttdl_unprotected(MTTF, 8) - MTTF / 8.0).abs() < 1e-9);
        assert_eq!(mttdl_unprotected(MTTF, 0), f64::INFINITY);
    }

    #[test]
    fn mirroring_buys_orders_of_magnitude() {
        let plain = mttdl_unprotected(MTTF, 8);
        let mirrored = mttdl_mirrored(MTTF, MTTR, 8);
        // MTTF/MTTR ≈ 2×10⁴, so the protected array survives ~10⁴× longer.
        assert!(mirrored / plain > 1e3);
        assert!((mirrored - MTTF * MTTF / (8.0 * MTTR)).abs() < 1e-3);
    }

    #[test]
    fn parity_sits_between_plain_and_mirrored() {
        // 8 disks: RAID 5 with G=4 in two groups loses to RAID 10 by the
        // G−1 survivor-exposure factor but crushes plain striping.
        let plain = mttdl_unprotected(MTTF, 8);
        let raid5 = mttdl_parity_array(MTTF, MTTR, 4, 2);
        let raid10 = mttdl_mirrored(MTTF, MTTR, 8);
        assert!(raid5 > plain * 100.0);
        assert!(raid10 > raid5);
        // Exact: MTTF²/(4·3·MTTR)/2 groups.
        assert!((raid5 - MTTF * MTTF / (4.0 * 3.0 * MTTR * 2.0)).abs() < 1e-3);
    }

    #[test]
    fn wider_groups_trade_capacity_for_reliability() {
        // One G=8 group stores more (7/8 vs 6/8 data) but dies sooner
        // than two G=4 groups.
        let wide = mttdl_parity_array(MTTF, MTTR, 8, 1);
        let narrow = mttdl_parity_array(MTTF, MTTR, 4, 2);
        assert!(narrow > wide);
    }

    #[test]
    fn degenerate_inputs_are_infinite() {
        assert_eq!(mttdl_parity_group(MTTF, MTTR, 1), f64::INFINITY);
        assert_eq!(mttdl_parity_group(MTTF, 0.0, 4), f64::INFINITY);
        assert_eq!(mttdl_parity_array(MTTF, MTTR, 4, 0), f64::INFINITY);
        assert_eq!(mttdl_mirrored(MTTF, 0.0, 8), f64::INFINITY);
    }
}
