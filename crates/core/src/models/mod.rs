//! The paper's analytical models (Section 2), Equations (1) through (16).
//!
//! All equations work in milliseconds and take the two disk characteristics
//! the paper names:
//!
//! - `S` — the maximum (full-stroke) seek time, under the model assumption
//!   that seek time is linear in distance, so a uniformly random seek
//!   averages `S / 3`. (This choice — rather than `3 × avg_seek` — is what
//!   reproduces the paper's §4.1 continuous optima: `Dr* = 5.8` for Cello
//!   base and `11.6` for Cello disk 6 at nine disks.)
//! - `R` — the full-rotation time.
//!
//! Workload characteristics: `p` (Equation 8's background-fraction ratio),
//! `q` (per-disk queue length), and `L` (Table 3's seek-locality index,
//! which divides the seek term: "we account for the different degree of
//! seek locality (L) by replacing S with S/L", §4.1).

pub mod components;
pub mod latency;
pub mod optimizer;
pub mod reliability;
pub mod throughput;

pub use components::*;
pub use latency::*;
pub use optimizer::*;
pub use reliability::*;
pub use throughput::*;

use mimd_disk::DiskParams;

/// Disk characteristics in model terms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskCharacter {
    /// Effective maximum seek time `S` in ms (three times the average).
    pub s_ms: f64,
    /// Full rotation time `R` in ms.
    pub r_ms: f64,
    /// Per-request overhead `To` in ms (Equation 15).
    pub overhead_ms: f64,
}

impl DiskCharacter {
    /// Derives model characteristics from drive parameters.
    ///
    /// # Examples
    ///
    /// ```
    /// use mimd_core::models::DiskCharacter;
    /// use mimd_disk::DiskParams;
    ///
    /// let c = DiskCharacter::from_params(&DiskParams::st39133lwv());
    /// assert!((c.r_ms - 6.0).abs() < 1e-9);
    /// assert!((c.s_ms - 10.5).abs() < 1e-9);
    /// ```
    pub fn from_params(p: &DiskParams) -> Self {
        // The paper's To bundles "various processing times, transfer costs,
        // track switch time, and mechanical acceleration/deceleration"
        // (§2.3); command overhead plus one head switch is the
        // request-size-independent part, and `with_transfer` adds the rest.
        DiskCharacter {
            s_ms: p.max_seek.as_millis_f64(),
            r_ms: p.rotation_time().as_millis_f64(),
            overhead_ms: (p.overhead + p.head_switch).as_millis_f64(),
        }
    }

    /// The characteristics with the seek term divided by a locality index.
    pub fn with_locality(&self, l: f64) -> Self {
        DiskCharacter {
            s_ms: self.s_ms / l.max(1.0),
            ..*self
        }
    }

    /// The characteristics with the media-transfer time of a
    /// `sectors`-sized request folded into the overhead term, completing
    /// the paper's definition of `To`.
    pub fn with_transfer(&self, sectors: u32, p: &DiskParams) -> Self {
        let geometry = mimd_disk::Geometry::new(p);
        let transfer_ms = sectors as f64 / geometry.avg_sectors_per_track() * self.r_ms;
        DiskCharacter {
            overhead_ms: self.overhead_ms + transfer_ms,
            ..*self
        }
    }
}
