//! Integer-constrained aspect-ratio selection.
//!
//! The continuous optima of Equations (5), (10), and (13) are rarely
//! integers. The paper's rule: "we choose Dr to be the maximum integer
//! factor of D that is less than or equal to the optimal non-integer
//! value" (§2.3), additionally capping `Dr` at 6 because the prototype
//! cannot propagate more rotational replicas within a single revolution
//! (§4.1). This module implements that rule plus a brute-force
//! model-minimising chooser used to sanity-check it.

use crate::config::Shape;

use super::latency::{optimal_rw_aspect, rw_latency};
use super::throughput::{optimal_throughput_aspect, predict_throughput_iops};
use super::DiskCharacter;

/// The paper's prototype cap on rotational replication (§4.1).
pub const MAX_DR: u32 = 6;

/// Largest factor of `d` that is `<= limit` (and `<= cap`); at least 1.
fn max_factor_at_most(d: u32, limit: f64, cap: u32) -> u32 {
    let mut best = 1;
    for f in 1..=d {
        if d.is_multiple_of(f) && f as f64 <= limit && f <= cap {
            best = f;
        }
    }
    best
}

/// The paper's recommended SR-Array shape for *latency* (low load):
/// Equation (10)'s continuous `Dr`, rounded down to a factor of `d`.
///
/// `p <= 0.5` yields pure striping.
///
/// # Examples
///
/// ```
/// use mimd_core::models::{recommend_latency_shape, DiskCharacter};
///
/// let c = DiskCharacter { s_ms: 10.5, r_ms: 6.0, overhead_ms: 2.0 };
/// // Cello base: L = 4.14 makes seeks cheap, favouring replication.
/// let shape = recommend_latency_shape(&c.with_locality(4.14), 6, 1.0);
/// assert_eq!((shape.ds, shape.dr), (2, 3));
/// ```
pub fn recommend_latency_shape(c: &DiskCharacter, d: u32, p: f64) -> Shape {
    match optimal_rw_aspect(c, d, p) {
        None => Shape::striping(d),
        Some((_, dr_star)) => {
            let dr = max_factor_at_most(d, dr_star, MAX_DR);
            Shape {
                ds: d / dr,
                dr,
                dm: 1,
            }
        }
    }
}

/// The paper's recommended SR-Array shape for *throughput* at per-disk
/// queue depth `q` (Equation (13), same integerisation rule).
pub fn recommend_throughput_shape(c: &DiskCharacter, d: u32, p: f64, q: f64) -> Shape {
    match optimal_throughput_aspect(c, d, p, q) {
        None => Shape::striping(d),
        Some((_, dr_star)) => {
            let dr = max_factor_at_most(d, dr_star, MAX_DR);
            Shape {
                ds: d / dr,
                dr,
                dm: 1,
            }
        }
    }
}

/// Brute force: the SR-Array shape minimising Equation (9) over all
/// integer factorizations (used to validate the rounding rule).
pub fn best_latency_shape_by_model(c: &DiskCharacter, d: u32, p: f64) -> (Shape, f64) {
    Shape::enumerate_sr(d, MAX_DR)
        .into_iter()
        .map(|s| (s, rw_latency(c, s.ds, s.dr, p)))
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("latency is finite"))
        .expect("at least the striping shape exists")
}

/// Brute force: the SR-Array shape maximising predicted throughput
/// (Equations (12)–(16)) at `q_total` outstanding requests.
pub fn best_throughput_shape_by_model(
    c: &DiskCharacter,
    d: u32,
    p: f64,
    q_total: f64,
) -> (Shape, f64) {
    Shape::enumerate_sr(d, MAX_DR)
        .into_iter()
        .map(|s| (s, predict_throughput_iops(c, s.ds, s.dr, p, q_total)))
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("throughput is finite"))
        .expect("at least the striping shape exists")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chr() -> DiskCharacter {
        // The ST39133LWV in model terms: S = 10.5 ms, R = 6 ms.
        DiskCharacter {
            s_ms: 10.5,
            r_ms: 6.0,
            overhead_ms: 2.0,
        }
    }

    #[test]
    fn factor_rounding() {
        assert_eq!(max_factor_at_most(12, 5.0, 6), 4);
        assert_eq!(max_factor_at_most(12, 6.7, 6), 6);
        assert_eq!(max_factor_at_most(12, 0.5, 6), 1);
        assert_eq!(max_factor_at_most(9, 5.8, 6), 3);
        assert_eq!(max_factor_at_most(9, 100.0, 6), 3);
        assert_eq!(max_factor_at_most(7, 7.0, 6), 1);
    }

    #[test]
    fn cello_base_six_disks_recommends_2x3() {
        // §4.1 / Figure 7: "when the number of disks is six, the model
        // recommends a configuration of Ds x Dr = 2 x 3 for Cello base".
        let c = chr().with_locality(4.14);
        let s = recommend_latency_shape(&c, 6, 1.0);
        assert_eq!((s.ds, s.dr, s.dm), (2, 3, 1));
    }

    #[test]
    fn nine_disks_cello_base_caps_dr_at_3() {
        // §4.1: "the largest practical value of Dr for D = 9 is only three,
        // much smaller than the non-integer solution ... (5.8 for Cello
        // base and 11.6 for Cello disk 6)".
        let base = chr().with_locality(4.14);
        let (_, dr_star) = super::super::latency::optimal_rw_aspect(&base, 9, 1.0).unwrap();
        assert!((dr_star - 5.8).abs() < 0.3, "dr* = {dr_star}");
        let s = recommend_latency_shape(&base, 9, 1.0);
        assert_eq!((s.ds, s.dr), (3, 3));

        let disk6 = chr().with_locality(16.67);
        let (_, dr_star6) = super::super::latency::optimal_rw_aspect(&disk6, 9, 1.0).unwrap();
        assert!((dr_star6 - 11.6).abs() < 0.6, "dr*6 = {dr_star6}");
        let s6 = recommend_latency_shape(&disk6, 9, 1.0);
        assert_eq!((s6.ds, s6.dr), (3, 3));
    }

    #[test]
    fn low_p_recommends_striping() {
        let c = chr();
        let s = recommend_latency_shape(&c, 12, 0.4);
        assert_eq!(s, Shape::striping(12));
        let st = recommend_throughput_shape(&c, 12, 0.5, 16.0);
        assert_eq!(st, Shape::striping(12));
    }

    #[test]
    fn recommendation_is_near_brute_force_optimum() {
        let c = chr().with_locality(4.14);
        for d in [2u32, 4, 6, 8, 12, 16, 24, 36] {
            for p in [0.6, 0.8, 1.0] {
                let rec = recommend_latency_shape(&c, d, p);
                let (best, t_best) = best_latency_shape_by_model(&c, d, p);
                let t_rec = rw_latency(&c, rec.ds, rec.dr, p);
                // The paper's round-down rule is conservative and can be
                // off-optimal at small D (e.g. D=4 rounds Dr*=3.8 down to
                // 2), but stays within 25% of the best model latency.
                assert!(
                    t_rec <= t_best * 1.25 + 1e-12,
                    "d={d} p={p}: rec {rec} ({t_rec:.3}) vs best {best} ({t_best:.3})"
                );
            }
        }
    }

    #[test]
    fn throughput_recommendation_grows_dr_with_queue() {
        let c = chr();
        let shallow = recommend_throughput_shape(&c, 36, 1.0, 1.5);
        let deep = recommend_throughput_shape(&c, 36, 1.0, 32.0);
        assert!(deep.dr >= shallow.dr);
        assert!(deep.dr > 1);
    }

    #[test]
    fn dr_cap_is_respected() {
        // Extremely slow spindle would want huge Dr; cap holds.
        let c = DiskCharacter {
            s_ms: 2.0,
            r_ms: 60.0,
            overhead_ms: 2.0,
        };
        let s = recommend_latency_shape(&c, 36, 1.0);
        assert!(s.dr <= MAX_DR);
        let (b, _) = best_latency_shape_by_model(&c, 36, 1.0);
        assert!(b.dr <= MAX_DR);
    }

    #[test]
    fn tpcc_36_disks_prefers_wide_grids() {
        // TPC-C: L = 1.04, heavy foreground writes at high rates push the
        // best shape toward striping (Figure 10b's ordering).
        let c = chr().with_locality(1.04);
        let high_p = recommend_latency_shape(&c, 36, 0.95);
        let low_p = recommend_latency_shape(&c, 36, 0.55);
        assert!(low_p.ds > high_p.ds);
    }
}
