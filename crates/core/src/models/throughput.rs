//! Scheduling and throughput models (§2.4), Equations (12) through (16).

use super::components::{rot_read_even, rot_write_all};
use super::latency::rw_latency;
use super::DiskCharacter;

/// Queue depth below which the RLOOK amortisation (Equation 12) breaks
/// down and the latency models apply instead ("Empirically, this is a good
/// approximation when q > 3", §2.4).
pub const RLOOK_MIN_Q: f64 = 3.0;

/// Equation (12): average per-request time in an RLOOK stroke with `q`
/// queued requests, `S/(q Ds) + p·R/(2 Dr) + (1-p)(R - R/(2 Dr))`.
///
/// Note the seek term amortises the *end-to-end* seek `S` (not `S/3`) over
/// the `q` requests of the stroke.
pub fn rlook_request_time(c: &DiskCharacter, ds: u32, dr: u32, p: f64, q: f64) -> f64 {
    c.s_ms / (q * ds as f64) + p * rot_read_even(c.r_ms, dr) + (1.0 - p) * rot_write_all(c.r_ms, dr)
}

/// Equation (13): continuous-optimum aspect ratio for throughput.
///
/// `None` when `p <= 0.5` (pure striping is best; §2.4).
pub fn optimal_throughput_aspect(c: &DiskCharacter, d: u32, p: f64, q: f64) -> Option<(f64, f64)> {
    if p <= 0.5 {
        return None;
    }
    let d = d as f64;
    let k = (2.0 * p - 1.0) * q;
    let ds = (2.0 * c.s_ms / (c.r_ms * k) * d).sqrt();
    let dr = (c.r_ms * k / (2.0 * c.s_ms) * d).sqrt();
    Some((ds, dr))
}

/// Equation (14): best per-request RLOOK time,
/// `sqrt(2SR(2p-1)/(qD)) + (1-p)R`.
pub fn best_rlook_time(c: &DiskCharacter, d: u32, p: f64, q: f64) -> Option<f64> {
    if p <= 0.5 {
        return None;
    }
    let k = 2.0 * p - 1.0;
    Some((2.0 * c.s_ms * c.r_ms * k / (q * d as f64)).sqrt() + (1.0 - p) * c.r_ms)
}

/// Equation (15): single-disk throughput, `1 / (To + T_best)` in requests
/// per millisecond given times in milliseconds.
pub fn single_disk_throughput(overhead_ms: f64, t_best_ms: f64) -> f64 {
    1.0 / (overhead_ms + t_best_ms)
}

/// Equation (16): array throughput with `Q` outstanding requests over `D`
/// disks, `D · (1 - (1 - 1/D)^Q) · N1` — discounting the probability of
/// idle disks under random request placement.
pub fn array_throughput(d: u32, q_total: f64, n1: f64) -> f64 {
    let d = d as f64;
    d * (1.0 - (1.0 - 1.0 / d).powf(q_total)) * n1
}

/// End-to-end throughput prediction for a `ds × dr` SR-Array with `Q`
/// outstanding requests in total: per-request service from Equation (12)
/// (or Equation (9) at short queues), Equation (15), then Equation (16).
///
/// Returns requests per *second*.
pub fn predict_throughput_iops(c: &DiskCharacter, ds: u32, dr: u32, p: f64, q_total: f64) -> f64 {
    let d = ds * dr;
    let q = q_total / d as f64;
    let t = if q > RLOOK_MIN_Q {
        rlook_request_time(c, ds, dr, p, q)
    } else {
        rw_latency(c, ds, dr, p)
    };
    let n1_per_ms = single_disk_throughput(c.overhead_ms, t);
    array_throughput(d, q_total, n1_per_ms) * mimd_sim::time::MILLIS_PER_SEC
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chr() -> DiskCharacter {
        DiskCharacter {
            s_ms: 15.6,
            r_ms: 6.0,
            overhead_ms: 2.0,
        }
    }

    #[test]
    fn eq12_amortizes_seek_over_queue() {
        let c = chr();
        let t4 = rlook_request_time(&c, 1, 1, 1.0, 4.0);
        let t16 = rlook_request_time(&c, 1, 1, 1.0, 16.0);
        assert!(t16 < t4);
        // The rotational term is untouched by q.
        assert!((t4 - t16 - (c.s_ms / 4.0 - c.s_ms / 16.0)).abs() < 1e-12);
    }

    #[test]
    fn eq13_product_is_d() {
        let c = chr();
        let (ds, dr) = optimal_throughput_aspect(&c, 36, 0.9, 8.0).unwrap();
        assert!((ds * dr - 36.0).abs() < 1e-9);
        assert!(optimal_throughput_aspect(&c, 36, 0.5, 8.0).is_none());
    }

    #[test]
    fn longer_queues_favor_taller_grids() {
        // §2.4: "A long queue allows for the amortization of the end-to-end
        // seek over many requests; consequently, we should devote more
        // disks to reducing rotational delay."
        let c = chr();
        let (_, dr_short) = optimal_throughput_aspect(&c, 36, 1.0, 2.0).unwrap();
        let (_, dr_long) = optimal_throughput_aspect(&c, 36, 1.0, 32.0).unwrap();
        assert!(dr_long > dr_short);
    }

    #[test]
    fn eq14_matches_eq12_at_optimum() {
        let c = chr();
        let (p, q, d) = (0.8, 8.0, 36);
        let (ds, dr) = optimal_throughput_aspect(&c, d, p, q).unwrap();
        let direct = c.s_ms / (q * ds)
            + p * c.r_ms / (2.0 * dr)
            + (1.0 - p) * (c.r_ms - c.r_ms / (2.0 * dr));
        assert!((direct - best_rlook_time(&c, d, p, q).unwrap()).abs() < 1e-9);
    }

    #[test]
    fn eq16_limits() {
        // Q -> infinity: all D disks busy.
        let n = array_throughput(6, 1e6, 1.0);
        assert!((n - 6.0).abs() < 1e-6);
        // Q = 1: exactly one disk busy.
        let n1 = array_throughput(6, 1.0, 1.0);
        assert!((n1 - 1.0).abs() < 1e-9);
        // Monotone in Q.
        let a = array_throughput(6, 4.0, 1.0);
        let b = array_throughput(6, 8.0, 1.0);
        assert!(a < b);
    }

    #[test]
    fn predicted_throughput_scales_with_disks() {
        let c = chr();
        let t6 = predict_throughput_iops(&c, 3, 2, 1.0, 32.0);
        let t12 = predict_throughput_iops(&c, 6, 2, 1.0, 64.0);
        assert!(t12 > 1.5 * t6, "t6={t6} t12={t12}");
    }

    #[test]
    fn short_queue_falls_back_to_latency_model() {
        let c = chr();
        // q_total=6 over 6 disks -> q=1 <= 3: must use Equation (9).
        let t = predict_throughput_iops(&c, 3, 2, 1.0, 6.0);
        let q_eff = 6.0 / 6.0;
        assert!(q_eff <= RLOOK_MIN_Q);
        let t_eq9 = rw_latency(&c, 3, 2, 1.0);
        let expect = array_throughput(6, 6.0, 1.0 / (c.overhead_ms + t_eq9)) * 1_000.0;
        assert!((t - expect).abs() < 1e-9);
    }

    #[test]
    fn writes_depress_throughput() {
        let c = chr();
        let reads = predict_throughput_iops(&c, 3, 2, 1.0, 32.0);
        let mixed = predict_throughput_iops(&c, 3, 2, 0.6, 32.0);
        assert!(mixed < reads);
    }
}
