//! Seek-distance and rotational-delay components (§2.1, §2.2).
//!
//! Equations (1) through (3), plus the §2.1 closed forms for single-disk
//! and mirrored seek averages. All functions take times in milliseconds and
//! return milliseconds.

/// Average seek of a single disk under uniform access: `S / 3` (§2.1,
/// following Teorey & Pinkerton).
pub fn single_disk_avg_seek(s: f64) -> f64 {
    s / 3.0
}

/// Average seek of a `D`-way mirror: `S / (2D + 1)` — the expected minimum
/// of `D` independent head distances (§2.1, Bitton & Gray).
pub fn mirror_avg_seek(s: f64, d: u32) -> f64 {
    s / (2.0 * d as f64 + 1.0)
}

/// Equation (1): average seek of a `Ds`-way stripe, `S / (3 Ds)` (Matloff).
pub fn stripe_avg_seek(s: f64, ds: u32) -> f64 {
    s / (3.0 * ds as f64)
}

/// Equation (2): average read rotational delay with `Dr` evenly spaced
/// replicas, `R / (2 Dr)`.
pub fn rot_read_even(r: f64, dr: u32) -> f64 {
    r / (2.0 * dr as f64)
}

/// Average read rotational delay with `Dr` *randomly placed* replicas,
/// `R / (Dr + 1)` — strictly worse than even spacing, hence unused in the
/// design (§2.2).
pub fn rot_read_random(r: f64, dr: u32) -> f64 {
    r / (dr as f64 + 1.0)
}

/// Equation (3): average rotational cost of writing all `Dr` replicas in
/// the foreground, `R - R / (2 Dr)`.
pub fn rot_write_all(r: f64, dr: u32) -> f64 {
    r - r / (2.0 * dr as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: f64 = 15.6;
    const R: f64 = 6.0;

    #[test]
    fn base_cases_with_one_disk() {
        assert_eq!(stripe_avg_seek(S, 1), single_disk_avg_seek(S));
        assert_eq!(rot_read_even(R, 1), R / 2.0);
        assert_eq!(rot_read_random(R, 1), R / 2.0);
        assert_eq!(rot_write_all(R, 1), R / 2.0);
        assert!((mirror_avg_seek(S, 1) - S / 3.0).abs() < 1e-12);
    }

    #[test]
    fn striping_beats_mirroring_for_seek() {
        // §2.1: "The amount of seek reduction achieved by striping is
        // better than that of D-way mirroring".
        for d in 2..=16 {
            assert!(stripe_avg_seek(S, d) < mirror_avg_seek(S, d), "d={d}");
        }
    }

    #[test]
    fn even_spacing_beats_random_placement() {
        for dr in 2..=8 {
            assert!(rot_read_even(R, dr) < rot_read_random(R, dr), "dr={dr}");
        }
    }

    #[test]
    fn read_plus_write_rotation_is_a_full_revolution() {
        // §2.2: "Notice that Rr(D) + Rw(D) = R."
        for dr in 1..=8 {
            let sum = rot_read_even(R, dr) + rot_write_all(R, dr);
            assert!((sum - R).abs() < 1e-12, "dr={dr}");
        }
    }

    #[test]
    fn replication_monotonically_helps_reads_hurts_writes() {
        for dr in 1..8 {
            assert!(rot_read_even(R, dr + 1) < rot_read_even(R, dr));
            assert!(rot_write_all(R, dr + 1) > rot_write_all(R, dr));
        }
    }
}
