//! SR-Array latency models (§2.3), Equations (4) through (11).

use super::components::{rot_read_even, rot_write_all, stripe_avg_seek};
use super::DiskCharacter;

/// Equation (4): overhead-independent random *read* latency of a
/// `Ds × Dr` SR-Array, `S/(3 Ds) + R/(2 Dr)`.
pub fn read_latency(c: &DiskCharacter, ds: u32, dr: u32) -> f64 {
    stripe_avg_seek(c.s_ms, ds) + rot_read_even(c.r_ms, dr)
}

/// Equation (5): the continuous-optimum aspect ratio for reads under low
/// load, `(Ds, Dr) = (sqrt(2S/(3R) · D), sqrt(3R/(2S) · D))`.
pub fn optimal_read_aspect(c: &DiskCharacter, d: u32) -> (f64, f64) {
    let d = d as f64;
    let ds = (2.0 * c.s_ms / (3.0 * c.r_ms) * d).sqrt();
    let dr = (3.0 * c.r_ms / (2.0 * c.s_ms) * d).sqrt();
    (ds, dr)
}

/// Equation (6): best overhead-independent read latency,
/// `sqrt(2SR/(3D))`.
pub fn best_read_latency(c: &DiskCharacter, d: u32) -> f64 {
    (2.0 * c.s_ms * c.r_ms / (3.0 * d as f64)).sqrt()
}

/// Equation (7): worst-case write latency with foreground propagation,
/// `S/(3 Ds) + R - R/(2 Dr)`.
pub fn write_latency(c: &DiskCharacter, ds: u32, dr: u32) -> f64 {
    stripe_avg_seek(c.s_ms, ds) + rot_write_all(c.r_ms, dr)
}

/// Equation (9): average read/write latency,
/// `S/(3 Ds) + p·R/(2 Dr) + (1-p)(R - R/(2 Dr))`,
/// where `p` is Equation (8)'s fraction of operations that do *not* force
/// foreground replica propagation.
pub fn rw_latency(c: &DiskCharacter, ds: u32, dr: u32, p: f64) -> f64 {
    stripe_avg_seek(c.s_ms, ds)
        + p * rot_read_even(c.r_ms, dr)
        + (1.0 - p) * rot_write_all(c.r_ms, dr)
}

/// Equation (10): continuous-optimum aspect ratio for mixed traffic.
///
/// Returns `None` when `p <= 0.5`: "A p ratio under 50 % precludes
/// rotational replication and pure striping provides the best
/// configuration" (§2.3).
pub fn optimal_rw_aspect(c: &DiskCharacter, d: u32, p: f64) -> Option<(f64, f64)> {
    if p <= 0.5 {
        return None;
    }
    let d = d as f64;
    let k = 2.0 * p - 1.0;
    let ds = (2.0 * c.s_ms / (3.0 * c.r_ms * k) * d).sqrt();
    let dr = (3.0 * c.r_ms * k / (2.0 * c.s_ms) * d).sqrt();
    Some((ds, dr))
}

/// Equation (11): best mixed latency,
/// `sqrt(2SR(2p-1)/(3D)) + (1-p)R` (for `p > 0.5`).
pub fn best_rw_latency(c: &DiskCharacter, d: u32, p: f64) -> Option<f64> {
    if p <= 0.5 {
        return None;
    }
    let k = 2.0 * p - 1.0;
    Some((2.0 * c.s_ms * c.r_ms * k / (3.0 * d as f64)).sqrt() + (1.0 - p) * c.r_ms)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chr() -> DiskCharacter {
        DiskCharacter {
            s_ms: 15.6,
            r_ms: 6.0,
            overhead_ms: 2.0,
        }
    }

    #[test]
    fn eq4_components_add() {
        let c = chr();
        let t = read_latency(&c, 2, 3);
        assert!((t - (15.6 / 6.0 + 6.0 / 6.0)).abs() < 1e-12);
    }

    #[test]
    fn eq5_product_is_d_and_minimizes_eq4() {
        let c = chr();
        for d in [4u32, 6, 9, 12, 36] {
            let (ds, dr) = optimal_read_aspect(&c, d);
            assert!((ds * dr - d as f64).abs() < 1e-9, "product at d={d}");
            // The continuous optimum beats nearby aspect ratios.
            let t_opt = c.s_ms / (3.0 * ds) + c.r_ms / (2.0 * dr);
            for scale in [0.8, 1.25] {
                let ds2 = ds * scale;
                let dr2 = d as f64 / ds2;
                let t2 = c.s_ms / (3.0 * ds2) + c.r_ms / (2.0 * dr2);
                assert!(t_opt <= t2 + 1e-9, "d={d} scale={scale}");
            }
        }
    }

    #[test]
    fn eq6_matches_eq4_at_optimum() {
        let c = chr();
        let d = 24;
        let (ds, dr) = optimal_read_aspect(&c, d);
        let direct = c.s_ms / (3.0 * ds) + c.r_ms / (2.0 * dr);
        assert!((direct - best_read_latency(&c, d)).abs() < 1e-9);
    }

    #[test]
    fn sqrt_d_scaling_rule_of_thumb() {
        // §2.6: "By using D disks, we can improve the overhead-independent
        // part of response time by a factor of sqrt(D)."
        let c = chr();
        let t1 = best_read_latency(&c, 1);
        let t4 = best_read_latency(&c, 4);
        let t16 = best_read_latency(&c, 16);
        assert!((t1 / t4 - 2.0).abs() < 1e-9);
        assert!((t1 / t16 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn eq9_reduces_to_eq4_and_eq7_at_extremes() {
        let c = chr();
        assert!((rw_latency(&c, 2, 3, 1.0) - read_latency(&c, 2, 3)).abs() < 1e-12);
        assert!((rw_latency(&c, 2, 3, 0.0) - write_latency(&c, 2, 3)).abs() < 1e-12);
    }

    #[test]
    fn eq9_is_independent_of_dr_at_p_half() {
        // §2.2: "If reads and writes are equally frequent, varying D will
        // not change the average overall latency."
        let c = chr();
        let t1 = rw_latency(&c, 2, 1, 0.5);
        let t3 = rw_latency(&c, 2, 3, 0.5);
        let t6 = rw_latency(&c, 2, 6, 0.5);
        assert!((t1 - t3).abs() < 1e-12);
        assert!((t3 - t6).abs() < 1e-12);
    }

    #[test]
    fn low_p_precludes_replication() {
        let c = chr();
        assert!(optimal_rw_aspect(&c, 6, 0.5).is_none());
        assert!(optimal_rw_aspect(&c, 6, 0.3).is_none());
        assert!(best_rw_latency(&c, 6, 0.4).is_none());
        assert!(optimal_rw_aspect(&c, 6, 0.9).is_some());
    }

    #[test]
    fn eq10_matches_eq5_at_p_one() {
        let c = chr();
        let (ds_a, dr_a) = optimal_read_aspect(&c, 12);
        let (ds_b, dr_b) = optimal_rw_aspect(&c, 12, 1.0).unwrap();
        assert!((ds_a - ds_b).abs() < 1e-12);
        assert!((dr_a - dr_b).abs() < 1e-12);
    }

    #[test]
    fn eq11_matches_eq9_at_its_optimum() {
        let c = chr();
        let p = 0.8;
        let d = 18;
        let (ds, dr) = optimal_rw_aspect(&c, d, p).unwrap();
        let direct = c.s_ms / (3.0 * ds)
            + p * c.r_ms / (2.0 * dr)
            + (1.0 - p) * (c.r_ms - c.r_ms / (2.0 * dr));
        assert!((direct - best_rw_latency(&c, d, p).unwrap()).abs() < 1e-9);
    }

    #[test]
    fn slow_spindles_want_more_replication() {
        // §2.3: "Disks with slow rotational speed (large R) demand a higher
        // degree of rotational replication."
        let fast = chr();
        let slow = DiskCharacter { r_ms: 8.33, ..fast };
        let (_, dr_fast) = optimal_read_aspect(&fast, 12);
        let (_, dr_slow) = optimal_read_aspect(&slow, 12);
        assert!(dr_slow > dr_fast);
    }

    #[test]
    fn poor_seeks_want_more_striping() {
        let base = chr();
        let seeky = DiskCharacter {
            s_ms: base.s_ms * 2.0,
            ..base
        };
        let (ds_base, _) = optimal_read_aspect(&base, 12);
        let (ds_seeky, _) = optimal_read_aspect(&seeky, 12);
        assert!(ds_seeky > ds_base);
    }

    #[test]
    fn locality_shrinks_the_seek_term() {
        let c = chr();
        let local = c.with_locality(4.14);
        assert!(read_latency(&local, 2, 3) < read_latency(&c, 2, 3));
        // And shifts the optimum toward rotational replication.
        let (_, dr_c) = optimal_read_aspect(&c, 6);
        let (_, dr_l) = optimal_read_aspect(&local, 6);
        assert!(dr_l > dr_c);
    }
}
